// Command qrec-analyze prints the paper's workload analysis (Table 2,
// Figures 9-11) for a JSONL workload file or a built-in synthetic profile.
//
// Usage:
//
//	qrec-analyze -in sdss.jsonl
//	qrec-analyze -profile sqlshare
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	in := flag.String("in", "", "workload file (JSONL, or CSV with -csv)")
	csvIn := flag.Bool("csv", false, "treat -in as CSV (session_id/start_time/sql header)")
	profile := flag.String("profile", "", "generate and analyze: sdss or sqlshare")
	seed := flag.Int64("seed", 42, "generator seed (with -profile)")
	flag.Parse()

	var wl *workload.Workload
	var err error
	switch {
	case *in != "" && *csvIn:
		wl, err = loadCSV(*in)
	case *in != "":
		wl, err = workload.LoadFile(*in, *in)
	case *profile == "sdss":
		wl = synth.Generate(synth.SDSSProfile(), *seed)
	case *profile == "sqlshare":
		wl = synth.Generate(synth.SQLShareProfile(), *seed)
	default:
		fmt.Fprintln(os.Stderr, "need -in FILE or -profile sdss|sqlshare")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	dropped := wl.Enrich()
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "note: dropped %d unparseable queries\n", dropped)
	}

	st := analysis.ComputeWorkloadStats(wl)
	fmt.Printf("Workload statistics (Table 2 format)\n")
	fmt.Printf("  %-16s %d\n", "Total pairs", st.TotalPairs)
	fmt.Printf("  %-16s %d\n", "Unique pairs", st.UniquePairs)
	fmt.Printf("  %-16s %d\n", "Unique queries", st.UniqueQs)
	fmt.Printf("  %-16s %d\n", "Sessions", st.Sessions)
	fmt.Printf("  %-16s %d\n", "Datasets", st.Datasets)
	fmt.Printf("  %-16s %d\n", "Vocabulary", st.Vocabulary)
	fmt.Printf("  %-16s %d\n", "Tables", st.Tables)
	fmt.Printf("  %-16s %d\n", "Columns", st.Columns)
	fmt.Printf("  %-16s %d\n", "Functions", st.Functions)
	fmt.Printf("  %-16s %d\n", "Literals", st.Literals)
	fmt.Printf("  %-16s %d\n", "Templates", st.Templates)

	sum := analysis.Summarize(analysis.ComputeSessionStats(wl))
	fmt.Printf("\nSession-level (Figures 10/11 a-e)\n")
	fmt.Printf("  sessions with >=2 unique queries:   %.1f%%\n", sum.PctMultiUniqueQuery)
	fmt.Printf("  sessions with >=2 unique templates: %.1f%%\n", sum.PctMultiTemplate)
	fmt.Printf("  sessions with >=2 template changes: %.1f%%\n", sum.PctTemplateChangesGE2)
	fmt.Printf("  mean queries/session: %.1f (unique %.1f, seq changes %.1f)\n",
		sum.MeanQueries, sum.MeanUniqueQueries, sum.MeanSeqChanges)

	ps := analysis.SummarizePairs(analysis.ComputePairDeltas(wl))
	fmt.Printf("\nPair-level (Figures 10/11 f-l)\n")
	fmt.Printf("  pairs sharing template:   %.1f%%\n", ps.PctTemplateSame)
	fmt.Printf("  pairs using more tables:  %.1f%%  (fewer: %.1f%%)\n", ps.PctMoreTables, ps.PctFewerTables)
	fmt.Printf("  pairs selecting more:     %.1f%%\n", ps.PctMoreSelected)
	fmt.Printf("  pairs using more funcs:   %.1f%%\n", ps.PctMoreFunctions)
	fmt.Printf("  pairs getting longer:     %.1f%%  (shorter: %.1f%%)\n", ps.PctLonger, ps.PctShorter)

	freq := analysis.ComputeTemplateFrequency(wl)
	fmt.Printf("\nTemplate popularity (Figure 9): %d classes\n", len(freq))
	show := 10
	if show > len(freq) {
		show = len(freq)
	}
	for i := 0; i < show; i++ {
		tmpl := freq[i].Template
		if len(tmpl) > 60 {
			tmpl = tmpl[:57] + "..."
		}
		fmt.Printf("  %4dx  %s\n", freq[i].Count, tmpl)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrec-analyze:", err)
	os.Exit(1)
}

// loadCSV opens and parses a CSV query log.
func loadCSV(path string) (*workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadCSV(f, path)
}
