// Command qrec-genworkload generates a synthetic SDSS-sim or SQLShare-sim
// query workload and writes it as JSONL (one query record per line).
//
// Usage:
//
//	qrec-genworkload -profile sdss -seed 42 -out sdss.jsonl
//	qrec-genworkload -profile sqlshare -sessions 100 -out sqlshare.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	profile := flag.String("profile", "sdss", "workload profile: sdss or sqlshare")
	seed := flag.Int64("seed", 42, "generator seed")
	sessions := flag.Int("sessions", 0, "override session count (0 = profile default)")
	out := flag.String("out", "", "output JSONL path (default stdout)")
	flag.Parse()

	var prof synth.Profile
	switch *profile {
	case "sdss":
		prof = synth.SDSSProfile()
	case "sqlshare":
		prof = synth.SQLShareProfile()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want sdss or sqlshare)\n", *profile)
		os.Exit(2)
	}
	if *sessions > 0 {
		prof.Sessions = *sessions
	}
	wl := synth.Generate(prof, *seed)

	if *out == "" {
		if err := workload.WriteJSONL(os.Stdout, wl); err != nil {
			fatal(err)
		}
		return
	}
	if err := workload.SaveFile(*out, wl); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d queries in %d sessions to %s\n",
		len(wl.Queries()), len(wl.Sessions), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrec-genworkload:", err)
	os.Exit(1)
}
