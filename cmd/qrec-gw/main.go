// Command qrec-gw is the sharded serving gateway: it consistent-hash
// routes clients (X-Client-ID, remote-host fallback) across N qrec-serve
// replicas, probes each replica's /v1/healthz health ladder, reroutes
// around draining/broken/unreachable replicas with bounded retries and
// jittered backoff, and collapses concurrent identical requests into one
// upstream call. It serves the same API surface as a replica, so clients
// cannot tell the tiers apart.
//
// It also drives zero-downtime model rollouts: -push fans a trained
// model directory out to every replica over the checksummed artifact
// envelope protocol; each replica validates, persists and hot-swaps
// without dropping a request.
//
// Usage:
//
//	qrec-gw -addr :8080 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	qrec-gw -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 -push model/
//	curl -s localhost:8080/v1/recommend -d '{"sql":"SELECT ra FROM PhotoObj"}'
//	curl -s localhost:8080/v1/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "gateway listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per replica on the hash ring")
	maxAttempts := flag.Int("max-attempts", gateway.DefaultMaxAttempts,
		"replicas one request may try (capped at the replica count)")
	attemptTimeout := flag.Duration("attempt-timeout", gateway.DefaultAttemptTimeout,
		"per-attempt upstream deadline")
	backoff := flag.Duration("backoff", gateway.DefaultBackoffBase,
		"base inter-attempt backoff (exponential, jittered)")
	maxBody := flag.Int64("max-body", gateway.DefaultMaxBodyBytes, "request body size limit in bytes")
	probeInterval := flag.Duration("probe-interval", gateway.DefaultProbeInterval,
		"replica health-probe cadence")
	probeTimeout := flag.Duration("probe-timeout", gateway.DefaultProbeTimeout,
		"per-probe deadline")
	seed := flag.Int64("seed", 1, "backoff-jitter RNG seed (equal seeds replay equal schedules)")
	drain := flag.Duration("drain", server.DefaultDrainTimeout,
		"graceful-shutdown deadline for in-flight requests")
	push := flag.String("push", "",
		"one-shot mode: push this model directory to every replica (validate, persist, hot-swap) and exit")
	flag.Parse()

	reps := splitReplicas(*replicas)
	if len(reps) == 0 {
		fmt.Fprintln(os.Stderr, "qrec-gw: -replicas is required (comma-separated base URLs)")
		os.Exit(2)
	}
	gw, err := gateway.New(gateway.Config{
		Replicas:       reps,
		VNodes:         *vnodes,
		MaxAttempts:    *maxAttempts,
		AttemptTimeout: *attemptTimeout,
		BackoffBase:    *backoff,
		MaxBodyBytes:   *maxBody,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		Seed:           *seed,
		// The composition root is the one place the wall clock enters the
		// (detrand-clean) gateway package.
		Clock: time.Now,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrec-gw:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *push != "" {
		out, err := gw.PushModelDir(ctx, *push)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qrec-gw:", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, gateway.FormatPushOutcome(out))
		for _, perr := range out {
			if perr != nil {
				os.Exit(1)
			}
		}
		return
	}

	go gw.Run(ctx)
	fmt.Fprintf(os.Stderr,
		"qrec-gw: routing on %s across %d replicas (vnodes=%d attempts=%d attempt-timeout=%s probe=%s)\n",
		*addr, len(reps), *vnodes, *maxAttempts, *attemptTimeout, *probeInterval)
	if err := server.RunHandler(ctx, *addr, gw, gw.StartDraining, nil, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "qrec-gw:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "qrec-gw: drained in-flight requests, shut down cleanly")
}

// splitReplicas parses the -replicas flag, trimming blanks and trailing
// slashes so "http://h:1/, http://h:2" joins cleanly with request paths.
func splitReplicas(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimRight(part, "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
