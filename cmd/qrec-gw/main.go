// Command qrec-gw is the sharded serving gateway: it consistent-hash
// routes clients (X-Client-ID, remote-host fallback) across N qrec-serve
// replicas, probes each replica's /v1/healthz health ladder, reroutes
// around draining/broken/unreachable replicas with bounded retries and
// jittered backoff, and collapses concurrent identical requests into one
// upstream call. It serves the same API surface as a replica, so clients
// cannot tell the tiers apart.
//
// It also drives zero-downtime model rollouts: -push fans a trained
// model directory out to every replica over the checksummed artifact
// envelope protocol; each replica validates, persists and hot-swaps
// without dropping a request.
//
// The fleet is dynamic: with -admin-token set, the authenticated admin
// API adds and removes replicas at runtime (warm-up before ring
// ownership, drain before removal) with zero dropped requests, and with
// -state set the membership view is persisted through the checksummed
// atomic envelope so a restarted gateway rejoins its last-known fleet
// instead of the boot flags (corrupt state falls back to -replicas).
//
// Usage:
//
//	qrec-gw -addr :8080 -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	qrec-gw -replicas ... -admin-token secret -state gw-state/membership.qrec
//	qrec-gw -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 -push model/
//	curl -s localhost:8080/v1/recommend -d '{"sql":"SELECT ra FROM PhotoObj"}'
//	curl -s localhost:8080/v1/healthz
//	curl -s -H 'Authorization: Bearer secret' localhost:8080/v1/admin/ring
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "gateway listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per replica on the hash ring")
	maxAttempts := flag.Int("max-attempts", gateway.DefaultMaxAttempts,
		"replicas one request may try (capped at the replica count)")
	attemptTimeout := flag.Duration("attempt-timeout", gateway.DefaultAttemptTimeout,
		"per-attempt upstream deadline")
	backoff := flag.Duration("backoff", gateway.DefaultBackoffBase,
		"base inter-attempt backoff (exponential, jittered)")
	maxBody := flag.Int64("max-body", gateway.DefaultMaxBodyBytes, "request body size limit in bytes")
	probeInterval := flag.Duration("probe-interval", gateway.DefaultProbeInterval,
		"replica health-probe cadence")
	probeTimeout := flag.Duration("probe-timeout", gateway.DefaultProbeTimeout,
		"per-probe deadline")
	seed := flag.Int64("seed", 1, "backoff-jitter RNG seed (equal seeds replay equal schedules)")
	drain := flag.Duration("drain", server.DefaultDrainTimeout,
		"graceful-shutdown deadline for in-flight requests")
	push := flag.String("push", "",
		"one-shot mode: push this model directory to every replica (validate, persist, hot-swap) and exit")
	adminToken := flag.String("admin-token", "",
		"bearer token guarding /v1/admin/* and /v1/model/push (empty disables the admin surface)")
	statePath := flag.String("state", "",
		"membership state file: persist the fleet view after every change and rejoin it on restart (empty disables)")
	warmupProbes := flag.Int("warmup-probes", gateway.DefaultWarmupProbes,
		"health probes a joining replica gets to reach healthy before the join fails")
	memberDrain := flag.Duration("member-drain", gateway.DefaultMemberDrainTimeout,
		"how long a replica removal waits for its in-flight requests to finish")
	flag.Parse()

	flagReps := splitReplicas(*replicas)
	if len(flagReps) == 0 && *statePath == "" {
		fmt.Fprintln(os.Stderr, "qrec-gw: -replicas is required (comma-separated base URLs)")
		os.Exit(2)
	}
	reps, persisted, stateErr := gateway.ResolveBootMembership(*statePath, flagReps)
	if stateErr != nil {
		fmt.Fprintf(os.Stderr, "qrec-gw: membership state %s unusable (%v): falling back to -replicas\n",
			*statePath, stateErr)
	}
	if persisted != nil {
		fmt.Fprintf(os.Stderr, "qrec-gw: rejoining persisted fleet view seq %d (%d replicas) from %s\n",
			persisted.Seq, len(persisted.Replicas), *statePath)
	}
	if len(reps) == 0 {
		fmt.Fprintln(os.Stderr, "qrec-gw: no replicas from -replicas or -state")
		os.Exit(2)
	}
	var initialSeq uint64
	if persisted != nil {
		initialSeq = persisted.Seq
	}
	gw, err := gateway.New(gateway.Config{
		Replicas:           reps,
		VNodes:             *vnodes,
		MaxAttempts:        *maxAttempts,
		AttemptTimeout:     *attemptTimeout,
		BackoffBase:        *backoff,
		MaxBodyBytes:       *maxBody,
		ProbeInterval:      *probeInterval,
		ProbeTimeout:       *probeTimeout,
		Seed:               *seed,
		AdminToken:         *adminToken,
		StatePath:          *statePath,
		InitialSeq:         initialSeq,
		WarmupProbes:       *warmupProbes,
		MemberDrainTimeout: *memberDrain,
		// The composition root is the one place the wall clock enters the
		// (detrand-clean) gateway package.
		Clock: time.Now,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrec-gw:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *push != "" {
		out, err := gw.PushModelDir(ctx, *push)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qrec-gw:", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, gateway.FormatPushOutcome(out))
		for _, perr := range out {
			if perr != nil {
				os.Exit(1)
			}
		}
		return
	}

	go gw.Run(ctx)
	fmt.Fprintf(os.Stderr,
		"qrec-gw: routing on %s across %d replicas (vnodes=%d attempts=%d attempt-timeout=%s probe=%s admin=%t state=%q)\n",
		*addr, len(reps), *vnodes, *maxAttempts, *attemptTimeout, *probeInterval, *adminToken != "", *statePath)
	if err := server.RunHandler(ctx, *addr, gw, gw.StartDraining, nil, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "qrec-gw:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "qrec-gw: drained in-flight requests, shut down cleanly")
}

// splitReplicas parses the -replicas flag, trimming blanks and trailing
// slashes so "http://h:1/, http://h:2" joins cleanly with request paths.
func splitReplicas(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimRight(part, "/")
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
