// Command qrec-serve exposes a trained model directory over HTTP (the
// deployment shape a database-as-a-service platform would embed), running
// requests on the concurrent serving core: a bounded prediction worker
// pool plus a sharded LRU inference cache. SIGINT/SIGTERM shut down
// gracefully: the listener closes, in-flight recommendations get up to
// -drain to finish, and the process exits 0.
//
// Usage:
//
//	qrec-serve -model model/ -addr :8080 -workers 8 -cache-size 4096
//	curl -s localhost:8080/v1/recommend -d '{"sql":"SELECT ra FROM PhotoObj"}'
//	curl -s localhost:8080/v1/recommend/batch \
//	  -d '{"requests":[{"sql":"SELECT ra FROM PhotoObj"}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the opt-in debug mux
	"os"
	"os/signal"
	"syscall"

	"repro/internal/modeldir"
	"repro/internal/server"
)

func main() {
	modelDir := flag.String("model", "model", "model directory written by qrec-train")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "prediction worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", server.DefaultCacheSize,
		"inference cache entries (negative disables caching)")
	timeout := flag.Duration("timeout", server.DefaultTimeout, "per-request prediction timeout")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "max requests per batch call")
	drain := flag.Duration("drain", server.DefaultDrainTimeout,
		"graceful-shutdown deadline for in-flight requests")
	pprofAddr := flag.String("pprof", "",
		"debug listener address for net/http/pprof, e.g. localhost:6060 (empty disables; do not expose publicly)")
	flag.Parse()

	if *pprofAddr != "" {
		// Separate listener so profiling endpoints never share the public
		// serving port; DefaultServeMux carries the pprof registrations.
		go func() {
			fmt.Fprintf(os.Stderr, "qrec-serve: pprof debug listener on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "qrec-serve: pprof listener:", err)
			}
		}()
	}

	rec, err := modeldir.Load(*modelDir, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve:", err)
		os.Exit(1)
	}
	srv := server.NewWithConfig(rec, server.Config{
		CacheSize:    *cacheSize,
		Workers:      *workers,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
	})
	fmt.Fprintf(os.Stderr, "serving %s model (%d classes) on %s (workers=%d cache=%d timeout=%s)\n",
		rec.Model.Config().Arch, len(rec.Classifier.Classes), *addr,
		*workers, *cacheSize, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := server.Run(ctx, *addr, srv, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "qrec-serve: drained in-flight requests, shut down cleanly")
}
