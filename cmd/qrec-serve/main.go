// Command qrec-serve exposes a trained model directory over HTTP (the
// deployment shape a database-as-a-service platform would embed), running
// requests on the concurrent serving core: a bounded prediction worker
// pool plus a sharded LRU inference cache. SIGINT/SIGTERM shut down
// gracefully: the listener closes, in-flight recommendations get up to
// -drain to finish, and the process exits 0.
//
// The serving stack is overload-resilient: admission control sheds
// excess load early, a per-client token bucket (-rate/-burst) rejects
// greedy callers with 429 + Retry-After, a circuit breaker guards the
// model path, and shed or over-budget requests answer from a pre-warmed
// popularity fallback flagged "degraded":true (-degrade, -soft-timeout).
//
// Usage:
//
//	qrec-serve -model model/ -addr :8080 -workers 8 -cache-size 4096
//	qrec-serve -model model/ -rate 50 -burst 100 -soft-timeout 2s -max-inflight 64
//	curl -s localhost:8080/v1/recommend -d '{"sql":"SELECT ra FROM PhotoObj"}'
//	curl -s localhost:8080/v1/recommend/batch \
//	  -d '{"requests":[{"sql":"SELECT ra FROM PhotoObj"}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the opt-in debug mux
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/modeldir"
	"repro/internal/servepool"
	"repro/internal/server"
)

func main() {
	modelDir := flag.String("model", "model", "model directory written by qrec-train")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "prediction worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", server.DefaultCacheSize,
		"inference cache entries (negative disables caching)")
	timeout := flag.Duration("timeout", server.DefaultTimeout, "per-request prediction timeout")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "max requests per batch call")
	drain := flag.Duration("drain", server.DefaultDrainTimeout,
		"graceful-shutdown deadline for in-flight requests")
	maxQueue := flag.Int("max-queue", 0,
		"prediction task queue capacity (0 = workers); with admission on, a full queue sheds new requests")
	maxInFlight := flag.Int("max-inflight", 0,
		"admitted-request cap before shedding (0 = auto from workers+queue, -1 disables)")
	softTimeout := flag.Duration("soft-timeout", 5*time.Second,
		"per-request model budget before degrading to the popular fallback (0 disables)")
	batchSize := flag.Int("batch-size", 0,
		"micro-batch cap: coalesce up to this many concurrent requests per model pass, bit-identical results (0 disables)")
	batchWindow := flag.Duration("batch-window", 0,
		"how long the first request of a forming micro-batch waits for company (0 = 500µs default)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in req/s (0 disables)")
	burst := flag.Float64("burst", 0, "rate-limiter burst size (0 = max(rate, 1))")
	breakerRatio := flag.Float64("breaker-ratio", 0.5,
		"model-path failure ratio that opens the circuit breaker (0 disables)")
	degrade := flag.Bool("degrade", true,
		"answer shed/over-budget requests from the popular fallback instead of 429/504")
	replicaID := flag.String("replica-id", "",
		"replica name echoed as X-Replica-ID on every response and in healthz (multi-replica topologies)")
	enablePush := flag.Bool("enable-push", false,
		"accept POST /v1/model/push hot swaps (validate, persist to -model, swap with zero dropped requests); admin networks only")
	pprofAddr := flag.String("pprof", "",
		"debug listener address for net/http/pprof, e.g. localhost:6060 (empty disables; do not expose publicly)")
	register := flag.String("register", "",
		"qrec-gw base URL to self-register with on startup (and deregister from on drain); requires -advertise")
	advertise := flag.String("advertise", "",
		"this replica's base URL as the gateway should dial it, e.g. http://10.0.0.7:8081")
	registerToken := flag.String("register-token", "",
		"bearer token for the gateway admin API (-register)")
	flag.Parse()

	if (*register == "") != (*advertise == "") {
		fmt.Fprintln(os.Stderr, "qrec-serve: -register and -advertise must be set together")
		os.Exit(2)
	}

	if *pprofAddr != "" {
		// Separate listener so profiling endpoints never share the public
		// serving port; DefaultServeMux carries the pprof registrations.
		go func() {
			fmt.Fprintf(os.Stderr, "qrec-serve: pprof debug listener on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "qrec-serve: pprof listener:", err)
			}
		}()
	}

	rec, err := modeldir.Load(*modelDir, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve:", err)
		os.Exit(1)
	}
	// Resolve the admission cap: by default admit roughly what the pool can
	// hold (in-flight work + queue) times two, so shedding starts only when
	// requests would otherwise sit doomed behind the queue.
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := *maxQueue
	if q <= 0 {
		q = w
	}
	inFlight := *maxInFlight
	if inFlight == 0 {
		inFlight = 2 * (w + q)
	}
	if inFlight < 0 {
		inFlight = 0 // -1: admission control off
	}
	cfg := server.Config{
		CacheSize:    *cacheSize,
		Workers:      *workers,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		MaxBatch:     *maxBatch,
		MaxQueue:     *maxQueue,
		MaxInFlight:  inFlight,
		SoftTimeout:  *softTimeout,
		BatchSize:    *batchSize,
		BatchWindow:  *batchWindow,
		Rate:         *rate,
		Burst:        *burst,
		BreakerRatio: *breakerRatio,
		ReplicaID:    *replicaID,
		EnablePush:   *enablePush,
		ModelDir:     *modelDir,
	}
	if *degrade {
		cfg.Fallback = servepool.FallbackFromRecommender(rec, 25)
		// After a hot swap, re-derive the degraded snapshot from the new
		// artifacts so fallback answers track the served model.
		cfg.FallbackFactory = func(r *core.Recommender) *servepool.Fallback {
			return servepool.FallbackFromRecommender(r, 25)
		}
	}
	srv := server.NewWithConfig(rec, cfg)
	fmt.Fprintf(os.Stderr,
		"serving %s model (%d classes) on %s (workers=%d cache=%d timeout=%s soft=%s inflight=%d batch=%d rate=%g degrade=%t replica=%q push=%t)\n",
		rec.Model.Config().Arch, len(rec.Classifier.Classes), *addr,
		*workers, *cacheSize, *timeout, *softTimeout, inFlight, *batchSize, *rate, *degrade, *replicaID, *enablePush)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	deregistered := make(chan struct{})
	if *register != "" {
		go selfRegister(ctx, *register, *advertise, *registerToken)
		go func() {
			// On shutdown, ask the gateway to drain us out of the ring
			// while our own listener drains in-flight requests; main waits
			// on this before exiting so the DELETE is not cut short.
			defer close(deregistered)
			<-ctx.Done()
			deregister(*register, *advertise, *registerToken)
		}()
	} else {
		close(deregistered)
	}
	if err := server.Run(ctx, *addr, srv, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve:", err)
		os.Exit(1)
	}
	<-deregistered
	fmt.Fprintln(os.Stderr, "qrec-serve: drained in-flight requests, shut down cleanly")
}

// selfRegister joins this replica to the gateway's ring through the
// authenticated admin API, retrying until the gateway accepts (its
// warm-up ladder probes our /v1/healthz, so registration completes only
// once we are actually serving). A 409 means we are already a member —
// a restart racing the gateway's own persisted view — which is success.
func selfRegister(ctx context.Context, gw, advertise, token string) {
	client := &http.Client{Timeout: 60 * time.Second}
	body := fmt.Sprintf(`{"url":%q}`, advertise)
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			gw+"/v1/admin/replicas", strings.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "qrec-serve: register:", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := client.Do(req)
		if err == nil {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			_ = resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusConflict:
				fmt.Fprintf(os.Stderr, "qrec-serve: registered %s with %s (status %d)\n",
					advertise, gw, resp.StatusCode)
				return
			default:
				fmt.Fprintf(os.Stderr, "qrec-serve: register %s: status %d: %s\n",
					gw, resp.StatusCode, strings.TrimSpace(string(msg)))
			}
		} else {
			fmt.Fprintln(os.Stderr, "qrec-serve: register:", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(2 * time.Second):
		}
	}
}

// deregister removes this replica from the gateway's ring with drain
// semantics: the gateway stops routing new keys here immediately and
// waits for in-flight requests (which our own drain is completing) to
// finish. Runs under its own deadline because the serve context is
// already cancelled by the time shutdown begins.
func deregister(gw, advertise, token string) {
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(dctx, http.MethodDelete,
		gw+"/v1/admin/replicas?url="+url.QueryEscape(advertise), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve: deregister:", err)
		return
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := (&http.Client{Timeout: 30 * time.Second}).Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve: deregister:", err)
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	fmt.Fprintf(os.Stderr, "qrec-serve: deregistered %s from %s (status %d)\n",
		advertise, gw, resp.StatusCode)
}
