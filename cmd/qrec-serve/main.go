// Command qrec-serve exposes a trained model directory over HTTP (the
// deployment shape a database-as-a-service platform would embed).
//
// Usage:
//
//	qrec-serve -model model/ -addr :8080
//	curl -s localhost:8080/v1/recommend -d '{"sql":"SELECT ra FROM PhotoObj"}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/modeldir"
	"repro/internal/server"
)

func main() {
	modelDir := flag.String("model", "model", "model directory written by qrec-train")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	rec, err := modeldir.Load(*modelDir, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serving %s model (%d classes) on %s\n",
		rec.Model.Config().Arch, len(rec.Classifier.Classes), *addr)
	if err := http.ListenAndServe(*addr, server.New(rec)); err != nil {
		fmt.Fprintln(os.Stderr, "qrec-serve:", err)
		os.Exit(1)
	}
}
