// Command qrec-experiments regenerates the paper's tables and figures on
// the synthetic workloads. Each experiment prints rows in the paper's
// format; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	qrec-experiments -exp all
//	qrec-experiments -exp table2,fig9
//	qrec-experiments -exp table5,table6 -train-pairs 500 -epochs 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all' (ids: table2, table3, table5, table6, fig9, fig10, fig11, fig12, fig13)")
	trainPairs := flag.Int("train-pairs", 1000, "cap training pairs per model (0 = all)")
	evalPairs := flag.Int("eval-pairs", 60, "cap test pairs for decode-heavy evals (0 = all)")
	epochs := flag.Int("epochs", 4, "training epochs")
	dmodel := flag.Int("dmodel", 32, "model width")
	seed := flag.Int64("seed", 17, "suite seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.DefaultConfig(os.Stdout)
	cfg.MaxTrainPairs = *trainPairs
	cfg.EvalPairs = *evalPairs
	cfg.Epochs = *epochs
	cfg.DModel = *dmodel
	cfg.Seed = *seed
	suite := experiments.NewSuite(cfg)

	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := suite.Run(ids); err != nil {
		fmt.Fprintln(os.Stderr, "qrec-experiments:", err)
		os.Exit(1)
	}
}
