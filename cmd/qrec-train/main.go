// Command qrec-train runs the paper's offline stage on a workload: step 1
// trains the seq2seq model on consecutive query pairs, step 2 fine-tunes
// the encoder with a classification head for next-template prediction.
// The trained artifacts (vocabulary, seq2seq model, classifier) are saved
// to a model directory that qrec-recommend loads.
//
// Usage:
//
//	qrec-train -profile sdss -arch transformer -epochs 4 -out model/
//	qrec-train -in mylog.jsonl -arch convs2s -out model/
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/modeldir"
	"repro/internal/seq2seq"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	in := flag.String("in", "", "workload file (JSONL, or CSV with -csv)")
	csvIn := flag.Bool("csv", false, "treat -in as CSV (session_id/start_time/sql header)")
	profile := flag.String("profile", "", "generate and train on: sdss or sqlshare")
	seed := flag.Int64("seed", 42, "seed for generation, split and init")
	arch := flag.String("arch", "transformer", "architecture: transformer or convs2s")
	seqAware := flag.Bool("seqaware", true, "train on (Qi, Qi+1); false trains the seq-less ablation")
	fineTune := flag.Bool("finetune", true, "initialize the classifier from the trained encoder")
	epochs := flag.Int("epochs", 4, "training epochs")
	dmodel := flag.Int("dmodel", 32, "model width")
	maxPairs := flag.Int("max-pairs", 0, "cap training pairs (0 = all)")
	out := flag.String("out", "model", "output model directory")
	flag.Parse()

	var wl *workload.Workload
	var err error
	switch {
	case *in != "" && *csvIn:
		wl, err = loadCSV(*in)
	case *in != "":
		wl, err = workload.LoadFile(*in, *in)
	case *profile == "sdss":
		wl = synth.Generate(synth.SDSSProfile(), *seed)
	case *profile == "sqlshare":
		wl = synth.Generate(synth.SQLShareProfile(), *seed)
	default:
		fmt.Fprintln(os.Stderr, "need -in FILE or -profile sdss|sqlshare")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	prep := core.DefaultPrepConfig()
	prep.Seed = *seed
	ds, err := core.Prepare(wl, prep)
	if err != nil {
		fatal(err)
	}
	if *maxPairs > 0 && len(ds.Train) > *maxPairs {
		ds.Train = ds.Train[:*maxPairs]
	}
	fmt.Fprintf(os.Stderr, "prepared: %d train / %d val / %d test pairs, vocab %d, %d template classes\n",
		len(ds.Train), len(ds.Val), len(ds.Test), ds.Vocab.Size(), len(ds.Classes))

	cfg := core.DefaultTrainConfig(seq2seq.Arch(*arch))
	cfg.SeqAware = *seqAware
	cfg.FineTune = *fineTune
	cfg.SeqOpts.Epochs = *epochs
	cfg.ClsOpts.Epochs = *epochs
	cfg.Seed = *seed
	mcfg := seq2seq.DefaultConfig(seq2seq.Arch(*arch), 0)
	mcfg.DModel = *dmodel
	mcfg.FFHidden = 2 * *dmodel
	cfg.Model = &mcfg
	cfg.SeqOpts.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	cfg.ClsOpts.Logf = cfg.SeqOpts.Logf

	rec, err := core.Train(ds, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "seq2seq: %d epochs in %s (best val %.4f)\n",
		rec.SeqResult.Epochs, rec.SeqResult.TrainTime.Round(1e6), rec.SeqResult.BestVal)
	fmt.Fprintf(os.Stderr, "classifier: %d epochs in %s\n",
		rec.ClsResult.Epochs, rec.ClsResult.TrainTime.Round(1e6))

	if err := modeldir.Save(*out, rec); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saved model artifacts to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrec-train:", err)
	os.Exit(1)
}

// loadCSV opens and parses a CSV query log.
func loadCSV(path string) (*workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadCSV(f, path)
}
