// Command qrec-train runs the paper's offline stage on a workload: step 1
// trains the seq2seq model on consecutive query pairs, step 2 fine-tunes
// the encoder with a classification head for next-template prediction.
// The trained artifacts (vocabulary, seq2seq model, classifier) are saved
// to a model directory that qrec-recommend loads.
//
// Training is crash-safe when -checkpoint-dir is set: the full training
// state is checkpointed atomically at every epoch (and every
// -checkpoint-every batches), SIGINT/SIGTERM finish the current batch and
// write a final checkpoint before exiting 0, and -resume continues an
// interrupted run with the exact loss trajectory of an uninterrupted one.
//
// Usage:
//
//	qrec-train -profile sdss -arch transformer -epochs 4 -out model/
//	qrec-train -in mylog.jsonl -arch convs2s -out model/
//	qrec-train -profile sdss -checkpoint-dir ckpt/ -checkpoint-every 50 -out model/
//	qrec-train -profile sdss -checkpoint-dir ckpt/ -resume -out model/
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/modeldir"
	"repro/internal/seq2seq"
	"repro/internal/synth"
	"repro/internal/tensor"
	"repro/internal/workload"
)

func main() {
	in := flag.String("in", "", "workload file (JSONL, or CSV with -csv)")
	csvIn := flag.Bool("csv", false, "treat -in as CSV (session_id/start_time/sql header)")
	profile := flag.String("profile", "", "generate and train on: sdss or sqlshare")
	seed := flag.Int64("seed", 42, "seed for generation, split, init and the training RNG stream")
	arch := flag.String("arch", "transformer", "architecture: transformer or convs2s")
	seqAware := flag.Bool("seqaware", true, "train on (Qi, Qi+1); false trains the seq-less ablation")
	fineTune := flag.Bool("finetune", true, "initialize the classifier from the trained encoder")
	epochs := flag.Int("epochs", 4, "training epochs")
	dmodel := flag.Int("dmodel", 32, "model width")
	maxPairs := flag.Int("max-pairs", 0, "cap training pairs (0 = all)")
	out := flag.String("out", "model", "output model directory")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory (empty disables checkpointing)")
	ckptEvery := flag.Int("checkpoint-every", 0, "also checkpoint every N batches (0 = epoch boundaries only)")
	ckptKeep := flag.Int("checkpoint-keep", checkpoint.DefaultKeep, "numbered checkpoints to retain (best-validation kept separately)")
	resume := flag.Bool("resume", false, "resume the seq2seq stage from the newest valid checkpoint")
	trainWorkers := flag.Int("train-workers", 0, "data-parallel training goroutines per batch (0 = GOMAXPROCS); results are bit-identical for any value")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	// Profiles must flush on every exit path (including the cooperative
	// interrupt exit), so exit() routes through flushProfiles rather than
	// relying on defers that os.Exit would skip.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuProfiling = true
	}
	memProfilePath = *memProfile

	var wl *workload.Workload
	var err error
	switch {
	case *in != "" && *csvIn:
		wl, err = loadCSV(*in)
	case *in != "":
		wl, err = workload.LoadFile(*in, *in)
	case *profile == "sdss":
		wl = synth.Generate(synth.SDSSProfile(), *seed)
	case *profile == "sqlshare":
		wl = synth.Generate(synth.SQLShareProfile(), *seed)
	default:
		fmt.Fprintln(os.Stderr, "need -in FILE or -profile sdss|sqlshare")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "qrec-train: -resume requires -checkpoint-dir")
		os.Exit(2)
	}

	prep := core.DefaultPrepConfig()
	prep.Seed = *seed
	ds, err := core.Prepare(wl, prep)
	if err != nil {
		fatal(err)
	}
	if *maxPairs > 0 && len(ds.Train) > *maxPairs {
		ds.Train = ds.Train[:*maxPairs]
	}
	fmt.Fprintf(os.Stderr, "prepared: %d train / %d val / %d test pairs, vocab %d, %d template classes\n",
		len(ds.Train), len(ds.Val), len(ds.Test), ds.Vocab.Size(), len(ds.Classes))

	cfg := core.DefaultTrainConfig(seq2seq.Arch(*arch))
	cfg.SeqAware = *seqAware
	cfg.FineTune = *fineTune
	cfg.SeqOpts.Epochs = *epochs
	cfg.ClsOpts.Epochs = *epochs
	cfg.Seed = *seed
	// Reproducibility: the training-loop RNG streams (shuffling, dropout)
	// are seeded from -seed explicitly, and the seed plus RNG position are
	// recorded in every checkpoint so -resume is deterministic.
	cfg.SeqOpts.Seed = *seed
	cfg.ClsOpts.Seed = *seed + 1
	// Worker count is a pure throughput knob: gradients reduce in fixed
	// example order, so any value (including a mid-run change across
	// resume) yields bit-identical weights.
	cfg.SeqOpts.Workers = *trainWorkers
	cfg.ClsOpts.Workers = *trainWorkers
	mcfg := seq2seq.DefaultConfig(seq2seq.Arch(*arch), 0)
	mcfg.DModel = *dmodel
	mcfg.FFHidden = 2 * *dmodel
	cfg.Model = &mcfg
	cfg.SeqOpts.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	cfg.ClsOpts.Logf = cfg.SeqOpts.Logf

	// SIGINT/SIGTERM stop cooperatively: the loop finishes the current
	// batch, writes a final checkpoint, and the process exits 0. A second
	// signal kills immediately.
	var stop atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "qrec-train: signal received; finishing current batch and checkpointing (send again to kill)")
		stop.Store(true)
		<-sigc
		os.Exit(1)
	}()
	cfg.SeqOpts.Stop = stop.Load
	cfg.ClsOpts.Stop = stop.Load

	var mgr *checkpoint.Manager
	if *ckptDir != "" {
		mgr, err = checkpoint.NewManager(*ckptDir, *ckptKeep)
		if err != nil {
			fatal(err)
		}
		mgr.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		cfg.SeqOpts.Checkpoint = mgr.Hook()
		cfg.SeqOpts.CheckpointEvery = *ckptEvery
	}
	if *resume {
		st, path, err := mgr.LoadLatest()
		switch {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			fmt.Fprintf(os.Stderr, "qrec-train: no checkpoint in %s; starting fresh\n", *ckptDir)
		case err != nil:
			fatal(err)
		default:
			fmt.Fprintf(os.Stderr, "qrec-train: resuming from %s (epoch %d, batch %d)\n", path, st.Epoch, st.Batch)
			cfg.Resume = st
		}
	}

	rec, err := core.Train(ds, cfg)
	if errors.Is(err, core.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "qrec-train: %v\n", err)
		if mgr != nil {
			fmt.Fprintf(os.Stderr, "qrec-train: final checkpoint written to %s; continue with -resume\n", *ckptDir)
		}
		logComputeStats()
		exit(0)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "seq2seq: %d epochs in %s (best val %.4f)\n",
		rec.SeqResult.Epochs, rec.SeqResult.TrainTime.Round(1e6), rec.SeqResult.BestVal)
	fmt.Fprintf(os.Stderr, "classifier: %d epochs in %s\n",
		rec.ClsResult.Epochs, rec.ClsResult.TrainTime.Round(1e6))
	if rec.ClsResult.Interrupted {
		fmt.Fprintln(os.Stderr, "qrec-train: interrupted during classifier fine-tuning; saving partially fine-tuned classifier")
	}

	logComputeStats()
	if err := modeldir.Save(*out, rec); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saved model artifacts to %s\n", *out)
	flushProfiles()
}

var (
	cpuProfiling   bool
	memProfilePath string
)

// exit flushes any active profiles before terminating.
func exit(code int) {
	flushProfiles()
	os.Exit(code)
}

func flushProfiles() {
	if cpuProfiling {
		pprof.StopCPUProfile()
		cpuProfiling = false
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qrec-train:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "qrec-train:", err)
		}
	}
}

// logComputeStats reports kernel-dispatch and scratch-pool counters so a
// run's parallelism and allocation behavior are visible without a profiler.
func logComputeStats() {
	ks := tensor.Kernels()
	ps := tensor.Shared.Stats()
	fmt.Fprintf(os.Stderr, "kernels: %d serial / %d parallel GEMMs; pool: %d gets, %d puts, %d misses\n",
		ks.SerialGEMM, ks.ParallelGEMM, ps.Gets, ps.Puts, ps.Misses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrec-train:", err)
	exit(1)
}

// loadCSV opens and parses a CSV query log.
func loadCSV(path string) (*workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadCSV(f, path)
}
