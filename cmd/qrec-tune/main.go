// Command qrec-tune runs the hyper-parameter grid search of paper Section
// 6.2.4 on a workload and prints the validation-loss ranking. Tuning is a
// model-selection pass: it trains one small model per grid point on a
// subsample, so run qrec-train afterwards with the winning configuration.
//
// Usage:
//
//	qrec-tune -profile sdss -arch transformer -max-pairs 300 -epochs 3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/seq2seq"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/internal/tune"
	"repro/internal/workload"
)

func main() {
	in := flag.String("in", "", "workload file (JSONL, or CSV with -csv)")
	csvIn := flag.Bool("csv", false, "treat -in as CSV (session_id/start_time/sql header)")
	profile := flag.String("profile", "", "generate and tune on: sdss or sqlshare")
	arch := flag.String("arch", "transformer", "architecture: transformer, convs2s or gru")
	seed := flag.Int64("seed", 42, "seed")
	epochs := flag.Int("epochs", 3, "epochs per grid point")
	maxPairs := flag.Int("max-pairs", 300, "training pairs per grid point")
	flag.Parse()

	var wl *workload.Workload
	var err error
	switch {
	case *in != "" && *csvIn:
		wl, err = loadCSV(*in)
	case *in != "":
		wl, err = workload.LoadFile(*in, *in)
	case *profile == "sdss":
		wl = synth.Generate(synth.SDSSProfile(), *seed)
	case *profile == "sqlshare":
		wl = synth.Generate(synth.SQLShareProfile(), *seed)
	default:
		fmt.Fprintln(os.Stderr, "need -in FILE or -profile sdss|sqlshare")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	prep := core.DefaultPrepConfig()
	prep.Seed = *seed
	ds, err := core.Prepare(wl, prep)
	if err != nil {
		fatal(err)
	}
	trainPairs := ds.Train
	if len(trainPairs) > *maxPairs {
		trainPairs = trainPairs[:*maxPairs]
	}
	valPairs := ds.Val
	if len(valPairs) > *maxPairs/4 {
		valPairs = valPairs[:*maxPairs/4]
	}
	trainSet := core.SeqExamples(ds.Vocab, trainPairs, true)
	valSet := core.SeqExamples(ds.Vocab, valPairs, true)

	base := seq2seq.DefaultConfig(seq2seq.Arch(*arch), ds.Vocab.Size())
	opts := train.DefaultOptions()
	opts.Epochs = *epochs
	opts.Patience = 2
	opts.Clock = time.Now

	res, err := tune.Search(seq2seq.Arch(*arch), base, opts, tune.DefaultGrid(),
		trainSet, valSet, *seed, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
	if err != nil {
		fatal(err)
	}
	sort.Slice(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].ValLoss < res.Candidates[j].ValLoss
	})
	fmt.Printf("%-6s %-6s %-7s %-8s %-8s %10s\n", "heads", "d", "layers", "dropout", "lr", "val loss")
	for _, c := range res.Candidates {
		fmt.Printf("%-6d %-6d %-7d %-8.2f %-8.0e %10.4f\n",
			c.Model.Heads, c.Model.DModel, c.Model.Layers, c.Model.Dropout, c.Opts.LR, c.ValLoss)
	}
	b := res.Best
	fmt.Printf("\nbest: -arch %s -dmodel %d (heads %d, layers %d, dropout %.2f, lr %.0e)\n",
		*arch, b.Model.DModel, b.Model.Heads, b.Model.Layers, b.Model.Dropout, b.Opts.LR)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrec-tune:", err)
	os.Exit(1)
}

// loadCSV opens and parses a CSV query log.
func loadCSV(path string) (*workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadCSV(f, path)
}
