// qrec-lint runs the project's static-analysis suite (internal/lint):
// determinism, map-iteration-order, pool-lifecycle, float-equality and
// durability rules, built on the standard library's go/* packages alone.
//
// Usage:
//
//	qrec-lint [-list] [-rules detrand,maporder,...] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when findings survive the //lint:ignore filter, 2 on a
// load or usage error, 0 otherwise. -list prints findings but always
// exits 0 (triage mode, see `make lint-fix-list`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print findings but exit 0 (triage mode)")
	rules := flag.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	analyzers := lint.DefaultAnalyzers(loader.ModulePath())
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var kept []*lint.Analyzer
		for _, az := range analyzers {
			if want[az.Name] {
				kept = append(kept, az)
				delete(want, az.Name)
			}
		}
		for name := range want {
			fatal(fmt.Errorf("qrec-lint: unknown rule %q", name))
		}
		analyzers = kept
	}

	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	res := lint.Run(pkgs, analyzers)

	cwd, _ := os.Getwd()
	for _, d := range res.Diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "qrec-lint: %d finding(s) suppressed by //lint:ignore directives\n", res.Suppressed)
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "qrec-lint: %d finding(s) in %d package(s)\n", len(res.Diags), len(pkgs))
		if !*list {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
