// qrec-lint runs the project's static-analysis suite (internal/lint):
// determinism, map-iteration-order, pool-lifecycle, float-equality,
// durability and concurrency (lock balance, goroutine leaks, context
// threading, atomic mixing) rules, built on the standard library's go/*
// packages alone.
//
// Usage:
//
//	qrec-lint [-list] [-json] [-rules detrand,lockbal,...] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when findings survive the //lint:ignore filter, 2 on a
// load or usage error (including an unknown -rules name), 0 otherwise.
// -list prints findings but always exits 0 (triage mode, see `make
// lint-fix-list`). -json emits one JSON object per finding — kept and
// suppressed — on stdout for CI consumption.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// jsonFinding is the one-line-per-finding CI format: stable field names,
// suppressed findings included and marked so the ignore set is auditable
// from the same stream.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	list := flag.Bool("list", false, "print findings but exit 0 (triage mode)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line (includes suppressed findings)")
	rules := flag.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	analyzers := lint.DefaultAnalyzers(loader.ModulePath())
	if *rules != "" {
		var names []string
		for _, r := range strings.Split(*rules, ",") {
			names = append(names, strings.TrimSpace(r))
		}
		analyzers, err = lint.SelectAnalyzers(analyzers, names)
		if err != nil {
			fatal(fmt.Errorf("qrec-lint: %w", err))
		}
	}

	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	res := lint.Run(pkgs, analyzers)

	cwd, _ := os.Getwd()
	relativize := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		emit := func(diags []lint.Diagnostic, suppressed bool) {
			for _, d := range diags {
				f := jsonFinding{
					File:       relativize(d.Pos.Filename),
					Line:       d.Pos.Line,
					Col:        d.Pos.Column,
					Rule:       d.Rule,
					Msg:        d.Msg,
					Suppressed: suppressed,
				}
				if err := enc.Encode(f); err != nil {
					fatal(err)
				}
			}
		}
		emit(res.Diags, false)
		emit(res.SuppressedDiags, true)
	} else {
		for _, d := range res.Diags {
			d.Pos.Filename = relativize(d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "qrec-lint: %d finding(s) suppressed by //lint:ignore directives\n", res.Suppressed)
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "qrec-lint: %d finding(s) in %d package(s)\n", len(res.Diags), len(pkgs))
		if !*list {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
