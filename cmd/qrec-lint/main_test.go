package main

import (
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary re-exec as the real CLI: with
// QREC_LINT_MAIN=1 in the environment the process runs main() instead
// of the tests, so exit codes and stderr can be asserted end to end
// without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("QREC_LINT_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestUnknownRuleExitsTwo: a typo in -rules must fail with usage exit
// status 2 and list every valid rule, not silently lint with nothing.
func TestUnknownRuleExitsTwo(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-rules", "nosuchrule", "./...")
	cmd.Env = append(os.Environ(), "QREC_LINT_MAIN=1")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("want exit error, got err=%v, output:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2; output:\n%s", code, out)
	}
	text := string(out)
	for _, want := range []string{`unknown rule "nosuchrule"`, "valid rules:", "detrand", "poolsafe", "lockbal", "goleak", "ctxflow", "atomicmix"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestKnownRulesAccepted: the same subset syntax with real names must
// not hit the usage error (it runs over a single tiny package to stay
// fast; exit 0 = lint-clean, which main enforces for the real tree).
func TestKnownRulesAccepted(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-rules", "lockbal,ctxflow", "./cmd/qrec-lint")
	cmd.Env = append(os.Environ(), "QREC_LINT_MAIN=1")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("qrec-lint -rules lockbal,ctxflow failed: %v\n%s", err, out)
	}
}
