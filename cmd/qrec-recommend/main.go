// Command qrec-recommend loads a trained model directory and serves
// recommendations interactively: each input line is the user's current
// query Q_i; the tool prints the predicted next-query templates and the
// top-N fragments per type (paper Figure 3, steps 3-4).
//
// Usage:
//
//	echo "SELECT ra FROM PhotoObj" | qrec-recommend -model model/ -n 3
//	qrec-recommend -model model/ -strategy diverse-beam
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/modeldir"
	"repro/internal/sqlast"
)

func main() {
	modelDir := flag.String("model", "model", "model directory written by qrec-train")
	n := flag.Int("n", 3, "number of templates and fragments per type to recommend")
	strategy := flag.String("strategy", "beam", "N-fragments strategy: beam, diverse-beam or sampling")
	flag.Parse()

	rec, err := modeldir.Load(*modelDir, 0)
	if err != nil {
		fatal(err)
	}
	opts := core.DefaultNFragmentsOptions()
	switch *strategy {
	case "beam":
		opts.Strategy = core.StrategyBeam
	case "diverse-beam":
		opts.Strategy = core.StrategyDiverseBeam
	case "sampling":
		opts.Strategy = core.StrategySampling
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	interactive := isTerminalPrompt()
	if interactive {
		fmt.Fprintln(os.Stderr, "enter your current SQL query (one per line):")
	}
	for sc.Scan() {
		sql := sc.Text()
		if sql == "" {
			continue
		}
		tmpls, err := rec.NextTemplates(sql, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot parse input query: %v\n", err)
			continue
		}
		fmt.Println("-- predicted next-query templates:")
		for i, t := range tmpls {
			fmt.Printf("  %d. %s\n", i+1, t)
		}
		frags, err := rec.NextFragments(sql, *n, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println("-- predicted next-query fragments:")
		for _, kind := range sqlast.FragmentKinds {
			if len(frags[kind]) > 0 {
				fmt.Printf("  %-9s %v\n", kind.String()+":", frags[kind])
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func isTerminalPrompt() bool {
	info, err := os.Stdin.Stat()
	return err == nil && (info.Mode()&os.ModeCharDevice) != 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qrec-recommend:", err)
	os.Exit(1)
}
