package tune

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq2seq"
	"repro/internal/train"
)

func copyTask(rng *rand.Rand, n, vocab, maxLen int) []train.Example {
	out := make([]train.Example, n)
	for i := range out {
		l := 2 + rng.Intn(maxLen-2)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = 4 + rng.Intn(vocab-4)
		}
		out[i] = train.Example{Src: seq, Tgt: seq}
	}
	return out
}

func TestExpandCartesianProduct(t *testing.T) {
	base := seq2seq.DefaultConfig(seq2seq.Transformer, 16)
	opts := train.DefaultOptions()
	g := Grid{Heads: []int{2, 4}, DModel: []int{16, 32}, LR: []float64{1e-3}}
	cands := expand(base, opts, g)
	if len(cands) != 4 {
		t.Fatalf("candidates: %d", len(cands))
	}
	seen := map[[2]int]bool{}
	for _, c := range cands {
		seen[[2]int{c.Model.Heads, c.Model.DModel}] = true
		if c.Opts.LR != 1e-3 {
			t.Errorf("lr not applied: %v", c.Opts.LR)
		}
		if c.Model.FFHidden == 0 {
			t.Error("ffhidden not derived")
		}
	}
	if len(seen) != 4 {
		t.Errorf("duplicate grid points: %v", seen)
	}
}

func TestExpandPinsEmptyKnobs(t *testing.T) {
	base := seq2seq.DefaultConfig(seq2seq.Transformer, 16)
	base.Dropout = 0.25
	cands := expand(base, train.DefaultOptions(), Grid{})
	if len(cands) != 1 {
		t.Fatalf("empty grid should yield base only: %d", len(cands))
	}
	if cands[0].Model.Dropout != 0.25 {
		t.Error("base dropout lost")
	}
}

func TestSearchPicksLowestValLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rng := rand.New(rand.NewSource(4))
	data := copyTask(rng, 40, 12, 6)
	base := seq2seq.DefaultConfig(seq2seq.Transformer, 12)
	base.DModel = 16
	base.FFHidden = 16
	base.Dropout = 0
	opts := train.DefaultOptions()
	opts.Epochs = 3
	opts.Patience = 0
	// A grid where one LR is clearly broken (0) and one works.
	grid := Grid{LR: []float64{3e-3, 1e-8}}
	res, err := Search(seq2seq.Transformer, base, opts, grid, data[:30], data[30:], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates: %d", len(res.Candidates))
	}
	if res.Best.Opts.LR != 3e-3 {
		t.Errorf("picked lr %v; losses: %v vs %v",
			res.Best.Opts.LR, res.Candidates[0].ValLoss, res.Candidates[1].ValLoss)
	}
	if math.IsInf(res.Best.ValLoss, 1) {
		t.Error("best loss never set")
	}
}

func TestSearchSkipsIncompatibleHeads(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rng := rand.New(rand.NewSource(5))
	data := copyTask(rng, 20, 12, 5)
	base := seq2seq.DefaultConfig(seq2seq.Transformer, 12)
	base.FFHidden = 16
	opts := train.DefaultOptions()
	opts.Epochs = 1
	// d=15 is not divisible by 2 or 4: all points invalid except d=16.
	grid := Grid{Heads: []int{2}, DModel: []int{15, 16}}
	res, err := Search(seq2seq.Transformer, base, opts, grid, data[:15], data[15:], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 || res.Best.Model.DModel != 16 {
		t.Errorf("incompatible grid point not skipped: %d candidates", len(res.Candidates))
	}
}

func TestSearchEmptySets(t *testing.T) {
	base := seq2seq.DefaultConfig(seq2seq.Transformer, 8)
	if _, err := Search(seq2seq.Transformer, base, train.DefaultOptions(), Grid{}, nil, nil, 1, nil); err == nil {
		t.Error("expected error")
	}
}
