// Package tune implements the hyper-parameter search of paper Section
// 6.2.4: a grid over architecture and training knobs, scored by best
// validation loss with early stopping, tuned separately per workload
// ("since our workload analysis shows many differences in the SDSS and
// SQLShare datasets, we separately tuned the hyper-parameters for each
// dataset").
package tune

import (
	"fmt"
	"math"

	"repro/internal/seq2seq"
	"repro/internal/train"
)

// Grid enumerates candidate values per knob. Empty slices pin the knob to
// the base configuration's value. The paper's ranges (heads in [8,16],
// hidden in [512,1024], layers in [2,12], batch in [16,64], dropout in
// [0, 0.3], lr in [1e-6, 1e-4]) scale down to CPU-sized defaults here.
type Grid struct {
	Heads    []int
	DModel   []int
	Layers   []int
	Dropout  []float64
	LR       []float64
	Batch    []int
	FFHidden []int
}

// DefaultGrid returns a small CPU-feasible grid mirroring the paper's
// tuned dimensions.
func DefaultGrid() Grid {
	return Grid{
		Heads:   []int{2, 4},
		DModel:  []int{32, 48},
		Layers:  []int{1, 2},
		Dropout: []float64{0.0, 0.1},
		LR:      []float64{1e-3, 3e-3},
	}
}

// Candidate is one grid point with its evaluation outcome.
type Candidate struct {
	Model   seq2seq.Config
	Opts    train.Options
	ValLoss float64
	Epochs  int
}

// Result reports the search.
type Result struct {
	Best       Candidate
	Candidates []Candidate
}

// Search trains one model per grid point and returns the candidate with
// the lowest best-validation loss. baseModel/baseOpts supply the pinned
// values; the training sets should be small slices — tuning is a model
// -selection pass, not the final fit.
func Search(arch seq2seq.Arch, baseModel seq2seq.Config, baseOpts train.Options,
	grid Grid, trainSet, valSet []train.Example, seed int64,
	logf func(string, ...any)) (*Result, error) {

	if len(trainSet) == 0 || len(valSet) == 0 {
		return nil, fmt.Errorf("tune: empty train or validation set")
	}
	res := &Result{Best: Candidate{ValLoss: math.Inf(1)}}
	for _, cand := range expand(baseModel, baseOpts, grid) {
		cand.Model.Arch = arch
		// d_model must divide by heads; skip incompatible grid points.
		if cand.Model.Arch == seq2seq.Transformer && cand.Model.DModel%cand.Model.Heads != 0 {
			continue
		}
		m, err := seq2seq.New(cand.Model, seed)
		if err != nil {
			return nil, err
		}
		tr, err := train.Seq2Seq(m, trainSet, valSet, cand.Opts)
		if err != nil {
			return nil, err
		}
		cand.ValLoss = tr.BestVal
		cand.Epochs = tr.Epochs
		res.Candidates = append(res.Candidates, cand)
		if logf != nil {
			logf("tune: heads=%d d=%d layers=%d drop=%.2f lr=%.0e -> val %.4f (%d epochs)",
				cand.Model.Heads, cand.Model.DModel, cand.Model.Layers,
				cand.Model.Dropout, cand.Opts.LR, cand.ValLoss, cand.Epochs)
		}
		if cand.ValLoss < res.Best.ValLoss {
			res.Best = cand
		}
	}
	if len(res.Candidates) == 0 {
		return nil, fmt.Errorf("tune: grid produced no valid candidates")
	}
	return res, nil
}

// expand builds the cartesian product of the grid over the base configs.
func expand(baseModel seq2seq.Config, baseOpts train.Options, g Grid) []Candidate {
	orDefaultI := func(xs []int, d int) []int {
		if len(xs) == 0 {
			return []int{d}
		}
		return xs
	}
	orDefaultF := func(xs []float64, d float64) []float64 {
		if len(xs) == 0 {
			return []float64{d}
		}
		return xs
	}
	var out []Candidate
	for _, heads := range orDefaultI(g.Heads, baseModel.Heads) {
		for _, d := range orDefaultI(g.DModel, baseModel.DModel) {
			for _, layers := range orDefaultI(g.Layers, baseModel.Layers) {
				for _, drop := range orDefaultF(g.Dropout, baseModel.Dropout) {
					for _, lr := range orDefaultF(g.LR, baseOpts.LR) {
						for _, batch := range orDefaultI(g.Batch, baseOpts.BatchSize) {
							for _, ff := range orDefaultI(g.FFHidden, 0) {
								mc := baseModel
								mc.Heads = heads
								mc.DModel = d
								mc.Layers = layers
								mc.Dropout = drop
								if ff > 0 {
									mc.FFHidden = ff
								} else if mc.FFHidden == 0 {
									mc.FFHidden = 2 * d
								}
								oc := baseOpts
								oc.LR = lr
								oc.BatchSize = batch
								out = append(out, Candidate{Model: mc, Opts: oc})
							}
						}
					}
				}
			}
		}
	}
	return out
}
