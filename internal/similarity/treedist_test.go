package similarity

import (
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
)

func tree(t *testing.T, sql string) *Tree {
	t.Helper()
	s, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return TreeFromQuery(s)
}

func TestIdenticalStructureZeroDistance(t *testing.T) {
	// Different fragments, same structure: distance must be 0.
	a := tree(t, "SELECT ra FROM PhotoObj WHERE dec > 1")
	b := tree(t, "SELECT z FROM SpecObj WHERE plate > 300")
	if d := EditDistance(a, b); d != 0 {
		t.Errorf("structural twins distance: %d", d)
	}
	if Normalized(a, b) != 0 {
		t.Error("normalized should be 0")
	}
}

func TestSelfDistanceZero(t *testing.T) {
	a := tree(t, "SELECT TOP 5 a, COUNT(*) FROM t JOIN u ON t.id = u.id GROUP BY a ORDER BY COUNT(*) DESC")
	if d := EditDistance(a, a); d != 0 {
		t.Errorf("self distance: %d", d)
	}
}

func TestSingleInsertionCostsOne(t *testing.T) {
	a := tree(t, "SELECT a FROM t")
	b := tree(t, "SELECT a, b FROM t")
	if d := EditDistance(a, b); d != 1 {
		t.Errorf("one extra column: distance %d", d)
	}
}

func TestDistinctCostsOne(t *testing.T) {
	a := tree(t, "SELECT a FROM t")
	b := tree(t, "SELECT DISTINCT a FROM t")
	if d := EditDistance(a, b); d != 1 {
		t.Errorf("distinct: distance %d", d)
	}
}

func TestSymmetry(t *testing.T) {
	queries := []string{
		"SELECT a FROM t",
		"SELECT a, b FROM t WHERE c > 1",
		"SELECT COUNT(*) FROM t GROUP BY a",
		"SELECT TOP 10 a FROM t JOIN u ON t.id = u.id ORDER BY a DESC",
	}
	for i := range queries {
		for j := range queries {
			a, b := tree(t, queries[i]), tree(t, queries[j])
			if EditDistance(a, b) != EditDistance(b, a) {
				t.Errorf("asymmetric: %q vs %q", queries[i], queries[j])
			}
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	qs := []string{
		"SELECT a FROM t",
		"SELECT a, b FROM t WHERE c > 1",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
	}
	trees := make([]*Tree, len(qs))
	for i, q := range qs {
		trees[i] = tree(t, q)
	}
	for i := range trees {
		for j := range trees {
			for k := range trees {
				dij := EditDistance(trees[i], trees[j])
				dik := EditDistance(trees[i], trees[k])
				dkj := EditDistance(trees[k], trees[j])
				if dij > dik+dkj {
					t.Errorf("triangle violated: d(%d,%d)=%d > %d+%d", i, j, dij, dik, dkj)
				}
			}
		}
	}
}

// TestPaperExample2: structural similarity must rank a structurally-twin
// query (different table) closer than a same-table query with different
// structure — the exact scenario of the paper's Example 2 (Q4 vs Q5 vs Q6).
func TestPaperExample2(t *testing.T) {
	// Q6-like: nested top-k over SpecObj.
	q6 := tree(t, `SELECT TOP 10 z FROM SpecObj WHERE z IN (SELECT z FROM SpecPhoto WHERE z > 1) ORDER BY z DESC`)
	// Q5-like: same structure, different table (SpecPhoto vs SpecObj).
	q5 := tree(t, `SELECT TOP 10 mag FROM PhotoTag WHERE mag IN (SELECT mag FROM Neighbors WHERE mag > 2) ORDER BY mag DESC`)
	// Q4-like: same tables as Q6 but flat structure.
	q4 := tree(t, `SELECT z, ra, dec FROM SpecObj`)
	dStruct := EditDistance(q6, q5)
	dFlat := EditDistance(q6, q4)
	if dStruct >= dFlat {
		t.Errorf("structural twin should be closer: twin %d vs flat %d", dStruct, dFlat)
	}
}

func TestDistanceGrowsWithDivergence(t *testing.T) {
	base := tree(t, "SELECT a FROM t")
	near := tree(t, "SELECT a FROM t WHERE b > 1")
	far := tree(t, "SELECT COUNT(*), a FROM t JOIN u ON t.id = u.id WHERE b > 1 AND c LIKE 'x' GROUP BY a ORDER BY a DESC")
	dn, df := EditDistance(base, near), EditDistance(base, far)
	if dn >= df {
		t.Errorf("distance ordering: near %d far %d", dn, df)
	}
}

func TestTreeSize(t *testing.T) {
	a := tree(t, "SELECT a FROM t")
	// SELECT, SELECT-LIST, Column, FROM, Table = 5 nodes.
	if a.Size() != 5 {
		t.Errorf("size: %d", a.Size())
	}
}

// Property: distance is non-negative and bounded by the sum of sizes.
func TestDistanceBoundsProperty(t *testing.T) {
	pool := []string{
		"SELECT a FROM t",
		"SELECT * FROM u WHERE x = 1",
		"SELECT COUNT(*) FROM v GROUP BY y",
		"SELECT TOP 3 a, b FROM t ORDER BY a",
		"SELECT a FROM t WHERE b IN (SELECT b FROM u)",
	}
	trees := make([]*Tree, len(pool))
	var err error
	for i, q := range pool {
		s, perr := sqlparse.Parse(q)
		if perr != nil {
			t.Fatal(perr)
		}
		trees[i] = TreeFromQuery(s)
	}
	_ = err
	f := func(i, j uint8) bool {
		a := trees[int(i)%len(trees)]
		b := trees[int(j)%len(trees)]
		d := EditDistance(a, b)
		return d >= 0 && d <= a.Size()+b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
