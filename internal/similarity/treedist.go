// Package similarity implements structural query-similarity measures.
//
// The paper's Example 2 argues that fragment-based similarity (QueRIE's
// table/column vectors) can rank queries badly when what matters is the
// *structure*: two nested top-k queries over different tables are closer
// in intent than two flat queries sharing a table. This package provides
// the structural complement: Zhang-Shasha tree edit distance over query
// ASTs with fragment-insensitive labels (the same abstraction as
// Template(Q)), plus a cheaper template-token Jaccard similarity. The
// related session-recommendation work the paper cites ([34]) uses exactly
// tree edit distance over session trees.
package similarity

import (
	"repro/internal/sqlast"
)

// node is a labelled ordered tree distilled from a query AST. Fragment
// identities (table/column/function names, literal values) are abstracted
// to placeholder labels so the distance measures structure only.
type node struct {
	label    string
	children []*node
}

// TreeFromQuery distills a parsed query into the labelled tree used by
// EditDistance.
func TreeFromQuery(s *sqlast.SelectStmt) *Tree {
	return &Tree{root: buildSelect(s)}
}

// Tree is an immutable labelled ordered tree.
type Tree struct{ root *node }

// Size returns the number of nodes.
func (t *Tree) Size() int { return countNodes(t.root) }

func countNodes(n *node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.children {
		total += countNodes(c)
	}
	return total
}

func buildSelect(s *sqlast.SelectStmt) *node {
	if s == nil {
		return nil
	}
	root := &node{label: "SELECT"}
	if s.Distinct {
		root.children = append(root.children, &node{label: "DISTINCT"})
	}
	if s.Top != nil {
		root.children = append(root.children, &node{label: "TOP"})
	}
	sel := &node{label: "SELECT-LIST"}
	for _, it := range s.Columns {
		sel.children = append(sel.children, buildExpr(it.Expr))
	}
	root.children = append(root.children, sel)
	if s.Into != nil {
		root.children = append(root.children, &node{label: "INTO"})
	}
	if len(s.From) > 0 {
		from := &node{label: "FROM"}
		for _, te := range s.From {
			from.children = append(from.children, buildTable(te))
		}
		root.children = append(root.children, from)
	}
	if s.Where != nil {
		root.children = append(root.children, &node{label: "WHERE", children: []*node{buildExpr(s.Where)}})
	}
	if len(s.GroupBy) > 0 {
		g := &node{label: "GROUPBY"}
		for _, e := range s.GroupBy {
			g.children = append(g.children, buildExpr(e))
		}
		root.children = append(root.children, g)
	}
	if s.Having != nil {
		root.children = append(root.children, &node{label: "HAVING", children: []*node{buildExpr(s.Having)}})
	}
	if len(s.OrderBy) > 0 {
		o := &node{label: "ORDERBY"}
		for _, it := range s.OrderBy {
			lbl := "ASC"
			if it.Desc {
				lbl = "DESC"
			}
			o.children = append(o.children, &node{label: lbl, children: []*node{buildExpr(it.Expr)}})
		}
		root.children = append(root.children, o)
	}
	if s.SetOp != nil {
		root.children = append(root.children, &node{label: s.SetOp.Op, children: []*node{buildSelect(s.SetOp.Right)}})
	}
	return root
}

func buildTable(te sqlast.TableExpr) *node {
	switch t := te.(type) {
	case *sqlast.TableRef:
		return &node{label: "Table"}
	case *sqlast.SubqueryRef:
		return &node{label: "Derived", children: []*node{buildSelect(t.Select)}}
	case *sqlast.JoinExpr:
		return &node{label: "JOIN-" + t.Type, children: []*node{
			buildTable(t.Left), buildTable(t.Right), buildExpr(t.On),
		}}
	default:
		return &node{label: "Table"}
	}
}

func buildExpr(e sqlast.Expr) *node {
	switch x := e.(type) {
	case nil:
		return &node{label: "NIL"}
	case *sqlast.ColumnRef:
		return &node{label: "Column"}
	case *sqlast.Star:
		return &node{label: "Star"}
	case *sqlast.NumberLit, *sqlast.StringLit, *sqlast.NullLit:
		return &node{label: "Literal"}
	case *sqlast.FuncCall:
		n := &node{label: "Function"}
		for _, a := range x.Args {
			n.children = append(n.children, buildExpr(a))
		}
		return n
	case *sqlast.CastExpr:
		return &node{label: "Function", children: []*node{buildExpr(x.Expr)}}
	case *sqlast.BinaryExpr:
		return &node{label: "OP-" + x.Op, children: []*node{buildExpr(x.L), buildExpr(x.R)}}
	case *sqlast.UnaryExpr:
		return &node{label: "OP-" + x.Op, children: []*node{buildExpr(x.X)}}
	case *sqlast.ParenExpr:
		return buildExpr(x.X)
	case *sqlast.InExpr:
		n := &node{label: "IN"}
		n.children = append(n.children, buildExpr(x.X))
		if x.Select != nil {
			n.children = append(n.children, buildSelect(x.Select))
		} else {
			for _, v := range x.List {
				n.children = append(n.children, buildExpr(v))
			}
		}
		return n
	case *sqlast.ExistsExpr:
		return &node{label: "EXISTS", children: []*node{buildSelect(x.Select)}}
	case *sqlast.BetweenExpr:
		return &node{label: "BETWEEN", children: []*node{buildExpr(x.X), buildExpr(x.Lo), buildExpr(x.Hi)}}
	case *sqlast.LikeExpr:
		return &node{label: "LIKE", children: []*node{buildExpr(x.X), buildExpr(x.Pattern)}}
	case *sqlast.IsNullExpr:
		return &node{label: "ISNULL", children: []*node{buildExpr(x.X)}}
	case *sqlast.CaseExpr:
		n := &node{label: "CASE"}
		if x.Operand != nil {
			n.children = append(n.children, buildExpr(x.Operand))
		}
		for _, w := range x.Whens {
			n.children = append(n.children, &node{label: "WHEN", children: []*node{buildExpr(w.Cond), buildExpr(w.Then)}})
		}
		if x.Else != nil {
			n.children = append(n.children, &node{label: "ELSE", children: []*node{buildExpr(x.Else)}})
		}
		return n
	case *sqlast.SubqueryExpr:
		return &node{label: "Subquery", children: []*node{buildSelect(x.Select)}}
	default:
		return &node{label: "EXPR"}
	}
}

// EditDistance computes the Zhang-Shasha ordered tree edit distance
// between two trees with unit insert/delete/rename costs.
func EditDistance(a, b *Tree) int {
	ta := flatten(a.root)
	tb := flatten(b.root)
	if len(ta.labels) == 0 {
		return len(tb.labels)
	}
	if len(tb.labels) == 0 {
		return len(ta.labels)
	}
	td := make([][]int, len(ta.labels)+1)
	for i := range td {
		td[i] = make([]int, len(tb.labels)+1)
	}
	for _, i := range ta.keyroots {
		for _, j := range tb.keyroots {
			treeDist(ta, tb, i, j, td)
		}
	}
	return td[len(ta.labels)][len(tb.labels)]
}

// flat holds a tree in Zhang-Shasha post-order form.
type flat struct {
	labels   []string // post-order labels, 1-based in the algorithm
	lmld     []int    // leftmost leaf descendant index per node (1-based)
	keyroots []int
}

func flatten(root *node) *flat {
	f := &flat{}
	var walk func(n *node) int // returns lmld of n
	walk = func(n *node) int {
		lm := 0
		for i, c := range n.children {
			l := walk(c)
			if i == 0 {
				lm = l
			}
		}
		f.labels = append(f.labels, n.label)
		idx := len(f.labels) // 1-based
		if len(n.children) == 0 {
			lm = idx
		}
		f.lmld = append(f.lmld, lm)
		return lm
	}
	if root != nil {
		walk(root)
	}
	// keyroots: nodes with no left sibling on the path (i.e. nodes whose
	// lmld differs from their parent chain) — standard definition: k is a
	// keyroot if there is no k' > k with lmld(k') == lmld(k).
	seen := map[int]bool{}
	for i := len(f.labels); i >= 1; i-- {
		if !seen[f.lmld[i-1]] {
			f.keyroots = append([]int{i}, f.keyroots...)
			seen[f.lmld[i-1]] = true
		}
	}
	return f
}

func treeDist(ta, tb *flat, i, j int, td [][]int) {
	li, lj := ta.lmld[i-1], tb.lmld[j-1]
	m := i - li + 2
	n := j - lj + 2
	fd := make([][]int, m)
	for r := range fd {
		fd[r] = make([]int, n)
	}
	for r := 1; r < m; r++ {
		fd[r][0] = fd[r-1][0] + 1
	}
	for c := 1; c < n; c++ {
		fd[0][c] = fd[0][c-1] + 1
	}
	for r := 1; r < m; r++ {
		for c := 1; c < n; c++ {
			ri := li + r - 1 // node index in ta
			cj := lj + c - 1 // node index in tb
			if ta.lmld[ri-1] == li && tb.lmld[cj-1] == lj {
				rename := 0
				if ta.labels[ri-1] != tb.labels[cj-1] {
					rename = 1
				}
				fd[r][c] = min3(
					fd[r-1][c]+1,
					fd[r][c-1]+1,
					fd[r-1][c-1]+rename,
				)
				td[ri][cj] = fd[r][c]
			} else {
				fd[r][c] = min3(
					fd[r-1][c]+1,
					fd[r][c-1]+1,
					fd[ta.lmld[ri-1]-li][tb.lmld[cj-1]-lj]+td[ri][cj],
				)
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Normalized returns the edit distance scaled into [0, 1] by the larger
// tree size (0 = identical structure, 1 = nothing shared).
func Normalized(a, b *Tree) float64 {
	max := a.Size()
	if b.Size() > max {
		max = b.Size()
	}
	if max == 0 {
		return 0
	}
	return float64(EditDistance(a, b)) / float64(max)
}
