package train

import (
	"runtime"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/seq2seq"
)

// fullRunWithWorkers trains the standard resume fixture end to end with
// the given data-parallel worker count.
func fullRunWithWorkers(t *testing.T, workers int) (*Result, seq2seq.Model) {
	t.Helper()
	trainSet, valSet := resumeData()
	m := resumeModel(t)
	opts := resumeOpts()
	opts.Workers = workers
	res, err := Seq2Seq(m, trainSet, valSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

// TestParallelBitIdenticalAcrossWorkerCounts is the data-parallel
// determinism contract: the worker count is a pure throughput knob.
// Per-example gradients land in per-example buffers and are reduced in
// ascending example order, and teacher-forcing RNG seeds are pre-split
// per example, so every worker count must produce bit-identical losses
// and weights.
func TestParallelBitIdenticalAcrossWorkerCounts(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force real goroutine interleaving
	defer runtime.GOMAXPROCS(prev)

	refRes, refModel := fullRunWithWorkers(t, 1)
	refParams := paramData(refModel)
	for _, workers := range []int{2, 3, 7} {
		res, m := fullRunWithWorkers(t, workers)
		assertSameFloats(t, "train losses", res.TrainLosses, refRes.TrainLosses)
		assertSameFloats(t, "val losses", res.ValLosses, refRes.ValLosses)
		for name, got := range paramData(m) {
			assertSameFloats(t, "param "+name, got, refParams[name])
		}
	}
}

// TestResumeAcrossWorkerCounts: the worker count is deliberately not part
// of the checkpoint, so a run interrupted under one worker count and
// resumed under another must still match a serial uninterrupted run
// bit for bit.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	trainSet, valSet := resumeData()

	m1 := resumeModel(t)
	var last *checkpoint.TrainState
	opts := resumeOpts()
	opts.Workers = 4
	opts.Checkpoint = func(st *checkpoint.TrainState) error { last = st; return nil }
	opts.Stop = stopAfterPolls(10)
	res1, err := Seq2Seq(m1, trainSet, valSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Interrupted || last == nil {
		t.Fatal("interruption fixture did not trigger")
	}

	m2 := resumeModel(t)
	resumeWith := resumeOpts()
	resumeWith.Workers = 2
	res2, err := Resume(m2, trainSet, valSet, resumeWith, last)
	if err != nil {
		t.Fatal(err)
	}

	fullRes, fullModel := fullRunWithWorkers(t, 1)
	assertEquivalent(t, res2, fullRes, m2, fullModel)
}

// TestEvaluateDeterministicAcrossParallelism: Evaluate fans out across
// GOMAXPROCS but sums losses in example-index order, so its value must
// not depend on scheduling.
func TestEvaluateDeterministicAcrossParallelism(t *testing.T) {
	trainSet, _ := resumeData()
	m := resumeModel(t)

	prev := runtime.GOMAXPROCS(1)
	serial := Evaluate(m, trainSet, 16)
	runtime.GOMAXPROCS(8)
	parallel := Evaluate(m, trainSet, 16)
	runtime.GOMAXPROCS(prev)

	if serial != parallel {
		t.Fatalf("Evaluate: serial %v != parallel %v", serial, parallel)
	}
}
