package train

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/seq2seq"
	"repro/internal/tensor"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w - 3)^2 elementwise.
	w := autograd.NewParam(tensor.FromSlice(1, 2, []float64{10, -5}))
	params := []nn.Param{{Name: "w", V: w}}
	opt := NewAdam(0.1)
	target := autograd.NewConst(tensor.FromSlice(1, 2, []float64{3, 3}))
	for i := 0; i < 500; i++ {
		diff := autograd.Add(w, autograd.Scale(target, -1))
		loss := autograd.Mean(autograd.Mul(diff, diff))
		autograd.Backward(loss)
		opt.Step(params)
	}
	for _, v := range w.T.Data {
		if math.Abs(v-3) > 0.01 {
			t.Errorf("adam did not converge: %v", w.T.Data)
		}
	}
}

func TestAdamZeroesGradAfterStep(t *testing.T) {
	w := autograd.NewParam(tensor.FromSlice(1, 1, []float64{1}))
	params := []nn.Param{{Name: "w", V: w}}
	autograd.Backward(autograd.Mean(autograd.Mul(w, w)))
	if w.Grad.Data[0] == 0 {
		t.Fatal("no grad")
	}
	NewAdam(0.01).Step(params)
	if w.Grad.Data[0] != 0 {
		t.Error("step did not zero grad")
	}
}

func TestClipGradNorm(t *testing.T) {
	w := autograd.NewParam(tensor.FromSlice(1, 2, []float64{0, 0}))
	w.Grad.Data[0] = 3
	w.Grad.Data[1] = 4
	params := []nn.Param{{Name: "w", V: w}}
	norm := ClipGradNorm(params, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm: %f", norm)
	}
	after := math.Sqrt(w.Grad.Data[0]*w.Grad.Data[0] + w.Grad.Data[1]*w.Grad.Data[1])
	if math.Abs(after-1) > 1e-9 {
		t.Errorf("post-clip norm: %f", after)
	}
	// Below the threshold: untouched.
	w.Grad.Data[0], w.Grad.Data[1] = 0.1, 0
	ClipGradNorm(params, 1.0)
	if w.Grad.Data[0] != 0.1 {
		t.Error("clip modified small gradient")
	}
}

// copyTask builds a dataset where the target equals the source — any
// functioning seq2seq model must drive this loss near zero quickly.
func copyTask(rng *rand.Rand, n, vocab, maxLen int) []Example {
	out := make([]Example, n)
	for i := range out {
		l := 2 + rng.Intn(maxLen-2)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = 4 + rng.Intn(vocab-4)
		}
		out[i] = Example{Src: seq, Tgt: seq}
	}
	return out
}

func TestSeq2SeqLearnsCopyTask(t *testing.T) {
	for _, arch := range []seq2seq.Arch{seq2seq.Transformer, seq2seq.ConvS2S, seq2seq.GRU} {
		cfg := seq2seq.DefaultConfig(arch, 16)
		cfg.DModel = 24
		cfg.FFHidden = 48
		cfg.Dropout = 0
		m, err := seq2seq.New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		data := copyTask(rng, 60, 16, 8)
		opts := DefaultOptions()
		opts.Epochs = 10
		opts.Patience = 0
		opts.LR = 5e-3
		opts.Clock = time.Now // timing telemetry is caller-injected; see Options.Clock
		res, err := Seq2Seq(m, data[:50], data[50:], opts)
		if err != nil {
			t.Fatal(err)
		}
		first, last := res.TrainLosses[0], res.TrainLosses[len(res.TrainLosses)-1]
		if last >= first*0.6 {
			t.Errorf("%s: loss did not drop on copy task: %.3f -> %.3f", arch, first, last)
		}
		if res.BestVal >= res.ValLosses[0] && len(res.ValLosses) > 1 {
			t.Errorf("%s: val loss never improved: %v", arch, res.ValLosses)
		}
		if res.TrainTime <= 0 {
			t.Error("train time not recorded")
		}
	}
}

func TestSeq2SeqEmptyTrainSet(t *testing.T) {
	m, _ := seq2seq.New(seq2seq.DefaultConfig(seq2seq.Transformer, 8), 1)
	if _, err := Seq2Seq(m, nil, nil, DefaultOptions()); err == nil {
		t.Error("expected error")
	}
}

func TestEarlyStopping(t *testing.T) {
	cfg := seq2seq.DefaultConfig(seq2seq.Transformer, 12)
	cfg.DModel = 16
	cfg.FFHidden = 16
	cfg.Dropout = 0
	m, _ := seq2seq.New(cfg, 1)
	rng := rand.New(rand.NewSource(3))
	// Validation set is random noise unrelated to training: val loss
	// stops improving fast, so patience must cut the run short.
	trainData := copyTask(rng, 20, 12, 6)
	valData := make([]Example, 10)
	for i := range valData {
		valData[i] = Example{
			Src: []int{4 + rng.Intn(8), 4 + rng.Intn(8)},
			Tgt: []int{4 + rng.Intn(8), 4 + rng.Intn(8), 4 + rng.Intn(8)},
		}
	}
	opts := DefaultOptions()
	opts.Epochs = 50
	opts.Patience = 2
	res, err := Seq2Seq(m, trainData, valData, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 50 {
		t.Errorf("early stopping never fired: ran %d epochs", res.Epochs)
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	m, _ := seq2seq.New(seq2seq.DefaultConfig(seq2seq.Transformer, 8), 1)
	if !math.IsNaN(Evaluate(m, nil, 10)) {
		t.Error("expected NaN for empty set")
	}
}

func TestClipTruncates(t *testing.T) {
	ex := Example{Src: []int{1, 2, 3, 4, 5}, Tgt: []int{6, 7, 8}}
	c := clip(ex, 3)
	if len(c.Src) != 3 || len(c.Tgt) != 3 {
		t.Errorf("clip: %v", c)
	}
	// Original untouched.
	if len(ex.Src) != 5 {
		t.Error("clip mutated input")
	}
	if c2 := clip(ex, 0); len(c2.Src) != 5 {
		t.Error("maxLen=0 should disable clipping")
	}
}
