package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/checkpoint"
	"repro/internal/seq2seq"
)

// resumeModel builds a small transformer with dropout enabled, so the
// equivalence tests exercise the RNG-dependent paths (shuffling AND
// dropout draws must replay identically across an interruption).
func resumeModel(t *testing.T) seq2seq.Model {
	t.Helper()
	cfg := seq2seq.DefaultConfig(seq2seq.Transformer, 16)
	cfg.DModel = 16
	cfg.FFHidden = 32
	cfg.Dropout = 0.1
	m, err := seq2seq.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func resumeData() ([]Example, []Example) {
	rng := rand.New(rand.NewSource(2))
	data := copyTask(rng, 60, 16, 8)
	return data[:50], data[50:]
}

func resumeOpts() Options {
	opts := DefaultOptions()
	opts.Epochs = 5
	opts.Patience = 0
	opts.Seed = 9
	return opts
}

// stopAfterPolls returns a Stop hook that fires on the nth poll. The loop
// polls once per mid-epoch batch boundary and once per epoch end, so the
// poll index selects the interruption point deterministically.
func stopAfterPolls(n int) func() bool {
	calls := 0
	return func() bool {
		calls++
		return calls >= n
	}
}

func paramData(m seq2seq.Model) map[string][]float64 {
	out := map[string][]float64{}
	for _, p := range m.Params() {
		out[p.Name] = append([]float64(nil), p.V.T.Data...)
	}
	return out
}

func assertSameFloats(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d (%v vs %v)", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s[%d]: %v != %v", what, i, got[i], want[i])
		}
	}
}

// assertEquivalent checks a resumed run reproduced the uninterrupted
// run's full trajectory and final weights bit-for-bit.
func assertEquivalent(t *testing.T, resumed, uninterrupted *Result, mResumed, mFull seq2seq.Model) {
	t.Helper()
	assertSameFloats(t, "train losses", resumed.TrainLosses, uninterrupted.TrainLosses)
	assertSameFloats(t, "val losses", resumed.ValLosses, uninterrupted.ValLosses)
	if resumed.BestVal != uninterrupted.BestVal || resumed.BestEpoch != uninterrupted.BestEpoch {
		t.Errorf("best: resumed (%v, %d) vs uninterrupted (%v, %d)",
			resumed.BestVal, resumed.BestEpoch, uninterrupted.BestVal, uninterrupted.BestEpoch)
	}
	if resumed.Epochs != uninterrupted.Epochs {
		t.Errorf("epochs: %d vs %d", resumed.Epochs, uninterrupted.Epochs)
	}
	if resumed.Interrupted {
		t.Error("resumed run still marked interrupted")
	}
	full := paramData(mFull)
	for name, got := range paramData(mResumed) {
		assertSameFloats(t, "param "+name, got, full[name])
	}
}

// runInterruptedThenResume interrupts a fresh run at the given poll
// index, then resumes from the captured checkpoint on a brand-new model,
// returning the resumed result and model.
func runInterruptedThenResume(t *testing.T, stopPoll int) (*Result, seq2seq.Model) {
	t.Helper()
	trainSet, valSet := resumeData()

	m1 := resumeModel(t)
	var last *checkpoint.TrainState
	opts := resumeOpts()
	opts.Checkpoint = func(st *checkpoint.TrainState) error { last = st; return nil }
	opts.Stop = stopAfterPolls(stopPoll)
	res1, err := Seq2Seq(m1, trainSet, valSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Interrupted {
		t.Fatal("run was not interrupted — stop poll index off")
	}
	if last == nil {
		t.Fatal("no checkpoint captured before interruption")
	}

	m2 := resumeModel(t)
	res2, err := Resume(m2, trainSet, valSet, resumeOpts(), last)
	if err != nil {
		t.Fatal(err)
	}
	return res2, m2
}

func uninterruptedRun(t *testing.T) (*Result, seq2seq.Model) {
	t.Helper()
	trainSet, valSet := resumeData()
	m := resumeModel(t)
	res, err := Seq2Seq(m, trainSet, valSet, resumeOpts())
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

// TestResumeEquivalenceMidEpoch is the tentpole guarantee: a run
// interrupted in the middle of an epoch and resumed produces the same
// per-epoch loss sequence — and the same final weights — as the same run
// uninterrupted.
func TestResumeEquivalenceMidEpoch(t *testing.T) {
	full, mFull := uninterruptedRun(t)
	// 50 examples at batch size 8 = 7 batches/epoch: 6 mid-epoch polls
	// plus 1 at the epoch end. Poll 10 lands after batch 3 of epoch 2.
	resumed, mResumed := runInterruptedThenResume(t, 10)
	assertEquivalent(t, resumed, full, mResumed, mFull)
}

// TestResumeEquivalenceEpochBoundary interrupts exactly at an epoch end.
func TestResumeEquivalenceEpochBoundary(t *testing.T) {
	full, mFull := uninterruptedRun(t)
	// Poll 14 is the epoch-end poll of the second epoch.
	resumed, mResumed := runInterruptedThenResume(t, 14)
	assertEquivalent(t, resumed, full, mResumed, mFull)
}

// TestResumeThroughManager round-trips the interruption through the disk
// layer (atomic envelope + gob + retention manager) instead of an
// in-memory snapshot, proving the serialized state is lossless.
func TestResumeThroughManager(t *testing.T) {
	full, mFull := uninterruptedRun(t)
	trainSet, valSet := resumeData()

	mgr, err := checkpoint.NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m1 := resumeModel(t)
	opts := resumeOpts()
	opts.Checkpoint = mgr.Hook()
	opts.CheckpointEvery = 2
	opts.Stop = stopAfterPolls(9)
	res1, err := Seq2Seq(m1, trainSet, valSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Interrupted {
		t.Fatal("not interrupted")
	}

	st, _, err := mgr.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	m2 := resumeModel(t)
	res2, err := Resume(m2, trainSet, valSet, resumeOpts(), st)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, res2, full, m2, mFull)
}

// TestSeq2SeqDeterministicGivenSeed pins the reproducibility fix: two
// fresh runs with the same seed produce identical trajectories.
func TestSeq2SeqDeterministicGivenSeed(t *testing.T) {
	r1, m1 := uninterruptedRun(t)
	r2, m2 := uninterruptedRun(t)
	assertSameFloats(t, "train losses", r1.TrainLosses, r2.TrainLosses)
	assertSameFloats(t, "val losses", r1.ValLosses, r2.ValLosses)
	p2 := paramData(m2)
	for name, got := range paramData(m1) {
		assertSameFloats(t, "param "+name, got, p2[name])
	}
}

// TestResumeDoneCheckpoint restores a finished run without training.
func TestResumeDoneCheckpoint(t *testing.T) {
	trainSet, valSet := resumeData()
	m1 := resumeModel(t)
	var last *checkpoint.TrainState
	opts := resumeOpts()
	opts.Checkpoint = func(st *checkpoint.TrainState) error { last = st; return nil }
	res1, err := Seq2Seq(m1, trainSet, valSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	if last == nil || !last.Done {
		t.Fatalf("final checkpoint not marked done: %+v", last)
	}
	m2 := resumeModel(t)
	res2, err := Resume(m2, trainSet, valSet, resumeOpts(), last)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, res2, res1, m2, m1)
}

// TestResumeValidation rejects mismatched seed, dataset and model.
func TestResumeValidation(t *testing.T) {
	trainSet, valSet := resumeData()
	m1 := resumeModel(t)
	var last *checkpoint.TrainState
	opts := resumeOpts()
	opts.Epochs = 2
	opts.Checkpoint = func(st *checkpoint.TrainState) error { last = st; return nil }
	opts.Stop = stopAfterPolls(3)
	if _, err := Seq2Seq(m1, trainSet, valSet, opts); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint")
	}

	if _, err := Resume(resumeModel(t), trainSet, valSet, resumeOpts(), nil); err == nil {
		t.Error("nil state accepted")
	}
	badSeed := resumeOpts()
	badSeed.Seed = 999
	if _, err := Resume(resumeModel(t), trainSet, valSet, badSeed, last); err == nil {
		t.Error("seed mismatch accepted")
	}
	if _, err := Resume(resumeModel(t), trainSet[:20], valSet, resumeOpts(), last); err == nil {
		t.Error("dataset size mismatch accepted")
	}
	otherCfg := seq2seq.DefaultConfig(seq2seq.Transformer, 16)
	otherCfg.DModel = 8
	otherModel, err := seq2seq.New(otherCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(otherModel, trainSet, valSet, resumeOpts(), last); err == nil {
		t.Error("model config mismatch accepted")
	}
}

// TestAdamExportImport round-trips optimizer state and checks the
// imported optimizer continues the stream identically.
func TestAdamExportImport(t *testing.T) {
	trainSet, valSet := resumeData()
	_ = valSet
	m := resumeModel(t)
	params := m.Params()
	opt := NewAdam(1e-3)
	rng := rand.New(checkpoint.NewRNG(4))
	for i := 0; i < 3; i++ {
		loss := exampleLoss(m, trainSet[i], true, rng)
		autograd.Backward(loss)
		opt.Step(params)
	}
	st, err := opt.Export(params)
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 3 || len(st.M) == 0 {
		t.Fatalf("export: step %d, %d moments", st.Step, len(st.M))
	}
	opt2 := NewAdam(1e-3)
	if err := opt2.Import(params, st); err != nil {
		t.Fatal(err)
	}
	st2, err := opt2.Export(params)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Step != st.Step || len(st2.M) != len(st.M) {
		t.Fatalf("round trip: %d/%d vs %d/%d", st2.Step, len(st2.M), st.Step, len(st.M))
	}
	for name, m1 := range st.M {
		assertSameFloats(t, "moment "+name, st2.M[name].Data, m1.Data)
	}
	// Unknown parameter name is rejected.
	bad := &checkpoint.OptimState{Step: 1,
		M: map[string]checkpoint.Tensor{"no.such.param": {Rows: 1, Cols: 1, Data: []float64{0}}},
		V: map[string]checkpoint.Tensor{"no.such.param": {Rows: 1, Cols: 1, Data: []float64{0}}}}
	if err := NewAdam(1e-3).Import(params, bad); err == nil {
		t.Error("unknown parameter accepted")
	}
}
