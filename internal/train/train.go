// Package train implements model optimization: the Adam optimizer,
// gradient clipping, and the seq2seq training loop with teacher forcing
// and validation-loss early stopping (paper Section 6.2.4: cross-entropy
// loss, Adam, hyper-parameters selected on best validation loss with early
// stopping).
//
// The loop is crash-safe: Options can install a checkpoint hook that
// snapshots the complete training state (parameters, optimizer moments,
// shuffle order, RNG stream, loss history) at batch and epoch boundaries,
// and Resume continues a snapshotted run with the exact loss trajectory
// the uninterrupted run would have produced. A cooperative Stop hook lets
// callers (e.g. qrec-train's SIGINT handler) end a run at the next batch
// boundary after writing a final checkpoint.
package train

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/autograd"
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/seq2seq"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// Adam is the Adam optimizer with per-parameter moment buffers.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	WDecay float64

	t int
	m map[*autograd.Value]*tensor.Tensor
	v map[*autograd.Value]*tensor.Tensor
}

// NewAdam returns an optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*autograd.Value]*tensor.Tensor{},
		v: map[*autograd.Value]*tensor.Tensor{},
	}
}

// Step applies one Adam update to every parameter and zeroes gradients.
func (a *Adam) Step(params []nn.Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.V.Grad
		if g == nil {
			continue
		}
		m := a.m[p.V]
		if m == nil {
			m = tensor.New(g.Rows, g.Cols)
			a.m[p.V] = m
			a.v[p.V] = tensor.New(g.Rows, g.Cols)
		}
		v := a.v[p.V]
		w := p.V.T
		// Each element updates independently, so the elementwise loop
		// partitions across goroutines (large embedding/output tables)
		// without changing any result bit.
		tensor.ParallelRange(len(g.Data), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				gi := g.Data[i]
				if a.WDecay > 0 {
					gi += a.WDecay * w.Data[i]
				}
				m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*gi
				v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*gi*gi
				mhat := m.Data[i] / bc1
				vhat := v.Data[i] / bc2
				w.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
			}
		})
		g.Zero()
	}
}

// Export serializes the optimizer state (step counter and moment buffers)
// keyed by parameter name. Parameters that never received a gradient are
// omitted, matching the lazy allocation in Step.
func (a *Adam) Export(params []nn.Param) (*checkpoint.OptimState, error) {
	byName, err := nn.ByName(params)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	st := &checkpoint.OptimState{
		Step: a.t,
		M:    map[string]checkpoint.Tensor{},
		V:    map[string]checkpoint.Tensor{},
	}
	for name, v := range byName {
		if m := a.m[v]; m != nil {
			st.M[name] = checkpoint.FromTensor(m)
			st.V[name] = checkpoint.FromTensor(a.v[v])
		}
	}
	return st, nil
}

// Import restores optimizer state captured by Export onto the given
// parameter set, rejecting unknown names and shape mismatches.
func (a *Adam) Import(params []nn.Param, st *checkpoint.OptimState) error {
	byName, err := nn.ByName(params)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	a.t = st.Step
	a.m = make(map[*autograd.Value]*tensor.Tensor, len(st.M))
	a.v = make(map[*autograd.Value]*tensor.Tensor, len(st.V))
	for name, wm := range st.M {
		v, ok := byName[name]
		if !ok {
			return fmt.Errorf("train: optimizer state for unknown parameter %q", name)
		}
		if wm.Rows != v.T.Rows || wm.Cols != v.T.Cols {
			return fmt.Errorf("train: optimizer moment for %q has shape %dx%d, parameter is %dx%d",
				name, wm.Rows, wm.Cols, v.T.Rows, v.T.Cols)
		}
		wv, ok := st.V[name]
		if !ok {
			return fmt.Errorf("train: optimizer state for %q missing second moment", name)
		}
		a.m[v] = wm.ToTensor()
		a.v[v] = wv.ToTensor()
	}
	return nil
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		if p.V.Grad == nil {
			continue
		}
		for _, g := range p.V.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			if p.V.Grad != nil {
				tensor.ScaleInPlace(p.V.Grad, scale)
			}
		}
	}
	return norm
}

// Example is one training pair of token-id sequences: Src is the encoder
// input (the preceding query Q_i), Tgt the decoder target (the next query
// Q_{i+1}), both without BOS/EOS (the loop adds them).
type Example struct {
	Src, Tgt []int
}

// Options configures the training loop.
type Options struct {
	Epochs    int
	Patience  int     // early-stopping patience in epochs (0 disables)
	LR        float64 //
	ClipNorm  float64 // 0 disables clipping
	BatchSize int     // gradient accumulation batch (examples per step)
	MaxLen    int     // truncate sequences to this many tokens
	Seed      int64
	// Workers is the number of data-parallel goroutines per minibatch
	// (0 = GOMAXPROCS). Per-example gradients are reduced in fixed
	// example-index order and teacher-forcing randomness is pre-split per
	// example, so losses and weights are bit-identical for every value —
	// worker count is a throughput knob, never a numerics knob, and is
	// deliberately absent from checkpoints.
	Workers int
	Logf    func(format string, args ...any) // nil silences progress

	// Checkpoint, when non-nil, receives a full training-state snapshot at
	// every epoch boundary, every CheckpointEvery batches (when > 0), and
	// when Stop requests an early exit. A snapshot error aborts training.
	Checkpoint func(*checkpoint.TrainState) error
	// CheckpointEvery adds mid-epoch snapshots every N batches (0 = epoch
	// boundaries only).
	CheckpointEvery int
	// Stop is polled at batch boundaries; when it returns true the loop
	// writes a final checkpoint (if Checkpoint is set) and returns with
	// Result.Interrupted set. Use it for cooperative SIGINT handling.
	Stop func() bool
	// Clock supplies wall-clock readings for Result.TrainTime telemetry.
	// The training loop never reads the system clock itself — numerics
	// must be a pure function of (seed, inputs), and the detrand lint
	// rule enforces it — so callers that want timing inject time.Now
	// here. Nil leaves TrainTime zero.
	Clock func() time.Time
}

// DefaultOptions returns the CPU-scale training configuration.
func DefaultOptions() Options {
	return Options{Epochs: 8, Patience: 2, LR: 3e-3, ClipNorm: 1.0, BatchSize: 8, MaxLen: 48, Seed: 1}
}

// Result reports what happened during training (feeds Table 3). On a
// resumed run the loss histories cover the whole run, restored epochs
// included.
type Result struct {
	TrainLosses []float64
	ValLosses   []float64
	BestVal     float64
	BestEpoch   int
	Epochs      int
	TrainTime   time.Duration
	// Interrupted marks a run ended early by Options.Stop; the final
	// checkpoint (when configured) allows resuming it.
	Interrupted bool
}

// Seq2Seq trains the model on (Q_i, Q_{i+1}) examples with teacher forcing
// and returns the loss trajectory. Early stopping restores nothing — the
// caller keeps the final weights; with small patience the final and best
// epochs coincide closely, which is sufficient at our scale.
func Seq2Seq(m seq2seq.Model, trainSet, valSet []Example, opts Options) (*Result, error) {
	return run(m, trainSet, valSet, opts, nil)
}

// Resume continues a checkpointed run. The model must match the
// checkpoint's configuration (its current weights are overwritten), and
// trainSet/opts must be those of the original run — seed and dataset size
// are validated. The returned Result covers the whole run, and its loss
// trajectory equals what the uninterrupted run would have produced.
func Resume(m seq2seq.Model, trainSet, valSet []Example, opts Options, st *checkpoint.TrainState) (*Result, error) {
	if st == nil {
		return nil, fmt.Errorf("train: resume: nil checkpoint state")
	}
	return run(m, trainSet, valSet, opts, st)
}

// run is the training loop, optionally entered mid-run from a checkpoint.
func run(m seq2seq.Model, trainSet, valSet []Example, opts Options, st *checkpoint.TrainState) (*Result, error) {
	if len(trainSet) == 0 {
		return nil, fmt.Errorf("train: empty training set")
	}
	// The RNG source is a serializable stream: its position is part of
	// every checkpoint, so resumed shuffles and dropout draws replay the
	// uninterrupted sequence exactly.
	src := checkpoint.NewRNG(opts.Seed)
	rng := rand.New(src)
	optim := NewAdam(opts.LR)
	params := m.Params()
	runner, err := newBatchRunner(m, params, opts.Workers, opts.BatchSize)
	if err != nil {
		return nil, err
	}
	res := &Result{BestVal: math.Inf(1)}
	now := opts.Clock
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}
	start := now()

	order := make([]int, len(trainSet))
	for i := range order {
		order[i] = i
	}
	bad := 0
	startEpoch, startBatch := 0, 0
	sum, count := 0.0, 0

	if st != nil {
		if err := restoreState(m, params, optim, src, st, opts, len(trainSet)); err != nil {
			return nil, err
		}
		res.TrainLosses = append(res.TrainLosses, st.TrainLosses...)
		res.ValLosses = append(res.ValLosses, st.ValLosses...)
		res.BestVal = st.BestVal
		res.BestEpoch = st.BestEpoch
		res.Epochs = st.Epoch
		bad = st.Bad
		startEpoch, startBatch = st.Epoch, st.Batch
		if st.Batch > 0 {
			if len(st.Order) != len(order) {
				return nil, fmt.Errorf("train: resume: checkpoint order covers %d examples, dataset has %d",
					len(st.Order), len(order))
			}
			copy(order, st.Order)
			sum, count = st.SumLoss, st.Count
		}
		if st.Done {
			res.TrainTime = now().Sub(start)
			return res, nil
		}
	}

	save := func(epoch, batch int, done bool) error {
		if opts.Checkpoint == nil {
			return nil
		}
		snap, err := snapshot(m, params, optim, src, opts, res, epoch, batch, order, sum, count, bad, len(trainSet), done)
		if err != nil {
			return err
		}
		return opts.Checkpoint(snap)
	}

	batches := 0
	for epoch := startEpoch; epoch < opts.Epochs; epoch++ {
		if epoch != startEpoch || startBatch == 0 {
			// Re-shuffle from identity so the epoch's order is a pure
			// function of the RNG position — a resumed run must not depend
			// on the in-place permutation history of earlier epochs.
			for i := range order {
				order[i] = i
			}
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			sum, count = 0.0, 0
		}
		bi0 := 0
		if epoch == startEpoch {
			bi0 = startBatch
		}
		for bi := bi0; bi < len(order); bi += opts.BatchSize {
			hi := bi + opts.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			sum += runner.runBatch(trainSet, order[bi:hi], opts.MaxLen, src)
			count += hi - bi
			if opts.ClipNorm > 0 {
				ClipGradNorm(params, opts.ClipNorm)
			}
			optim.Step(params)
			batches++
			// Mid-epoch snapshots happen only while batches remain; the
			// final batch of an epoch falls through to the epoch-boundary
			// snapshot below, which includes the validation loss.
			if hi < len(order) {
				stopping := opts.Stop != nil && opts.Stop()
				periodic := opts.CheckpointEvery > 0 && batches%opts.CheckpointEvery == 0
				if stopping || periodic {
					if err := save(epoch, hi, false); err != nil {
						return nil, err
					}
				}
				if stopping {
					res.Interrupted = true
					res.TrainTime = now().Sub(start)
					return res, nil
				}
			}
		}
		trainLoss := sum / float64(count)
		valLoss := Evaluate(m, valSet, opts.MaxLen)
		res.TrainLosses = append(res.TrainLosses, trainLoss)
		res.ValLosses = append(res.ValLosses, valLoss)
		res.Epochs = epoch + 1
		if opts.Logf != nil {
			opts.Logf("epoch %d: train %.4f val %.4f", epoch+1, trainLoss, valLoss)
		}
		if valLoss < res.BestVal-1e-6 {
			res.BestVal = valLoss
			res.BestEpoch = epoch
			bad = 0
		} else {
			bad++
		}
		finished := epoch+1 == opts.Epochs || (opts.Patience > 0 && bad >= opts.Patience)
		stopping := opts.Stop != nil && opts.Stop()
		if err := save(epoch+1, 0, finished); err != nil {
			return nil, err
		}
		if finished {
			break
		}
		if stopping {
			res.Interrupted = true
			break
		}
	}
	res.TrainTime = now().Sub(start)
	return res, nil
}

// snapshot captures the full training state at a batch or epoch boundary
// (deep copies throughout — training keeps mutating the live tensors).
func snapshot(m seq2seq.Model, params []nn.Param, optim *Adam, src *checkpoint.RNG, opts Options,
	res *Result, epoch, batch int, order []int, sum float64, count, bad, numTrain int, done bool) (*checkpoint.TrainState, error) {
	tensors, err := seq2seq.ParamMap(m)
	if err != nil {
		return nil, err
	}
	optState, err := optim.Export(params)
	if err != nil {
		return nil, err
	}
	st := &checkpoint.TrainState{
		Seed:        opts.Seed,
		RNG:         src.State(),
		Epoch:       epoch,
		Batch:       batch,
		SumLoss:     sum,
		Count:       count,
		Params:      checkpoint.FromTensorMap(tensors),
		ModelCfg:    m.Config(),
		Optim:       *optState,
		TrainLosses: append([]float64(nil), res.TrainLosses...),
		ValLosses:   append([]float64(nil), res.ValLosses...),
		BestVal:     res.BestVal,
		BestEpoch:   res.BestEpoch,
		Bad:         bad,
		NumTrain:    numTrain,
		Done:        done,
	}
	if batch > 0 {
		st.Order = append([]int(nil), order...)
	}
	return st, nil
}

// restoreState rebuilds the live training state from a checkpoint,
// validating that the model, seed and dataset match the original run.
func restoreState(m seq2seq.Model, params []nn.Param, optim *Adam, src *checkpoint.RNG,
	st *checkpoint.TrainState, opts Options, numTrain int) error {
	if st.Seed != opts.Seed {
		return fmt.Errorf("train: resume: checkpoint was seeded with %d, options use %d", st.Seed, opts.Seed)
	}
	if st.NumTrain != numTrain {
		return fmt.Errorf("train: resume: checkpoint trained on %d examples, dataset has %d", st.NumTrain, numTrain)
	}
	if cfg := m.Config(); cfg != st.ModelCfg {
		return fmt.Errorf("train: resume: model config %+v does not match checkpoint %+v", cfg, st.ModelCfg)
	}
	if err := seq2seq.RestoreParamMap(m, checkpoint.ToTensorMap(st.Params)); err != nil {
		return fmt.Errorf("train: resume: %w", err)
	}
	if err := optim.Import(params, &st.Optim); err != nil {
		return err
	}
	src.SetState(st.RNG)
	return nil
}

// exampleLoss runs one teacher-forced forward pass:
// encoder input = Src, decoder input = BOS+Tgt, targets = Tgt+EOS.
func exampleLoss(m seq2seq.Model, ex Example, train bool, rng *rand.Rand) *autograd.Value {
	enc := m.Encode(ex.Src, train, rng)
	tgtIn := make([]int, 0, len(ex.Tgt)+1)
	tgtIn = append(tgtIn, tokenizer.BOS)
	tgtIn = append(tgtIn, ex.Tgt...)
	tgtOut := make([]int, 0, len(ex.Tgt)+1)
	tgtOut = append(tgtOut, ex.Tgt...)
	tgtOut = append(tgtOut, tokenizer.EOS)
	logits := m.DecodeLogits(enc, tgtIn, train, rng)
	return autograd.CrossEntropy(logits, tgtOut, tokenizer.PAD)
}

// clip truncates both sides of an example to maxLen tokens.
func clip(ex Example, maxLen int) Example {
	if maxLen <= 0 {
		return ex
	}
	out := ex
	if len(out.Src) > maxLen {
		out.Src = out.Src[:maxLen]
	}
	if len(out.Tgt) > maxLen {
		out.Tgt = out.Tgt[:maxLen]
	}
	return out
}
