// Package train implements model optimization: the Adam optimizer,
// gradient clipping, and the seq2seq training loop with teacher forcing
// and validation-loss early stopping (paper Section 6.2.4: cross-entropy
// loss, Adam, hyper-parameters selected on best validation loss with early
// stopping).
package train

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/seq2seq"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// Adam is the Adam optimizer with per-parameter moment buffers.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	WDecay float64

	t int
	m map[*autograd.Value]*tensor.Tensor
	v map[*autograd.Value]*tensor.Tensor
}

// NewAdam returns an optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*autograd.Value]*tensor.Tensor{},
		v: map[*autograd.Value]*tensor.Tensor{},
	}
}

// Step applies one Adam update to every parameter and zeroes gradients.
func (a *Adam) Step(params []nn.Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.V.Grad
		if g == nil {
			continue
		}
		m := a.m[p.V]
		if m == nil {
			m = tensor.New(g.Rows, g.Cols)
			a.m[p.V] = m
			a.v[p.V] = tensor.New(g.Rows, g.Cols)
		}
		v := a.v[p.V]
		w := p.V.T
		for i := range g.Data {
			gi := g.Data[i]
			if a.WDecay > 0 {
				gi += a.WDecay * w.Data[i]
			}
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*gi
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*gi*gi
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			w.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		g.Zero()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		if p.V.Grad == nil {
			continue
		}
		for _, g := range p.V.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			if p.V.Grad != nil {
				tensor.ScaleInPlace(p.V.Grad, scale)
			}
		}
	}
	return norm
}

// Example is one training pair of token-id sequences: Src is the encoder
// input (the preceding query Q_i), Tgt the decoder target (the next query
// Q_{i+1}), both without BOS/EOS (the loop adds them).
type Example struct {
	Src, Tgt []int
}

// Options configures the training loop.
type Options struct {
	Epochs    int
	Patience  int     // early-stopping patience in epochs (0 disables)
	LR        float64 //
	ClipNorm  float64 // 0 disables clipping
	BatchSize int     // gradient accumulation batch (examples per step)
	MaxLen    int     // truncate sequences to this many tokens
	Seed      int64
	Logf      func(format string, args ...any) // nil silences progress
}

// DefaultOptions returns the CPU-scale training configuration.
func DefaultOptions() Options {
	return Options{Epochs: 8, Patience: 2, LR: 3e-3, ClipNorm: 1.0, BatchSize: 8, MaxLen: 48, Seed: 1}
}

// Result reports what happened during training (feeds Table 3).
type Result struct {
	TrainLosses []float64
	ValLosses   []float64
	BestVal     float64
	BestEpoch   int
	Epochs      int
	TrainTime   time.Duration
}

// Seq2Seq trains the model on (Q_i, Q_{i+1}) examples with teacher forcing
// and returns the loss trajectory. Early stopping restores nothing — the
// caller keeps the final weights; with small patience the final and best
// epochs coincide closely, which is sufficient at our scale.
func Seq2Seq(m seq2seq.Model, trainSet, valSet []Example, opts Options) (*Result, error) {
	if len(trainSet) == 0 {
		return nil, fmt.Errorf("train: empty training set")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	optim := NewAdam(opts.LR)
	params := m.Params()
	res := &Result{BestVal: math.Inf(1)}
	start := time.Now()

	order := make([]int, len(trainSet))
	for i := range order {
		order[i] = i
	}
	bad := 0
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sum, count := 0.0, 0
		for bi := 0; bi < len(order); bi += opts.BatchSize {
			hi := bi + opts.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			for _, idx := range order[bi:hi] {
				ex := clip(trainSet[idx], opts.MaxLen)
				loss := exampleLoss(m, ex, true, rng)
				// Scale so the batch gradient is the mean.
				scaled := autograd.Scale(loss, 1/float64(hi-bi))
				autograd.Backward(scaled)
				sum += loss.T.Data[0]
				count++
			}
			if opts.ClipNorm > 0 {
				ClipGradNorm(params, opts.ClipNorm)
			}
			optim.Step(params)
		}
		trainLoss := sum / float64(count)
		valLoss := Evaluate(m, valSet, opts.MaxLen)
		res.TrainLosses = append(res.TrainLosses, trainLoss)
		res.ValLosses = append(res.ValLosses, valLoss)
		res.Epochs = epoch + 1
		if opts.Logf != nil {
			opts.Logf("epoch %d: train %.4f val %.4f", epoch+1, trainLoss, valLoss)
		}
		if valLoss < res.BestVal-1e-6 {
			res.BestVal = valLoss
			res.BestEpoch = epoch
			bad = 0
		} else {
			bad++
			if opts.Patience > 0 && bad >= opts.Patience {
				break
			}
		}
	}
	res.TrainTime = time.Since(start)
	return res, nil
}

// Evaluate computes the mean validation loss without gradient tracking or
// dropout.
func Evaluate(m seq2seq.Model, set []Example, maxLen int) float64 {
	if len(set) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, ex := range set {
		loss := exampleLoss(m, clip(ex, maxLen), false, nil)
		sum += loss.T.Data[0]
	}
	return sum / float64(len(set))
}

// exampleLoss runs one teacher-forced forward pass:
// encoder input = Src, decoder input = BOS+Tgt, targets = Tgt+EOS.
func exampleLoss(m seq2seq.Model, ex Example, train bool, rng *rand.Rand) *autograd.Value {
	enc := m.Encode(ex.Src, train, rng)
	tgtIn := make([]int, 0, len(ex.Tgt)+1)
	tgtIn = append(tgtIn, tokenizer.BOS)
	tgtIn = append(tgtIn, ex.Tgt...)
	tgtOut := make([]int, 0, len(ex.Tgt)+1)
	tgtOut = append(tgtOut, ex.Tgt...)
	tgtOut = append(tgtOut, tokenizer.EOS)
	logits := m.DecodeLogits(enc, tgtIn, train, rng)
	return autograd.CrossEntropy(logits, tgtOut, tokenizer.PAD)
}

// clip truncates both sides of an example to maxLen tokens.
func clip(ex Example, maxLen int) Example {
	if maxLen <= 0 {
		return ex
	}
	out := ex
	if len(out.Src) > maxLen {
		out.Src = out.Src[:maxLen]
	}
	if len(out.Tgt) > maxLen {
		out.Tgt = out.Tgt[:maxLen]
	}
	return out
}
