// Data-parallel minibatch execution. A pool of weight-sharing model
// replicas runs teacher-forced forward+backward passes concurrently, one
// example at a time, writing each example's gradients into a dedicated
// per-example buffer set. The buffers are then reduced into the master
// gradients in fixed example-index order.
//
// Determinism is the point of this design, not an accident of it:
//
//   - Each example's gradient lands in its own buffer set, so the final
//     per-parameter sum g[0]+g[1]+...+g[n-1] is evaluated in ascending
//     example order no matter which worker computed which example or in
//     what order they finished. Floating-point addition is not
//     associative; a per-worker partial-sum scheme would tie the result
//     to the schedule.
//   - Teacher-forcing randomness (dropout) is pre-split: one seed per
//     example is drawn from the checkpointed splitmix64 stream in example
//     order before the batch fans out, and each example derives its
//     dropout draws from its own seed. The stream position therefore
//     advances exactly n per batch, independent of scheduling — which is
//     what keeps PR 2's bit-for-bit checkpoint/resume guarantee intact
//     for any -train-workers value (worker count is deliberately NOT part
//     of the checkpoint).
//
// Together: losses and updated weights are bit-identical for every worker
// count, including 1.
package train

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/autograd"
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/seq2seq"
	"repro/internal/tensor"
)

// batchRunner owns the replicas and per-example gradient buffers for one
// training run.
type batchRunner struct {
	workers   int
	params    []nn.Param          // master parameters, optimizer order
	replicas  []seq2seq.Model     // weight-sharing, one per worker
	repParams [][]*autograd.Value // replica params aligned to params
	slots     [][]*tensor.Tensor  // [example][param] gradient buffers
	losses    []float64           // per-example losses of the current batch
	seeds     []uint64            // per-example dropout seeds
}

// newBatchRunner builds workers replicas (0 = GOMAXPROCS, capped at the
// batch size — extra workers would only idle) and batchSize gradient
// buffer sets.
func newBatchRunner(m seq2seq.Model, params []nn.Param, workers, batchSize int) (*batchRunner, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batchSize {
		workers = batchSize
	}
	if workers < 1 {
		workers = 1
	}
	r := &batchRunner{
		workers: workers,
		params:  params,
		slots:   make([][]*tensor.Tensor, batchSize),
		losses:  make([]float64, batchSize),
		seeds:   make([]uint64, batchSize),
	}
	for w := 0; w < workers; w++ {
		rep, err := seq2seq.Replicate(m)
		if err != nil {
			return nil, err
		}
		aligned, err := alignParams(params, rep.Params())
		if err != nil {
			return nil, err
		}
		r.replicas = append(r.replicas, rep)
		r.repParams = append(r.repParams, aligned)
	}
	for e := range r.slots {
		r.slots[e] = make([]*tensor.Tensor, len(params))
		for k, p := range params {
			r.slots[e][k] = tensor.New(p.V.T.Rows, p.V.T.Cols)
		}
	}
	return r, nil
}

// alignParams orders rep's values to match the master parameter list.
func alignParams(master []nn.Param, rep []nn.Param) ([]*autograd.Value, error) {
	byName, err := nn.ByName(rep)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	out := make([]*autograd.Value, len(master))
	for k, p := range master {
		v, ok := byName[p.Name]
		if !ok {
			return nil, fmt.Errorf("train: replica missing parameter %q", p.Name)
		}
		out[k] = v
	}
	return out, nil
}

// runBatch computes the batch-mean gradient for the examples selected by
// order, accumulating into the master parameter gradients, and returns the
// sum of unscaled per-example losses (summed in example order). src
// advances by exactly len(order) draws.
func (r *batchRunner) runBatch(trainSet []Example, order []int, maxLen int, src *checkpoint.RNG) float64 {
	n := len(order)
	for e := 0; e < n; e++ {
		r.seeds[e] = src.Uint64()
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	inv := 1 / float64(n)
	// Work-stealing schedule: which worker runs which example is
	// irrelevant to the result, so let fast workers take more.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rep := r.replicas[w]
			reps := r.repParams[w]
			for {
				e := int(next.Add(1)) - 1
				if e >= n {
					return
				}
				// Point the replica's parameter gradients at this
				// example's buffer set; backward accumulates there.
				for k, v := range reps {
					v.Grad = r.slots[e][k]
				}
				rng := rand.New(checkpoint.NewRNG(int64(r.seeds[e])))
				ex := clip(trainSet[order[e]], maxLen)
				loss := exampleLoss(rep, ex, true, rng)
				scaled := autograd.Scale(loss, inv)
				autograd.Backward(scaled)
				r.losses[e] = loss.T.Data[0]
				autograd.Free(scaled)
			}
		}(w)
	}
	wg.Wait()
	// Ordered reduction: parameters are independent of each other, so the
	// parameter dimension parallelizes freely; within a parameter every
	// element sums its examples in ascending order.
	tensor.ParallelRange(len(r.params), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			dst := r.params[k].V.Grad
			for e := 0; e < n; e++ {
				slot := r.slots[e][k]
				for i, v := range slot.Data {
					dst.Data[i] += v
				}
				slot.Zero()
			}
		}
	})
	sum := 0.0
	for e := 0; e < n; e++ {
		sum += r.losses[e]
	}
	return sum
}

// Evaluate computes the mean validation loss without gradient tracking or
// dropout, fanning examples across GOMAXPROCS goroutines. The model is
// shared — forward passes only read parameters — and per-example losses
// are summed in index order, so the result is bit-identical for any
// parallelism.
func Evaluate(m seq2seq.Model, set []Example, maxLen int) float64 {
	if len(set) == 0 {
		return math.NaN()
	}
	losses := make([]float64, len(set))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(set) {
		workers = len(set)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				e := int(next.Add(1)) - 1
				if e >= len(set) {
					return
				}
				loss := exampleLoss(m, clip(set[e], maxLen), false, nil)
				losses[e] = loss.T.Data[0]
				autograd.Free(loss)
			}
		}()
	}
	wg.Wait()
	sum := 0.0
	for _, l := range losses {
		sum += l
	}
	return sum / float64(len(set))
}
