package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/workload"
)

// Structural evaluates the Example 2 hypothesis quantitatively: blending
// structural similarity (tree edit distance) into QueRIE's fragment-based
// retrieval should improve its template ranking, because template
// prediction is precisely a structural task. No model training involved.
func (s *Suite) Structural() error {
	w := s.cfg.Out
	fmt.Fprintf(w, "%-10s %-28s %8s %8s %8s\n", "Dataset", "Method", "acc@1", "acc@5", "MRR@5")
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		pairs := s.evalPairs(ds)
		// Tree edit distance is quadratic per comparison; cap the
		// retrieval index so the runner stays in seconds.
		idx := ds.Train
		if len(idx) > 400 {
			idx = idx[:400]
		}
		frag := baselines.NewQueRIE(idx)
		blend := baselines.NewStructuralQueRIE(idx, 0.5)
		structOnly := baselines.NewStructuralQueRIE(idx, 0.0)

		methods := []struct {
			label   string
			predict tmplPredictor
		}{
			{"QueRIE (fragments)", querieTemplates(frag)},
			{"QueRIE + structure (a=0.5)", func(p workload.Pair, n int) []string {
				return blend.TopTemplates(p.Cur, n)
			}},
			{"structure only (a=0)", func(p workload.Pair, n int) []string {
				return structOnly.TopTemplates(p.Cur, n)
			}},
		}
		for _, m := range methods {
			sweep := evalTemplatesSweep(pairs, []int{1, 5}, m.predict)
			fmt.Fprintf(w, "%-10s %-28s %8.3f %8.3f %8.3f\n", name, m.label,
				sweep[1].Accuracy(), sweep[5].Accuracy(), sweep[5].MRR())
		}
	}
	return nil
}
