package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/baselines"
	"repro/internal/metrics"
	"repro/internal/seq2seq"
	"repro/internal/sqlast"
)

// dlVariants enumerates the four deep-learning model variants the paper
// compares (seq-less/seq-aware × convs2s/transformer).
type dlVariant struct {
	label    string
	arch     seq2seq.Arch
	seqAware bool
}

func dlVariants() []dlVariant {
	return []dlVariant{
		{"seq-less convs2s", seq2seq.ConvS2S, false},
		{"seq-less tfm", seq2seq.Transformer, false},
		{"seq-aware convs2s", seq2seq.ConvS2S, true},
		{"seq-aware tfm", seq2seq.Transformer, true},
	}
}

// Table2 prints the workload statistics table.
func (s *Suite) Table2() error {
	w := s.cfg.Out
	rows := []string{"Total pairs", "Unique pairs", "Unique queries", "Sessions",
		"Datasets", "Vocabulary", "Tables", "Columns", "Functions", "Literals", "Templates"}
	stats := map[string]analysis.WorkloadStats{}
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		stats[name] = analysis.ComputeWorkloadStats(ds.Workload)
	}
	fmt.Fprintf(w, "%-16s %12s %12s\n", "Statistics", "SDSS-sim", "SQLShare-sim")
	get := func(st analysis.WorkloadStats, row string) int {
		switch row {
		case "Total pairs":
			return st.TotalPairs
		case "Unique pairs":
			return st.UniquePairs
		case "Unique queries":
			return st.UniqueQs
		case "Sessions":
			return st.Sessions
		case "Datasets":
			return st.Datasets
		case "Vocabulary":
			return st.Vocabulary
		case "Tables":
			return st.Tables
		case "Columns":
			return st.Columns
		case "Functions":
			return st.Functions
		case "Literals":
			return st.Literals
		default:
			return st.Templates
		}
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s %12d %12d\n", row, get(stats["sdss"], row), get(stats["sqlshare"], row))
	}
	return nil
}

// Table3 prints model statistics: training time, inference time per query
// and parameter counts for every DL variant on both datasets.
func (s *Suite) Table3() error {
	w := s.cfg.Out
	fmt.Fprintf(w, "%-10s %-20s %12s %14s %12s\n", "Dataset", "Model", "T_train", "T_infer/query", "Params")
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		pairs := s.evalPairs(ds)
		if len(pairs) > 20 {
			pairs = pairs[:20]
		}
		for _, v := range dlVariants() {
			rec, err := s.Recommender(name, v.arch, v.seqAware, true)
			if err != nil {
				return err
			}
			// Inference: one greedy decode per query.
			start := time.Now()
			for _, p := range pairs {
				rec.FragmentSetFromTokens(rec.Vocab.Encode(p.Cur.Tokens, true))
			}
			infer := time.Since(start) / time.Duration(len(pairs))
			fmt.Fprintf(w, "%-10s %-20s %12s %14s %12d\n",
				name, v.label, rec.SeqResult.TrainTime.Round(time.Millisecond),
				infer.Round(time.Microsecond), seq2seq.CountParams(rec.Model))
		}
	}
	return nil
}

// Table5 prints fragment-set prediction F1 per fragment type for the
// baselines and all DL variants.
func (s *Suite) Table5() error {
	w := s.cfg.Out
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		pairs := s.evalPairs(ds)
		querie := baselines.NewQueRIE(ds.Train)

		fmt.Fprintf(w, "\n[%s] fragment-set F1\n", name)
		fmt.Fprintf(w, "%-20s %8s %8s %8s %8s\n", "Method", "table", "column", "function", "literal")
		printRow := func(label string, accs map[sqlast.FragmentKind]*prAcc) {
			fmt.Fprintf(w, "%-20s %8.3f %8.3f %8.3f %8.3f\n", label,
				accs[sqlast.FragTable].F1(), accs[sqlast.FragColumn].F1(),
				accs[sqlast.FragFunction].F1(), accs[sqlast.FragLiteral].F1())
		}
		printRow("naive Qi", evalFragmentSet(pairs, naiveFragSet))
		printRow("QueRIE", evalFragmentSet(pairs, querieFragSet(querie)))
		for _, v := range dlVariants() {
			rec, err := s.Recommender(name, v.arch, v.seqAware, true)
			if err != nil {
				return err
			}
			printRow(v.label, evalFragmentSet(pairs, modelFragSet(rec)))
		}
	}
	return nil
}

// Table6 prints top-1 template prediction accuracy for every method,
// including the fine-tuning ablation.
func (s *Suite) Table6() error {
	w := s.cfg.Out
	fmt.Fprintf(w, "%-26s %10s %12s\n", "Method", "SDSS-sim", "SQLShare-sim")
	type row struct {
		label string
		acc   map[string]float64
	}
	var rows []*row
	addRow := func(label string) *row {
		r := &row{label: label, acc: map[string]float64{}}
		rows = append(rows, r)
		return r
	}
	popularRow := addRow("popular")
	naiveRow := addRow("naive Qi")
	querieRow := addRow("QueRIE")
	untunedRow := addRow("tfm untuned (no pre-train)")
	var dlRows []*row
	for _, v := range dlVariants() {
		dlRows = append(dlRows, addRow(v.label+" tuned"))
	}
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		pairs := s.evalPairs(ds)
		pop := baselines.NewPopular(ds.Train)
		querie := baselines.NewQueRIE(ds.Train)
		popularRow.acc[name] = evalTemplates(pairs, 1, popularTemplates(pop)).Accuracy()
		naiveRow.acc[name] = evalTemplates(pairs, 1, naiveTemplates).Accuracy()
		querieRow.acc[name] = evalTemplates(pairs, 1, querieTemplates(querie)).Accuracy()
		untuned, err := s.Recommender(name, seq2seq.Transformer, true, false)
		if err != nil {
			return err
		}
		untunedRow.acc[name] = evalTemplates(pairs, 1, modelTemplates(untuned)).Accuracy()
		for i, v := range dlVariants() {
			rec, err := s.Recommender(name, v.arch, v.seqAware, true)
			if err != nil {
				return err
			}
			dlRows[i].acc[name] = evalTemplates(pairs, 1, modelTemplates(rec)).Accuracy()
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %10.3f %12.3f\n", r.label, r.acc["sdss"], r.acc["sqlshare"])
	}
	return nil
}

// prAcc and rankAcc alias the metrics accumulators for compact signatures.
type (
	prAcc   = metrics.PRAccumulator
	rankAcc = metrics.RankAccumulator
)

// header underline helper used by the figure runners.
func underline(w int) string { return strings.Repeat("-", w) }
