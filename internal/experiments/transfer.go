package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/seq2seq"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/internal/workload"
)

// Transfer implements the paper's Section 8 future-work direction: train
// the seq2seq encoder on one workload (SDSS-sim, the data-rich source) and
// fine-tune the template classifier on another (SQLShare-sim, the
// data-poor target), comparing against a target-only encoder and a fresh
// (un-pre-trained) encoder. A shared vocabulary is built over both
// workloads so the encoder transfers.
func (s *Suite) Transfer() error {
	w := s.cfg.Out

	// Build a combined workload so both sources share one vocabulary.
	sdss := synth.Generate(synth.SDSSProfile(), s.cfg.Seed)
	sqlshare := synth.Generate(synth.SQLShareProfile(), s.cfg.Seed+1)
	combined := &workload.Workload{
		Name:     "combined",
		Sessions: append(append([]*workload.Session{}, sdss.Sessions...), sqlshare.Sessions...),
		Datasets: sqlshare.Datasets + 1,
	}
	ds, err := core.Prepare(combined, core.DefaultPrepConfig())
	if err != nil {
		return err
	}

	// Split pairs back by source (session ids carry the profile name).
	bySource := func(pairs []workload.Pair, prefix string) []workload.Pair {
		var out []workload.Pair
		for _, p := range pairs {
			if strings.HasPrefix(p.Cur.SessionID, prefix) {
				out = append(out, p)
			}
		}
		return out
	}
	srcTrain := capPairs(bySource(ds.Train, "sdss-sim"), s.cfg.MaxTrainPairs)
	tgtTrain := capPairs(bySource(ds.Train, "sqlshare-sim"), s.cfg.MaxTrainPairs)
	srcVal := bySource(ds.Val, "sdss-sim")
	tgtVal := bySource(ds.Val, "sqlshare-sim")
	tgtTest := bySource(ds.Test, "sqlshare-sim")
	if s.cfg.EvalPairs > 0 && len(tgtTest) > s.cfg.EvalPairs {
		tgtTest = tgtTest[:s.cfg.EvalPairs]
	}

	// Template classes come from the *target* training pairs only.
	tgtWL := &workload.Workload{Sessions: []*workload.Session{{ID: "t"}}}
	for _, p := range tgtTrain {
		tgtWL.Sessions[0].Queries = append(tgtWL.Sessions[0].Queries, p.Next)
	}
	classes := analysis.TemplateClasses(tgtWL, 3)
	if len(classes) == 0 {
		classes = analysis.TemplateClasses(tgtWL, 1)
	}

	mcfg := seq2seq.DefaultConfig(seq2seq.Transformer, ds.Vocab.Size())
	mcfg.DModel = s.cfg.DModel
	mcfg.FFHidden = 2 * s.cfg.DModel
	opts := s.trainOpts()

	// pretrain trains a seq2seq model on the given pairs (nil = none).
	pretrain := func(pairs, val []workload.Pair, seed int64) (seq2seq.Model, error) {
		m, err := seq2seq.New(mcfg, seed)
		if err != nil {
			return nil, err
		}
		if len(pairs) > 0 {
			ex := core.SeqExamples(ds.Vocab, pairs, true)
			exVal := core.SeqExamples(ds.Vocab, val, true)
			if _, err := train.Seq2Seq(m, ex, exVal, opts); err != nil {
				return nil, err
			}
		}
		return m, nil
	}

	variants := []struct {
		label string
		pairs []workload.Pair
		val   []workload.Pair
	}{
		{"no pre-training", nil, nil},
		{"target-only pre-training", tgtTrain, tgtVal},
		{"transfer (SDSS pre-training)", srcTrain, srcVal},
	}
	fmt.Fprintf(w, "target: SQLShare-sim template prediction, %d classes, %d fine-tune pairs, %d test pairs\n",
		len(classes), len(tgtTrain), len(tgtTest))
	fmt.Fprintf(w, "%-30s %8s %8s %8s\n", "Encoder", "acc@1", "acc@5", "MRR@5")
	for i, v := range variants {
		enc, err := pretrain(v.pairs, v.val, s.cfg.Seed+int64(10+i))
		if err != nil {
			return err
		}
		cls := classify.New(enc, 64, classes, s.cfg.Seed+int64(20+i))
		clsOpts := opts
		if _, err := classify.Fit(cls,
			core.ClsExamples(ds.Vocab, cls, tgtTrain),
			core.ClsExamples(ds.Vocab, cls, tgtVal), clsOpts); err != nil {
			return err
		}
		rec := &core.Recommender{Vocab: ds.Vocab, Model: enc, Classifier: cls, MaxGenLen: opts.MaxLen}
		sweep := evalTemplatesSweep(tgtTest, []int{1, 5}, modelTemplates(rec))
		fmt.Fprintf(w, "%-30s %8.3f %8.3f %8.3f\n", v.label,
			sweep[1].Accuracy(), sweep[5].Accuracy(), sweep[5].MRR())
	}
	return nil
}

func capPairs(pairs []workload.Pair, max int) []workload.Pair {
	if max > 0 && len(pairs) > max {
		return pairs[:max]
	}
	return pairs
}
