package experiments

import (
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sqlast"
	"repro/internal/tokenizer"
	"repro/internal/workload"
)

// foldLiteral maps numeric literal spellings to the <NUM> placeholder,
// mirroring the tokenizer's pre-processing (Section 5.4.1): models are
// trained on folded literals, so evaluation must compare folded sets on
// both sides. String literals keep their identity.
func foldLiteral(lit string) string {
	if lit == strings.ToUpper(tokenizer.NumToken) || lit == tokenizer.NumToken {
		return tokenizer.NumToken
	}
	if _, err := strconv.ParseFloat(lit, 64); err == nil {
		return tokenizer.NumToken
	}
	return lit
}

// foldSet applies foldLiteral to a literal fragment set.
func foldSet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k := range in {
		out[foldLiteral(k)] = true
	}
	return out
}

// foldList applies foldLiteral to a ranked literal list, deduplicating
// while preserving order.
func foldList(in []string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(in))
	for _, k := range in {
		f := foldLiteral(k)
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// fragSetPredictor maps a current query to a predicted fragment set.
type fragSetPredictor func(p workload.Pair) *sqlast.FragmentSet

// evalFragmentSet scores a fragment-set predictor per fragment kind
// (Table 5's F-measure per type).
func evalFragmentSet(pairs []workload.Pair, predict fragSetPredictor) map[sqlast.FragmentKind]*metrics.PRAccumulator {
	accs := map[sqlast.FragmentKind]*metrics.PRAccumulator{}
	for _, k := range sqlast.FragmentKinds {
		accs[k] = &metrics.PRAccumulator{}
	}
	for _, p := range pairs {
		pred := predict(p)
		if pred == nil {
			pred = sqlast.NewFragmentSet()
		}
		for _, k := range sqlast.FragmentKinds {
			predSet, truthSet := pred.ByKind(k), p.Next.Fragments.ByKind(k)
			if k == sqlast.FragLiteral {
				predSet, truthSet = foldSet(predSet), foldSet(truthSet)
			}
			accs[k].Add(predSet, truthSet)
		}
	}
	return accs
}

// nFragsPredictor maps a current query to top-N fragment lists per kind.
type nFragsPredictor func(p workload.Pair, n int) map[sqlast.FragmentKind][]string

// evalNFragments scores an N-fragments predictor for one N: the top-N list
// (as a set) against the full ground-truth fragment set of that kind.
func evalNFragments(pairs []workload.Pair, n int, predict nFragsPredictor) map[sqlast.FragmentKind]*metrics.PRAccumulator {
	sweep := evalNFragmentsSweep(pairs, []int{n}, predict)
	return sweep[n]
}

// evalNFragmentsSweep scores multiple N values with a single prediction
// call per pair: the predictor runs once at max(ns) and each smaller N is
// a prefix of the ranked list. This matters because each model prediction
// is a beam-search decode.
func evalNFragmentsSweep(pairs []workload.Pair, ns []int, predict nFragsPredictor) map[int]map[sqlast.FragmentKind]*metrics.PRAccumulator {
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	out := map[int]map[sqlast.FragmentKind]*metrics.PRAccumulator{}
	for _, n := range ns {
		out[n] = map[sqlast.FragmentKind]*metrics.PRAccumulator{}
		for _, k := range sqlast.FragmentKinds {
			out[n][k] = &metrics.PRAccumulator{}
		}
	}
	for _, p := range pairs {
		pred := predict(p, maxN)
		for _, n := range ns {
			for _, k := range sqlast.FragmentKinds {
				ranked := pred[k]
				truth := p.Next.Fragments.ByKind(k)
				if k == sqlast.FragLiteral {
					ranked = foldList(ranked)
					truth = foldSet(truth)
				}
				if len(ranked) > n {
					ranked = ranked[:n]
				}
				set := map[string]bool{}
				for _, f := range ranked {
					set[f] = true
				}
				out[n][k].Add(set, truth)
			}
		}
	}
	return out
}

// tmplPredictor maps a current query to a ranked top-N template list.
type tmplPredictor func(p workload.Pair, n int) []string

// evalTemplates scores ranked template predictions at one N.
func evalTemplates(pairs []workload.Pair, n int, predict tmplPredictor) *metrics.RankAccumulator {
	return evalTemplatesSweep(pairs, []int{n}, predict)[n]
}

// evalTemplatesSweep scores several N values with one prediction per pair
// (smaller N lists are prefixes of the max-N ranking).
func evalTemplatesSweep(pairs []workload.Pair, ns []int, predict tmplPredictor) map[int]*metrics.RankAccumulator {
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	out := map[int]*metrics.RankAccumulator{}
	for _, n := range ns {
		out[n] = &metrics.RankAccumulator{}
	}
	for _, p := range pairs {
		ranked := predict(p, maxN)
		for _, n := range ns {
			r := ranked
			if len(r) > n {
				r = r[:n]
			}
			out[n].Add(r, p.Next.Template)
		}
	}
	return out
}

// Prediction adapters for the three baselines and the DL models.

func naiveFragSet(p workload.Pair) *sqlast.FragmentSet { return baselines.NaiveFragmentSet(p.Cur) }

func querieFragSet(q *baselines.QueRIE) fragSetPredictor {
	return func(p workload.Pair) *sqlast.FragmentSet { return q.FragmentSet(p.Cur) }
}

func modelFragSet(rec *core.Recommender) fragSetPredictor {
	return func(p workload.Pair) *sqlast.FragmentSet {
		return rec.FragmentSetFromTokens(rec.Vocab.Encode(p.Cur.Tokens, true))
	}
}

func popularNFrags(pop *baselines.Popular) nFragsPredictor {
	return func(p workload.Pair, n int) map[sqlast.FragmentKind][]string {
		out := map[sqlast.FragmentKind][]string{}
		for _, k := range sqlast.FragmentKinds {
			out[k] = pop.TopFragments(k, n)
		}
		return out
	}
}

func modelNFrags(rec *core.Recommender, opts core.NFragmentsOptions) nFragsPredictor {
	return func(p workload.Pair, n int) map[sqlast.FragmentKind][]string {
		return rec.NFragmentsFromTokens(rec.Vocab.Encode(p.Cur.Tokens, true), n, opts)
	}
}

func popularTemplates(pop *baselines.Popular) tmplPredictor {
	return func(p workload.Pair, n int) []string { return pop.TopTemplates(n) }
}

func naiveTemplates(p workload.Pair, n int) []string {
	return []string{baselines.NaiveTemplate(p.Cur)}
}

func querieTemplates(q *baselines.QueRIE) tmplPredictor {
	return func(p workload.Pair, n int) []string { return q.TopTemplates(p.Cur, n) }
}

func modelTemplates(rec *core.Recommender) tmplPredictor {
	return func(p workload.Pair, n int) []string {
		return rec.NextTemplatesTokens(p.Cur.Tokens, n)
	}
}
