package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/seq2seq"
	"repro/internal/workload"
)

// Replay evaluates next-template prediction positionally: sessions are
// replayed in order and hit rates are bucketed by step position. This
// extends the paper's pair-level evaluation with the session view its
// Figure 1 narrative motivates (recommendations matter mid-session, while
// the user is still converging on their final query).
func (s *Suite) Replay() error {
	w := s.cfg.Out
	edges := []int{0, 1, 3, 7}
	labels := []string{"step 1", "step 2", "steps 3-4", "steps 5-8", "steps 9+"}
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		rec, err := s.Recommender(name, seq2seq.Transformer, true, true)
		if err != nil {
			return err
		}

		// Replay a slice of held-out-ish sessions (the split is by pair,
		// so session replay necessarily mixes seen and unseen pairs; the
		// comparison between methods stays fair).
		replayWL := &workload.Workload{Sessions: ds.Workload.Sessions}
		if len(replayWL.Sessions) > 60 {
			replayWL.Sessions = replayWL.Sessions[len(replayWL.Sessions)-60:]
		}

		naive := analysis.NewReplay(edges)
		naive.Run(replayWL, func(q *workload.Query) string { return q.Template })
		model := analysis.NewReplay(edges)
		model.Run(replayWL, func(q *workload.Query) string {
			top := rec.NextTemplatesTokens(q.Tokens, 1)
			if len(top) == 0 {
				return ""
			}
			return top[0]
		})

		fmt.Fprintf(w, "\n[%s] top-1 template hit rate by session position (%d sessions)\n",
			name, len(replayWL.Sessions))
		fmt.Fprintf(w, "%-12s %10s %10s\n", "Position", "naive Qi", "model")
		for b, label := range labels {
			fmt.Fprintf(w, "%-12s %10.3f %10.3f\n", label, naive.Rate(b), model.Rate(b))
		}
		fmt.Fprintf(w, "%-12s %10.3f %10.3f\n", "overall", naive.Overall(), model.Overall())
	}
	return nil
}
