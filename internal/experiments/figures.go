package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/sqlast"
)

// Fig9 prints the template popularity distribution (long tail).
func (s *Suite) Fig9() error {
	w := s.cfg.Out
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		freq := analysis.ComputeTemplateFrequency(ds.Workload)
		total := 0
		for _, f := range freq {
			total += f.Count
		}
		fmt.Fprintf(w, "\n[%s] %d template classes over %d queries\n", name, len(freq), total)
		fmt.Fprintf(w, "rank | count | cumulative%%\n%s\n", underline(30))
		cum := 0
		for i, f := range freq {
			cum += f.Count
			// Log-spaced ranks to show the tail compactly.
			if i == 0 || i == 4 || i == 9 || i == 49 || i == 99 || i == len(freq)-1 {
				fmt.Fprintf(w, "%4d | %5d | %6.1f%%\n", i+1, f.Count, 100*float64(cum)/float64(total))
			}
		}
	}
	return nil
}

// Fig10 prints the SDSS session- and pair-level distributions.
func (s *Suite) Fig10() error { return s.sessionPairFigure("sdss") }

// Fig11 prints the SQLShare session- and pair-level distributions.
func (s *Suite) Fig11() error { return s.sessionPairFigure("sqlshare") }

func (s *Suite) sessionPairFigure(name string) error {
	w := s.cfg.Out
	ds, err := s.Dataset(name)
	if err != nil {
		return err
	}
	stats := analysis.ComputeSessionStats(ds.Workload)
	sum := analysis.Summarize(stats)
	fmt.Fprintf(w, "[%s] sessions: %d\n", name, sum.Sessions)
	fmt.Fprintf(w, "  sessions with >=2 unique queries:  %5.1f%% (paper: >70%%)\n", sum.PctMultiUniqueQuery)
	fmt.Fprintf(w, "  sessions with >=2 unique templates: %5.1f%% (paper: 79%% SDSS / 68%% SQLShare)\n", sum.PctMultiTemplate)
	fmt.Fprintf(w, "  sessions with >=2 template changes: %5.1f%% (paper: 64%% SDSS / 55%% SQLShare)\n", sum.PctTemplateChangesGE2)
	fmt.Fprintf(w, "  mean queries/session: %.1f  mean unique: %.1f  mean seq changes: %.1f\n",
		sum.MeanQueries, sum.MeanUniqueQueries, sum.MeanSeqChanges)

	// (a)-(e) histograms.
	var qCounts, uqCounts, seqCh, uTmpl, tmplCh []int
	for _, st := range stats {
		qCounts = append(qCounts, st.Queries)
		uqCounts = append(uqCounts, st.UniqueQueries)
		seqCh = append(seqCh, st.SeqChanges)
		uTmpl = append(uTmpl, st.UniqueTemplates)
		tmplCh = append(tmplCh, st.TemplateChanges)
	}
	edges := []int{1, 2, 4, 9, 19}
	for _, h := range []analysis.Histogram{
		analysis.BuildHistogram("(a) queries per session", qCounts, edges),
		analysis.BuildHistogram("(b) unique queries per session", uqCounts, edges),
		analysis.BuildHistogram("(c) sequential changes per session", seqCh, edges),
		analysis.BuildHistogram("(d) unique templates per session", uTmpl, edges),
		analysis.BuildHistogram("(e) template changes per session", tmplCh, edges),
	} {
		fmt.Fprint(w, h.Render())
	}

	// (f)-(l) pair-level deltas.
	deltas := analysis.ComputePairDeltas(ds.Workload)
	psum := analysis.SummarizePairs(deltas)
	fmt.Fprintf(w, "(f) pairs sharing template: %.1f%% (paper: >50%% SDSS / ~40%% SQLShare)\n", psum.PctTemplateSame)
	fmt.Fprintf(w, "(g) pairs using more tables:    %5.1f%% (paper: 8%% SDSS / 5%% SQLShare)\n", psum.PctMoreTables)
	fmt.Fprintf(w, "(h) pairs selecting more cols:  %5.1f%% (paper: 14%% / 12%%)\n", psum.PctMoreSelected)
	fmt.Fprintf(w, "(i) pairs using more functions: %5.1f%% (paper: 10%% / 8%%)\n", psum.PctMoreFunctions)
	fmt.Fprintf(w, "(j) pairs getting longer:       %5.1f%% (paper: 16%% / 13%%)\n", psum.PctLonger)
	var dw []int
	for _, d := range deltas {
		dw = append(dw, d.DWords)
	}
	fmt.Fprint(w, analysis.BuildHistogram("(k) word-count delta distribution", dw, []int{-10, -1, 0, 9}).Render())
	return nil
}

// Fig12 prints N-fragments precision and recall for N in [1,5] per
// fragment type: popular baseline vs the DL variants, plus a search
// strategy comparison for the best model.
func (s *Suite) Fig12() error {
	w := s.cfg.Out
	ns := []int{1, 2, 3, 4, 5}
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		pairs := s.evalPairs(ds)
		pop := baselines.NewPopular(ds.Train)

		type method struct {
			label   string
			predict nFragsPredictor
		}
		methods := []method{{"popular", popularNFrags(pop)}}
		for _, v := range dlVariants() {
			rec, err := s.Recommender(name, v.arch, v.seqAware, true)
			if err != nil {
				return err
			}
			methods = append(methods, method{v.label, modelNFrags(rec, core.DefaultNFragmentsOptions())})
		}

		// One sweep per method: each model prediction is a beam decode,
		// so all N values and fragment kinds share it.
		sweeps := make([]map[int]map[sqlast.FragmentKind]*prAcc, len(methods))
		for i, m := range methods {
			sweeps[i] = evalNFragmentsSweep(pairs, ns, m.predict)
		}
		for _, kind := range sqlast.FragmentKinds {
			fmt.Fprintf(w, "\n[%s] N-%s prediction (precision / recall)\n", name, kind)
			fmt.Fprintf(w, "%-20s", "Method")
			for _, n := range ns {
				fmt.Fprintf(w, "       N=%d     ", n)
			}
			fmt.Fprintln(w)
			for i, m := range methods {
				fmt.Fprintf(w, "%-20s", m.label)
				for _, n := range ns {
					acc := sweeps[i][n][kind]
					fmt.Fprintf(w, " %5.3f/%5.3f ", acc.Precision(), acc.Recall())
				}
				fmt.Fprintln(w)
			}
		}

		// Search-strategy comparison (beam vs diverse vs sampling) on the
		// seq-aware transformer at N=5.
		rec, err := s.Recommender(name, dlVariants()[3].arch, true, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n[%s] strategy comparison, seq-aware tfm, N=5 (recall by type)\n", name)
		fmt.Fprintf(w, "%-14s %8s %8s %8s %8s\n", "Strategy", "table", "column", "function", "literal")
		for _, strat := range []core.Strategy{core.StrategyBeam, core.StrategyDiverseBeam, core.StrategySampling} {
			opts := core.DefaultNFragmentsOptions()
			opts.Strategy = strat
			accs := evalNFragments(pairs, 5, modelNFrags(rec, opts))
			fmt.Fprintf(w, "%-14s %8.3f %8.3f %8.3f %8.3f\n", strat,
				accs[sqlast.FragTable].Recall(), accs[sqlast.FragColumn].Recall(),
				accs[sqlast.FragFunction].Recall(), accs[sqlast.FragLiteral].Recall())
		}
	}
	return nil
}

// Fig13 prints N-templates accuracy and MRR for N in [1,5].
func (s *Suite) Fig13() error {
	w := s.cfg.Out
	ns := []int{1, 2, 3, 4, 5}
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		pairs := s.evalPairs(ds)
		pop := baselines.NewPopular(ds.Train)
		querie := baselines.NewQueRIE(ds.Train)

		type method struct {
			label   string
			predict tmplPredictor
		}
		methods := []method{
			{"popular", popularTemplates(pop)},
			{"naive Qi", naiveTemplates},
			{"QueRIE", querieTemplates(querie)},
		}
		for _, v := range dlVariants() {
			rec, err := s.Recommender(name, v.arch, v.seqAware, true)
			if err != nil {
				return err
			}
			methods = append(methods, method{v.label + " tuned", modelTemplates(rec)})
		}

		sweeps := make([]map[int]*rankAcc, len(methods))
		for i, m := range methods {
			sweeps[i] = evalTemplatesSweep(pairs, ns, m.predict)
		}
		for _, metric := range []string{"accuracy", "MRR", "NDCG"} {
			fmt.Fprintf(w, "\n[%s] N-templates %s\n", name, metric)
			fmt.Fprintf(w, "%-22s", "Method")
			for _, n := range ns {
				fmt.Fprintf(w, "    N=%d", n)
			}
			fmt.Fprintln(w)
			for i, m := range methods {
				fmt.Fprintf(w, "%-22s", m.label)
				for _, n := range ns {
					acc := sweeps[i][n]
					switch metric {
					case "accuracy":
						fmt.Fprintf(w, " %6.3f", acc.Accuracy())
					case "MRR":
						fmt.Fprintf(w, " %6.3f", acc.MRR())
					default:
						fmt.Fprintf(w, " %6.3f", acc.NDCG())
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}
