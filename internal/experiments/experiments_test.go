package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinySuite keeps training and evaluation very small for tests.
func tinySuite(buf *bytes.Buffer) *Suite {
	cfg := DefaultConfig(buf)
	cfg.MaxTrainPairs = 120
	cfg.EvalPairs = 12
	cfg.Epochs = 1
	cfg.DModel = 16
	return NewSuite(cfg)
}

func TestRunnersHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Runners() {
		if seen[r.ID] {
			t.Errorf("duplicate runner id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Title == "" || r.Run == nil {
			t.Errorf("incomplete runner %s", r.ID)
		}
	}
	if len(seen) != 13 {
		t.Errorf("expected 13 runners, got %d", len(seen))
	}
}

func TestUnknownDataset(t *testing.T) {
	s := NewSuite(DefaultConfig(&bytes.Buffer{}))
	if _, err := s.Dataset("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestRunRejectsUnknownIDs(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Run([]string{"table99"}); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestAnalysisExperiments(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Run([]string{"table2", "fig9", "fig10", "fig11"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Total pairs", "SQLShare-sim",
		"template classes", "queries per session", "pairs sharing template",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDatasetCached(t *testing.T) {
	s := tinySuite(&bytes.Buffer{})
	a, err := s.Dataset("sdss")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Dataset("sdss")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
}

// TestModelExperimentsSmoke runs the training-dependent tables end to end
// at minimum scale. Slow (~1-2 min on one CPU); skipped in -short.
func TestModelExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("model training in -short mode")
	}
	var buf bytes.Buffer
	cfg := DefaultConfig(&buf)
	cfg.MaxTrainPairs = 60
	cfg.EvalPairs = 6
	cfg.Epochs = 1
	cfg.DModel = 16
	s := NewSuite(cfg)
	if err := s.Run([]string{"table3", "table5", "table6", "fig12", "fig13"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"T_train", "Params",
		"fragment-set F1", "naive Qi", "QueRIE", "seq-aware tfm",
		"untuned", "N-templates accuracy", "N-templates MRR",
		"N-table prediction", "strategy comparison",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Recommenders must be cached: 4 variants + 1 untuned per dataset.
	if len(s.recs) > 10 {
		t.Errorf("recommender cache bloat: %d entries", len(s.recs))
	}
}

// TestTransferAndContextSmoke runs the two extension experiments at
// minimum scale.
func TestTransferAndContextSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("model training in -short mode")
	}
	var buf bytes.Buffer
	cfg := DefaultConfig(&buf)
	cfg.MaxTrainPairs = 50
	cfg.EvalPairs = 8
	cfg.Epochs = 1
	cfg.DModel = 16
	s := NewSuite(cfg)
	if err := s.Run([]string{"transfer", "context"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"transfer (SDSS pre-training)", "target-only", "no pre-training",
		"Q_i only", "Q_{i-1} ++ Q_i",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
