package experiments

import (
	"testing"
	"time"

	"repro/internal/sqlast"
	"repro/internal/workload"
)

func evalPair(t *testing.T, curSQL, nextSQL string) workload.Pair {
	t.Helper()
	mk := func(sql string, min int) *workload.Query {
		q := &workload.Query{SessionID: "s", StartTime: time.Date(2020, 1, 1, 0, min, 0, 0, time.UTC), SQL: sql}
		if err := q.Enrich(); err != nil {
			t.Fatal(err)
		}
		return q
	}
	return workload.Pair{Cur: mk(curSQL, 0), Next: mk(nextSQL, 1)}
}

func TestEvalFragmentSetPerfectPredictor(t *testing.T) {
	pairs := []workload.Pair{
		evalPair(t, "SELECT a FROM t", "SELECT b FROM u WHERE c > 1"),
	}
	// Oracle: return the truth itself.
	accs := evalFragmentSet(pairs, func(p workload.Pair) *sqlast.FragmentSet {
		return p.Next.Fragments
	})
	for _, k := range sqlast.FragmentKinds {
		if accs[k].F1() != 1 {
			t.Errorf("%v oracle F1: %f", k, accs[k].F1())
		}
	}
	// Nil predictions count as empty sets.
	accs = evalFragmentSet(pairs, func(p workload.Pair) *sqlast.FragmentSet { return nil })
	if accs[sqlast.FragTable].Recall() != 0 {
		t.Error("nil prediction should have zero recall on non-empty truth")
	}
}

func TestEvalNFragmentsSweepPrefixConsistency(t *testing.T) {
	pairs := []workload.Pair{
		evalPair(t, "SELECT a FROM t", "SELECT b, c FROM u"),
	}
	calls := 0
	predict := func(p workload.Pair, n int) map[sqlast.FragmentKind][]string {
		calls++
		if n != 3 {
			t.Errorf("sweep must call with max N, got %d", n)
		}
		return map[sqlast.FragmentKind][]string{
			sqlast.FragColumn: {"B", "C", "ZZZ"},
			sqlast.FragTable:  {"U"},
		}
	}
	sweep := evalNFragmentsSweep(pairs, []int{1, 3}, predict)
	if calls != 1 {
		t.Errorf("predictor called %d times, want 1", calls)
	}
	// N=1: only "B" predicted -> precision 1, recall 1/2.
	acc1 := sweep[1][sqlast.FragColumn]
	if acc1.Precision() != 1 || acc1.Recall() != 0.5 {
		t.Errorf("N=1: p=%f r=%f", acc1.Precision(), acc1.Recall())
	}
	// N=3: B, C, ZZZ -> precision 2/3, recall 1.
	acc3 := sweep[3][sqlast.FragColumn]
	if acc3.Recall() != 1 {
		t.Errorf("N=3 recall: %f", acc3.Recall())
	}
}

func TestEvalTemplatesSweepPrefix(t *testing.T) {
	pairs := []workload.Pair{
		evalPair(t, "SELECT a FROM t", "SELECT COUNT(*) FROM u"),
	}
	truth := pairs[0].Next.Template
	predict := func(p workload.Pair, n int) []string {
		return []string{"wrong-1", truth, "wrong-2"}
	}
	sweep := evalTemplatesSweep(pairs, []int{1, 2}, predict)
	if sweep[1].Accuracy() != 0 {
		t.Errorf("N=1 should miss (truth at rank 2): %f", sweep[1].Accuracy())
	}
	if sweep[2].Accuracy() != 1 || sweep[2].MRR() != 0.5 {
		t.Errorf("N=2: acc=%f mrr=%f", sweep[2].Accuracy(), sweep[2].MRR())
	}
}

func TestNaiveTemplatesAdapter(t *testing.T) {
	p := evalPair(t, "SELECT a FROM t", "SELECT b FROM t")
	got := naiveTemplates(p, 5)
	if len(got) != 1 || got[0] != p.Cur.Template {
		t.Errorf("naive adapter: %v", got)
	}
}

func TestFoldLiteral(t *testing.T) {
	cases := map[string]string{
		"17.5":     "<NUM>",
		"0":        "<NUM>",
		"1e10":     "<NUM>",
		"<NUM>":    "<NUM>",
		"'GALAXY'": "'GALAXY'",
		"NULL":     "NULL",
	}
	for in, want := range cases {
		if got := foldLiteral(in); got != want {
			t.Errorf("foldLiteral(%q) = %q want %q", in, got, want)
		}
	}
	set := foldSet(map[string]bool{"1": true, "2.5": true, "'x'": true})
	if len(set) != 2 || !set["<NUM>"] || !set["'x'"] {
		t.Errorf("foldSet: %v", set)
	}
	list := foldList([]string{"1", "'a'", "3", "'a'"})
	if len(list) != 2 || list[0] != "<NUM>" || list[1] != "'a'" {
		t.Errorf("foldList: %v", list)
	}
}
