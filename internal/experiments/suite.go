// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 analysis and Section 6 experiments) on the
// synthetic SDSS-sim and SQLShare-sim workloads. Each runner prints rows
// in the paper's format; EXPERIMENTS.md records the measured values next
// to the paper's.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/seq2seq"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/internal/workload"
)

// Config scales the experiment suite. The defaults fit a single CPU: the
// workloads keep their calibrated statistics, while training subsamples
// pairs and evaluation subsamples decode-heavy test cases.
type Config struct {
	Seed int64
	// MaxTrainPairs caps seq2seq/classifier training pairs per dataset
	// (0 = use all).
	MaxTrainPairs int
	// EvalPairs caps test pairs for decode-heavy evaluations (0 = all).
	EvalPairs int
	// Epochs for seq2seq training; classifier uses Epochs-1 (min 1).
	Epochs int
	// DModel is the model width (paper uses 512-1024; CPU scale 32).
	DModel int
	// Out receives the rendered tables.
	Out io.Writer
}

// DefaultConfig returns the CPU-scale suite configuration.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Seed:          17,
		MaxTrainPairs: 1000,
		EvalPairs:     60,
		Epochs:        4,
		DModel:        32,
		Out:           out,
	}
}

// modelKey identifies a cached trained recommender.
type modelKey struct {
	dataset  string
	arch     seq2seq.Arch
	seqAware bool
	fineTune bool
	freeze   bool
}

// Suite caches datasets and trained models across experiment runners so
// one invocation can produce every table without retraining.
type Suite struct {
	cfg      Config
	datasets map[string]*core.Dataset
	recs     map[modelKey]*core.Recommender
}

// NewSuite builds an empty suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{cfg: cfg, datasets: map[string]*core.Dataset{}, recs: map[modelKey]*core.Recommender{}}
}

// DatasetNames lists the two evaluation workloads.
var DatasetNames = []string{"sdss", "sqlshare"}

// Dataset generates (once) and returns the prepared workload.
func (s *Suite) Dataset(name string) (*core.Dataset, error) {
	if ds, ok := s.datasets[name]; ok {
		return ds, nil
	}
	var prof synth.Profile
	switch name {
	case "sdss":
		prof = synth.SDSSProfile()
	case "sqlshare":
		prof = synth.SQLShareProfile()
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	wl := synth.Generate(prof, s.cfg.Seed)
	ds, err := core.Prepare(wl, core.DefaultPrepConfig())
	if err != nil {
		return nil, err
	}
	s.datasets[name] = ds
	return ds, nil
}

// trainOpts builds training options from the suite configuration.
func (s *Suite) trainOpts() train.Options {
	opts := train.DefaultOptions()
	opts.Epochs = s.cfg.Epochs
	opts.Patience = 2
	return opts
}

// Recommender trains (once) and returns the model for the given variant.
func (s *Suite) Recommender(dataset string, arch seq2seq.Arch, seqAware, fineTune bool) (*core.Recommender, error) {
	return s.recommender(modelKey{dataset: dataset, arch: arch, seqAware: seqAware, fineTune: fineTune})
}

func (s *Suite) recommender(key modelKey) (*core.Recommender, error) {
	if rec, ok := s.recs[key]; ok {
		return rec, nil
	}
	ds, err := s.Dataset(key.dataset)
	if err != nil {
		return nil, err
	}
	tds := *ds
	if s.cfg.MaxTrainPairs > 0 && len(tds.Train) > s.cfg.MaxTrainPairs {
		tds.Train = tds.Train[:s.cfg.MaxTrainPairs]
	}
	cfg := core.DefaultTrainConfig(key.arch)
	cfg.SeqAware = key.seqAware
	cfg.FineTune = key.fineTune
	cfg.FreezeEncoder = key.freeze
	cfg.SeqOpts = s.trainOpts()
	cfg.ClsOpts = s.trainOpts()
	if cfg.ClsOpts.Epochs > 1 {
		cfg.ClsOpts.Epochs--
	}
	mcfg := seq2seq.DefaultConfig(key.arch, 0)
	mcfg.DModel = s.cfg.DModel
	mcfg.FFHidden = 2 * s.cfg.DModel
	cfg.Model = &mcfg
	cfg.Seed = s.cfg.Seed
	rec, err := core.Train(&tds, cfg)
	if err != nil {
		return nil, err
	}
	s.recs[key] = rec
	return rec, nil
}

// evalPairs returns the (possibly subsampled) test pairs of a dataset.
func (s *Suite) evalPairs(ds *core.Dataset) []workload.Pair {
	pairs := ds.Test
	if s.cfg.EvalPairs > 0 && len(pairs) > s.cfg.EvalPairs {
		pairs = pairs[:s.cfg.EvalPairs]
	}
	return pairs
}

// Runner is one experiment entry.
type Runner struct {
	ID    string
	Title string
	Run   func(*Suite) error
}

// Runners lists every reproducible table and figure in execution order.
func Runners() []Runner {
	return []Runner{
		{ID: "table2", Title: "Table 2: workload statistics", Run: (*Suite).Table2},
		{ID: "fig9", Title: "Figure 9: template popularity long tail", Run: (*Suite).Fig9},
		{ID: "fig10", Title: "Figure 10: SDSS session- and pair-level analysis", Run: (*Suite).Fig10},
		{ID: "fig11", Title: "Figure 11: SQLShare session- and pair-level analysis", Run: (*Suite).Fig11},
		{ID: "table3", Title: "Table 3: model statistics", Run: (*Suite).Table3},
		{ID: "table5", Title: "Table 5: fragment-set prediction F1", Run: (*Suite).Table5},
		{ID: "fig12", Title: "Figure 12: N-fragments precision/recall", Run: (*Suite).Fig12},
		{ID: "table6", Title: "Table 6: top-1 template prediction accuracy", Run: (*Suite).Table6},
		{ID: "fig13", Title: "Figure 13: N-templates accuracy and MRR", Run: (*Suite).Fig13},
		{ID: "transfer", Title: "Transfer: cross-workload encoder pre-training (paper Section 8)", Run: (*Suite).Transfer},
		{ID: "context", Title: "Context: two-query encoder input (paper Section 2 extension)", Run: (*Suite).Context},
		{ID: "replay", Title: "Replay: positional hit rate across session steps", Run: (*Suite).Replay},
		{ID: "structural", Title: "Structural: tree-edit-distance retrieval vs fragment CF (paper Example 2)", Run: (*Suite).Structural},
	}
}

// Run executes the selected experiment ids ("all" runs everything).
func (s *Suite) Run(ids []string) error {
	want := map[string]bool{}
	all := false
	for _, id := range ids {
		if id == "all" {
			all = true
		}
		want[id] = true
	}
	known := map[string]bool{}
	for _, r := range Runners() {
		known[r.ID] = true
	}
	var unknown []string
	for id := range want {
		if id != "all" && !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("experiments: unknown ids %v", unknown)
	}
	for _, r := range Runners() {
		if !all && !want[r.ID] {
			continue
		}
		fmt.Fprintf(s.cfg.Out, "\n=== %s ===\n", r.Title)
		if err := r.Run(s); err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ID, err)
		}
	}
	return nil
}
