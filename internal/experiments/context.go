package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seq2seq"
	"repro/internal/workload"
)

// Context evaluates the paper's Section 2 extension: concatenating the
// previous query Q_{i-1} into the encoder input. It trains a single-query
// and a two-query transformer on each dataset and compares next-template
// accuracy. The paper argues the immediate predecessor Q_i carries most of
// the signal; this runner quantifies how much the extra query adds at our
// scale.
func (s *Suite) Context() error {
	w := s.cfg.Out
	fmt.Fprintf(w, "%-10s %-22s %8s %8s\n", "Dataset", "Encoder input", "acc@1", "acc@5")
	for _, name := range DatasetNames {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		pairs := s.evalPairs(ds)
		for _, useCtx := range []bool{false, true} {
			cfg := core.DefaultTrainConfig(seq2seq.Transformer)
			cfg.SeqOpts = s.trainOpts()
			cfg.ClsOpts = s.trainOpts()
			cfg.UseContext = useCtx
			cfg.MaxTrainPairs = s.cfg.MaxTrainPairs
			mcfg := seq2seq.DefaultConfig(seq2seq.Transformer, 0)
			mcfg.DModel = s.cfg.DModel
			mcfg.FFHidden = 2 * s.cfg.DModel
			cfg.Model = &mcfg
			cfg.Seed = s.cfg.Seed
			rec, err := core.Train(ds, cfg)
			if err != nil {
				return err
			}
			predict := modelTemplates(rec)
			label := "Q_i only"
			if useCtx {
				label = "Q_{i-1} ++ Q_i"
				predict = func(p workload.Pair, n int) []string {
					var prev []string
					if p.Prev != nil {
						prev = p.Prev.Tokens
					}
					return rec.Classifier.PredictTopN(core.EncodeContext(rec.Vocab, prev, p.Cur.Tokens), n)
				}
			}
			sweep := evalTemplatesSweep(pairs, []int{1, 5}, predict)
			fmt.Fprintf(w, "%-10s %-22s %8.3f %8.3f\n", name, label,
				sweep[1].Accuracy(), sweep[5].Accuracy())
		}
	}
	return nil
}
