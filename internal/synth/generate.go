package synth

import (
	"fmt"
	"time"

	"repro/internal/workload"
)

// Profile parameterizes a synthetic workload. The two stock profiles,
// SDSSProfile and SQLShareProfile, are calibrated against the paper's
// Table 2 and Figures 10/11 (scaled down so CPU training stays feasible).
type Profile struct {
	Name     string
	Sessions int
	// MinLen/ContinueP/MaxLen shape the per-session query count
	// (geometric tail).
	MinLen    int
	ContinueP float64
	MaxLen    int
	// Datasets > 1 gives every session its own (recycled) user dataset,
	// reproducing SQLShare's multi-tenant isolation. 1 means the shared
	// SDSS schema.
	Datasets int
	// OpWeights orders: rerun, tweakLiteral, changeTable, addColumn,
	// dropColumn, starToColumns, addPredicate, dropPredicate, addJoin,
	// toAggregate, addTopOrder, toggleDistinct, newIntent.
	OpWeights []float64
	// ScriptedP is the probability that a step follows the deterministic
	// per-shape script instead of a random draw. Real users follow
	// recurring exploration recipes (probe -> refine -> join ->
	// aggregate); that recipe structure is what makes the next query
	// predictable *from the current one*, the property the paper's
	// seq-aware models exploit. Zero disables scripting.
	ScriptedP float64
}

// ops must match Profile.OpWeights order.
var ops = []op{
	opRerun, opTweakLiteral, opChangeTable, opAddColumn, opDropColumn,
	opStarToColumns, opAddPredicate, opDropPredicate, opAddJoin,
	opToAggregate, opAddTopOrder, opToggleDistinct, opNewIntent,
}

// SDSSProfile approximates the SDSS workload at 1/150 scale: one shared
// schema, long sessions with many sequential changes, heavy duplication,
// ~45% template-change rate between consecutive queries (paper: >40%
// different, >50% same).
func SDSSProfile() Profile {
	return Profile{
		Name:      "sdss-sim",
		Sessions:  420,
		MinLen:    2,
		ContinueP: 0.90,
		MaxLen:    80,
		Datasets:  1,
		//        rerun lit  chTb addC drpC star addP drpP join aggr top  dist new
		OpWeights: []float64{38, 16, 12, 4, 5, 2, 8, 7, 4, 7, 4, 1, 5},
		ScriptedP: 0.55,
	}
}

// SQLShareProfile approximates SQLShare: 64 user datasets, short sessions,
// higher template-change rate (~62%), little cross-session sharing.
func SQLShareProfile() Profile {
	return Profile{
		Name:      "sqlshare-sim",
		Sessions:  220,
		MinLen:    2,
		ContinueP: 0.72,
		MaxLen:    24,
		Datasets:  64,
		//        rerun lit  chTb addC drpC star addP drpP join aggr top  dist new
		OpWeights: []float64{26, 16, 5, 5, 6, 3, 8, 7, 3, 8, 4, 2, 8},
		ScriptedP: 0.40,
	}
}

// Generate builds a deterministic synthetic workload for the profile.
func Generate(p Profile, seed int64) *workload.Workload {
	g := NewRNG(seed)
	wl := &workload.Workload{Name: p.Name, Datasets: p.Datasets}

	var shared *Schema
	var userSchemas []*Schema
	if p.Datasets <= 1 {
		shared = SDSSSchema()
	} else {
		userSchemas = make([]*Schema, p.Datasets)
		for i := range userSchemas {
			userSchemas[i] = UserDataset(i, g)
		}
	}

	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	for si := 0; si < p.Sessions; si++ {
		schema := shared
		dataset := ""
		if shared == nil {
			ds := userSchemas[g.Intn(len(userSchemas))]
			schema = ds
			dataset = ds.Dataset
		}
		id := fmt.Sprintf("%s-s%05d", p.Name, si)
		sess := &workload.Session{ID: id}
		n := g.Geometric(p.MinLen, p.ContinueP, p.MaxLen)
		q := newInitialQuery(g, schema)
		start := base.Add(time.Duration(si) * time.Hour)
		for qi := 0; qi < n; qi++ {
			sess.Queries = append(sess.Queries, &workload.Query{
				SessionID: id,
				StartTime: start.Add(time.Duration(qi) * time.Minute),
				SQL:       q.SQL(),
				Dataset:   dataset,
			})
			// Evolve for the next step. With probability ScriptedP the
			// op is the deterministic script move for the current query
			// shape; otherwise (and whenever the scripted op cannot
			// apply) retry random ops until one applies.
			next := q.clone()
			applied := false
			if g.Bool(p.ScriptedP) {
				applied = scriptedApply(g, next)
			}
			for attempt := 0; !applied && attempt < 20; attempt++ {
				oi := g.Weighted(p.OpWeights)
				applied = ops[oi](g, next)
			}
			q = next
		}
		wl.Sessions = append(wl.Sessions, sess)
	}
	return wl
}

// GenerateRecords builds the workload and returns it as JSONL records with
// dataset labels, for cmd/qrec-genworkload.
func GenerateRecords(p Profile, seed int64) (*workload.Workload, []workload.Record) {
	wl := Generate(p, seed)
	var recs []workload.Record
	for _, s := range wl.Sessions {
		for _, q := range s.Queries {
			recs = append(recs, workload.Record{
				SessionID: q.SessionID,
				StartTime: q.StartTime,
				SQL:       q.SQL,
				Dataset:   q.Dataset,
			})
		}
	}
	return wl, recs
}
