package synth

import (
	"fmt"
	"strings"
)

// queryState is a mutable structured query the session generator evolves
// step by step. Rendering it yields valid SQL for our parser by
// construction.
type queryState struct {
	schema   *Schema
	table    string   // driving table
	joins    []Join   // applied joins (Left is always reachable from table chain)
	selects  []string // selected column expressions ("ra", "COUNT(*)", ...)
	star     bool     // SELECT *
	distinct bool
	top      int // 0 = none
	preds    []string
	groupBy  []string
	orderBy  string // "" = none
	orderDsc bool
}

func (q *queryState) clone() *queryState {
	c := *q
	c.joins = append([]Join(nil), q.joins...)
	c.selects = append([]string(nil), q.selects...)
	c.preds = append([]string(nil), q.preds...)
	c.groupBy = append([]string(nil), q.groupBy...)
	return &c
}

// tablesInPlay lists the driving table plus joined tables.
func (q *queryState) tablesInPlay() []string {
	out := []string{q.table}
	for _, j := range q.joins {
		if j.Left != q.table {
			out = append(out, j.Left)
		}
		out = append(out, j.Right)
	}
	return out
}

// randomColumn picks a column from any table in play; numericOnly filters.
func (q *queryState) randomColumn(g *RNG, numericOnly bool) (string, bool) {
	tables := q.tablesInPlay()
	for attempt := 0; attempt < 12; attempt++ {
		t := q.schema.TableByName(Pick(g, tables))
		if t == nil || len(t.Columns) == 0 {
			continue
		}
		c := Pick(g, t.Columns)
		if numericOnly && !c.Numeric {
			continue
		}
		return c.Name, c.Numeric
	}
	return "", false
}

// SQL renders the state to a SQL string.
func (q *queryState) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.distinct {
		sb.WriteString("DISTINCT ")
	}
	if q.top > 0 {
		fmt.Fprintf(&sb, "TOP %d ", q.top)
	}
	if q.star {
		sb.WriteString("*")
	} else {
		sb.WriteString(strings.Join(q.selects, ", "))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.table)
	for _, j := range q.joins {
		fmt.Fprintf(&sb, " JOIN %s ON %s.%s = %s.%s", j.Right, j.Left, j.LeftCol, j.Right, j.RightCol)
	}
	if len(q.preds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(q.preds, " AND "))
	}
	if len(q.groupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(q.groupBy, ", "))
	}
	if q.orderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(q.orderBy)
		if q.orderDsc {
			sb.WriteString(" DESC")
		}
	}
	return sb.String()
}

// literal renders a random predicate literal. Numeric columns draw small
// rounded values so literal reuse happens across queries (a property the
// popular baseline depends on); text columns draw from a tiny pool.
func literal(g *RNG, numeric bool) string {
	if numeric {
		vals := []string{"0", "1", "2", "3", "5", "10", "0.1", "0.3", "0.5", "17.5", "100", "180.0", "200"}
		return Pick(g, vals)
	}
	vals := []string{"'GALAXY'", "'STAR'", "'QSO'", "'unknown'", "'primary'", "'A'", "'B'", "'%x%'", "'ok'", "'science'"}
	return Pick(g, vals)
}

func cmpOp(g *RNG) string { return Pick(g, []string{"=", ">", "<", ">=", "<="}) }

// newInitialQuery starts a session: mostly simple explorations on one
// table, sometimes with a predicate, occasionally a function probe. Table
// choice is Zipf-biased so popular tables dominate, giving the long-tail
// template/fragment popularity of Figure 9.
func newInitialQuery(g *RNG, schema *Schema) *queryState {
	q := &queryState{schema: schema}
	q.table = schema.Tables[g.Zipf(len(schema.Tables), 1.4)].Name
	t := schema.TableByName(q.table)
	switch g.Weighted([]float64{3, 3, 2, 1, 1}) {
	case 0: // SELECT * (often TOP-limited)
		q.star = true
		if g.Bool(0.5) {
			q.top = Pick(g, []int{5, 10, 100})
		}
	case 1: // a few columns
		n := 1 + g.Intn(3)
		for i := 0; i < n && i < len(t.Columns); i++ {
			q.selects = appendUnique(q.selects, Pick(g, t.Columns).Name)
		}
	case 2: // columns + predicate
		q.selects = appendUnique(q.selects, Pick(g, t.Columns).Name)
		c := Pick(g, t.Columns)
		q.preds = append(q.preds, fmt.Sprintf("%s %s %s", c.Name, cmpOp(g), literal(g, c.Numeric)))
	case 3: // count probe
		q.selects = []string{"COUNT(*)"}
	default: // domain function probe
		fn := Pick(g, schema.Functions)
		if strings.HasPrefix(fn, "dbo.") {
			q.selects = []string{fmt.Sprintf("%s(%s)", fn, "1")}
		} else {
			c := Pick(g, t.Columns)
			q.selects = []string{fmt.Sprintf("%s(%s)", fn, c.Name)}
		}
	}
	return q
}

func appendUnique(xs []string, x string) []string {
	for _, e := range xs {
		if e == x {
			return xs
		}
	}
	return append(xs, x)
}

// Evolution operators. Each op mutates a clone and reports whether it
// could apply. Ops that cannot apply leave the query unchanged and the
// generator retries with another op.

type op func(*RNG, *queryState) bool

// opRerun re-issues the same query (duplicate pairs are a documented SDSS
// trait: 814,855 total vs 187,762 unique pairs).
func opRerun(*RNG, *queryState) bool { return true }

// opTweakLiteral swaps one predicate's literal, keeping the template.
func opTweakLiteral(g *RNG, q *queryState) bool {
	if len(q.preds) == 0 {
		return false
	}
	i := g.Intn(len(q.preds))
	parts := strings.Fields(q.preds[i])
	switch {
	case len(parts) == 3 && parts[1] != "IS": // col op literal / col LIKE lit
		numeric := !strings.HasPrefix(parts[2], "'")
		q.preds[i] = parts[0] + " " + parts[1] + " " + literal(g, numeric)
	case len(parts) == 5 && parts[1] == "BETWEEN":
		q.preds[i] = fmt.Sprintf("%s BETWEEN %s AND %s", parts[0], literal(g, true), literal(g, true))
	default:
		return false
	}
	return true
}

// opChangeTable swaps the driving table for a schema sibling, keeping the
// structure (same template, different table fragment) when possible.
func opChangeTable(g *RNG, q *queryState) bool {
	if len(q.joins) > 0 {
		return false
	}
	next := schemaSibling(g, q.schema, q.table)
	if next == "" || next == q.table {
		return false
	}
	nt := q.schema.TableByName(next)
	// Only swap when the selected/pred columns exist on the new table.
	colsOK := func(expr string) bool {
		name := baseColumn(expr)
		if name == "" || name == "*" {
			return true
		}
		for _, c := range nt.Columns {
			if c.Name == name {
				return true
			}
		}
		return false
	}
	for _, sel := range q.selects {
		if !colsOK(sel) {
			return false
		}
	}
	for _, p := range q.preds {
		if !colsOK(p) {
			return false
		}
	}
	q.table = next
	return true
}

// baseColumn extracts the leading column identifier of a simple expression.
func baseColumn(expr string) string {
	expr = strings.TrimSpace(expr)
	if i := strings.IndexAny(expr, " (="); i >= 0 {
		head := expr[:i]
		if strings.Contains(expr, "(") && !strings.Contains(head, ".") {
			return "" // function call; treat as always OK
		}
		return head
	}
	return expr
}

// schemaSibling returns a different table that shares at least half of the
// current table's column names, or any random table as fallback.
func schemaSibling(g *RNG, s *Schema, table string) string {
	cur := s.TableByName(table)
	if cur == nil {
		return ""
	}
	curCols := map[string]bool{}
	for _, c := range cur.Columns {
		curCols[c.Name] = true
	}
	var sibs []string
	for _, t := range s.Tables {
		if t.Name == table {
			continue
		}
		shared := 0
		for _, c := range t.Columns {
			if curCols[c.Name] {
				shared++
			}
		}
		if shared*2 >= len(cur.Columns) {
			sibs = append(sibs, t.Name)
		}
	}
	if len(sibs) == 0 {
		return ""
	}
	return Pick(g, sibs)
}

// opAddColumn adds a selected column (template changes: one more Column).
func opAddColumn(g *RNG, q *queryState) bool {
	if q.star || len(q.groupBy) > 0 {
		return false
	}
	c, _ := q.randomColumn(g, false)
	if c == "" {
		return false
	}
	before := len(q.selects)
	q.selects = appendUnique(q.selects, c)
	return len(q.selects) > before
}

// opDropColumn removes a selected column.
func opDropColumn(g *RNG, q *queryState) bool {
	if q.star || len(q.selects) < 2 {
		return false
	}
	i := g.Intn(len(q.selects))
	q.selects = append(q.selects[:i], q.selects[i+1:]...)
	return true
}

// opStarToColumns narrows SELECT * to explicit columns.
func opStarToColumns(g *RNG, q *queryState) bool {
	if !q.star {
		return false
	}
	t := q.schema.TableByName(q.table)
	if t == nil {
		return false
	}
	q.star = false
	n := 1 + g.Intn(3)
	for i := 0; i < n && i < len(t.Columns); i++ {
		q.selects = appendUnique(q.selects, Pick(g, t.Columns).Name)
	}
	return len(q.selects) > 0
}

// opAddPredicate appends one WHERE condition.
func opAddPredicate(g *RNG, q *queryState) bool {
	if len(q.preds) >= 4 {
		return false
	}
	c, numeric := q.randomColumn(g, false)
	if c == "" {
		return false
	}
	switch {
	case g.Bool(0.12):
		q.preds = append(q.preds, fmt.Sprintf("%s BETWEEN %s AND %s", c, literal(g, true), literal(g, true)))
	case !numeric && g.Bool(0.3):
		q.preds = append(q.preds, fmt.Sprintf("%s LIKE %s", c, literal(g, false)))
	case g.Bool(0.06):
		q.preds = append(q.preds, fmt.Sprintf("%s IS NOT NULL", c))
	default:
		q.preds = append(q.preds, fmt.Sprintf("%s %s %s", c, cmpOp(g), literal(g, numeric)))
	}
	return true
}

// opDropPredicate removes one WHERE condition.
func opDropPredicate(g *RNG, q *queryState) bool {
	if len(q.preds) == 0 {
		return false
	}
	i := g.Intn(len(q.preds))
	q.preds = append(q.preds[:i], q.preds[i+1:]...)
	return true
}

// opAddJoin extends FROM with a schema join reachable from tables in play.
func opAddJoin(g *RNG, q *queryState) bool {
	if len(q.joins) >= 2 || q.star {
		return false
	}
	inPlay := map[string]bool{}
	for _, t := range q.tablesInPlay() {
		inPlay[t] = true
	}
	var candidates []Join
	for _, j := range q.schema.Joins {
		if inPlay[j.Left] && !inPlay[j.Right] {
			candidates = append(candidates, j)
		}
		if inPlay[j.Right] && !inPlay[j.Left] {
			// flip so Left is the in-play side
			candidates = append(candidates, Join{Left: j.Right, Right: j.Left, LeftCol: j.RightCol, RightCol: j.LeftCol})
		}
	}
	if len(candidates) == 0 {
		return false
	}
	j := Pick(g, candidates)
	q.joins = append(q.joins, j)
	// Qualify any ambiguous plain selects with the driving table to stay
	// unambiguous; and often pull a column from the new table.
	if g.Bool(0.7) && !q.star {
		nt := q.schema.TableByName(j.Right)
		if nt != nil && len(nt.Columns) > 0 {
			q.selects = appendUnique(q.selects, j.Right+"."+Pick(g, nt.Columns).Name)
		}
	}
	return true
}

// opToAggregate rewrites the query into a GROUP BY aggregation, a common
// exploration move (count per class).
func opToAggregate(g *RNG, q *queryState) bool {
	if len(q.groupBy) > 0 {
		return false
	}
	c, _ := q.randomColumn(g, false)
	if c == "" {
		return false
	}
	agg := Pick(g, []string{"COUNT(*)", "COUNT(DISTINCT %s)", "AVG(%s)", "MAX(%s)", "MIN(%s)"})
	var aggExpr string
	if strings.Contains(agg, "%s") {
		ac, numeric := q.randomColumn(g, true)
		if ac == "" || (!numeric && !strings.HasPrefix(agg, "COUNT")) {
			aggExpr = "COUNT(*)"
		} else {
			aggExpr = fmt.Sprintf(agg, ac)
		}
	} else {
		aggExpr = agg
	}
	q.star = false
	q.distinct = false
	q.selects = []string{c, aggExpr}
	q.groupBy = []string{c}
	if g.Bool(0.4) {
		q.orderBy = aggExpr
		q.orderDsc = true
	} else {
		q.orderBy = ""
	}
	return true
}

// opAddTopOrder adds TOP + ORDER BY (template change).
func opAddTopOrder(g *RNG, q *queryState) bool {
	if q.top > 0 && q.orderBy != "" {
		return false
	}
	q.top = Pick(g, []int{5, 10, 20, 100})
	if c, _ := q.randomColumn(g, true); c != "" {
		q.orderBy = c
		q.orderDsc = g.Bool(0.6)
	}
	return true
}

// opToggleDistinct flips DISTINCT (template change).
func opToggleDistinct(g *RNG, q *queryState) bool {
	if q.star || len(q.groupBy) > 0 {
		return false
	}
	q.distinct = !q.distinct
	return true
}

// opNewIntent abandons the thread and starts fresh (template usually
// changes, fragments usually change).
func opNewIntent(g *RNG, q *queryState) bool {
	*q = *newInitialQuery(g, q.schema)
	return true
}

// scriptedApply advances the query along the canonical exploration
// recipe:
//
//	probe (*) -> narrow to columns -> filter -> join -> aggregate
//	          -> rank (TOP/ORDER) -> refine thresholds
//
// Unlike the random ops, each scripted move has a *fixed structural form*
// (always two columns, always a simple ">" comparison, always COUNT(*)
// ranked descending), so the next query's template is a near-deterministic
// function of the current query's shape. That recipe structure is what
// makes real workloads predictable beyond "repeat the same template" —
// the signal the paper's seq-aware models learn. Fragment choices (which
// column, which literal) stay random. Reports whether a move applied.
func scriptedApply(g *RNG, q *queryState) bool {
	switch {
	case q.star:
		// Narrow SELECT * to exactly two concrete columns.
		t := q.schema.TableByName(q.table)
		if t == nil || len(t.Columns) < 2 {
			return false
		}
		q.star = false
		q.top = 0
		q.selects = nil
		q.selects = appendUnique(q.selects, Pick(g, t.Columns).Name)
		for len(q.selects) < 2 {
			q.selects = appendUnique(q.selects, Pick(g, t.Columns).Name)
		}
		return true
	case len(q.groupBy) > 0 && q.orderBy == "":
		// Rank the aggregate: TOP 10 ordered by the aggregate, DESC.
		q.top = 10
		q.orderBy = q.selects[len(q.selects)-1]
		q.orderDsc = true
		return true
	case len(q.groupBy) > 0:
		// Refine thresholds without changing structure.
		return opTweakLiteral(g, q)
	case len(q.preds) == 0:
		// Start filtering: one simple numeric comparison.
		c, _ := q.randomColumn(g, true)
		if c == "" {
			return false
		}
		q.preds = append(q.preds, c+" > "+literal(g, true))
		return true
	case len(q.preds) == 1 && len(q.joins) == 0 && !q.distinct && q.top == 0:
		// Widen to a related table, always pulling one of its columns.
		inPlay := map[string]bool{q.table: true}
		var candidates []Join
		for _, j := range q.schema.Joins {
			if inPlay[j.Left] && !inPlay[j.Right] {
				candidates = append(candidates, j)
			} else if inPlay[j.Right] && !inPlay[j.Left] {
				candidates = append(candidates, Join{Left: j.Right, Right: j.Left, LeftCol: j.RightCol, RightCol: j.LeftCol})
			}
		}
		if len(candidates) == 0 || q.star {
			return false
		}
		j := Pick(g, candidates)
		q.joins = append(q.joins, j)
		nt := q.schema.TableByName(j.Right)
		if nt == nil || len(nt.Columns) == 0 {
			return true
		}
		q.selects = appendUnique(q.selects, j.Right+"."+Pick(g, nt.Columns).Name)
		return true
	default:
		// Summarize: fixed grouped COUNT(*) ranked descending.
		c, _ := q.randomColumn(g, false)
		if c == "" {
			return false
		}
		q.star = false
		q.distinct = false
		q.top = 0
		q.selects = []string{c, "COUNT(*)"}
		q.groupBy = []string{c}
		q.orderBy = ""
		q.orderDsc = false
		return true
	}
}
