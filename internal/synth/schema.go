// Package synth generates synthetic SDSS-like and SQLShare-like query
// workloads. The real logs are proprietary; these generators reproduce the
// distributional properties the paper's analysis identifies as load-bearing
// (Table 2, Figures 9-11): schema shape (one shared astronomy schema vs 64
// disjoint user datasets), session-length and duplication profiles, the
// same-template pair rate, and long-tailed template popularity.
package synth

import "fmt"

// Column describes one schema column.
type Column struct {
	Name    string
	Numeric bool
}

// Table is a named table with columns.
type Table struct {
	Name    string
	Columns []Column
}

// Join describes a joinable pair of tables and the key columns used in the
// ON condition.
type Join struct {
	Left, Right       string
	LeftCol, RightCol string
}

// Schema is a database schema a session generator can draw from.
type Schema struct {
	Dataset   string // dataset label (empty for the shared SDSS schema)
	Tables    []Table
	Joins     []Join
	Functions []string // domain (dbo.*) functions callable in queries
}

// TableByName finds a table.
func (s *Schema) TableByName(name string) *Table {
	for i := range s.Tables {
		if s.Tables[i].Name == name {
			return &s.Tables[i]
		}
	}
	return nil
}

// JoinsFor lists joins where the given table participates.
func (s *Schema) JoinsFor(table string) []Join {
	var out []Join
	for _, j := range s.Joins {
		if j.Left == table || j.Right == table {
			out = append(out, j)
		}
	}
	return out
}

func numCols(names ...string) []Column {
	out := make([]Column, len(names))
	for i, n := range names {
		out[i] = Column{Name: n, Numeric: true}
	}
	return out
}

func withText(cols []Column, names ...string) []Column {
	for _, n := range names {
		cols = append(cols, Column{Name: n})
	}
	return cols
}

// SDSSSchema returns the shared astronomy schema used by every SDSS-sim
// session. It mirrors the SkyServer catalog shape: 56 tables dominated by
// photometric and spectroscopic object tables, ~8-16 columns each, and a
// small set of dbo.* helper functions (paper Table 2: 56 tables, 3,756
// columns, 110 functions — column and function counts scale down with the
// synthetic workload size).
func SDSSSchema() *Schema {
	photo := append(numCols("objID", "ra", "dec", "u", "g", "r", "i", "z",
		"psfMag_u", "psfMag_g", "psfMag_r", "psfMag_i", "psfMag_z",
		"petroRad_r", "type", "flags", "run", "rerun", "camcol", "field"), Column{Name: "clean", Numeric: true})
	spec := withText(numCols("specObjID", "bestObjID", "z", "zErr", "zConf",
		"plate", "mjd", "fiberID", "ra", "dec", "primTarget"), "class", "subClass")
	s := &Schema{
		Tables: []Table{
			{Name: "PhotoObj", Columns: photo},
			{Name: "PhotoObjAll", Columns: photo},
			{Name: "PhotoPrimary", Columns: photo},
			{Name: "PhotoSecondary", Columns: photo},
			{Name: "PhotoTag", Columns: numCols("objID", "ra", "dec", "u", "g", "r", "i", "z", "type", "mode")},
			{Name: "Star", Columns: photo},
			{Name: "Galaxy", Columns: photo},
			{Name: "Unknown", Columns: numCols("objID", "ra", "dec", "type")},
			{Name: "Sky", Columns: numCols("objID", "ra", "dec")},
			{Name: "SpecObj", Columns: spec},
			{Name: "SpecObjAll", Columns: spec},
			{Name: "SpecPhoto", Columns: numCols("specObjID", "objID", "z", "ra", "dec", "modelMag_u", "modelMag_g", "modelMag_r")},
			{Name: "SpecPhotoAll", Columns: numCols("specObjID", "objID", "z", "ra", "dec")},
			{Name: "SpecLine", Columns: numCols("specLineID", "specObjID", "wave", "waveErr", "sigma", "height")},
			{Name: "SpecLineAll", Columns: numCols("specLineID", "specObjID", "wave", "sigma")},
			{Name: "SpecLineIndex", Columns: numCols("specLineIndexID", "specObjID", "ew", "ewErr", "mag")},
			{Name: "SpecLineNames", Columns: withText(numCols("value"), "name")},
			{Name: "Neighbors", Columns: numCols("objID", "neighborObjID", "distance", "type", "neighborType", "mode")},
			{Name: "Zone", Columns: numCols("objID", "zoneID", "ra", "dec")},
			{Name: "Match", Columns: numCols("objID1", "objID2", "distance", "miss")},
			{Name: "MatchHead", Columns: numCols("objID", "averageRa", "averageDec", "matchCount")},
			{Name: "PlateX", Columns: withText(numCols("plateID", "plate", "mjd", "ra", "dec", "tile"), "program")},
			{Name: "Tile", Columns: numCols("tile", "ra", "dec", "untiled")},
			{Name: "TileAll", Columns: numCols("tile", "ra", "dec")},
			{Name: "TilingRun", Columns: withText(numCols("tileRun", "tries"), "programName")},
			{Name: "Field", Columns: numCols("fieldID", "run", "rerun", "camcol", "field", "nObjects", "nStars", "nGalaxy")},
			{Name: "FieldProfile", Columns: numCols("fieldID", "bin", "band", "profMean")},
			{Name: "Frame", Columns: numCols("fieldID", "zoom", "run", "rerun", "camcol", "field", "stripe", "a", "b")},
			{Name: "Segment", Columns: numCols("segmentID", "run", "rerun", "camcol", "startField", "nFields")},
			{Name: "Chunk", Columns: withText(numCols("chunkID", "stripe", "startMu"), "exportVersion")},
			{Name: "StripeDefs", Columns: numCols("stripe", "eta", "lambdaMin", "lambdaMax")},
			{Name: "Run", Columns: numCols("run", "stripe", "strip", "mjd")},
			{Name: "Mask", Columns: numCols("maskID", "ra", "dec", "radius", "type")},
			{Name: "MaskedObject", Columns: numCols("objID", "maskID", "type")},
			{Name: "Region", Columns: withText(numCols("regionID", "area"), "type", "comment")},
			{Name: "RegionConvex", Columns: numCols("regionID", "convexID", "patch")},
			{Name: "HalfSpace", Columns: numCols("constraintID", "regionID", "x", "y", "z", "c")},
			{Name: "BestTarget2Sector", Columns: numCols("objID", "regionID", "sectorID")},
			{Name: "Sector", Columns: numCols("sectorID", "tiles", "area")},
			{Name: "Sector2Tile", Columns: numCols("sectorID", "tile", "isMask")},
			{Name: "Target", Columns: numCols("targetID", "run", "rerun", "camcol", "field", "ra", "dec")},
			{Name: "TargetInfo", Columns: numCols("targetID", "skyVersion", "priority")},
			{Name: "TargetParam", Columns: withText(nil, "paramName", "paramValue", "targetVersion")},
			{Name: "QsoCatalogAll", Columns: numCols("qsoID", "ra", "dec", "zQso", "gMag")},
			{Name: "QsoConcordance", Columns: numCols("qsoID", "specObjID", "bestObjID", "zQso")},
			{Name: "QsoBest", Columns: numCols("qsoID", "objID", "ra", "dec", "psfMag_i")},
			{Name: "QsoSpec", Columns: numCols("qsoID", "specObjID", "z")},
			{Name: "First", Columns: numCols("objID", "peak", "rms", "major", "minor")},
			{Name: "Rosat", Columns: numCols("objID", "cps", "hr1", "hr2", "posErr")},
			{Name: "USNO", Columns: numCols("objID", "propermotion", "angle", "blue", "red")},
			{Name: "DataConstants", Columns: withText(numCols("value"), "field", "name", "description")},
			{Name: "DBColumns", Columns: withText(nil, "tableName", "name", "unit", "description")},
			{Name: "DBObjects", Columns: withText(nil, "name", "type", "access", "description")},
			{Name: "DBViewCols", Columns: withText(nil, "viewName", "parentName", "name")},
			{Name: "History", Columns: withText(numCols("version"), "name", "description", "text")},
			{Name: "SiteConstants", Columns: withText(nil, "name", "value", "comment")},
		},
		Functions: []string{
			"dbo.fGetNearbyObjEq", "dbo.fGetObjFromRect", "dbo.fPhotoTypeN",
			"dbo.fSpecZWarningN", "dbo.fObjidFromSDSS", "dbo.fDistanceArcMinEq",
			"dbo.fMagToFlux", "dbo.fPhotoFlagsN", "dbo.fGetUrlObjId", "dbo.fStripeOfRun",
		},
		Joins: []Join{
			{Left: "PhotoObj", Right: "SpecObj", LeftCol: "objID", RightCol: "bestObjID"},
			{Left: "PhotoObjAll", Right: "SpecObjAll", LeftCol: "objID", RightCol: "bestObjID"},
			{Left: "PhotoPrimary", Right: "SpecObj", LeftCol: "objID", RightCol: "bestObjID"},
			{Left: "PhotoObj", Right: "PhotoTag", LeftCol: "objID", RightCol: "objID"},
			{Left: "PhotoObj", Right: "Neighbors", LeftCol: "objID", RightCol: "objID"},
			{Left: "PhotoTag", Right: "Neighbors", LeftCol: "objID", RightCol: "objID"},
			{Left: "SpecObj", Right: "SpecLine", LeftCol: "specObjID", RightCol: "specObjID"},
			{Left: "SpecObj", Right: "SpecLineIndex", LeftCol: "specObjID", RightCol: "specObjID"},
			{Left: "SpecObj", Right: "SpecPhoto", LeftCol: "specObjID", RightCol: "specObjID"},
			{Left: "SpecObj", Right: "PlateX", LeftCol: "plate", RightCol: "plate"},
			{Left: "Star", Right: "SpecObj", LeftCol: "objID", RightCol: "bestObjID"},
			{Left: "Galaxy", Right: "SpecObj", LeftCol: "objID", RightCol: "bestObjID"},
			{Left: "Galaxy", Right: "Neighbors", LeftCol: "objID", RightCol: "objID"},
			{Left: "Field", Right: "Frame", LeftCol: "fieldID", RightCol: "fieldID"},
			{Left: "Field", Right: "FieldProfile", LeftCol: "fieldID", RightCol: "fieldID"},
			{Left: "Segment", Right: "Chunk", LeftCol: "segmentID", RightCol: "chunkID"},
			{Left: "QsoBest", Right: "QsoSpec", LeftCol: "qsoID", RightCol: "qsoID"},
			{Left: "QsoCatalogAll", Right: "QsoConcordance", LeftCol: "qsoID", RightCol: "qsoID"},
			{Left: "PhotoObj", Right: "First", LeftCol: "objID", RightCol: "objID"},
			{Left: "PhotoObj", Right: "Rosat", LeftCol: "objID", RightCol: "objID"},
			{Left: "PhotoObj", Right: "USNO", LeftCol: "objID", RightCol: "objID"},
			{Left: "Target", Right: "TargetInfo", LeftCol: "targetID", RightCol: "targetID"},
			{Left: "Sector", Right: "Sector2Tile", LeftCol: "sectorID", RightCol: "sectorID"},
			{Left: "Mask", Right: "MaskedObject", LeftCol: "maskID", RightCol: "maskID"},
			{Left: "Match", Right: "MatchHead", LeftCol: "objID1", RightCol: "objID"},
		},
	}
	return s
}

// word banks for SQLShare-style user datasets across domains the paper
// mentions (biomedical to ocean sciences).
var (
	tableStems = []string{
		"genes", "samples", "experiments", "measurements", "patients", "proteins",
		"sequences", "reads", "stations", "casts", "salinity", "plankton",
		"taxa", "observations", "events", "sensors", "readings", "trials",
		"cells", "assays", "variants", "annotations", "sites", "surveys",
		"species", "counts", "metrics", "runs", "batches", "profiles",
	}
	columnStems = []string{
		"id", "name", "value", "score", "count", "depth", "temp", "lat", "lon",
		"date", "type", "status", "level", "group_id", "sample_id", "gene_id",
		"expr", "pvalue", "fold", "quality", "batch", "site", "taxon", "abundance",
		"weight", "length", "conc", "ratio", "flag", "notes",
	}
	sqlShareFuncs = []string{"COUNT", "AVG", "SUM", "MIN", "MAX", "LOWER", "UPPER", "ROUND", "ABS", "LEN"}
)

// UserDataset builds one synthetic SQLShare user dataset: a handful of
// tables with overlapping column stems, joined through *_id columns. The
// dataset index seeds naming so every dataset is disjoint from the others,
// reproducing SQLShare's collection-of-individual-workloads character
// (paper Section 5.2).
func UserDataset(idx int, rng *RNG) *Schema {
	ds := fmt.Sprintf("ds%02d", idx)
	nTables := 2 + rng.Intn(4) // 2-5 tables per dataset
	s := &Schema{Dataset: ds, Functions: sqlShareFuncs}
	used := map[string]bool{}
	for t := 0; t < nTables; t++ {
		stem := tableStems[rng.Intn(len(tableStems))]
		name := fmt.Sprintf("%s_%s", ds, stem)
		for used[name] {
			name += "x"
		}
		used[name] = true
		nCols := 4 + rng.Intn(6)
		cols := []Column{{Name: "id", Numeric: true}}
		seen := map[string]bool{"id": true}
		for c := 0; c < nCols; c++ {
			cn := columnStems[rng.Intn(len(columnStems))]
			// User-uploaded datasets name columns idiosyncratically;
			// suffixing most stems with the dataset tag reproduces
			// SQLShare's key Table 2 property of more unique columns
			// than tables (4,564 vs 1,722).
			if rng.Float64() < 0.6 {
				cn = fmt.Sprintf("%s_%s", cn, ds)
			}
			if seen[cn] {
				continue
			}
			seen[cn] = true
			numeric := cn != "name" && cn != "date" && cn != "status" && cn != "notes" && cn != "type" && cn != "taxon" && cn != "site"
			cols = append(cols, Column{Name: cn, Numeric: numeric})
		}
		s.Tables = append(s.Tables, Table{Name: name, Columns: cols})
	}
	// Chain-join tables through id columns.
	for t := 0; t+1 < len(s.Tables); t++ {
		s.Joins = append(s.Joins, Join{
			Left: s.Tables[t].Name, Right: s.Tables[t+1].Name,
			LeftCol: "id", RightCol: "id",
		})
	}
	return s
}
