package synth

import (
	"testing"

	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func TestSDSSSchemaShape(t *testing.T) {
	s := SDSSSchema()
	if len(s.Tables) != 56 {
		t.Errorf("SDSS tables: %d, paper Table 2 says 56", len(s.Tables))
	}
	if len(s.Functions) == 0 {
		t.Error("no functions")
	}
	for _, j := range s.Joins {
		if s.TableByName(j.Left) == nil || s.TableByName(j.Right) == nil {
			t.Errorf("join references missing table: %+v", j)
		}
	}
	for _, tb := range s.Tables {
		if len(tb.Columns) == 0 {
			t.Errorf("table %s has no columns", tb.Name)
		}
	}
}

func TestUserDatasetsDisjoint(t *testing.T) {
	g := NewRNG(1)
	a := UserDataset(0, g)
	b := UserDataset(1, g)
	seen := map[string]bool{}
	for _, tb := range a.Tables {
		seen[tb.Name] = true
	}
	for _, tb := range b.Tables {
		if seen[tb.Name] {
			t.Errorf("table %s shared across datasets", tb.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := SDSSProfile()
	p.Sessions = 10
	w1 := Generate(p, 42)
	w2 := Generate(p, 42)
	q1, q2 := w1.Queries(), w2.Queries()
	if len(q1) != len(q2) {
		t.Fatalf("lengths differ: %d vs %d", len(q1), len(q2))
	}
	for i := range q1 {
		if q1[i].SQL != q2[i].SQL {
			t.Fatalf("query %d differs:\n%s\n%s", i, q1[i].SQL, q2[i].SQL)
		}
	}
	w3 := Generate(p, 43)
	if w3.Queries()[0].SQL == q1[0].SQL && w3.Queries()[1].SQL == q1[1].SQL && w3.Queries()[2].SQL == q1[2].SQL {
		t.Error("different seeds produced identical prefix")
	}
}

// TestGeneratedQueriesAllParse: every generated query must parse with our
// parser and yield non-trivial fragments.
func TestGeneratedQueriesAllParse(t *testing.T) {
	for _, p := range []Profile{SDSSProfile(), SQLShareProfile()} {
		prof := p
		prof.Sessions = 40
		wl := Generate(prof, 7)
		n := 0
		for _, q := range wl.Queries() {
			stmt, err := sqlparse.Parse(q.SQL)
			if err != nil {
				t.Fatalf("%s: generated query does not parse: %v\nsql: %s", prof.Name, err, q.SQL)
			}
			fs := sqlast.Fragments(stmt)
			if len(fs.Tables) == 0 {
				t.Errorf("%s: query with no table fragment: %s", prof.Name, q.SQL)
			}
			n++
		}
		if n < prof.Sessions*2 {
			t.Errorf("%s: too few queries: %d", prof.Name, n)
		}
	}
}

// pairStats measures the template-change rate between consecutive queries.
func pairStats(t *testing.T, wl *workload.Workload) (changeRate float64, pairs int) {
	t.Helper()
	if d := wl.Enrich(); d != 0 {
		t.Fatalf("enrich dropped %d queries", d)
	}
	changed := 0
	ps := wl.Pairs()
	for _, pr := range ps {
		if pr.Cur.Template != pr.Next.Template {
			changed++
		}
	}
	if len(ps) == 0 {
		t.Fatal("no pairs")
	}
	return float64(changed) / float64(len(ps)), len(ps)
}

// TestSDSSCalibration: the SDSS-sim workload must reproduce the paper's
// headline pair-level statistics: template-change rate over 40% but under
// 50% (Fig 10f: >40% of Q_{i+1} have a different template; >50% share).
func TestSDSSCalibration(t *testing.T) {
	wl := Generate(SDSSProfile(), 42)
	rate, pairs := pairStats(t, wl)
	if rate < 0.30 || rate > 0.55 {
		t.Errorf("SDSS-sim template-change rate %.2f outside [0.30, 0.55] (paper ~0.4-0.5)", rate)
	}
	if pairs < 2000 {
		t.Errorf("SDSS-sim too small: %d pairs", pairs)
	}
	// Duplication: total pairs must exceed unique pairs substantially
	// (paper: 814,855 vs 187,762 — factor ~4.3; we accept >= 1.3).
	uniq := map[string]bool{}
	for _, pr := range wl.Pairs() {
		uniq[pr.Key()] = true
	}
	factor := float64(pairs) / float64(len(uniq))
	if factor < 1.3 {
		t.Errorf("SDSS-sim duplication factor %.2f too low", factor)
	}
}

// TestSQLShareCalibration: higher template-change rate than SDSS (paper:
// 62% vs >40%), fewer pairs, many datasets.
func TestSQLShareCalibration(t *testing.T) {
	sdss := Generate(SDSSProfile(), 42)
	sqlshare := Generate(SQLShareProfile(), 42)
	rs, _ := pairStats(t, sdss)
	rq, pairs := pairStats(t, sqlshare)
	if rq <= rs {
		t.Errorf("SQLShare-sim change rate %.2f not above SDSS-sim %.2f", rq, rs)
	}
	if rq < 0.45 || rq > 0.80 {
		t.Errorf("SQLShare-sim template-change rate %.2f outside [0.45, 0.80] (paper ~0.62)", rq)
	}
	if pairs >= len(sdss.Pairs()) {
		t.Errorf("SQLShare-sim should be smaller than SDSS-sim: %d vs %d", pairs, len(sdss.Pairs()))
	}
	if sqlshare.Datasets != 64 {
		t.Errorf("datasets: %d", sqlshare.Datasets)
	}
}

// TestSessionVariety: over 70% of sessions must contain at least two
// unique queries (paper Section 5.3.2).
func TestSessionVariety(t *testing.T) {
	for _, p := range []Profile{SDSSProfile(), SQLShareProfile()} {
		wl := Generate(p, 42)
		if d := wl.Enrich(); d != 0 {
			t.Fatalf("drop: %d", d)
		}
		multi := 0
		for _, s := range wl.Sessions {
			uniq := map[string]bool{}
			for _, q := range s.Queries {
				uniq[q.Key()] = true
			}
			if len(uniq) >= 2 {
				multi++
			}
		}
		frac := float64(multi) / float64(len(wl.Sessions))
		if frac < 0.70 {
			t.Errorf("%s: only %.0f%% sessions have >=2 unique queries (paper: >70%%)", p.Name, frac*100)
		}
	}
}

func TestGenerateRecordsMatchesWorkload(t *testing.T) {
	p := SQLShareProfile()
	p.Sessions = 8
	wl, recs := GenerateRecords(p, 3)
	if len(recs) != len(wl.Queries()) {
		t.Errorf("records %d vs queries %d", len(recs), len(wl.Queries()))
	}
	ds := map[string]bool{}
	for _, r := range recs {
		if r.Dataset != "" {
			ds[r.Dataset] = true
		}
	}
	if len(ds) == 0 {
		t.Error("no dataset labels on SQLShare-sim records")
	}
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if n := g.Geometric(2, 0.5, 10); n < 2 || n > 10 {
			t.Fatalf("geometric out of range: %d", n)
		}
		if z := g.Zipf(10, 1.2); z < 0 || z >= 10 {
			t.Fatalf("zipf out of range: %d", z)
		}
		if w := g.Weighted([]float64{1, 0, 3}); w == 1 {
			t.Fatalf("weighted picked zero-weight index")
		}
	}
	// Zipf must bias low indices.
	g2 := NewRNG(2)
	low := 0
	for i := 0; i < 1000; i++ {
		if g2.Zipf(20, 1.4) < 5 {
			low++
		}
	}
	if low < 600 {
		t.Errorf("zipf not long-tailed: %d/1000 in first quarter", low)
	}
}

// TestSQLShareColumnDiversity: the paper's Table 2 shows SQLShare has more
// unique columns than tables (4,564 vs 1,722); dataset-suffixed column
// names must reproduce that ordering.
func TestSQLShareColumnDiversity(t *testing.T) {
	wl := Generate(SQLShareProfile(), 42)
	if d := wl.Enrich(); d != 0 {
		t.Fatal("drop")
	}
	tables := map[string]bool{}
	columns := map[string]bool{}
	for _, q := range wl.Queries() {
		for f := range q.Fragments.Tables {
			tables[f] = true
		}
		for f := range q.Fragments.Columns {
			columns[f] = true
		}
	}
	if len(columns) <= len(tables) {
		t.Errorf("columns (%d) should outnumber tables (%d) in SQLShare-sim", len(columns), len(tables))
	}
}
