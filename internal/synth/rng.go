package synth

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the small helpers the generators need. All
// generation is deterministic given the seed.
type RNG struct{ r *rand.Rand }

// NewRNG returns a seeded generator.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Pick returns a uniform element of the (non-empty) slice.
func Pick[T any](g *RNG, xs []T) T { return xs[g.r.Intn(len(xs))] }

// Weighted picks index i with probability weights[i]/sum(weights).
func (g *RNG) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Geometric samples a session length >= min with roughly geometric tail:
// each extra step continues with probability cont.
func (g *RNG) Geometric(min int, cont float64, max int) int {
	n := min
	for n < max && g.Bool(cont) {
		n++
	}
	return n
}

// Zipf picks an index in [0,n) with a Zipf-like long-tail bias (lower
// indices much more likely), exponent s.
func (g *RNG) Zipf(n int, s float64) int {
	// Inverse-CDF sampling over precomputed-free harmonic weights is
	// overkill at our n; rejection with pow works fine.
	for {
		i := g.r.Intn(n)
		p := 1.0 / math.Pow(float64(i+1), s)
		if g.r.Float64() < p {
			return i
		}
	}
}
