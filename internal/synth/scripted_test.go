package synth

import (
	"testing"
)

// TestScriptedTransitionsPredictable verifies the property the scripted
// recipe exists to create: conditioning on the current query's template
// must beat the unconditional "predict the same template" rule. We build
// the Bayes-optimal tabular predictor (majority next-template given
// current template) on one half of the pairs and score it on the other
// half, against the naive same-template rule.
func TestScriptedTransitionsPredictable(t *testing.T) {
	for _, p := range []Profile{SDSSProfile(), SQLShareProfile()} {
		wl := Generate(p, 42)
		if d := wl.Enrich(); d != 0 {
			t.Fatalf("%s: dropped %d", p.Name, d)
		}
		pairs := wl.Pairs()
		half := len(pairs) / 2
		trainP, testP := pairs[:half], pairs[half:]

		counts := map[string]map[string]int{}
		for _, pr := range trainP {
			m := counts[pr.Cur.Template]
			if m == nil {
				m = map[string]int{}
				counts[pr.Cur.Template] = m
			}
			m[pr.Next.Template]++
		}
		majority := map[string]string{}
		for cur, m := range counts {
			best, bestN := "", -1
			for next, n := range m {
				if n > bestN || (n == bestN && next < best) {
					best, bestN = next, n
				}
			}
			majority[cur] = best
		}

		condHits, naiveHits := 0, 0
		for _, pr := range testP {
			pred, ok := majority[pr.Cur.Template]
			if !ok {
				pred = pr.Cur.Template // back off to naive
			}
			if pred == pr.Next.Template {
				condHits++
			}
			if pr.Cur.Template == pr.Next.Template {
				naiveHits++
			}
		}
		cond := float64(condHits) / float64(len(testP))
		naive := float64(naiveHits) / float64(len(testP))
		t.Logf("%s: conditional %.3f vs naive %.3f", p.Name, cond, naive)
		if cond < naive+0.02 {
			t.Errorf("%s: template transitions not predictable beyond naive: cond %.3f naive %.3f",
				p.Name, cond, naive)
		}
	}
}

// TestScriptedOpCoversAllShapes: every reachable query shape maps to a
// valid op index.
func TestScriptedOpCoversAllShapes(t *testing.T) {
	g := NewRNG(9)
	schema := SDSSSchema()
	for i := 0; i < 500; i++ {
		q := newInitialQuery(g, schema)
		for step := 0; step < 6; step++ {
			next := q.clone()
			// Scripted moves may fail (e.g. no join available); the
			// generator falls back to random ops — verify failure never
			// corrupts the query.
			scriptedApply(g, next)
			if next.SQL() == "" {
				t.Fatal("scripted move corrupted query")
			}
			q = next
		}
	}
}
