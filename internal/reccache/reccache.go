// Package reccache provides the size-bounded inference cache the serving
// core uses to memoize recommendation results. Real DBaaS workloads (the
// paper's SQLShare setting; see also Sibyl's workload-forecasting
// observations) are dominated by recurrent, near-duplicate queries, so the
// same (normalized SQL, context, parameters) tuple is requested over and
// over — memoizing `NextTemplates`/`NFragmentsFromTokens` output turns the
// dominant case from a full beam search into a map lookup.
//
// The cache is an LRU sharded over independently locked segments: keys are
// hashed (FNV-1a) to a shard, each shard holds its own mutex, doubly
// linked recency list and map, so concurrent readers on a busy server
// contend only 1/nth of the time. Hit/miss/eviction counters are kept with
// atomics and surfaced through Stats for the /v1/healthz endpoint.
//
// Values are stored by reference and returned as-is: callers must treat
// cached values as immutable (the serving layer only ever reads them).
package reccache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// numShards is the fixed shard count. A power of two so the hash can be
// masked; 16 keeps lock contention negligible up to dozens of cores while
// costing only 16 small headers when the cache is tiny.
const numShards = 16

// Cache is a sharded, size-bounded LRU. The zero value is not usable; use
// New. A nil *Cache is a valid no-op cache (every Get misses, Put drops),
// which lets callers disable caching without branching.
type Cache struct {
	shards    [numShards]shard
	perShard  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type entry struct {
	key string
	val any
}

// New builds a cache bounding roughly capacity entries in total (the bound
// is enforced per shard, so the effective capacity is capacity rounded up
// to a multiple of the shard count). capacity <= 0 returns a nil cache,
// i.e. caching disabled.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + numShards - 1) / numShards
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&(numShards-1)]
}

// Get returns the cached value for key and whether it was present,
// promoting the entry to most-recently-used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	v := el.Value.(*entry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts or refreshes key, evicting the least-recently-used entry of
// the key's shard when the shard is full.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: val})
	var evicted bool
	if s.ll.Len() > c.perShard {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Probe returns the cached value for key without touching the hit/miss
// counters or the recency list. The overload shed path uses it: a shed
// request peeks for a resident answer before degrading, and that peek
// must neither distort the cache telemetry the operator tunes by nor
// promote entries the admitted traffic didn't ask for.
func (c *Cache) Probe(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// GetOrCompute returns the cached value for key, or computes, stores and
// returns it. The computation runs outside the shard lock, so concurrent
// misses on the same key may compute redundantly — acceptable because
// recommendation inference is deterministic, and preferable to serializing
// all misses behind one in-flight search.
func (c *Cache) GetOrCompute(key string, compute func() any) any {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := compute()
	c.Put(key, v)
	return v
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats snapshots the counters. On a nil cache all fields are zero.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.perShard * numShards,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
