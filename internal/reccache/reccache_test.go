package reccache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("got %v %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("refresh: got %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 16 = 1 entry per shard: any second insert into a shard
	// evicts its previous occupant.
	c := New(16)
	var keys []string
	s0 := c.shardFor("seed")
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == s0 {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1) // evicts keys[0]
	if _, ok := c.Get(keys[0]); ok {
		t.Error("expected eviction of oldest entry")
	}
	if v, ok := c.Get(keys[1]); !ok || v.(int) != 1 {
		t.Errorf("newest entry evicted: %v %v", v, ok)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestLRUPromotion(t *testing.T) {
	// Two same-shard keys at capacity: touching the older one must make
	// the other the eviction victim.
	c := New(32) // 2 per shard
	s0 := c.shardFor("seed")
	var keys []string
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("p%d", i)
		if c.shardFor(k) == s0 {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1)
	c.Get(keys[0]) // promote oldest
	c.Put(keys[2], 2)
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("promoted entry evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Error("LRU victim survived")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c != New(0) {
		t.Error("New(0) should be nil")
	}
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache hit")
	}
	if got := c.GetOrCompute("a", func() any { return 7 }); got.(int) != 7 {
		t.Errorf("GetOrCompute on nil cache: %v", got)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil stats %+v", st)
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New(64)
	calls := 0
	f := func() any { calls++; return "v" }
	if got := c.GetOrCompute("k", f); got != "v" {
		t.Fatalf("got %v", got)
	}
	if got := c.GetOrCompute("k", f); got != "v" {
		t.Fatalf("got %v", got)
	}
	if calls != 1 {
		t.Errorf("compute called %d times, want 1", calls)
	}
}

// TestConcurrent exercises the sharded locking under the race detector.
func TestConcurrent(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%97)
				c.GetOrCompute(k, func() any { return k })
				if v, ok := c.Get(k); ok && v.(string) != k {
					t.Errorf("wrong value for %s: %v", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Errorf("stats after stress: %+v", st)
	}
	if st.Entries > st.Capacity {
		t.Errorf("over capacity: %+v", st)
	}
}
