package workload

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func q(session, sql string, min int) *Query {
	return &Query{
		SessionID: session,
		StartTime: time.Date(2020, 1, 1, 0, min, 0, 0, time.UTC),
		SQL:       sql,
	}
}

func sampleWorkload() *Workload {
	s1 := &Session{ID: "s1", Queries: []*Query{
		q("s1", "SELECT COUNT(DISTINCT type) FROM exp", 0),
		q("s1", "SELECT gene, type FROM exp", 1),
		q("s1", "SELECT type, COUNT(DISTINCT gene) FROM exp GROUP BY type HAVING COUNT(DISTINCT gene) > 5", 2),
	}}
	s2 := &Session{ID: "s2", Queries: []*Query{
		q("s2", "SELECT * FROM PhotoTag", 0),
		q("s2", "SELECT ra, dec FROM PhotoTag WHERE ra > 180.0", 1),
	}}
	return &Workload{Name: "test", Sessions: []*Session{s1, s2}, Datasets: 1}
}

func TestPairsPerSession(t *testing.T) {
	wl := sampleWorkload()
	pairs := wl.Pairs()
	if len(pairs) != 3 {
		t.Fatalf("pairs: %d", len(pairs))
	}
	for _, p := range pairs {
		if p.Cur.SessionID != p.Next.SessionID {
			t.Errorf("cross-session pair: %s -> %s", p.Cur.SessionID, p.Next.SessionID)
		}
		if p.Cur.StartTime.After(p.Next.StartTime) {
			t.Errorf("pair out of order")
		}
	}
}

func TestSessionSortByStartTime(t *testing.T) {
	s := &Session{ID: "x", Queries: []*Query{
		q("x", "SELECT b FROM t", 5),
		q("x", "SELECT a FROM t", 1),
		q("x", "SELECT c FROM t", 9),
	}}
	s.Sort()
	if s.Queries[0].SQL != "SELECT a FROM t" || s.Queries[2].SQL != "SELECT c FROM t" {
		t.Errorf("sort broken: %v", []string{s.Queries[0].SQL, s.Queries[1].SQL, s.Queries[2].SQL})
	}
}

func TestEnrichDerivesArtifacts(t *testing.T) {
	wl := sampleWorkload()
	dropped := wl.Enrich()
	if dropped != 0 {
		t.Fatalf("dropped %d", dropped)
	}
	q0 := wl.Sessions[0].Queries[0]
	if q0.Stmt == nil || q0.Tokens == nil || q0.Template == "" || q0.Fragments == nil {
		t.Error("enrich incomplete")
	}
	if !q0.Fragments.Functions["COUNT"] {
		t.Errorf("fragments: %v", q0.Fragments.All())
	}
}

func TestEnrichDropsUnparseable(t *testing.T) {
	wl := &Workload{Sessions: []*Session{{ID: "s", Queries: []*Query{
		q("s", "SELECT a FROM t", 0),
		q("s", "DROP TABLE t", 1),
		q("s", "SELECT b FROM t", 2),
	}}}}
	if d := wl.Enrich(); d != 1 {
		t.Errorf("dropped: %d", d)
	}
	if len(wl.Sessions[0].Queries) != 2 {
		t.Errorf("kept: %d", len(wl.Sessions[0].Queries))
	}
}

func TestQueryKeyNormalizes(t *testing.T) {
	a := q("s", "SELECT  a FROM t WHERE x=1", 0)
	b := q("s", "select a from t where x = 1", 0)
	if err := a.Enrich(); err != nil {
		t.Fatal(err)
	}
	if err := b.Enrich(); err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestSplitRatios(t *testing.T) {
	var pairs []Pair
	for i := 0; i < 100; i++ {
		qq := q("s", fmt.Sprintf("SELECT c%d FROM t", i), i)
		pairs = append(pairs, Pair{Cur: qq, Next: qq})
	}
	train, val, test := Split(pairs, 0.8, 0.1, 42)
	if len(train) != 80 || len(val) != 10 || len(test) != 10 {
		t.Errorf("split sizes: %d/%d/%d", len(train), len(val), len(test))
	}
}

func TestSplitDeterministicAndDisjoint(t *testing.T) {
	var pairs []Pair
	for i := 0; i < 50; i++ {
		qq := q("s", fmt.Sprintf("SELECT c%d FROM t", i), i)
		pairs = append(pairs, Pair{Cur: qq, Next: qq})
	}
	t1, v1, e1 := Split(pairs, 0.8, 0.1, 7)
	t2, v2, e2 := Split(pairs, 0.8, 0.1, 7)
	if t1[0].Cur.SQL != t2[0].Cur.SQL || v1[0].Cur.SQL != v2[0].Cur.SQL || e1[0].Cur.SQL != e2[0].Cur.SQL {
		t.Error("split not deterministic")
	}
	seen := map[string]int{}
	for _, p := range t1 {
		seen[p.Cur.SQL]++
	}
	for _, p := range v1 {
		seen[p.Cur.SQL]++
	}
	for _, p := range e1 {
		seen[p.Cur.SQL]++
	}
	if len(seen) != 50 {
		t.Errorf("splits overlap or lose items: %d unique", len(seen))
	}
	for sql, n := range seen {
		if n != 1 {
			t.Errorf("%q appears %d times", sql, n)
		}
	}
}

// TestSplitPartitionProperty: for any sizes and fractions, the three splits
// partition the input.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		pairs := make([]Pair, int(n))
		for i := range pairs {
			qq := q("s", fmt.Sprintf("SELECT c%d FROM t", i), i)
			pairs[i] = Pair{Cur: qq, Next: qq}
		}
		tr, va, te := Split(pairs, 0.8, 0.1, seed)
		return len(tr)+len(va)+len(te) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	wl := sampleWorkload()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, wl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sessions) != 2 {
		t.Fatalf("sessions: %d", len(back.Sessions))
	}
	if len(back.Pairs()) != 3 {
		t.Errorf("pairs after round trip: %d", len(back.Pairs()))
	}
	if back.Sessions[0].Queries[0].SQL != wl.Sessions[0].Queries[0].SQL {
		t.Error("query content lost")
	}
}

func TestReadJSONLSortsWithinSession(t *testing.T) {
	input := `{"session_id":"s","start_time":"2020-01-01T00:05:00Z","sql":"SELECT b FROM t"}
{"session_id":"s","start_time":"2020-01-01T00:01:00Z","sql":"SELECT a FROM t"}
`
	wl, err := ReadJSONL(bytes.NewBufferString(input), "x")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Sessions[0].Queries[0].SQL != "SELECT a FROM t" {
		t.Error("not sorted by start time")
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{broken\n"), "x"); err == nil {
		t.Error("expected error")
	}
}

func TestReadJSONLDatasetCount(t *testing.T) {
	input := `{"session_id":"a","start_time":"2020-01-01T00:00:00Z","sql":"SELECT 1","dataset":"d1"}
{"session_id":"b","start_time":"2020-01-01T00:00:00Z","sql":"SELECT 2","dataset":"d2"}
`
	wl, err := ReadJSONL(bytes.NewBufferString(input), "x")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Datasets != 2 {
		t.Errorf("datasets: %d", wl.Datasets)
	}
}

func TestSaveLoadFile(t *testing.T) {
	wl := sampleWorkload()
	path := t.TempDir() + "/wl.jsonl"
	if err := SaveFile(path, wl); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Queries()) != 5 {
		t.Errorf("queries: %d", len(back.Queries()))
	}
}

func TestPairPrevThreading(t *testing.T) {
	wl := sampleWorkload()
	pairs := wl.Pairs()
	// First pair of each session has no Prev; later pairs carry Q_{i-1}.
	if pairs[0].Prev != nil {
		t.Error("session-start pair should have nil Prev")
	}
	if pairs[1].Prev == nil || pairs[1].Prev != pairs[0].Cur {
		t.Error("second pair's Prev should be the first pair's Cur")
	}
	// Prev never crosses session boundaries.
	for _, p := range pairs {
		if p.Prev != nil && p.Prev.SessionID != p.Cur.SessionID {
			t.Error("Prev crossed a session boundary")
		}
	}
}
