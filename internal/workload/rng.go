package workload

import "math/rand"

// newRNG returns a deterministic random source for shuffles and sampling.
// Wrapped so all packages share one construction point if the generator
// ever needs to change.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
