// Package workload defines the query-workload data model of the paper
// (Definition 3): queries grouped into sessions, sessions grouped into
// workloads, and consecutive-query pairs (Q_i, Q_{i+1}) extracted per
// session ordered by start time.
package workload

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/tokenizer"
)

// Query is one logged SQL statement with its session metadata and the
// derived artifacts used throughout the pipeline.
type Query struct {
	SessionID string
	StartTime time.Time
	SQL       string
	// Dataset labels the schema/database the query targets ("" when the
	// workload has a single shared schema, as in SDSS).
	Dataset string

	// Derived on Enrich; nil/empty until then.
	Stmt      *sqlast.SelectStmt
	Tokens    []string
	Template  string
	Fragments *sqlast.FragmentSet
}

// Enrich parses the SQL and fills the derived fields. Queries that fail to
// parse return an error and are typically dropped by the loader, matching
// the paper's pre-processing which only keeps parseable statements.
//
// Enrich deliberately uses the heap-backed sqlparse.Parse, not a pooled
// arena: q.Stmt is retained for the lifetime of the query (the structural
// baselines walk it via similarity.TreeFromQuery), so its nodes must not
// go back to a recycled arena.
func (q *Query) Enrich() error {
	stmt, err := sqlparse.Parse(q.SQL)
	if err != nil {
		return fmt.Errorf("enrich query: %w", err)
	}
	q.Stmt = stmt
	q.Tokens = tokenizer.TokenizeStmt(stmt, tokenizer.DefaultOptions)
	q.Template = sqlast.TemplateString(stmt)
	q.Fragments = sqlast.Fragments(stmt)
	return nil
}

// Key returns a canonical identity for duplicate detection: the normalized
// token sequence joined by spaces.
func (q *Query) Key() string {
	if q.Tokens == nil {
		return q.SQL
	}
	return tokenizer.Detokenize(q.Tokens)
}

// Session is an ordered sequence of queries by one user (Definition 3).
type Session struct {
	ID      string
	Queries []*Query
}

// Sort orders the session's queries by start time (stable, so ties keep
// log order).
func (s *Session) Sort() {
	sort.SliceStable(s.Queries, func(i, j int) bool {
		return s.Queries[i].StartTime.Before(s.Queries[j].StartTime)
	})
}

// Pair is a consecutive query pair (Q_i, Q_{i+1}) within one session.
// Prev is Q_{i-1} when the pair is not at the start of its session; it
// enables the session-context extension (paper Section 2: the seq2seq
// input can concatenate multiple preceding queries).
type Pair struct {
	Prev *Query // Q_{i-1}, nil at session start
	Cur  *Query // Q_i
	Next *Query // Q_{i+1}
}

// Key identifies the pair for duplicate counting.
func (p Pair) Key() string { return p.Cur.Key() + "\x00" + p.Next.Key() }

// Workload is a set of sessions over one or more datasets (Definition 3).
type Workload struct {
	Name     string
	Sessions []*Session
	// Datasets counts the distinct schemas/databases the sessions target
	// (1 for SDSS, 64 for SQLShare in the paper's Table 2).
	Datasets int
}

// Queries returns all queries in session order.
func (w *Workload) Queries() []*Query {
	var out []*Query
	for _, s := range w.Sessions {
		out = append(out, s.Queries...)
	}
	return out
}

// Pairs extracts every consecutive pair per session (Definition 3): both
// queries come from the same session and are adjacent in start-time order.
func (w *Workload) Pairs() []Pair {
	var out []Pair
	for _, s := range w.Sessions {
		for i := 0; i+1 < len(s.Queries); i++ {
			p := Pair{Cur: s.Queries[i], Next: s.Queries[i+1]}
			if i > 0 {
				p.Prev = s.Queries[i-1]
			}
			out = append(out, p)
		}
	}
	return out
}

// Enrich parses every query, dropping the ones that fail to parse. It
// returns the number dropped.
func (w *Workload) Enrich() int {
	dropped := 0
	for _, s := range w.Sessions {
		kept := s.Queries[:0]
		for _, q := range s.Queries {
			if err := q.Enrich(); err != nil {
				dropped++
				continue
			}
			kept = append(kept, q)
		}
		s.Queries = kept
	}
	return dropped
}

// Split partitions pairs into train/validation/test with the given ratios
// using a deterministic shuffle of the provided seed. Ratios must sum to
// one (within epsilon); the paper uses 80/10/10 (Section 6.2.1).
func Split(pairs []Pair, trainFrac, valFrac float64, seed int64) (train, val, test []Pair) {
	shuffled := make([]Pair, len(pairs))
	copy(shuffled, pairs)
	rng := newRNG(seed)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	nTrain := int(float64(len(shuffled)) * trainFrac)
	nVal := int(float64(len(shuffled)) * valFrac)
	train = shuffled[:nTrain]
	val = shuffled[nTrain : nTrain+nVal]
	test = shuffled[nTrain+nVal:]
	return train, val, test
}
