package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Record is the JSONL wire form of one logged query, mirroring the fields
// the paper extracts from the SDSS SqlLog/SessionLog tables (Section 5.1).
type Record struct {
	SessionID string    `json:"session_id"`
	StartTime time.Time `json:"start_time"`
	SQL       string    `json:"sql"`
	Dataset   string    `json:"dataset,omitempty"`
}

// WriteJSONL writes the workload as one JSON record per line.
func WriteJSONL(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range wl.Sessions {
		for _, q := range s.Queries {
			rec := Record{SessionID: q.SessionID, StartTime: q.StartTime, SQL: q.SQL, Dataset: q.Dataset}
			if err := enc.Encode(rec); err != nil {
				return fmt.Errorf("write workload: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL reads records, groups them by session id, and sorts each
// session by start time, reproducing the paper's pair-extraction
// preparation (Section 5.1). Queries are not yet parsed; call Enrich.
func ReadJSONL(r io.Reader, name string) (*Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	byID := map[string]*Session{}
	datasets := map[string]bool{}
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("read workload line %d: %w", line, err)
		}
		s := byID[rec.SessionID]
		if s == nil {
			s = &Session{ID: rec.SessionID}
			byID[rec.SessionID] = s
		}
		s.Queries = append(s.Queries, &Query{SessionID: rec.SessionID, StartTime: rec.StartTime, SQL: rec.SQL, Dataset: rec.Dataset})
		if rec.Dataset != "" {
			datasets[rec.Dataset] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read workload: %w", err)
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	wl := &Workload{Name: name, Datasets: len(datasets)}
	if wl.Datasets == 0 {
		wl.Datasets = 1
	}
	for _, id := range ids {
		s := byID[id]
		s.Sort()
		wl.Sessions = append(wl.Sessions, s)
	}
	return wl, nil
}

// SaveFile writes the workload to a JSONL file.
func SaveFile(path string, wl *Workload) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save workload: %w", err)
	}
	defer f.Close()
	if err := WriteJSONL(f, wl); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a JSONL workload file.
func LoadFile(path, name string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load workload: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f, name)
}
