package workload

import (
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := `session_id,start_time,sql
s1,2020-01-01T00:05:00Z,SELECT b FROM t
s1,2020-01-01T00:01:00Z,SELECT a FROM t
s2,2020-01-01 00:00:00,SELECT c FROM u
`
	wl, err := ReadCSV(strings.NewReader(in), "csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Sessions) != 2 {
		t.Fatalf("sessions: %d", len(wl.Sessions))
	}
	// Sorted within session despite file order.
	if wl.Sessions[0].Queries[0].SQL != "SELECT a FROM t" {
		t.Errorf("not sorted: %s", wl.Sessions[0].Queries[0].SQL)
	}
	if wl.Datasets != 1 {
		t.Errorf("datasets: %d", wl.Datasets)
	}
}

func TestReadCSVSDSSHeaderAliases(t *testing.T) {
	// SDSS dump conventions: sessionID + theTime + statement.
	in := `sessionID,theTime,statement,dataset
42,2020-03-04 10:00:00,SELECT ra FROM PhotoObj,skyserver
42,2020-03-04 10:01:00,SELECT dec FROM PhotoObj,skyserver
`
	wl, err := ReadCSV(strings.NewReader(in), "sdss")
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Pairs()) != 1 {
		t.Errorf("pairs: %d", len(wl.Pairs()))
	}
	if wl.Sessions[0].Queries[0].Dataset != "skyserver" {
		t.Error("dataset column lost")
	}
}

func TestReadCSVQuotedSQLWithCommas(t *testing.T) {
	in := `session_id,start_time,sql
s,2020-01-01T00:00:00Z,"SELECT a, b FROM t WHERE x = 'v,w'"
`
	wl, err := ReadCSV(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if got := wl.Sessions[0].Queries[0].SQL; !strings.Contains(got, "a, b") {
		t.Errorf("quoted sql mangled: %q", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",               // no header
		"a,b,c\n1,2,3\n", // missing required columns
		"session_id,start_time,sql\ns,nope,SELECT 1\n", // bad timestamp
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "x"); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}
