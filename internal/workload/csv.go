package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ReadCSV reads a query log in CSV form. The header row names the columns;
// the reader looks for (case-insensitively) "session_id"/"sessionid",
// "start_time"/"thetime"/"time", "sql"/"statement"/"query" and an optional
// "dataset" column — covering the SDSS SqlLog dump conventions the paper
// extracts from (Section 5.1: SqlLog.theTime, SessionLog.sessionID).
// Timestamps parse as RFC 3339 or "2006-01-02 15:04:05".
func ReadCSV(r io.Reader, name string) (*Workload, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv: header: %w", err)
	}
	col := func(names ...string) int {
		for i, h := range header {
			h = strings.ToLower(strings.TrimSpace(h))
			for _, n := range names {
				if h == n {
					return i
				}
			}
		}
		return -1
	}
	sessIdx := col("session_id", "sessionid")
	timeIdx := col("start_time", "thetime", "time")
	sqlIdx := col("sql", "statement", "query")
	dsIdx := col("dataset")
	if sessIdx < 0 || timeIdx < 0 || sqlIdx < 0 {
		return nil, fmt.Errorf("read csv: need session_id, start_time and sql columns; header: %v", header)
	}

	byID := map[string]*Session{}
	datasets := map[string]bool{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("read csv line %d: %w", line, err)
		}
		need := sqlIdx
		if sessIdx > need {
			need = sessIdx
		}
		if timeIdx > need {
			need = timeIdx
		}
		if len(rec) <= need {
			return nil, fmt.Errorf("read csv line %d: %d fields, need %d", line, len(rec), need+1)
		}
		ts, err := parseTime(rec[timeIdx])
		if err != nil {
			return nil, fmt.Errorf("read csv line %d: %w", line, err)
		}
		id := rec[sessIdx]
		s := byID[id]
		if s == nil {
			s = &Session{ID: id}
			byID[id] = s
		}
		q := &Query{SessionID: id, StartTime: ts, SQL: rec[sqlIdx]}
		if dsIdx >= 0 && dsIdx < len(rec) && rec[dsIdx] != "" {
			q.Dataset = rec[dsIdx]
			datasets[rec[dsIdx]] = true
		}
		s.Queries = append(s.Queries, q)
	}

	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	wl := &Workload{Name: name, Datasets: len(datasets)}
	if wl.Datasets == 0 {
		wl.Datasets = 1
	}
	for _, id := range ids {
		s := byID[id]
		s.Sort()
		wl.Sessions = append(wl.Sessions, s)
	}
	return wl, nil
}

func parseTime(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02T15:04:05", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("unrecognized timestamp %q", s)
}
