package baselines

import (
	"sort"

	"repro/internal/similarity"
	"repro/internal/workload"
)

// StructuralQueRIE augments the fragment-based QueRIE retrieval with the
// structural similarity the paper's Example 2 argues for: two queries that
// are structural twins (same nested top-k shape, different tables) should
// rank closer than two flat queries that merely share a table. The score
// blends fragment cosine with (1 - normalized tree edit distance).
type StructuralQueRIE struct {
	base  *QueRIE
	trees []*similarity.Tree
	// Alpha weighs the fragment cosine; (1-Alpha) weighs structure.
	Alpha float64
}

// NewStructuralQueRIE indexes training queries by fragments and by
// structure.
func NewStructuralQueRIE(pairs []workload.Pair, alpha float64) *StructuralQueRIE {
	base := NewQueRIE(pairs)
	s := &StructuralQueRIE{base: base, Alpha: alpha}
	s.trees = make([]*similarity.Tree, len(base.queries))
	for i, q := range base.queries {
		s.trees[i] = similarity.TreeFromQuery(q.Stmt)
	}
	return s
}

// Recommend returns the k closest queries under the blended score.
func (s *StructuralQueRIE) Recommend(cur *workload.Query, k int) []*workload.Query {
	if cur.Fragments == nil || cur.Stmt == nil {
		return nil
	}
	target := s.base.vector(cur)
	curTree := similarity.TreeFromQuery(cur.Stmt)
	type scored struct {
		idx   int
		score float64
	}
	list := make([]scored, len(s.base.queries))
	for i := range s.base.queries {
		frag := cosine(target, s.base.features[i])
		structural := 1 - similarity.Normalized(curTree, s.trees[i])
		list[i] = scored{idx: i, score: s.Alpha*frag + (1-s.Alpha)*structural}
	}
	sort.Slice(list, func(i, j int) bool {
		//lint:ignore floateq exact tie-break keeps the sort a strict weak order; an epsilon would not
		if list[i].score != list[j].score {
			return list[i].score > list[j].score
		}
		return list[i].idx < list[j].idx
	})
	if k > len(list) {
		k = len(list)
	}
	out := make([]*workload.Query, 0, k)
	for _, e := range list[:k] {
		out = append(out, s.base.queries[e.idx])
	}
	return out
}

// TopTemplates predicts N templates as the distinct templates of the
// closest queries under the blended score.
func (s *StructuralQueRIE) TopTemplates(cur *workload.Query, n int) []string {
	var out []string
	seen := map[string]bool{}
	for _, rec := range s.Recommend(cur, 50) {
		if !seen[rec.Template] {
			seen[rec.Template] = true
			out = append(out, rec.Template)
			if len(out) == n {
				break
			}
		}
	}
	return out
}
