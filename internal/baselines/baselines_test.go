package baselines

import (
	"testing"
	"time"

	"repro/internal/sqlast"
	"repro/internal/workload"
)

func mkQuery(t *testing.T, sql string) *workload.Query {
	t.Helper()
	q := &workload.Query{SessionID: "s", StartTime: time.Now(), SQL: sql}
	if err := q.Enrich(); err != nil {
		t.Fatalf("enrich %q: %v", sql, err)
	}
	return q
}

func mkPairs(t *testing.T, sqls ...string) []workload.Pair {
	t.Helper()
	var pairs []workload.Pair
	for i := 0; i+1 < len(sqls); i++ {
		pairs = append(pairs, workload.Pair{Cur: mkQuery(t, sqls[i]), Next: mkQuery(t, sqls[i+1])})
	}
	return pairs
}

func TestPopularRanksByFrequency(t *testing.T) {
	// Counts are over the Q_{i+1} side of each pair: the next queries
	// below are (ra PhotoObj), (ra+dec PhotoObj), (z SpecObj), so RA and
	// PHOTOOBJ each appear twice, everything else once.
	pairs := mkPairs(t,
		"SELECT u FROM PhotoTag",
		"SELECT ra FROM PhotoObj WHERE ra > 1",
		"SELECT ra, dec FROM PhotoObj",
		"SELECT z FROM SpecObj",
	)
	p := NewPopular(pairs)
	topTables := p.TopFragments(sqlast.FragTable, 2)
	if len(topTables) != 2 || topTables[0] != "PHOTOOBJ" {
		t.Errorf("top tables: %v", topTables)
	}
	cols := p.TopFragments(sqlast.FragColumn, 1)
	if len(cols) != 1 || cols[0] != "RA" {
		t.Errorf("top columns: %v", cols)
	}
}

func TestPopularTemplates(t *testing.T) {
	pairs := mkPairs(t,
		"SELECT ra FROM PhotoObj",
		"SELECT dec FROM PhotoObj", // same template class
		"SELECT z FROM SpecObj",    // same template class
		"SELECT COUNT(*) FROM t",   // different
	)
	p := NewPopular(pairs)
	top := p.TopTemplates(2)
	if len(top) != 2 {
		t.Fatalf("top templates: %d", len(top))
	}
	if top[0] != "SELECT Column FROM Table" {
		t.Errorf("most popular: %q", top[0])
	}
	// Requesting more than available truncates.
	if got := p.TopTemplates(99); len(got) != 2 {
		t.Errorf("truncate: %d", len(got))
	}
}

func TestNaive(t *testing.T) {
	q := mkQuery(t, "SELECT ra FROM PhotoObj WHERE z > 1")
	fs := NaiveFragmentSet(q)
	if !fs.Tables["PHOTOOBJ"] || !fs.Columns["RA"] {
		t.Errorf("naive fragments: %v", fs.All())
	}
	if NaiveTemplate(q) != q.Template {
		t.Error("naive template")
	}
}

func TestQueRIEFindsExactMatch(t *testing.T) {
	pairs := mkPairs(t,
		"SELECT ra, dec FROM PhotoObj",
		"SELECT z FROM SpecObj",
		"SELECT wave FROM SpecLine",
	)
	q := NewQueRIE(pairs)
	// A query over the same table+columns must retrieve itself first.
	cur := mkQuery(t, "SELECT ra, dec FROM PhotoObj")
	recs := q.Recommend(cur, 2)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if !recs[0].Fragments.Tables["PHOTOOBJ"] {
		t.Errorf("closest query: %s", recs[0].SQL)
	}
}

func TestQueRIEPrefersSharedFragments(t *testing.T) {
	pairs := mkPairs(t,
		"SELECT ra, dec, u, g FROM PhotoObj",
		"SELECT wave, sigma FROM SpecLine",
	)
	q := NewQueRIE(pairs)
	cur := mkQuery(t, "SELECT ra, u FROM PhotoObj WHERE dec > 0")
	recs := q.Recommend(cur, 1)
	if !recs[0].Fragments.Tables["PHOTOOBJ"] {
		t.Errorf("querie chose the wrong neighbourhood: %s", recs[0].SQL)
	}
	fs := q.FragmentSet(cur)
	if !fs.Columns["G"] {
		t.Errorf("fragment set should come from the retrieved query: %v", fs.All())
	}
}

func TestQueRIETopFragmentsAndTemplates(t *testing.T) {
	pairs := mkPairs(t,
		"SELECT ra FROM PhotoObj",
		"SELECT ra, dec FROM PhotoObj",
		"SELECT COUNT(*) FROM PhotoObj GROUP BY type",
		"SELECT z FROM SpecObj",
	)
	q := NewQueRIE(pairs)
	cur := mkQuery(t, "SELECT ra FROM PhotoObj")
	cols := q.TopFragments(cur, sqlast.FragColumn, 3)
	if len(cols) == 0 || cols[0] != "RA" {
		t.Errorf("top fragments: %v", cols)
	}
	tmpls := q.TopTemplates(cur, 3)
	if len(tmpls) < 2 {
		t.Errorf("top templates: %v", tmpls)
	}
	// Deduplicated.
	seen := map[string]bool{}
	for _, tm := range tmpls {
		if seen[tm] {
			t.Errorf("duplicate template in ranking")
		}
		seen[tm] = true
	}
}

func TestQueRIEEmptyCases(t *testing.T) {
	q := NewQueRIE(nil)
	cur := mkQuery(t, "SELECT ra FROM PhotoObj")
	if recs := q.Recommend(cur, 5); len(recs) != 0 {
		t.Error("recommendations from empty index")
	}
	if fs := q.FragmentSet(cur); fs.Size() != 0 {
		t.Error("fragment set from empty index")
	}
}

func TestCosine(t *testing.T) {
	if c := cosine([]int{1, 2, 3}, []int{1, 2, 3}); c != 1 {
		t.Errorf("identical: %f", c)
	}
	if c := cosine([]int{1, 2}, []int{3, 4}); c != 0 {
		t.Errorf("disjoint: %f", c)
	}
	if c := cosine(nil, []int{1}); c != 0 {
		t.Errorf("empty: %f", c)
	}
	// |inter|=1, |a|=1, |b|=4 -> 1/2.
	if c := cosine([]int{1}, []int{1, 2, 3, 4}); c != 0.5 {
		t.Errorf("partial: %f", c)
	}
}
