// Package baselines implements the three non-deep-learning comparison
// methods of paper Section 6.2.3:
//
//   - popular: the most frequent fragments / templates in the training
//     workload (motivated by the long-tailed popularity of Figure 9).
//   - naive Q_i: the current query's own fragment set and template,
//     exploiting that >50% (SDSS) / ~40% (SQLShare) of consecutive pairs
//     share a template.
//   - QueRIE: the binary fragment-based collaborative-filtering framework,
//     adapted as in the paper — queries are binary vectors over table and
//     column features, cosine similarity retrieves the closest workload
//     queries, and the retrieved statements are parsed into fragment sets
//     and template lists.
package baselines

import (
	"math"
	"sort"

	"repro/internal/sqlast"
	"repro/internal/workload"
)

// Popular ranks fragments per kind and templates by training-set frequency.
type Popular struct {
	fragRank map[sqlast.FragmentKind][]string
	tmplRank []string
}

// NewPopular counts occurrences over the target side of training pairs
// (Q_{i+1}), matching what the baseline is asked to predict.
func NewPopular(pairs []workload.Pair) *Popular {
	fragCounts := map[sqlast.FragmentKind]map[string]int{}
	for _, k := range sqlast.FragmentKinds {
		fragCounts[k] = map[string]int{}
	}
	tmplCounts := map[string]int{}
	for _, p := range pairs {
		q := p.Next
		if q.Fragments != nil {
			for _, k := range sqlast.FragmentKinds {
				for f := range q.Fragments.ByKind(k) {
					fragCounts[k][f]++
				}
			}
		}
		tmplCounts[q.Template]++
	}
	pop := &Popular{fragRank: map[sqlast.FragmentKind][]string{}}
	for _, k := range sqlast.FragmentKinds {
		pop.fragRank[k] = rankByCount(fragCounts[k])
	}
	pop.tmplRank = rankByCount(tmplCounts)
	return pop
}

func rankByCount(counts map[string]int) []string {
	type kv struct {
		k string
		n int
	}
	list := make([]kv, 0, len(counts))
	for k, n := range counts {
		list = append(list, kv{k, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].k < list[j].k
	})
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.k
	}
	return out
}

// TopFragments returns the n most popular fragments of one kind.
func (p *Popular) TopFragments(kind sqlast.FragmentKind, n int) []string {
	r := p.fragRank[kind]
	if n > len(r) {
		n = len(r)
	}
	return r[:n]
}

// TopTemplates returns the n most popular templates.
func (p *Popular) TopTemplates(n int) []string {
	if n > len(p.tmplRank) {
		n = len(p.tmplRank)
	}
	return p.tmplRank[:n]
}

// TopAllFragments returns the n most popular fragments of every kind at
// once, keyed in paper order — the shape the serving layer's degraded
// snapshot wants.
func (p *Popular) TopAllFragments(n int) map[sqlast.FragmentKind][]string {
	out := make(map[sqlast.FragmentKind][]string, len(sqlast.FragmentKinds))
	for _, k := range sqlast.FragmentKinds {
		out[k] = p.TopFragments(k, n)
	}
	return out
}

// NaiveFragmentSet returns fragments(Q_i) as the prediction for
// fragments(Q_{i+1}).
func NaiveFragmentSet(cur *workload.Query) *sqlast.FragmentSet { return cur.Fragments }

// NaiveTemplate returns template(Q_i) as the prediction for
// template(Q_{i+1}).
func NaiveTemplate(cur *workload.Query) string { return cur.Template }

// QueRIE is the adapted collaborative-filtering recommender.
type QueRIE struct {
	queries []*workload.Query
	// features[i] is the sorted feature-id set of queries[i].
	features [][]int
	featIDs  map[string]int
}

// NewQueRIE indexes the unique training queries by their binary
// table+column feature vectors.
func NewQueRIE(pairs []workload.Pair) *QueRIE {
	q := &QueRIE{featIDs: map[string]int{}}
	seen := map[string]bool{}
	add := func(query *workload.Query) {
		key := query.Key()
		if seen[key] || query.Fragments == nil {
			return
		}
		seen[key] = true
		q.queries = append(q.queries, query)
		q.features = append(q.features, q.vector(query))
	}
	for _, p := range pairs {
		add(p.Cur)
		add(p.Next)
	}
	return q
}

// vector maps a query to its sorted feature ids (tables and columns).
func (q *QueRIE) vector(query *workload.Query) []int {
	var ids []int
	addFeat := func(prefix, name string) {
		key := prefix + ":" + name
		id, ok := q.featIDs[key]
		if !ok {
			id = len(q.featIDs)
			q.featIDs[key] = id
		}
		ids = append(ids, id)
	}
	for t := range query.Fragments.Tables {
		addFeat("t", t)
	}
	for c := range query.Fragments.Columns {
		addFeat("c", c)
	}
	sort.Ints(ids)
	return ids
}

// cosine computes the cosine similarity of two binary feature sets.
func cosine(a, b []int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// Recommend returns the k workload queries closest to the input by cosine
// similarity over the binary fragment vectors, most similar first.
func (q *QueRIE) Recommend(cur *workload.Query, k int) []*workload.Query {
	if cur.Fragments == nil {
		return nil
	}
	target := q.vector(cur)
	type scored struct {
		idx int
		sim float64
	}
	list := make([]scored, len(q.queries))
	for i := range q.queries {
		list[i] = scored{idx: i, sim: cosine(target, q.features[i])}
	}
	sort.Slice(list, func(i, j int) bool {
		//lint:ignore floateq exact tie-break keeps the sort a strict weak order; an epsilon would not
		if list[i].sim != list[j].sim {
			return list[i].sim > list[j].sim
		}
		return list[i].idx < list[j].idx
	})
	if k > len(list) {
		k = len(list)
	}
	out := make([]*workload.Query, 0, k)
	for _, s := range list[:k] {
		out = append(out, q.queries[s.idx])
	}
	return out
}

// FragmentSet predicts fragments(Q_{i+1}) as the fragments of the single
// closest workload query (the paper parses the recommended statements).
func (q *QueRIE) FragmentSet(cur *workload.Query) *sqlast.FragmentSet {
	recs := q.Recommend(cur, 1)
	if len(recs) == 0 {
		return sqlast.NewFragmentSet()
	}
	return recs[0].Fragments
}

// TopFragments predicts N fragments of one kind by walking the closest
// queries in similarity order and collecting their fragments.
func (q *QueRIE) TopFragments(cur *workload.Query, kind sqlast.FragmentKind, n int) []string {
	var out []string
	seen := map[string]bool{}
	for _, rec := range q.Recommend(cur, 25) {
		for _, f := range rec.Fragments.Sorted(kind) {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
				if len(out) == n {
					return out
				}
			}
		}
	}
	return out
}

// TopTemplates predicts N templates as the distinct templates of the
// closest queries in similarity order.
func (q *QueRIE) TopTemplates(cur *workload.Query, n int) []string {
	var out []string
	seen := map[string]bool{}
	for _, rec := range q.Recommend(cur, 50) {
		if !seen[rec.Template] {
			seen[rec.Template] = true
			out = append(out, rec.Template)
			if len(out) == n {
				return out
			}
		}
	}
	return out
}
