package baselines

import (
	"testing"
)

func TestStructuralQueRIEPrefersStructuralTwin(t *testing.T) {
	// Index: one structural twin of the probe (nested top-k, different
	// tables) and one flat query sharing the probe's table.
	pairs := mkPairs(t,
		"SELECT TOP 10 mag FROM PhotoTag WHERE mag IN (SELECT mag FROM Neighbors WHERE mag > 2) ORDER BY mag DESC",
		"SELECT z, ra, dec FROM SpecObj",
		"SELECT wave FROM SpecLine",
	)
	probe := mkQuery(t, "SELECT TOP 10 z FROM SpecObj WHERE z IN (SELECT z FROM SpecPhoto WHERE z > 1) ORDER BY z DESC")

	// Pure fragment CF prefers the same-table flat query.
	frag := NewQueRIE(pairs)
	fragTop := frag.Recommend(probe, 1)[0]
	if !fragTop.Fragments.Tables["SPECOBJ"] {
		t.Fatalf("fragment CF baseline assumption broken: %s", fragTop.SQL)
	}

	// Structure-weighted CF prefers the structural twin (Example 2).
	structural := NewStructuralQueRIE(pairs, 0.2)
	structTop := structural.Recommend(probe, 1)[0]
	if !structTop.Fragments.Tables["PHOTOTAG"] {
		t.Errorf("structural CF should pick the nested top-k twin, got: %s", structTop.SQL)
	}
}

func TestStructuralQueRIEAlphaOneMatchesFragmentRanking(t *testing.T) {
	pairs := mkPairs(t,
		"SELECT ra, dec FROM PhotoObj",
		"SELECT z FROM SpecObj",
		"SELECT wave FROM SpecLine",
	)
	probe := mkQuery(t, "SELECT ra, dec FROM PhotoObj")
	s := NewStructuralQueRIE(pairs, 1.0)
	f := NewQueRIE(pairs)
	st := s.Recommend(probe, 1)
	ft := f.Recommend(probe, 1)
	if len(st) == 0 || len(ft) == 0 || st[0].Key() != ft[0].Key() {
		t.Error("alpha=1 should reduce to fragment ranking")
	}
}

func TestStructuralQueRIETemplates(t *testing.T) {
	pairs := mkPairs(t,
		"SELECT ra FROM PhotoObj",
		"SELECT COUNT(*) FROM PhotoObj GROUP BY type",
		"SELECT z FROM SpecObj",
	)
	probe := mkQuery(t, "SELECT dec FROM PhotoTag")
	s := NewStructuralQueRIE(pairs, 0.5)
	tmpls := s.TopTemplates(probe, 2)
	if len(tmpls) == 0 {
		t.Fatal("no templates")
	}
	// The structurally identical single-column template must rank first.
	if tmpls[0] != "SELECT Column FROM Table" {
		t.Errorf("top template: %q", tmpls[0])
	}
}

func TestStructuralQueRIENilSafe(t *testing.T) {
	s := NewStructuralQueRIE(nil, 0.5)
	probe := mkQuery(t, "SELECT a FROM t")
	if got := s.Recommend(probe, 3); len(got) != 0 {
		t.Error("empty index returned results")
	}
}
