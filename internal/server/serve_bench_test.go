package server

import (
	"net/http"
	"testing"
	"time"
)

// Serving-stack benchmarks: the same HTTP path the chaos suite drives,
// with the instant predictor, so they measure the serving overhead
// (handler, engine, pool, overload ladder) rather than model inference.
// scripts/bench.sh records them as BENCH_serve.json; the saturated
// variant also reports its shed and degraded rates per request.

const benchBody = `{"sql": "SELECT a FROM healthy", "n": 3}`

// BenchmarkServeUnsaturated is sequential traffic far below capacity:
// nothing sheds, nothing degrades — the baseline request cost.
func BenchmarkServeUnsaturated(b *testing.B) {
	srv := NewWithConfig(chaosRecommender(b), Config{
		Workers:   4,
		CacheSize: -1, // every request exercises the pool path
		Predictor: chaosPredictor{},
	})
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := chaosPost(srv, "/v1/recommend", benchBody, nil); w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServeSaturated hammers a deliberately small stack (2 workers,
// in-flight cap 4) from many goroutines: requests beyond capacity shed
// to the degraded fallback instead of queueing. Throughput stays bounded
// and the shed/degraded rates are reported alongside ns/op.
func BenchmarkServeSaturated(b *testing.B) {
	srv := NewWithConfig(chaosRecommender(b), Config{
		Workers:     2,
		MaxQueue:    2,
		MaxInFlight: 4,
		SoftTimeout: 100 * time.Millisecond,
		CacheSize:   -1,
		Fallback:    chaosFallback(),
		Predictor:   chaosPredictor{},
	})
	defer srv.Close()
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w := chaosPost(srv, "/v1/recommend", benchBody, nil)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
	b.StopTimer()
	ov := srv.engine().OverloadStats()
	sheds := ov.Admission.ShedLoad + ov.Admission.ShedQueue
	b.ReportMetric(float64(sheds)/float64(b.N), "sheds/op")
	b.ReportMetric(float64(ov.Degraded)/float64(b.N), "degraded/op")
}

// batchBenchBodies rotate structurally distinct queries so the cacheless
// model path sees mixed sequence lengths, the shape micro-batching pads.
var batchBenchBodies = []string{
	`{"sql": "SELECT a FROM t", "n": 3}`,
	`{"sql": "SELECT a, b FROM t", "n": 3}`,
	`{"sql": "SELECT a FROM t WHERE a > 1", "n": 3}`,
	`{"sql": "SELECT b FROM t", "n": 3}`,
}

// benchServeBatched is saturated REAL-model traffic (no instant predictor:
// micro-batching saves model compute, so that is what must be on the
// clock) with micro-batching off or on. One worker matches the container's
// single core; eight client goroutines keep batches forming by size.
func benchServeBatched(b *testing.B, batchSize int) {
	srv := NewWithConfig(chaosRecommender(b), Config{
		Workers:     1,
		CacheSize:   -1, // every request travels the model path
		BatchSize:   batchSize,
		BatchWindow: time.Millisecond,
	})
	defer srv.Close()
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := batchBenchBodies[i%len(batchBenchBodies)]
			i++
			if w := chaosPost(srv, "/v1/recommend", body, nil); w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
	b.StopTimer()
	if st := srv.engine().BatcherStats(); st.Enabled && st.Templates.Batches > 0 {
		// Mean executed batch size; bench.sh records it as batched_per_op.
		b.ReportMetric(float64(st.Templates.Items)/float64(st.Templates.Batches), "batched/op")
	}
}

// BenchmarkServeBatchedOff is the baseline half of the batching
// comparison recorded in BENCH_serve.json.
func BenchmarkServeBatchedOff(b *testing.B) { benchServeBatched(b, 0) }

// BenchmarkServeBatchedOn4 coalesces up to 4 concurrent requests per
// model pass through the same HTTP path.
func BenchmarkServeBatchedOn4(b *testing.B) { benchServeBatched(b, 4) }
