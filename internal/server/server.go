// Package server exposes a trained Recommender over HTTP with a small
// JSON API, the deployment shape a database-as-a-service platform (the
// paper's SQLShare setting) would embed:
//
//	POST /v1/recommend        {"sql": "...", "prev_sql": "...", "n": 3}
//	  -> {"templates": [...], "fragments": {"table": [...], ...}}
//	POST /v1/recommend/batch  {"requests": [{...}, ...]}
//	  -> {"results": [{...}, {"error": "..."}, ...]}
//	GET  /v1/healthz          -> {"status":"ok", "cache": {...}, ...}
//
// Requests are executed by the servepool engine: template and fragment
// prediction run in parallel on a bounded worker pool, and results are
// memoized in a sharded LRU inference cache (see internal/servepool and
// internal/reccache). The handler is stateless per request and safe for
// concurrent use: model inference only reads parameters — a claim the
// package's concurrency tests verify under the race detector.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/modeldir"
	"repro/internal/overload"
	"repro/internal/reccache"
	"repro/internal/servepool"
	"repro/internal/sqlast"
)

// RecommendRequest is the /v1/recommend input (and one element of a batch
// request).
type RecommendRequest struct {
	// SQL is the user's current query Q_i (required).
	SQL string `json:"sql"`
	// PrevSQL optionally supplies Q_{i-1} for context-trained models.
	PrevSQL string `json:"prev_sql,omitempty"`
	// N bounds the number of templates and fragments per type
	// (default 3, max 25).
	N int `json:"n,omitempty"`
	// Strategy selects the N-fragments search: "beam" (default),
	// "diverse-beam" or "sampling".
	Strategy string `json:"strategy,omitempty"`
}

// RecommendResponse is the /v1/recommend output.
type RecommendResponse struct {
	Templates []string            `json:"templates"`
	Fragments map[string][]string `json:"fragments"`
	// Degraded marks an answer served from the pre-warmed Popular
	// fallback instead of the model (overload shed, open breaker, or
	// soft-deadline miss). Omitted on full-quality answers, so the wire
	// shape is unchanged for them.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchRequest is the /v1/recommend/batch input.
type BatchRequest struct {
	Requests []RecommendRequest `json:"requests"`
}

// BatchItem is one /v1/recommend/batch result: either the recommendation
// or a per-request error message.
type BatchItem struct {
	Templates []string            `json:"templates,omitempty"`
	Fragments map[string][]string `json:"fragments,omitempty"`
	Degraded  bool                `json:"degraded,omitempty"`
	Error     string              `json:"error,omitempty"`
}

// BatchResponse is the /v1/recommend/batch output, one item per request in
// request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Config tunes the serving core. The zero value selects the defaults
// below, with every overload-resilience feature off — byte-identical
// behavior to the plain serving core.
type Config struct {
	// CacheSize bounds the inference cache in entries. 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// Workers sizes the prediction worker pool. 0 means GOMAXPROCS.
	Workers int
	// Timeout is the hard per-request deadline. 0 means DefaultTimeout.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatch bounds the number of requests in one batch call. 0 means
	// DefaultMaxBatch.
	MaxBatch int

	// MaxQueue sizes the pool task queue. 0 keeps the historical
	// default (= Workers). When admission control is enabled
	// (MaxInFlight > 0), the resolved capacity also bounds the live
	// queue depth: requests arriving with the queue full are shed.
	MaxQueue int
	// MaxInFlight caps concurrently admitted requests; excess load is
	// shed early (degraded answer, or 429 without a Fallback) instead of
	// queueing toward the hard timeout. 0 disables admission control.
	MaxInFlight int
	// SoftTimeout bounds each request's model work below the hard
	// Timeout, leaving room to answer degraded instead of 504. Batch
	// items get their own soft budget each. 0 disables.
	SoftTimeout time.Duration
	// BatchSize enables micro-batched inference when >= 2: concurrent
	// requests (and /v1/recommend/batch items) coalesce into batched
	// model passes of at most this many items, bit-identical to the
	// per-request path. 0 keeps single-request inference.
	BatchSize int
	// BatchWindow bounds how long the first request of a forming batch
	// waits for company; <= 0 uses the engine default (500µs). Ignored
	// unless BatchSize enables batching.
	BatchWindow time.Duration
	// Rate and Burst configure the per-client token-bucket limiter
	// (requests/second and bucket size, keyed by X-Client-ID or remote
	// host). Rate 0 disables rate limiting.
	Rate  float64
	Burst float64
	// BreakerRatio arms the model-path circuit breaker: the circuit
	// opens when the failure ratio over a rolling window reaches it
	// (soft timeouts, predictor errors and recovered panics all count).
	// 0 disables the breaker.
	BreakerRatio float64
	// Fallback enables degraded mode: shed or over-budget requests
	// answer from this pre-warmed Popular snapshot, flagged
	// "degraded":true. nil disables (shed requests get 429/5xx).
	Fallback *servepool.Fallback
	// Predictor overrides the model path (chaos/failure-injection tests
	// and custom backends). nil uses the trained recommender.
	Predictor servepool.Predictor
	// Now injects the wall clock for the limiter and breaker. nil means
	// time.Now.
	Now func() time.Time

	// ReplicaID names this serving process in a multi-replica topology.
	// When set it is echoed on every response as the X-Replica-ID header
	// and reported on /v1/healthz, so the gateway's chaos tests and
	// operators can attribute responses to replicas.
	ReplicaID string
	// EnablePush exposes POST /v1/model/push: the replica accepts a set
	// of checksummed artifact envelopes, validates them, optionally
	// persists them (ModelDir), and hot-swaps the serving engine with
	// zero dropped requests. Off by default — the endpoint rebuilds the
	// model, so only private/admin networks should reach it.
	EnablePush bool
	// ModelDir, when set with EnablePush, persists accepted pushes into
	// this directory through the atomic envelope writer before swapping,
	// so a restart comes back up on the pushed model.
	ModelDir string
	// MaxPushBytes bounds the push request body. 0 means
	// DefaultMaxPushBytes.
	MaxPushBytes int64
	// FallbackFactory, when set, re-derives the degraded-mode snapshot
	// from the new recommender after a hot swap (the static Fallback
	// field keeps serving until then). qrec-serve wires
	// servepool.FallbackFromRecommender here.
	FallbackFactory func(*core.Recommender) *servepool.Fallback
}

// Serving defaults.
const (
	DefaultCacheSize    = 4096
	DefaultTimeout      = 30 * time.Second
	DefaultMaxBodyBytes = 1 << 20 // 1 MiB
	DefaultMaxBatch     = 64
	// DefaultRetryAfter is the backoff hint attached to admission sheds.
	DefaultRetryAfter = time.Second
	// DefaultMaxPushBytes bounds /v1/model/push bodies: model artifacts
	// are much larger than recommend requests (64 MiB default).
	DefaultMaxPushBytes = 64 << 20
	// DefaultDrainRetryAfter is the probe-backoff hint a draining
	// replica's 503 healthz carries, so gateways and load balancers stop
	// tight-looping probes against a process that is going away.
	DefaultDrainRetryAfter = 2 * time.Second
)

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.MaxPushBytes == 0 {
		c.MaxPushBytes = DefaultMaxPushBytes
	}
	return c
}

// engineHandle is a refcounted engine generation. Requests acquire a
// reference for their lifetime; a hot swap drops the owner reference and
// the engine closes only when the last in-flight request releases —
// never under one. The refcount starts at 1 (the Server's owner ref).
type engineHandle struct {
	eng       *servepool.Engine
	refs      atomic.Int64
	closeOnce sync.Once
}

func newEngineHandle(eng *servepool.Engine) *engineHandle {
	h := &engineHandle{eng: eng}
	h.refs.Store(1)
	return h
}

// release drops one reference, closing the engine when the last holder
// (request or owner) lets go. The sync.Once guards the close against the
// acquire-recheck race: a reader that bumps a just-retired handle back
// above zero and then releases it would otherwise close twice.
func (h *engineHandle) release() {
	if h.refs.Add(-1) == 0 {
		h.closeOnce.Do(h.eng.Close)
	}
}

// Server wires a Recommender into an http.Handler. A panic in any
// handler is recovered by ServeHTTP: the request gets a JSON 500, a
// counter exposed on /v1/healthz is incremented, and the process keeps
// serving.
//
// The engine behind the handler is swappable at runtime
// (SwapRecommender / POST /v1/model/push): the current generation is
// held through a refcounted handle, so during a model hot swap the old
// engine keeps answering its in-flight requests while new requests land
// on the new engine — zero requests dropped.
type Server struct {
	cur         atomic.Pointer[engineHandle]
	cfg         Config
	mux         *http.ServeMux
	limiter     *overload.Limiter
	panics      atomic.Int64
	rateLimited atomic.Uint64
	draining    atomic.Bool
	swaps       atomic.Uint64
	closeOnce   sync.Once
}

// New builds the handler around a trained recommender with default serving
// config.
func New(rec *core.Recommender) *Server { return NewWithConfig(rec, Config{}) }

// breakerSeed fixes the breaker's cooldown-jitter stream so two servers
// built from the same config behave identically (see internal/lint's
// detrand rule: randomness is seeded, never ambient).
const breakerSeed = 0x9e3779b97f4a7c15 & (1<<63 - 1)

// NewWithConfig builds the handler with explicit serving config.
func NewWithConfig(rec *core.Recommender, cfg Config) *Server {
	cfg = cfg.withDefaults()
	var lim *overload.Limiter
	if cfg.Rate > 0 {
		lim = overload.NewLimiter(overload.LimiterConfig{
			Rate:  cfg.Rate,
			Burst: cfg.Burst,
			Clock: cfg.Now,
		})
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		limiter: lim,
	}
	s.cur.Store(newEngineHandle(s.buildEngine(rec, cfg.Fallback)))
	s.mux.HandleFunc("/v1/recommend", s.handleRecommend)
	s.mux.HandleFunc("/v1/recommend/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/healthz", s.handleHealth)
	if cfg.EnablePush {
		s.mux.HandleFunc("/v1/model/push", s.handlePush)
	}
	return s
}

// buildEngine constructs one engine generation: its own worker pool,
// inference cache (stale entries from the previous model must not leak
// across a swap), admission controller and breaker. The rate limiter is
// server-level and survives swaps — client budgets are not reset by a
// model update.
func (s *Server) buildEngine(rec *core.Recommender, fb *servepool.Fallback) *servepool.Engine {
	cfg := s.cfg
	var adm *overload.Admission
	if cfg.MaxInFlight > 0 {
		adm = overload.NewAdmission(overload.AdmissionConfig{
			MaxInFlight: cfg.MaxInFlight,
			RetryAfter:  DefaultRetryAfter,
		})
	}
	var brk *overload.Breaker
	if cfg.BreakerRatio > 0 {
		brk = overload.NewBreaker(overload.BreakerConfig{
			FailureRatio: cfg.BreakerRatio,
			Clock:        cfg.Now,
			Seed:         breakerSeed,
		})
	}
	return servepool.NewEngineWithOptions(rec, reccache.New(cfg.CacheSize), servepool.EngineOptions{
		Workers:     cfg.Workers,
		Queue:       cfg.MaxQueue,
		Predictor:   cfg.Predictor,
		Admission:   adm,
		Breaker:     brk,
		Fallback:    fb,
		SoftTimeout: cfg.SoftTimeout,
		BatchSize:   cfg.BatchSize,
		BatchWindow: cfg.BatchWindow,
		Now:         cfg.Now,
	})
}

// acquire pins the current engine generation for one request. The
// recheck loop closes the window where a swap retires the loaded handle
// between Load and Add: a reference taken on a retired handle is dropped
// and the read retries on the new generation, so a request never runs on
// an engine that may close under it.
func (s *Server) acquire() *engineHandle {
	for {
		h := s.cur.Load()
		h.refs.Add(1)
		if s.cur.Load() == h {
			return h
		}
		h.release()
	}
}

// engine peeks at the current generation without pinning it — for
// telemetry reads (healthz, stats, tests), which tolerate racing a swap.
func (s *Server) engine() *servepool.Engine { return s.cur.Load().eng }

// SwapRecommender hot-swaps the serving model: a new engine generation
// (fresh pool, cache, admission, breaker) starts answering new requests
// immediately, while the old generation finishes its in-flight requests
// and closes when the last one releases. Zero requests are dropped. The
// degraded-mode snapshot is re-derived via Config.FallbackFactory when
// set, else the static Config.Fallback keeps serving.
func (s *Server) SwapRecommender(rec *core.Recommender) {
	fb := s.cfg.Fallback
	if s.cfg.FallbackFactory != nil {
		fb = s.cfg.FallbackFactory(rec)
	}
	nh := newEngineHandle(s.buildEngine(rec, fb))
	old := s.cur.Swap(nh)
	s.swaps.Add(1)
	// Drop the owner reference; the old engine closes as soon as its last
	// in-flight request finishes (immediately when idle).
	old.release()
}

// Swaps reports how many model hot swaps the server has performed.
func (s *Server) Swaps() uint64 { return s.swaps.Load() }

// StartDraining flips /v1/healthz to "draining" (503) so load balancers
// stop routing here while in-flight requests finish. Recommend endpoints
// keep answering until Close.
func (s *Server) StartDraining() { s.draining.Store(true) }

// clientKey identifies the caller for rate limiting: the X-Client-ID
// header when present (multi-tenant platforms forward a stable tenant
// id), else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// allow applies the per-client rate limit, writing the 429 itself when
// the client is over budget. Rate limiting never degrades — a greedy
// client gets backpressure, not free popular answers.
func (s *Server) allow(w http.ResponseWriter, r *http.Request) bool {
	return s.allowN(w, r, 1)
}

// allowN is the weighted form: a batch of n items costs n tokens, so
// /v1/recommend/batch cannot multiply a client's configured rate by the
// batch size. Batches wider than the configured Burst can never pass —
// deployments serving batch traffic should set Burst >= MaxBatch.
func (s *Server) allowN(w http.ResponseWriter, r *http.Request, n int) bool {
	ok, retryAfter := s.limiter.AllowN(clientKey(r), n)
	if ok {
		return true
	}
	s.rateLimited.Add(1)
	setRetryAfter(w, retryAfter)
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "rate limit exceeded"})
	return false
}

// setRetryAfter renders the standard backoff hint header, rounding up to
// whole seconds (the header's unit) with a minimum of 1.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// ServeHTTP implements http.Handler with panic recovery: a panicking
// handler yields a 500 JSON error instead of killing the process.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if p == http.ErrAbortHandler {
			// The conventional way to abort a response; not a defect.
			panic(p)
		}
		s.panics.Add(1)
		log.Printf("server: panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
		// Best effort: if the handler already wrote headers this is a
		// no-op body append, but the connection still dies cleanly.
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal server error"})
	}()
	if s.cfg.ReplicaID != "" {
		w.Header().Set("X-Replica-ID", s.cfg.ReplicaID)
	}
	s.mux.ServeHTTP(w, r)
}

// Panics reports how many handler panics have been recovered.
func (s *Server) Panics() int64 { return s.panics.Load() }

// Close drains the worker pool of the current engine generation. The
// server must not be used afterwards.
func (s *Server) Close() {
	s.closeOnce.Do(func() { s.cur.Load().release() })
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	eng := s.engine()
	rec := eng.Rec()
	ov := eng.OverloadStats()
	// Health ladder: draining (503, stop routing here) beats degraded
	// (200, still answering but the model path is broken) beats ok.
	status, code := "ok", http.StatusOK
	if ov.Breaker.State == overload.Open.String() {
		status = "degraded"
	}
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
		// Tell probers (the gateway health ladder, load balancers) when to
		// look again, instead of letting them tight-loop a dying process.
		setRetryAfter(w, DefaultDrainRetryAfter)
	}
	body := map[string]any{
		"status":  status,
		"vocab":   rec.Vocab.Size(),
		"classes": len(rec.Classifier.Classes),
		"arch":    string(rec.Model.Config().Arch),
		"cache":   eng.CacheStats(),
		"pool":    eng.PoolStats(),
		"batcher": eng.BatcherStats(),
		"panics":  s.panics.Load(),
		"swaps":   s.swaps.Load(),
		"overload": map[string]any{
			"engine":       ov,
			"rate":         s.limiter.Stats(),
			"rate_limited": s.rateLimited.Load(),
		},
	}
	if s.cfg.ReplicaID != "" {
		body["replica"] = s.cfg.ReplicaID
	}
	writeJSON(w, code, body)
}

// handlePush is the receiver side of the replica artifact-push protocol:
// it accepts the three checksummed artifact envelopes, validates and
// decodes them entirely in memory (a truncated or bit-flipped envelope
// rejects the whole set — the old model keeps serving), persists them
// atomically when a model directory is configured, and hot-swaps the
// engine with zero dropped requests.
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var payload modeldir.PushPayload
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxPushBytes)
	if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("push exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	rec, err := modeldir.DecodeArtifacts(payload.Artifacts, 0)
	if err != nil {
		// Corrupt, truncated, or incomplete artifact set: reject atomically,
		// old model untouched. 422 mirrors the bad-query contract.
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	if s.cfg.ModelDir != "" {
		if err := modeldir.InstallRaw(s.cfg.ModelDir, payload.Artifacts); err != nil {
			// Disk and memory must not diverge: a persist failure keeps the
			// old model serving rather than swapping to a model a restart
			// would lose.
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
	}
	s.SwapRecommender(rec)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "swapped",
		"swaps":   s.swaps.Load(),
		"classes": len(rec.Classifier.Classes),
		"vocab":   rec.Vocab.Size(),
		"arch":    string(rec.Model.Config().Arch),
	})
}

// decodeBody JSON-decodes a size-limited request body into v, translating
// failure modes to HTTP statuses. It reports whether decoding succeeded;
// on failure the error response has already been written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return false
	}
	return true
}

// toPoolRequest validates and converts one API request, clamping N into
// [1, 25] (default 3).
func toPoolRequest(req RecommendRequest) (servepool.Request, error) {
	if req.SQL == "" {
		return servepool.Request{}, errors.New("sql is required")
	}
	n := req.N
	if n <= 0 {
		n = 3
	}
	if n > 25 {
		n = 25
	}
	opts := core.DefaultNFragmentsOptions()
	switch req.Strategy {
	case "", "beam":
	case "diverse-beam":
		opts.Strategy = core.StrategyDiverseBeam
	case "sampling":
		opts.Strategy = core.StrategySampling
	default:
		return servepool.Request{}, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	return servepool.Request{SQL: req.SQL, PrevSQL: req.PrevSQL, N: n, Opts: opts}, nil
}

// toResponse renders an engine result in the stable wire shape: fragment
// kinds appear in paper order and empty kinds are omitted.
func toResponse(res *servepool.Result) RecommendResponse {
	resp := RecommendResponse{Templates: res.Templates, Fragments: map[string][]string{}, Degraded: res.Degraded}
	for _, kind := range sqlast.FragmentKinds {
		if len(res.Fragments[kind]) > 0 {
			resp.Fragments[kind.String()] = res.Fragments[kind]
		}
	}
	return resp
}

// errStatus maps engine errors to HTTP statuses.
func errStatus(err error) int {
	var bad *servepool.BadQueryError
	switch {
	case errors.As(err, &bad):
		return http.StatusUnprocessableEntity
	case errors.Is(err, overload.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, servepool.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders an engine error, attaching the Retry-After backoff
// hint that overload rejections carry.
func writeError(w http.ResponseWriter, err error) {
	var ov *overload.Error
	if errors.As(err, &ov) && ov.RetryAfter > 0 {
		setRetryAfter(w, ov.RetryAfter)
	}
	writeJSON(w, errStatus(err), errorResponse{Error: errMessage(err)})
}

// errMessage prefixes parse failures the way the seed API did.
func errMessage(err error) string {
	var bad *servepool.BadQueryError
	if errors.As(err, &bad) {
		return "cannot parse query: " + bad.Err.Error()
	}
	return err.Error()
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	if !s.allow(w, r) {
		return
	}
	var req RecommendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	preq, err := toPoolRequest(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	// Pin the engine generation for the request's lifetime: a concurrent
	// hot swap retires this generation only after the release below.
	h := s.acquire()
	defer h.release()
	res, err := h.eng.Recommend(ctx, preq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var batch BatchRequest
	if !s.decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "requests is required"})
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(batch.Requests), s.cfg.MaxBatch)})
		return
	}
	// The limit check runs after decoding because the charge is the batch
	// width: n items cost n tokens, the same as n single calls.
	if !s.allowN(w, r, len(batch.Requests)) {
		return
	}
	// Invalid individual requests fail their slot, not the whole batch;
	// the shared timeout covers the batch as a unit.
	preqs := make([]servepool.Request, len(batch.Requests))
	precheck := make([]error, len(batch.Requests))
	for i, req := range batch.Requests {
		preqs[i], precheck[i] = toPoolRequest(req)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	h := s.acquire()
	defer h.release()
	items := h.eng.RecommendBatch(ctx, preqs)
	out := BatchResponse{Results: make([]BatchItem, len(items))}
	for i, item := range items {
		switch {
		case precheck[i] != nil:
			out.Results[i] = BatchItem{Error: precheck[i].Error()}
		case item.Err != nil:
			out.Results[i] = BatchItem{Error: errMessage(item.Err)}
		default:
			resp := toResponse(item.Result)
			out.Results[i] = BatchItem{Templates: resp.Templates, Fragments: resp.Fragments, Degraded: resp.Degraded}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// writeJSON encodes v before writing any headers so an encode failure can
// still produce a well-formed 500 instead of a silently truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		// errorResponse of a plain string cannot itself fail to encode.
		fallback, _ := json.Marshal(errorResponse{Error: "encode response: " + err.Error()})
		w.Write(append(fallback, '\n'))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
