// Package server exposes a trained Recommender over HTTP with a small
// JSON API, the deployment shape a database-as-a-service platform (the
// paper's SQLShare setting) would embed:
//
//	POST /v1/recommend   {"sql": "...", "prev_sql": "...", "n": 3}
//	  -> {"templates": [...], "fragments": {"table": [...], ...}}
//	GET  /v1/healthz     -> {"status":"ok", ...}
//
// The handler is stateless per request and safe for concurrent use: model
// inference only reads parameters.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/sqlast"
)

// RecommendRequest is the /v1/recommend input.
type RecommendRequest struct {
	// SQL is the user's current query Q_i (required).
	SQL string `json:"sql"`
	// PrevSQL optionally supplies Q_{i-1} for context-trained models.
	PrevSQL string `json:"prev_sql,omitempty"`
	// N bounds the number of templates and fragments per type
	// (default 3, max 25).
	N int `json:"n,omitempty"`
	// Strategy selects the N-fragments search: "beam" (default),
	// "diverse-beam" or "sampling".
	Strategy string `json:"strategy,omitempty"`
}

// RecommendResponse is the /v1/recommend output.
type RecommendResponse struct {
	Templates []string            `json:"templates"`
	Fragments map[string][]string `json:"fragments"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Server wires a Recommender into an http.Handler.
type Server struct {
	rec *core.Recommender
	mux *http.ServeMux
}

// New builds the handler around a trained recommender.
func New(rec *core.Recommender) *Server {
	s := &Server{rec: rec, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/recommend", s.handleRecommend)
	s.mux.HandleFunc("/v1/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"vocab":   s.rec.Vocab.Size(),
		"classes": len(s.rec.Classifier.Classes),
		"arch":    string(s.rec.Model.Config().Arch),
	})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "sql is required"})
		return
	}
	n := req.N
	if n <= 0 {
		n = 3
	}
	if n > 25 {
		n = 25
	}
	opts := core.DefaultNFragmentsOptions()
	switch req.Strategy {
	case "", "beam":
	case "diverse-beam":
		opts.Strategy = core.StrategyDiverseBeam
	case "sampling":
		opts.Strategy = core.StrategySampling
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown strategy %q", req.Strategy)})
		return
	}

	var templates []string
	var err error
	if req.PrevSQL != "" {
		templates, err = s.rec.NextTemplatesContext(req.PrevSQL, req.SQL, n)
	} else {
		templates, err = s.rec.NextTemplates(req.SQL, n)
	}
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: "cannot parse query: " + err.Error()})
		return
	}
	frags, err := s.rec.NextFragments(req.SQL, n, opts)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	resp := RecommendResponse{Templates: templates, Fragments: map[string][]string{}}
	for _, kind := range sqlast.FragmentKinds {
		if len(frags[kind]) > 0 {
			resp.Fragments[kind.String()] = frags[kind]
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
