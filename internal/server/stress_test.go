package server

// Concurrency stress: many goroutines hammer the cached, pooled handler
// with a mixed hot/cold workload. Verifies (a) every concurrent response
// is byte-identical to the uncached single-threaded path, (b) the cache
// hit-rate on a recurrence-dominated workload clears a threshold, and
// (c) the whole thing is race-clean — the package docs claim model
// inference only reads parameters, and this test is where `-race` checks
// that claim.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/synth"
)

// stressQueries builds the mixed workload: a few hot queries that repeat
// throughout plus a tail of cold queries drawn from the synthetic
// generator (all guaranteed parseable).
func stressQueries(t *testing.T, nCold int) (hot, cold []string) {
	t.Helper()
	hot = []string{
		"SELECT ra, dec FROM PhotoObj WHERE ra > 180.0",
		"SELECT ra FROM PhotoObj",
		"SELECT TOP 10 * FROM PhotoObj ORDER BY ra",
		"SELECT COUNT(*) FROM PhotoObj",
	}
	prof := synth.SDSSProfile()
	prof.Sessions = 30
	wl := synth.Generate(prof, 99)
	seen := map[string]bool{}
	for _, h := range hot {
		seen[h] = true
	}
	for _, sess := range wl.Sessions {
		for _, q := range sess.Queries {
			if len(cold) >= nCold {
				return hot, cold
			}
			if !seen[q.SQL] {
				seen[q.SQL] = true
				cold = append(cold, q.SQL)
			}
		}
	}
	if len(cold) == 0 {
		t.Fatal("no cold queries generated")
	}
	return hot, cold
}

func TestConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := trainedRecommender(t)
	hot, cold := stressQueries(t, 24)

	// Reference answers from the uncached path, computed single-threaded.
	uncached := NewWithConfig(rec, Config{CacheSize: -1, Workers: 1})
	defer uncached.Close()
	want := map[string]string{}
	all := append(append([]string{}, hot...), cold...)
	for _, sql := range all {
		w := postTo(t, uncached, "/v1/recommend", reqBody(sql))
		if w.Code != http.StatusOK {
			t.Fatalf("uncached %q: status %d (%s)", sql, w.Code, w.Body.String())
		}
		want[sql] = w.Body.String()
	}

	cached := New(rec)
	defer cached.Close()

	// 8 goroutines x 40 requests; ~85% of traffic goes to the hot set,
	// mirroring the recurrent-query skew real workloads show.
	const goroutines, perG = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var sql string
				if (g+i)%7 == 0 {
					sql = cold[(g*perG+i)%len(cold)]
				} else {
					sql = hot[(g+i)%len(hot)]
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/recommend", bytes.NewBufferString(reqBody(sql)))
				w := httptest.NewRecorder()
				cached.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("%q: status %d (%s)", sql, w.Code, w.Body.String())
					continue
				}
				if got := w.Body.String(); got != want[sql] {
					errs <- fmt.Errorf("%q: cached response diverges\ngot:  %s\nwant: %s", sql, got, want[sql])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	nerr := 0
	for err := range errs {
		nerr++
		if nerr <= 5 {
			t.Error(err)
		}
	}
	if nerr > 5 {
		t.Errorf("... and %d more errors", nerr-5)
	}

	st := cached.engine().CacheStats()
	total := st.Hits + st.Misses
	if total == 0 {
		t.Fatal("cache saw no traffic")
	}
	// Hot queries dominate, so well over half of all lookups must hit.
	if rate := float64(st.Hits) / float64(total); rate < 0.6 {
		t.Errorf("hit rate %.2f below 0.6 (%+v)", rate, st)
	}
}

func reqBody(sql string) string {
	b, _ := json.Marshal(map[string]any{"sql": sql, "n": 3})
	return string(b)
}
