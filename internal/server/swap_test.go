package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/modeldir"
)

func TestReplicaIDHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := NewWithConfig(trainedRecommender(t), Config{ReplicaID: "replica-a"})
	defer srv.Close()

	w := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj"}`)
	if got := w.Header().Get("X-Replica-ID"); got != "replica-a" {
		t.Errorf("recommend X-Replica-ID = %q", got)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	hw := httptest.NewRecorder()
	srv.ServeHTTP(hw, req)
	if got := hw.Header().Get("X-Replica-ID"); got != "replica-a" {
		t.Errorf("healthz X-Replica-ID = %q", got)
	}
	var h map[string]any
	if err := json.Unmarshal(hw.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h["replica"] != "replica-a" {
		t.Errorf("healthz replica field: %v", h["replica"])
	}
}

func TestDrainingHealthzRetryAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	defer srv.Close()
	srv.StartDraining()

	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "2" {
		t.Errorf("draining Retry-After = %q, want %q", got, "2")
	}
	var h map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "draining" {
		t.Errorf("status: %v", h["status"])
	}

	// Recommend endpoints keep answering while draining.
	if rw := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj"}`); rw.Code != http.StatusOK {
		t.Errorf("recommend during drain: status %d", rw.Code)
	}
}

// TestSwapZeroDrop hammers the server from many goroutines while hot
// swaps fire continuously. Every request must answer 200 — no request
// may observe a closed pool or a torn engine — and the swap counter must
// land exactly where the swap count says.
func TestSwapZeroDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := trainedRecommender(t)
	srv := New(rec)
	defer srv.Close()

	const (
		clients = 8
		perGo   = 30
		swaps   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan string, clients*perGo)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perGo; j++ {
				w := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj", "n": 1}`)
				if w.Code != http.StatusOK {
					errs <- w.Body.String()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			srv.SwapRecommender(rec)
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("request dropped during swap: %s", e)
	}
	if got := srv.Swaps(); got != swaps {
		t.Errorf("swaps = %d, want %d", got, swaps)
	}
}

// pushBody builds a valid push payload from the shared test recommender.
func pushBody(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	if err := modeldir.Save(dir, trainedRecommender(t)); err != nil {
		t.Fatal(err)
	}
	files, err := modeldir.ReadRaw(dir)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(modeldir.PushPayload{Artifacts: files})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func pushReq(srv http.Handler, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/model/push", bytes.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestPushEndpointSwaps(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	modelDir := t.TempDir()
	srv := NewWithConfig(trainedRecommender(t), Config{EnablePush: true, ModelDir: modelDir})
	defer srv.Close()

	w := pushReq(srv, pushBody(t))
	if w.Code != http.StatusOK {
		t.Fatalf("push status %d: %s", w.Code, w.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["status"] != "swapped" || resp["swaps"] != float64(1) {
		t.Errorf("push response: %v", resp)
	}
	// The push persisted a loadable model into the configured directory.
	if _, err := modeldir.Load(modelDir, 0); err != nil {
		t.Errorf("persisted model does not load: %v", err)
	}
	// The swapped engine serves.
	if rw := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj"}`); rw.Code != http.StatusOK {
		t.Errorf("recommend after push: status %d: %s", rw.Code, rw.Body.String())
	}
}

// TestPushCorruptRejected: a bit-flipped artifact envelope rejects the
// whole push with 422; no swap happens and the old model keeps serving.
func TestPushCorruptRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := NewWithConfig(trainedRecommender(t), Config{EnablePush: true})
	defer srv.Close()

	body := pushBody(t)
	var payload modeldir.PushPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	art := payload.Artifacts[modeldir.ModelFile]
	art[len(art)-5] ^= 0x40
	corrupted, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}

	if w := pushReq(srv, corrupted); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt push status %d: %s", w.Code, w.Body.String())
	}
	if srv.Swaps() != 0 {
		t.Errorf("corrupt push swapped the engine (swaps=%d)", srv.Swaps())
	}
	if rw := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj"}`); rw.Code != http.StatusOK {
		t.Errorf("old model not serving after rejected push: status %d", rw.Code)
	}

	// Truncated artifact: same contract.
	var payload2 modeldir.PushPayload
	if err := json.Unmarshal(pushBody(t), &payload2); err != nil {
		t.Fatal(err)
	}
	full := payload2.Artifacts[modeldir.VocabFile]
	payload2.Artifacts[modeldir.VocabFile] = full[:len(full)/3]
	truncated, err := json.Marshal(payload2)
	if err != nil {
		t.Fatal(err)
	}
	if w := pushReq(srv, truncated); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("truncated push status %d: %s", w.Code, w.Body.String())
	}
	if srv.Swaps() != 0 {
		t.Errorf("truncated push swapped the engine")
	}
}

// TestPushPersistFailure: when the model directory cannot be written the
// push answers 500 and does NOT swap — disk and memory must not diverge.
func TestPushPersistFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	// A regular file where the model directory's parent should be makes
	// MkdirAll fail with ENOTDIR, even for root.
	tmp := t.TempDir()
	blocker := filepath.Join(tmp, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(trainedRecommender(t), Config{
		EnablePush: true,
		ModelDir:   filepath.Join(blocker, "model"),
	})
	defer srv.Close()

	if w := pushReq(srv, pushBody(t)); w.Code != http.StatusInternalServerError {
		t.Fatalf("persist-failure push status %d: %s", w.Code, w.Body.String())
	}
	if srv.Swaps() != 0 {
		t.Errorf("persist failure still swapped the engine")
	}
	if rw := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj"}`); rw.Code != http.StatusOK {
		t.Errorf("old model not serving after persist failure: status %d", rw.Code)
	}
}

func TestPushDisabledByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	defer srv.Close()
	if w := pushReq(srv, []byte(`{}`)); w.Code != http.StatusNotFound {
		t.Errorf("push on default server: status %d, want 404", w.Code)
	}
}

func TestPushBadJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := NewWithConfig(trainedRecommender(t), Config{EnablePush: true})
	defer srv.Close()
	if w := pushReq(srv, []byte(`{`)); w.Code != http.StatusBadRequest {
		t.Errorf("bad-json push: status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/model/push", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET push: status %d", w.Code)
	}
}
