package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/seq2seq"
	"repro/internal/synth"
)

var (
	testRecOnce sync.Once
	testRec     *core.Recommender
)

// trainedRecommender builds one tiny trained recommender shared by all
// server tests (training is the expensive part).
func trainedRecommender(t *testing.T) *core.Recommender {
	t.Helper()
	testRecOnce.Do(func() {
		prof := synth.SDSSProfile()
		prof.Sessions = 50
		wl := synth.Generate(prof, 11)
		ds, err := core.Prepare(wl, core.DefaultPrepConfig())
		if err != nil {
			panic(err)
		}
		cfg := core.DefaultTrainConfig(seq2seq.Transformer)
		cfg.SeqOpts.Epochs = 1
		cfg.ClsOpts.Epochs = 1
		cfg.MaxTrainPairs = 60
		mcfg := seq2seq.DefaultConfig(seq2seq.Transformer, 0)
		mcfg.DModel = 16
		mcfg.FFHidden = 16
		cfg.Model = &mcfg
		rec, err := core.Train(ds, cfg)
		if err != nil {
			panic(err)
		}
		testRec = rec
	})
	return testRec
}

func post(t *testing.T, srv http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/recommend", bytes.NewBufferString(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestRecommendEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	w := post(t, srv, `{"sql": "SELECT ra, dec FROM PhotoObj WHERE ra > 180.0", "n": 2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp RecommendResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Templates) != 2 {
		t.Errorf("templates: %v", resp.Templates)
	}
	for kind, names := range resp.Fragments {
		if len(names) > 2 {
			t.Errorf("%s: too many fragments %v", kind, names)
		}
	}
}

func TestRecommendWithContext(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	w := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj", "prev_sql": "SELECT TOP 10 * FROM PhotoObj"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

func TestRecommendValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	cases := []struct {
		name string
		body string
		want int
	}{
		{"missing sql", `{}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"unparseable sql", `{"sql": "DROP TABLE x"}`, http.StatusUnprocessableEntity},
		{"unknown strategy", `{"sql": "SELECT a FROM t", "strategy": "dfs"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := post(t, srv, c.body); w.Code != c.want {
			t.Errorf("%s: status %d want %d (%s)", c.name, w.Code, c.want, w.Body.String())
		}
	}
	// GET is rejected.
	req := httptest.NewRequest(http.MethodGet, "/v1/recommend", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", w.Code)
	}
}

func TestHealthEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("health status %d", w.Code)
	}
	var h map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["arch"] != "transformer" {
		t.Errorf("health payload: %v", h)
	}
}

func TestConcurrentRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := post(t, srv, `{"sql": "SELECT ra FROM PhotoObj", "n": 1}`)
			if w.Code != http.StatusOK {
				errs <- w.Body.String()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent request failed: %s", e)
	}
}
