package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/seq2seq"
	"repro/internal/tokenizer"
)

// tinyServer builds a Server around an untrained recommender: panic
// recovery and shutdown tests exercise the HTTP layer, not the model.
func tinyServer(t *testing.T) *Server {
	t.Helper()
	b := tokenizer.NewBuilder()
	b.AddQuery([]string{"select", "ra", "from", "photoobj"})
	vocab := b.Build(1)
	cfg := seq2seq.DefaultConfig(seq2seq.ConvS2S, vocab.Size())
	cfg.DModel = 8
	cfg.FFHidden = 16
	model, err := seq2seq.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := seq2seq.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cls := classify.New(enc, 8, []string{"SELECT ra FROM PhotoObj"}, 3)
	srv := New(&core.Recommender{Vocab: vocab, Model: model, Classifier: cls, MaxGenLen: 16})
	t.Cleanup(srv.Close)
	return srv
}

// TestPanicRecovery checks a panicking handler yields a JSON 500, bumps
// the healthz counter, and leaves the server serving.
func TestPanicRecovery(t *testing.T) {
	srv := tinyServer(t)
	srv.mux.HandleFunc("/v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	var resp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("500 body is not JSON: %q", w.Body.String())
	}
	if resp.Error == "" {
		t.Errorf("500 body lacks error field: %q", w.Body.String())
	}
	if got := srv.Panics(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The server keeps answering, and healthz reports the panic.
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", w.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if n, ok := health["panics"].(float64); !ok || n != 1 {
		t.Errorf("healthz panics = %v, want 1", health["panics"])
	}
}

// TestPanicAbortHandlerPassesThrough keeps the net/http convention: a
// handler aborting the response via http.ErrAbortHandler is not a defect
// and must not be swallowed or counted.
func TestPanicAbortHandlerPassesThrough(t *testing.T) {
	srv := tinyServer(t)
	srv.mux.HandleFunc("/v1/abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Errorf("expected re-panic with ErrAbortHandler, got %v", p)
		}
		if srv.Panics() != 0 {
			t.Errorf("abort counted as panic")
		}
	}()
	srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/abort", nil))
	t.Fatal("handler did not re-panic")
}

// drainFixture runs serveHandler on a loopback listener with a
// caller-controlled handler and reports the serve error on done.
type drainFixture struct {
	base   string
	cancel context.CancelFunc
	done   chan error
	closed chan struct{}
}

func startDrainFixture(t *testing.T, h http.Handler, drain time.Duration) *drainFixture {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	f := &drainFixture{
		base:   "http://" + ln.Addr().String(),
		cancel: cancel,
		done:   make(chan error, 1),
		closed: make(chan struct{}),
	}
	go func() {
		f.done <- serveHandler(ctx, ln, h, nil, func() { close(f.closed) }, drain)
	}()
	return f
}

// TestGracefulDrainCompletesInFlight is the qrec-serve shutdown
// guarantee: a request already executing when the signal arrives runs to
// completion, then the server exits cleanly and closes the engine.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var served atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		<-release
		served.Add(1)
		fmt.Fprint(w, "done")
	})
	f := startDrainFixture(t, h, 5*time.Second)

	type result struct {
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(f.base + "/slow")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{body: string(b)}
	}()

	<-inFlight // request is executing
	f.cancel() // deliver the "signal"
	time.Sleep(50 * time.Millisecond)
	select {
	case <-f.done:
		t.Fatal("server exited while a request was in flight")
	case <-f.closed:
		t.Fatal("engine closed while a request was in flight")
	default:
	}
	close(release) // let the handler finish

	res := <-resc
	if res.err != nil || res.body != "done" {
		t.Fatalf("in-flight request: body %q err %v", res.body, res.err)
	}
	select {
	case err := <-f.done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit after drain")
	}
	<-f.closed
	if served.Load() != 1 {
		t.Fatalf("served %d requests", served.Load())
	}
	// New connections are refused after shutdown.
	if _, err := http.Get(f.base + "/late"); err == nil {
		t.Error("connection accepted after shutdown")
	}
}

// TestDrainDeadlineCutsOffStuckRequests bounds shutdown: a handler that
// never returns cannot hold the process hostage past the drain window.
func TestDrainDeadlineCutsOffStuckRequests(t *testing.T) {
	inFlight := make(chan struct{})
	stuck := make(chan struct{})
	t.Cleanup(func() { close(stuck) })
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		<-stuck
	})
	f := startDrainFixture(t, h, 100*time.Millisecond)
	go func() {
		resp, err := http.Get(f.base + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inFlight
	f.cancel()
	select {
	case err := <-f.done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain deadline did not fire")
	}
	<-f.closed
}
