package server

// Error-path, golden-JSON, batch and serving-config coverage beyond the
// happy-path tests in server_test.go.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sqlast"
)

func postTo(t *testing.T, srv http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// TestRecommendErrorPaths is the table-driven sweep over every rejection
// the endpoint can produce.
func TestRecommendErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	defer srv.Close()
	cases := []struct {
		name    string
		method  string
		body    string
		want    int
		errPart string
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed, "POST required"},
		{"put", http.MethodPut, `{"sql":"SELECT a FROM t"}`, http.StatusMethodNotAllowed, "POST required"},
		{"empty body", http.MethodPost, ``, http.StatusBadRequest, "invalid JSON"},
		{"bad json", http.MethodPost, `{`, http.StatusBadRequest, "invalid JSON"},
		{"json wrong type", http.MethodPost, `{"sql": 42}`, http.StatusBadRequest, "invalid JSON"},
		{"missing sql", http.MethodPost, `{}`, http.StatusBadRequest, "sql is required"},
		{"empty sql", http.MethodPost, `{"sql": ""}`, http.StatusBadRequest, "sql is required"},
		{"unknown strategy", http.MethodPost, `{"sql": "SELECT a FROM t", "strategy": "dfs"}`, http.StatusBadRequest, `unknown strategy "dfs"`},
		{"unparseable sql", http.MethodPost, `{"sql": "DROP TABLE x"}`, http.StatusUnprocessableEntity, "cannot parse query"},
		{"unparseable prev", http.MethodPost, `{"sql": "SELECT ra FROM PhotoObj", "prev_sql": "%%%"}`, http.StatusUnprocessableEntity, "cannot parse query"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(c.method, "/v1/recommend", bytes.NewBufferString(c.body))
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			if w.Code != c.want {
				t.Fatalf("status %d want %d (%s)", w.Code, c.want, w.Body.String())
			}
			var e map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.Contains(e["error"], c.errPart) {
				t.Errorf("error %q does not contain %q", e["error"], c.errPart)
			}
		})
	}
}

// TestNClamping pins the N normalization: <=0 becomes the default 3,
// values above 25 are clamped to 25.
func TestNClamping(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := trainedRecommender(t)
	srv := New(rec)
	defer srv.Close()
	clamp := func(n int) int {
		if n > len(rec.Classifier.Classes) {
			return len(rec.Classifier.Classes)
		}
		return n
	}
	cases := []struct {
		n    int
		want int // expected template count
	}{
		{0, clamp(3)},
		{-5, clamp(3)},
		{1, 1},
		{25, clamp(25)},
		{100, clamp(25)},
	}
	for _, c := range cases {
		w := postTo(t, srv, "/v1/recommend",
			fmt.Sprintf(`{"sql": "SELECT ra FROM PhotoObj", "n": %d}`, c.n))
		if w.Code != http.StatusOK {
			t.Fatalf("n=%d: status %d (%s)", c.n, w.Code, w.Body.String())
		}
		var resp RecommendResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Templates) != c.want {
			t.Errorf("n=%d: %d templates, want %d", c.n, len(resp.Templates), c.want)
		}
	}
}

// TestOversizedBody verifies MaxBytesReader enforcement returns 413.
func TestOversizedBody(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := NewWithConfig(trainedRecommender(t), Config{MaxBodyBytes: 64})
	defer srv.Close()
	big := `{"sql": "SELECT ra FROM PhotoObj WHERE ` + strings.Repeat("ra > 0 AND ", 50) + ` ra > 0"}`
	w := postTo(t, srv, "/v1/recommend", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d want 413 (%s)", w.Code, w.Body.String())
	}
	// Within the limit still works.
	w = postTo(t, srv, "/v1/recommend", `{"sql": "SELECT ra FROM PhotoObj"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("small body status %d (%s)", w.Code, w.Body.String())
	}
}

// TestRequestTimeout drives the per-request deadline to zero and expects
// 504.
func TestRequestTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := NewWithConfig(trainedRecommender(t), Config{Timeout: time.Nanosecond})
	defer srv.Close()
	w := postTo(t, srv, "/v1/recommend", `{"sql": "SELECT ra FROM PhotoObj"}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d want 504 (%s)", w.Code, w.Body.String())
	}
}

// TestGoldenRecommendJSON asserts the exact wire bytes for a fixed-seed
// model: the handler response must be byte-identical to the JSON encoding
// of the recommendations computed directly through the core API (the seed
// serving path).
func TestGoldenRecommendJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := trainedRecommender(t)
	srv := New(rec)
	defer srv.Close()

	sql := "SELECT ra, dec FROM PhotoObj WHERE ra > 180.0"
	templates, err := rec.NextTemplates(sql, 2)
	if err != nil {
		t.Fatal(err)
	}
	frags, err := rec.NextFragments(sql, 2, core.DefaultNFragmentsOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := RecommendResponse{Templates: templates, Fragments: map[string][]string{}}
	for _, kind := range sqlast.FragmentKinds {
		if len(frags[kind]) > 0 {
			want.Fragments[kind.String()] = frags[kind]
		}
	}
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	w := postTo(t, srv, "/v1/recommend", `{"sql": "`+sql+`", "n": 2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d (%s)", w.Code, w.Body.String())
	}
	got := strings.TrimSuffix(w.Body.String(), "\n")
	if got != string(wantBytes) {
		t.Errorf("wire bytes diverge from core API result:\ngot:  %s\nwant: %s", got, wantBytes)
	}
	// Shape: the golden body decodes into exactly the documented fields.
	var shape map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &shape); err != nil {
		t.Fatal(err)
	}
	for k := range shape {
		if k != "templates" && k != "fragments" {
			t.Errorf("unexpected top-level key %q", k)
		}
	}
}

// TestWriteJSONEncodeError is the regression test for writeJSON silently
// discarding encode errors: an unmarshalable value must yield a
// well-formed JSON 500, not an empty 200 body.
func TestWriteJSONEncodeError(t *testing.T) {
	w := httptest.NewRecorder()
	writeJSON(w, http.StatusOK, map[string]any{"f": func() {}})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d want 500", w.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("fallback body is not JSON: %v (%q)", err, w.Body.String())
	}
	if !strings.Contains(e["error"], "encode response") {
		t.Errorf("fallback error %q", e["error"])
	}
}

func TestBatchEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	defer srv.Close()

	t.Run("mixed results", func(t *testing.T) {
		w := postTo(t, srv, "/v1/recommend/batch", `{"requests": [
			{"sql": "SELECT ra FROM PhotoObj", "n": 2},
			{"sql": "garbage((("},
			{"sql": ""},
			{"sql": "SELECT ra FROM PhotoObj", "strategy": "bogus"}
		]}`)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d (%s)", w.Code, w.Body.String())
		}
		var resp BatchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 4 {
			t.Fatalf("got %d results", len(resp.Results))
		}
		if resp.Results[0].Error != "" || len(resp.Results[0].Templates) != 2 {
			t.Errorf("result 0: %+v", resp.Results[0])
		}
		if !strings.Contains(resp.Results[1].Error, "parse") {
			t.Errorf("result 1 error %q", resp.Results[1].Error)
		}
		if resp.Results[2].Error != "sql is required" {
			t.Errorf("result 2 error %q", resp.Results[2].Error)
		}
		if !strings.Contains(resp.Results[3].Error, "unknown strategy") {
			t.Errorf("result 3 error %q", resp.Results[3].Error)
		}
	})

	t.Run("empty batch", func(t *testing.T) {
		if w := postTo(t, srv, "/v1/recommend/batch", `{"requests": []}`); w.Code != http.StatusBadRequest {
			t.Errorf("status %d want 400", w.Code)
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/v1/recommend/batch", nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("status %d want 405", w.Code)
		}
	})

	t.Run("batch matches single", func(t *testing.T) {
		single := postTo(t, srv, "/v1/recommend", `{"sql": "SELECT ra FROM PhotoObj", "n": 2}`)
		var want RecommendResponse
		if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
			t.Fatal(err)
		}
		w := postTo(t, srv, "/v1/recommend/batch", `{"requests": [{"sql": "SELECT ra FROM PhotoObj", "n": 2}]}`)
		var resp BatchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		got := resp.Results[0]
		if fmt.Sprint(got.Templates) != fmt.Sprint(want.Templates) ||
			fmt.Sprint(got.Fragments) != fmt.Sprint(want.Fragments) {
			t.Errorf("batch item %+v != single %+v", got, want)
		}
	})
}

func TestBatchTooLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := NewWithConfig(trainedRecommender(t), Config{MaxBatch: 2})
	defer srv.Close()
	w := postTo(t, srv, "/v1/recommend/batch",
		`{"requests": [{"sql":"SELECT a FROM t"},{"sql":"SELECT a FROM t"},{"sql":"SELECT a FROM t"}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d want 400 (%s)", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "exceeds limit 2") {
		t.Errorf("body %q", w.Body.String())
	}
}

// TestHealthzServingStats verifies cache and pool telemetry surface on the
// health endpoint.
func TestHealthzServingStats(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := New(trainedRecommender(t))
	defer srv.Close()
	// Warm the cache with a repeat.
	postTo(t, srv, "/v1/recommend", `{"sql": "SELECT ra FROM PhotoObj"}`)
	postTo(t, srv, "/v1/recommend", `{"sql": "SELECT ra FROM PhotoObj"}`)

	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var h struct {
		Status string `json:"status"`
		Cache  struct {
			Hits     uint64  `json:"hits"`
			Misses   uint64  `json:"misses"`
			Entries  int     `json:"entries"`
			Capacity int     `json:"capacity"`
			HitRate  float64 `json:"hit_rate"`
		} `json:"cache"`
		Pool struct {
			Workers  int    `json:"workers"`
			Executed uint64 `json:"executed"`
		} `json:"pool"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if h.Cache.Hits < 2 || h.Cache.Misses < 2 || h.Cache.Entries < 2 {
		t.Errorf("cache stats %+v", h.Cache)
	}
	if h.Pool.Workers < 1 || h.Pool.Executed < 4 {
		t.Errorf("pool stats %+v", h.Pool)
	}
}

// TestCacheDisabled verifies a negative CacheSize serves correctly without
// memoization.
func TestCacheDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	srv := NewWithConfig(trainedRecommender(t), Config{CacheSize: -1})
	defer srv.Close()
	for i := 0; i < 2; i++ {
		if w := postTo(t, srv, "/v1/recommend", `{"sql": "SELECT ra FROM PhotoObj"}`); w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var h struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Cache.Hits != 0 || h.Cache.Misses != 0 {
		t.Errorf("disabled cache reported traffic: %+v", h.Cache)
	}
}
