package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultDrainTimeout bounds how long graceful shutdown waits for
// in-flight requests before closing connections.
const DefaultDrainTimeout = 15 * time.Second

// Run serves srv on addr until ctx is cancelled (typically by SIGINT or
// SIGTERM via signal.NotifyContext), then shuts down gracefully: the
// listener closes immediately, in-flight requests get up to drain to
// finish, and the prediction engine is closed last. It returns nil on a
// clean drain; context.DeadlineExceeded if the drain deadline cut
// requests off.
func Run(ctx context.Context, addr string, srv *Server, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, srv, drain)
}

// Serve is Run for a caller-provided listener (ownership transfers; it is
// closed on return).
func Serve(ctx context.Context, ln net.Listener, srv *Server, drain time.Duration) error {
	return serveHandler(ctx, ln, srv, srv.StartDraining, srv.Close, drain)
}

// RunHandler is Run for an arbitrary handler — the gateway binary reuses
// the same listen/drain/shutdown lifecycle around its own http.Handler.
// drainFn (optional) runs right before Shutdown so health endpoints can
// advertise "draining"; closeFn (optional) runs after Shutdown returns.
func RunHandler(ctx context.Context, addr string, h http.Handler, drainFn, closeFn func(), drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveHandler(ctx, ln, h, drainFn, closeFn, drain)
}

// serveHandler implements graceful serving for any handler, separated
// from Server so the drain semantics are testable in isolation. drainFn
// (optional) runs right before Shutdown so health checks can advertise
// "draining" while in-flight requests finish.
func serveHandler(ctx context.Context, ln net.Listener, h http.Handler, drainFn, closeFn func(), drain time.Duration) error {
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	hs := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		// Listener failure before any shutdown request.
		if closeFn != nil {
			closeFn()
		}
		return err
	case <-ctx.Done():
	}
	if drainFn != nil {
		drainFn()
	}
	//lint:ignore ctxflow the listen ctx is already canceled here: the drain deadline must be a fresh root or Shutdown would abort instantly
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := hs.Shutdown(shCtx)
	if closeFn != nil {
		closeFn()
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
