package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/seq2seq"
	"repro/internal/servepool"
	"repro/internal/sqlast"
	"repro/internal/tokenizer"
)

// ---- chaos fixtures -------------------------------------------------------
//
// The chaos suite drives the full HTTP stack with an injected predictor,
// so it needs no trained model (the recommender below is structurally
// complete for /v1/healthz but never predicts) and runs in -short mode.

// chaosRecommender builds an untrained recommender: enough structure for
// the health endpoint, never used for inference.
func chaosRecommender(t testing.TB) *core.Recommender {
	t.Helper()
	bl := tokenizer.NewBuilder()
	bl.AddQuery([]string{"select", "a", "from", "t"})
	v := bl.Build(1)
	mcfg := seq2seq.DefaultConfig(seq2seq.Transformer, v.Size())
	mcfg.DModel = 8
	mcfg.FFHidden = 8
	m, err := seq2seq.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Recommender{
		Vocab:      v,
		Model:      m,
		Classifier: classify.New(m, 8, []string{"SELECT a FROM t"}, 1),
		MaxGenLen:  8,
	}
}

// chaosPredictor dispatches on the table name in the query: "slow"
// blocks until the request context cancels, "boom" fails, "panic"
// panics, anything else answers instantly. Concurrency-safe.
type chaosPredictor struct{}

func (chaosPredictor) act(ctx context.Context, toks []string) error {
	for _, tok := range toks {
		switch strings.ToLower(tok) {
		case "slow":
			<-ctx.Done()
			return ctx.Err()
		case "boom":
			return fmt.Errorf("chaos: injected model failure")
		case "panic":
			panic("chaos: injected model panic")
		}
	}
	return nil
}

func (p chaosPredictor) Templates(ctx context.Context, _, curToks []string, n int) ([]string, error) {
	if err := p.act(ctx, curToks); err != nil {
		return nil, err
	}
	return []string{"SELECT model FROM path"}, nil
}

func (p chaosPredictor) Fragments(ctx context.Context, curToks []string, n int, _ core.NFragmentsOptions) (map[sqlast.FragmentKind][]string, error) {
	if err := p.act(ctx, curToks); err != nil {
		return nil, err
	}
	return map[sqlast.FragmentKind][]string{sqlast.FragTable: {"path"}}, nil
}

// chaosFallback is the frozen degraded snapshot chaos tests assert
// byte-determinism against.
func chaosFallback() *servepool.Fallback {
	return servepool.NewFallback(
		[]string{"SELECT pop FROM ular", "SELECT ra FROM PhotoObj"},
		map[sqlast.FragmentKind][]string{
			sqlast.FragTable:  {"PhotoObj", "SpecObj"},
			sqlast.FragColumn: {"ra", "dec"},
		},
	)
}

// stepClock is a mutex-guarded manual clock for breaker/limiter tests.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStepClock() *stepClock { return &stepClock{t: time.Unix(1_700_000_000, 0)} }

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func chaosPost(srv http.Handler, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func healthz(srv http.Handler) (*httptest.ResponseRecorder, map[string]any) {
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	var body map[string]any
	json.Unmarshal(w.Body.Bytes(), &body)
	return w, body
}

// ---- chaos tests ----------------------------------------------------------

// TestChaosSaturation drives the stack at 4x its capacity with a mix of
// stuck, failing, panicking and healthy requests. The overload contract:
// every request gets a terminal, schema-valid answer (full-quality or
// degraded) within the soft budget plus scheduling slack — none rides to
// the hard timeout, none is silently dropped — and all degraded bodies
// are byte-identical.
func TestChaosSaturation(t *testing.T) {
	const (
		workers  = 2
		queue    = 2
		inflight = 4 // pool capacity; 4x this arrives at once
		clients  = 32
		soft     = 100 * time.Millisecond
		hard     = 10 * time.Second
	)
	srv := NewWithConfig(chaosRecommender(t), Config{
		Workers:      workers,
		MaxQueue:     queue,
		MaxInFlight:  inflight,
		SoftTimeout:  soft,
		Timeout:      hard,
		BreakerRatio: 0, // keep every request on the model path: max pressure
		Fallback:     chaosFallback(),
		Predictor:    chaosPredictor{},
	})
	defer srv.Close()

	bodies := []string{
		`{"sql": "SELECT a FROM slow", "n": 2}`,
		`{"sql": "SELECT a FROM boom", "n": 2}`,
		`{"sql": "SELECT a FROM panic", "n": 2}`,
		`{"sql": "SELECT a FROM healthy", "n": 2}`,
	}
	type outcome struct {
		code    int
		body    string
		elapsed time.Duration
	}
	results := make([]outcome, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			w := chaosPost(srv, "/v1/recommend", bodies[i%len(bodies)], nil)
			results[i] = outcome{code: w.Code, body: w.Body.String(), elapsed: time.Since(t0)}
		}(i)
	}
	wg.Wait()
	total := time.Since(start)

	var degradedBodies []string
	for i, r := range results {
		if r.code == 0 || r.body == "" {
			t.Fatalf("request %d silently dropped: %+v", i, r)
		}
		if r.code != http.StatusOK {
			t.Errorf("request %d: status %d, want 200 (fallback active): %s", i, r.code, r.body)
			continue
		}
		var resp RecommendResponse
		if err := json.Unmarshal([]byte(r.body), &resp); err != nil {
			t.Fatalf("request %d: invalid JSON %q: %v", i, r.body, err)
		}
		if len(resp.Templates) == 0 {
			t.Errorf("request %d: empty templates: %s", i, r.body)
		}
		// Bounded latency: the soft budget plus generous scheduling slack
		// under -race on a loaded box — far below the 10s hard timeout.
		if r.elapsed > 5*time.Second {
			t.Errorf("request %d took %v; soft budget did not bound it", i, r.elapsed)
		}
		if resp.Degraded {
			degradedBodies = append(degradedBodies, r.body)
		}
	}
	if total > 8*time.Second {
		t.Errorf("saturation run took %v; requests rode toward the hard timeout", total)
	}
	// The stuck/failing/panicking requests (3/4 of traffic) cannot answer
	// full-quality, so degraded mode must have fired.
	if len(degradedBodies) == 0 {
		t.Fatal("no degraded responses under 4x saturation with a broken model path")
	}
	for i, b := range degradedBodies[1:] {
		if b != degradedBodies[0] {
			t.Fatalf("degraded bodies differ:\n%q\nvs\n%q (index %d)", degradedBodies[0], b, i+1)
		}
	}
	ov := srv.engine().OverloadStats()
	if ov.Degraded == 0 {
		t.Errorf("overload stats recorded no degraded answers: %+v", ov)
	}
}

// TestChaosNoFallback: without a fallback the ladder still terminates
// every request — sheds get a typed 429 with Retry-After instead of
// waiting out the hard timeout.
func TestChaosNoFallback(t *testing.T) {
	srv := NewWithConfig(chaosRecommender(t), Config{
		Workers:     1,
		MaxInFlight: 1,
		Timeout:     300 * time.Millisecond,
		Predictor:   chaosPredictor{},
	})
	defer srv.Close()

	release := make(chan struct{})
	go func() {
		defer close(release)
		// Occupies the single admission slot until its hard deadline.
		chaosPost(srv, "/v1/recommend", `{"sql": "SELECT a FROM slow"}`, nil)
	}()
	// Wait until the slot is held.
	deadline := time.Now().Add(2 * time.Second)
	for srv.engine().OverloadStats().Admission.InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	w := chaosPost(srv, "/v1/recommend", `{"sql": "SELECT a FROM healthy"}`, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	<-release
}

// TestChaosBreakerHealthLadder: a panicking model path opens the breaker
// (requests keep answering degraded), /v1/healthz drops to "degraded",
// and after the cooldown a healthy probe closes the circuit again.
func TestChaosBreakerHealthLadder(t *testing.T) {
	clk := newStepClock()
	srv := NewWithConfig(chaosRecommender(t), Config{
		Workers:      2,
		BreakerRatio: 0.5,
		Fallback:     chaosFallback(),
		Predictor:    chaosPredictor{},
		Now:          clk.Now,
	})
	defer srv.Close()

	// The server's breaker needs MinSamples (window/4 = 16) outcomes.
	for i := 0; i < 16; i++ {
		w := chaosPost(srv, "/v1/recommend", `{"sql": "SELECT a FROM panic"}`, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body.String())
		}
		var resp RecommendResponse
		json.Unmarshal(w.Body.Bytes(), &resp)
		if !resp.Degraded {
			t.Fatalf("request %d: panicking model path served non-degraded: %s", i, w.Body.String())
		}
	}
	hw, body := healthz(srv)
	if hw.Code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("healthz after breaker trip = %d %v, want 200 degraded", hw.Code, body["status"])
	}
	// Open circuit: requests shed straight to the fallback.
	w := chaosPost(srv, "/v1/recommend", `{"sql": "SELECT a FROM healthy"}`, nil)
	var resp RecommendResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	if w.Code != http.StatusOK || !resp.Degraded {
		t.Fatalf("open-breaker answer = %d degraded=%t, want 200 degraded", w.Code, resp.Degraded)
	}
	// Cooldown elapses (manual clock; default cooldown 5s + <=0 jitter),
	// the model path is healthy again, and the half-open probe closes
	// the circuit.
	clk.Advance(10 * time.Second)
	w = chaosPost(srv, "/v1/recommend", `{"sql": "SELECT a FROM healthy"}`, nil)
	resp = RecommendResponse{}
	json.Unmarshal(w.Body.Bytes(), &resp)
	if w.Code != http.StatusOK || resp.Degraded {
		t.Fatalf("probe answer = %d degraded=%t, want full-quality 200", w.Code, resp.Degraded)
	}
	if hw, body := healthz(srv); hw.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz after recovery = %d %v, want 200 ok", hw.Code, body["status"])
	}
}

// TestChaosRateLimit: a greedy client gets 429 + Retry-After once its
// bucket drains; an independent client is unaffected; the bucket refills
// with (injected) time.
func TestChaosRateLimit(t *testing.T) {
	clk := newStepClock()
	srv := NewWithConfig(chaosRecommender(t), Config{
		Workers:   2,
		Rate:      1,
		Burst:     2,
		Predictor: chaosPredictor{},
		Now:       clk.Now,
	})
	defer srv.Close()

	greedy := map[string]string{"X-Client-ID": "greedy"}
	body := `{"sql": "SELECT a FROM healthy"}`
	for i := 0; i < 2; i++ {
		if w := chaosPost(srv, "/v1/recommend", body, greedy); w.Code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, w.Code)
		}
	}
	w := chaosPost(srv, "/v1/recommend", body, greedy)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1s hint", w.Header().Get("Retry-After"))
	}
	// Rate limiting never degrades: no recommendation body on 429.
	var resp RecommendResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	if len(resp.Templates) > 0 {
		t.Error("rate-limited request still got recommendations")
	}
	// A different client has its own bucket.
	if w := chaosPost(srv, "/v1/recommend", body, map[string]string{"X-Client-ID": "polite"}); w.Code != http.StatusOK {
		t.Errorf("independent client limited: %d", w.Code)
	}
	// Batch calls share the same gate.
	if w := chaosPost(srv, "/v1/recommend/batch", `{"requests":[{"sql":"SELECT a FROM healthy"}]}`, greedy); w.Code != http.StatusTooManyRequests {
		t.Errorf("batch bypassed the rate limit: %d", w.Code)
	}
	clk.Advance(time.Second)
	if w := chaosPost(srv, "/v1/recommend", body, greedy); w.Code != http.StatusOK {
		t.Errorf("refilled bucket still limited: %d", w.Code)
	}
}

// TestChaosBatchRateWeight: a batch of n items costs n tokens, so
// /v1/recommend/batch cannot multiply a client's configured rate by the
// batch width, and a batch wider than Burst never passes.
func TestChaosBatchRateWeight(t *testing.T) {
	clk := newStepClock()
	srv := NewWithConfig(chaosRecommender(t), Config{
		Workers:   2,
		Rate:      1,
		Burst:     4,
		Predictor: chaosPredictor{},
		Now:       clk.Now,
	})
	defer srv.Close()

	client := map[string]string{"X-Client-ID": "batcher"}
	item := `{"sql":"SELECT a FROM healthy"}`
	batch := func(n int) string {
		items := make([]string, n)
		for i := range items {
			items[i] = item
		}
		return `{"requests":[` + strings.Join(items, ",") + `]}`
	}
	// 3 of the 4 burst tokens go to a 3-item batch.
	if w := chaosPost(srv, "/v1/recommend/batch", batch(3), client); w.Code != http.StatusOK {
		t.Fatalf("3-item batch against full bucket: %d", w.Code)
	}
	// A 2-item batch exceeds the 1 remaining token — all or nothing.
	if w := chaosPost(srv, "/v1/recommend/batch", batch(2), client); w.Code != http.StatusTooManyRequests {
		t.Fatalf("2-item batch with 1 token = %d, want 429", w.Code)
	}
	// The denied batch charged nothing: the last token buys a single.
	if w := chaosPost(srv, "/v1/recommend", item, client); w.Code != http.StatusOK {
		t.Fatalf("single after denied batch: %d", w.Code)
	}
	if w := chaosPost(srv, "/v1/recommend", item, client); w.Code != http.StatusTooManyRequests {
		t.Errorf("drained bucket allowed a single: %d", w.Code)
	}
	// Wider than Burst is unsatisfiable even for a fresh client.
	if w := chaosPost(srv, "/v1/recommend/batch", batch(5), map[string]string{"X-Client-ID": "fresh"}); w.Code != http.StatusTooManyRequests {
		t.Errorf("burst-exceeding batch = %d, want 429", w.Code)
	}
}

// TestChaosHealthzDraining: once draining starts, health drops to 503 so
// load balancers stop routing, while the recommend path keeps answering
// in-flight traffic.
func TestChaosHealthzDraining(t *testing.T) {
	srv := NewWithConfig(chaosRecommender(t), Config{
		Workers:   1,
		Predictor: chaosPredictor{},
	})
	defer srv.Close()

	if hw, body := healthz(srv); hw.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz before drain = %d %v", hw.Code, body["status"])
	}
	srv.StartDraining()
	hw, body := healthz(srv)
	if hw.Code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("healthz draining = %d %v, want 503 draining", hw.Code, body["status"])
	}
	if w := chaosPost(srv, "/v1/recommend", `{"sql": "SELECT a FROM healthy"}`, nil); w.Code != http.StatusOK {
		t.Errorf("recommend during drain = %d, want 200", w.Code)
	}
}

// TestChaosBatchMixedHTTP: the batch endpoint surfaces per-item degraded
// flags and errors positionally over HTTP.
func TestChaosBatchMixedHTTP(t *testing.T) {
	// Enough workers that the healthy item never queues behind the stuck
	// one — this test is about per-item outcomes, not contention.
	srv := NewWithConfig(chaosRecommender(t), Config{
		Workers:     4,
		MaxQueue:    8,
		SoftTimeout: 200 * time.Millisecond,
		Fallback:    chaosFallback(),
		Predictor:   chaosPredictor{},
	})
	defer srv.Close()

	w := chaosPost(srv, "/v1/recommend/batch",
		`{"requests":[{"sql":"SELECT a FROM healthy"},{"sql":"%%%"},{"sql":"SELECT a FROM slow"}]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Degraded {
		t.Errorf("item 0 = %+v, want full-quality", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Errorf("item 1 = %+v, want parse error", resp.Results[1])
	}
	if resp.Results[2].Error != "" || !resp.Results[2].Degraded {
		t.Errorf("item 2 = %+v, want degraded", resp.Results[2])
	}
}
