package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	a := New(2, 3)
	a.Set(1, 2, 7)
	if a.At(1, 2) != 7 || a.At(0, 0) != 0 {
		t.Error("set/at broken")
	}
	if len(a.Row(1)) != 3 || a.Row(1)[2] != 7 {
		t.Error("row view broken")
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !AllClose(c, want, 1e-12) {
		t.Errorf("matmul: %v", c.Data)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulAccumulate(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 1})
	b := FromSlice(2, 1, []float64{2, 3})
	out := FromSlice(1, 1, []float64{10})
	MatMulInto(out, a, b, true)
	if out.At(0, 0) != 15 {
		t.Errorf("accumulate: %f", out.At(0, 0))
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("transpose: %+v", at)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b := New(n, m), New(m, p)
		a.RandInit(rng)
		b.RandInit(rng)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return AllClose(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a, b, c := New(n, m), New(m, p), New(m, p)
		a.RandInit(r)
		b.RandInit(r)
		c.RandInit(r)
		return AllClose(MatMul(a, Add(b, c)), Add(MatMul(a, b), MatMul(a, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestElementwise(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if got := Add(a, b); !AllClose(got, FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Errorf("add: %v", got.Data)
	}
	if got := Sub(b, a); !AllClose(got, FromSlice(1, 3, []float64{3, 3, 3}), 0) {
		t.Errorf("sub: %v", got.Data)
	}
	if got := Mul(a, b); !AllClose(got, FromSlice(1, 3, []float64{4, 10, 18}), 0) {
		t.Errorf("mul: %v", got.Data)
	}
	if got := Scale(a, 2); !AllClose(got, FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Errorf("scale: %v", got.Data)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 4 {
		t.Error("inputs mutated")
	}
}

func TestAddRowBroadcast(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	row := FromSlice(1, 2, []float64{10, 20})
	got := AddRowBroadcast(a, row)
	want := FromSlice(2, 2, []float64{11, 22, 13, 24})
	if !AllClose(got, want, 0) {
		t.Errorf("broadcast: %v", got.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		sum := 0.0
		for _, v := range s.Row(i) {
			sum += v
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("bad softmax value %f", v)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %f", i, sum)
		}
	}
	if !(s.At(0, 2) > s.At(0, 1) && s.At(0, 1) > s.At(0, 0)) {
		t.Error("softmax not monotone")
	}
}

// Property: softmax is shift-invariant per row.
func TestSoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := New(2, 4)
		a.RandInit(r)
		shifted := a.Clone()
		for i := range shifted.Data {
			shifted.Data[i] += 5.5
		}
		return AllClose(SoftmaxRows(a), SoftmaxRows(shifted), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArgTop(t *testing.T) {
	a := FromSlice(1, 5, []float64{0.1, 0.9, 0.3, 0.95, 0.2})
	if a.ArgMaxRow(0) != 3 {
		t.Errorf("argmax: %d", a.ArgMaxRow(0))
	}
	top := a.TopKRow(0, 3)
	if len(top) != 3 || top[0] != 3 || top[1] != 1 || top[2] != 2 {
		t.Errorf("topk: %v", top)
	}
	if got := a.TopKRow(0, 99); len(got) != 5 {
		t.Errorf("topk clamp: %v", got)
	}
}

func TestNormSumFillZero(t *testing.T) {
	a := FromSlice(1, 2, []float64{3, 4})
	if a.Norm() != 5 {
		t.Errorf("norm: %f", a.Norm())
	}
	if a.Sum() != 7 {
		t.Errorf("sum: %f", a.Sum())
	}
	a.Fill(2)
	if a.Sum() != 4 {
		t.Errorf("fill: %v", a.Data)
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Error("zero")
	}
}

func TestRandInitBounds(t *testing.T) {
	a := New(10, 10)
	a.RandInit(rand.New(rand.NewSource(1)))
	limit := math.Sqrt(6.0 / 20.0)
	nonzero := false
	for _, v := range a.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %f outside Xavier bound %f", v, limit)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("all zeros")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("clone shares memory")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(64, 64), New(64, 64)
	x.RandInit(rng)
	y.RandInit(rng)
	out := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y, false)
	}
}
