package tensor

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// randSpans builds a random sorted, non-overlapping span layout inside
// rows total rows: segment lengths 0..maxSeg with optional pad gaps, the
// shape of a padded micro-batch.
func randSpans(rng *rand.Rand, rows, maxSeg int) []Span {
	var spans []Span
	at := 0
	for at < rows {
		gap := rng.Intn(3)
		at += gap
		if at >= rows {
			break
		}
		n := rng.Intn(maxSeg + 1)
		if at+n > rows {
			n = rows - at
		}
		spans = append(spans, Span{Lo: at, Hi: at + n})
		at += n
	}
	return spans
}

// TestMatMulSpansBitIdentical checks the masked batched GEMM against
// per-segment MatMulInto (itself proven against the naive reference):
// every valid row must match bit for bit for every worker count, and pad
// rows must keep whatever bits they held before the call.
func TestMatMulSpansBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, workers := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(workers)
		for trial := 0; trial < 20; trial++ {
			rows := 1 + rng.Intn(64)
			m := 1 + rng.Intn(48)
			p := 1 + rng.Intn(48)
			a := randTensor(rng, rows, m)
			b := randTensor(rng, m, p)
			spans := randSpans(rng, rows, 16)

			got := New(rows, p)
			for i := range got.Data {
				got.Data[i] = -999 // sentinel: pad rows must be untouched
			}
			MatMulSpansInto(got, a, b, spans)

			want := New(rows, p)
			for i := range want.Data {
				want.Data[i] = -999
			}
			for _, s := range spans {
				if s.Len() == 0 {
					continue
				}
				av := FromSlice(s.Len(), m, a.Data[s.Lo*m:s.Hi*m])
				ov := FromSlice(s.Len(), p, want.Data[s.Lo*p:s.Hi*p])
				for i := range ov.Data {
					ov.Data[i] = 0
				}
				MatMulInto(ov, av, b, false)
			}
			assertExact(t, fmt.Sprintf("matmul-spans w=%d trial=%d", workers, trial), got, want)
		}
	}
}

// TestAddRowSpansBitIdentical checks the bias broadcast against the plain
// per-row loop, in place and out of place, with untouched pad rows.
func TestAddRowSpansBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		rows := 1 + rng.Intn(32)
		cols := 1 + rng.Intn(24)
		a := randTensor(rng, rows, cols)
		row := randTensor(rng, 1, cols)
		spans := randSpans(rng, rows, 8)

		want := New(rows, cols)
		copy(want.Data, a.Data)
		for _, s := range spans {
			for i := s.Lo; i < s.Hi; i++ {
				for j := 0; j < cols; j++ {
					want.Data[i*cols+j] = a.Data[i*cols+j] + row.Data[j]
				}
			}
		}

		got := New(rows, cols)
		copy(got.Data, a.Data)
		AddRowSpansInto(got, got, row, spans) // in place
		assertExact(t, "add-row-spans in-place", got, want)

		got2 := New(rows, cols)
		copy(got2.Data, a.Data)
		AddRowSpansInto(got2, a, row, spans)
		assertExact(t, "add-row-spans", got2, want)
	}
}

// TestSoftmaxSpansBitIdentical checks the masked softmax against
// SoftmaxRowsInto applied per segment.
func TestSoftmaxSpansBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		rows := 1 + rng.Intn(32)
		cols := 1 + rng.Intn(24)
		a := randTensor(rng, rows, cols)
		spans := randSpans(rng, rows, 8)

		want := New(rows, cols)
		copy(want.Data, a.Data)
		for _, s := range spans {
			if s.Len() == 0 {
				continue
			}
			sub := FromSlice(s.Len(), cols, want.Data[s.Lo*cols:s.Hi*cols])
			SoftmaxRowsInto(sub, sub)
		}

		got := New(rows, cols)
		copy(got.Data, a.Data)
		SoftmaxSpansInto(got, got, spans)
		assertExact(t, "softmax-spans", got, want)
	}
}

// TestTopKRowsInto checks the batched top-k against the single-row kernel
// with mixed per-row k values.
func TestTopKRowsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tt := randTensor(rng, 9, 17)
	ks := make([]int, tt.Rows)
	for i := range ks {
		ks[i] = 1 + rng.Intn(5)
	}
	var dst [][]int
	dst = tt.TopKRowsInto(ks, dst)
	if len(dst) != tt.Rows {
		t.Fatalf("TopKRowsInto returned %d rows, want %d", len(dst), tt.Rows)
	}
	for i := range dst {
		want := tt.TopKRowInto(i, ks[i], nil)
		if len(dst[i]) != len(want) {
			t.Fatalf("row %d: got %d indices, want %d", i, len(dst[i]), len(want))
		}
		for j := range want {
			if dst[i][j] != want[j] {
				t.Fatalf("row %d idx %d: got %d, want %d", i, j, dst[i][j], want[j])
			}
		}
	}
}

// TestBatchArenaLifecycle checks that the ledger returns its tensors to
// the shared pool on Put, recycles cleanly, and counts traffic.
func TestBatchArenaLifecycle(t *testing.T) {
	a := NewBatchArena()
	s := a.Get()
	x := s.Get(4, 8)
	y := s.Get(2, 2)
	if x.Rows != 4 || x.Cols != 8 || y.Rows != 2 || y.Cols != 2 {
		t.Fatalf("scratch shapes wrong: %dx%d, %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	for i := range x.Data {
		if x.Data[i] != 0 {
			t.Fatalf("scratch tensor not zeroed at %d", i)
		}
	}
	x.Data[0] = 1
	a.Put(s)

	s2 := a.Get()
	z := s2.Get(4, 8)
	for i := range z.Data {
		if z.Data[i] != 0 {
			t.Fatalf("recycled tensor not zeroed at %d", i)
		}
	}
	a.Put(s2)
	a.Put(nil) // no-op

	st := a.Stats()
	if st.Gets != 2 || st.Puts != 2 {
		t.Fatalf("stats = %+v, want 2 gets / 2 puts", st)
	}
}

// The batched-kernel suite: one masked batched GEMM over B stacked
// sequences vs B independent GEMMs — the serve-time coalescing win at the
// kernel level (shared dispatch, one fan-out decision, no per-sequence
// goroutine ramp).
func benchSpansLayout(b int, l int, m int, p int) (*Tensor, *Tensor, []Span) {
	rng := rand.New(rand.NewSource(21))
	a := randTensor(rng, b*l, m)
	w := randTensor(rng, m, p)
	spans := make([]Span, b)
	for i := 0; i < b; i++ {
		// Mixed lengths: alternate full and half-length segments, like a
		// padded batch of uneven queries.
		n := l
		if i%2 == 1 {
			n = l / 2
		}
		spans[i] = Span{Lo: i * l, Hi: i*l + n}
	}
	return a, w, spans
}

func BenchmarkBatchedGEMMSpans(b *testing.B) {
	for _, bs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("batch%d", bs), func(b *testing.B) {
			a, w, spans := benchSpansLayout(bs, 24, 32, 32)
			out := New(a.Rows, w.Cols)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulSpansInto(out, a, w, spans)
			}
		})
	}
}

func BenchmarkBatchedGEMMSequential(b *testing.B) {
	for _, bs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("batch%d", bs), func(b *testing.B) {
			a, w, spans := benchSpansLayout(bs, 24, 32, 32)
			out := New(a.Rows, w.Cols)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range spans {
					av := FromSlice(s.Len(), a.Cols, a.Data[s.Lo*a.Cols:s.Hi*a.Cols])
					ov := FromSlice(s.Len(), w.Cols, out.Data[s.Lo*w.Cols:s.Hi*w.Cols])
					MatMulInto(ov, av, w, false)
				}
			}
		})
	}
}
