// GEMM kernels: cache-blocked loops with goroutine row-partitioning above
// a work threshold, plus transpose-free variants so autograd backward
// passes never materialize aᵀ or bᵀ.
//
// Determinism is a hard contract here, not an aspiration: every output
// element accumulates its k-products in ascending-k order no matter how
// the rows are blocked or partitioned, so results are bit-identical for
// any GOMAXPROCS. (Workers own disjoint output rows; blocking only
// re-orders *which* element is updated next, never the order of updates
// *within* an element.) The training loop's bit-for-bit checkpoint/resume
// guarantee leans on this.
package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// gemmBlockK is the k-tile: one tile of b (gemmBlockK rows) is streamed
	// against a band of output rows before moving on, keeping it hot in
	// cache when the shared dimension is large.
	gemmBlockK = 128
	// gemmParallelFlops is the n*m*p product above which a GEMM fans out
	// across goroutines. Below it the spawn cost dwarfs the work.
	gemmParallelFlops = 1 << 15
	// parallelMinWork is the per-worker element floor for ParallelRange.
	parallelMinWork = 1 << 12
)

var (
	gemmSerial   atomic.Uint64
	gemmParallel atomic.Uint64
)

// KernelStats counts GEMM dispatches since process start.
type KernelStats struct {
	SerialGEMM, ParallelGEMM uint64
}

// Kernels snapshots the dispatch counters.
func Kernels() KernelStats {
	return KernelStats{SerialGEMM: gemmSerial.Load(), ParallelGEMM: gemmParallel.Load()}
}

// gemmWorkers picks the worker count for a kernel over n output rows and
// the given total flops. Returns 1 when parallelism isn't worth it.
func gemmWorkers(n, flops int) int {
	if flops < gemmParallelFlops || n < 2 {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	// Don't split below ~the threshold of work per worker.
	if max := flops / gemmParallelFlops; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// rowBand returns the half-open row range of worker w when n rows are
// split across workers contiguous bands (first n%workers bands get one
// extra row).
func rowBand(n, workers, w int) (int, int) {
	base, rem := n/workers, n%workers
	lo := w*base + min(w, rem)
	hi := lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// dispatchRows runs fn over [0,n) either inline or across worker bands.
func dispatchRows(n, flops int, fn func(lo, hi int)) {
	workers := gemmWorkers(n, flops)
	if workers == 1 {
		gemmSerial.Add(1)
		fn(0, n)
		return
	}
	gemmParallel.Add(1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := rowBand(n, workers, w)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulInto computes out = a @ b, or out += a @ b when accumulate is set.
// Blocked over k and row-partitioned across goroutines for large shapes;
// output is bit-identical regardless of parallelism.
func MatMulInto(out, a, b *Tensor, accumulate bool) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape %dx%d @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	n, m, p := a.Rows, a.Cols, b.Cols
	dispatchRows(n, n*m*p, func(lo, hi int) {
		matMulRange(out, a, b, accumulate, lo, hi)
	})
}

// matMulRange computes output rows [i0,i1) with an ikj kernel tiled over
// k. For each element the k-products accumulate in ascending k order.
func matMulRange(out, a, b *Tensor, accumulate bool, i0, i1 int) {
	m, p := a.Cols, b.Cols
	if !accumulate {
		clear(out.Data[i0*p : i1*p])
	}
	for kb := 0; kb < m; kb += gemmBlockK {
		kend := kb + gemmBlockK
		if kend > m {
			kend = m
		}
		for i := i0; i < i1; i++ {
			arow := a.Data[i*m : (i+1)*m]
			orow := out.Data[i*p : (i+1)*p]
			for k := kb; k < kend; k++ {
				aik := arow[k]
				//lint:ignore floateq exact-zero sparsity skip: adding 0*x contributes no bits
				if aik == 0 {
					continue
				}
				brow := b.Data[k*p : (k+1)*p]
				for j, bv := range brow {
					orow[j] += aik * bv
				}
			}
		}
	}
}

// MatMulATInto computes out = aᵀ @ b (out += with accumulate) without
// materializing aᵀ: a is k×m, b is k×p, out is m×p. This is the dB shape
// of a matmul backward pass.
func MatMulATInto(out, a, b *Tensor, accumulate bool) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul-at shape (%dx%d)ᵀ @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	kdim, m, p := a.Rows, a.Cols, b.Cols
	dispatchRows(m, kdim*m*p, func(lo, hi int) {
		matMulATRange(out, a, b, accumulate, lo, hi)
	})
}

// matMulATRange computes output rows [i0,i1) of aᵀ@b. Loop order is
// k-outer so both a and b stream row-major; each element still sums in
// ascending k order.
func matMulATRange(out, a, b *Tensor, accumulate bool, i0, i1 int) {
	kdim, m, p := a.Rows, a.Cols, b.Cols
	if !accumulate {
		clear(out.Data[i0*p : i1*p])
	}
	for k := 0; k < kdim; k++ {
		arow := a.Data[k*m : (k+1)*m]
		brow := b.Data[k*p : (k+1)*p]
		for i := i0; i < i1; i++ {
			aki := arow[i]
			//lint:ignore floateq exact-zero sparsity skip: adding 0*x contributes no bits
			if aki == 0 {
				continue
			}
			orow := out.Data[i*p : (i+1)*p]
			for j, bv := range brow {
				orow[j] += aki * bv
			}
		}
	}
}

// MatMulBTInto computes out = a @ bᵀ (out += with accumulate) without
// materializing bᵀ: a is n×p, b is m×p, out is n×m. This is the dA shape
// of a matmul backward pass. Each element is a dot product of two rows,
// accumulated in ascending index order.
func MatMulBTInto(out, a, b *Tensor, accumulate bool) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul-bt shape %dx%d @ (%dx%d)ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	n, p, m := a.Rows, a.Cols, b.Rows
	dispatchRows(n, n*m*p, func(lo, hi int) {
		matMulBTRange(out, a, b, accumulate, lo, hi)
	})
}

func matMulBTRange(out, a, b *Tensor, accumulate bool, i0, i1 int) {
	p, m := a.Cols, b.Rows
	for i := i0; i < i1; i++ {
		arow := a.Data[i*p : (i+1)*p]
		orow := out.Data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			brow := b.Data[j*p : (j+1)*p]
			s := 0.0
			for t, av := range arow {
				//lint:ignore floateq exact-zero sparsity skip: adding 0*x contributes no bits
				if av == 0 {
					continue
				}
				s += av * brow[t]
			}
			if accumulate {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

// TransposeInto writes aᵀ into out (out += aᵀ with accumulate).
func TransposeInto(out, a *Tensor, accumulate bool) {
	if out.Rows != a.Cols || out.Cols != a.Rows {
		panic(fmt.Sprintf("tensor: transpose %dx%d -> %dx%d", a.Rows, a.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		if accumulate {
			for j, v := range arow {
				out.Data[j*a.Rows+i] += v
			}
		} else {
			for j, v := range arow {
				out.Data[j*a.Rows+i] = v
			}
		}
	}
}

// ParallelRange splits [0,n) into contiguous per-worker chunks and runs fn
// on each, inline when the work is too small to fan out. fn(lo,hi) calls
// must be independent: each index is owned by exactly one worker, so any
// per-index computation is bit-identical regardless of GOMAXPROCS. minWork
// <= 0 uses a default element floor.
func ParallelRange(n, minWork int, fn func(lo, hi int)) {
	if minWork <= 0 {
		minWork = parallelMinWork
	}
	workers := runtime.GOMAXPROCS(0)
	if w := n / minWork; workers > w {
		workers = w
	}
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := rowBand(n, workers, w)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
