package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool is a workspace arena for scratch tensors. Get hands out a zeroed
// rows×cols tensor whose backing array comes from a power-of-two size
// class; Put returns a tensor for reuse. The pool is safe for concurrent
// use (each size class is a sync.Pool, so steady-state Get/Put is mostly
// lock-free and idle buffers are released to the GC).
//
// Reuse never changes numerics: Get zeroes the handed-out region, so a
// pooled buffer is indistinguishable from a fresh allocation.
//
// Ownership is explicit: a tensor passed to Put must not be used again by
// the caller. Tensors from Get may be kept forever (never Put) — the pool
// simply allocates replacements.
//
// sqlast.ArenaPool applies the same Get/Put contract to pooled AST
// arenas, and qrec-lint's poolsafe rule enforces the lifecycle
// discipline for both pool types.
type Pool struct {
	classes [poolMaxClass]sync.Pool

	gets   atomic.Uint64
	puts   atomic.Uint64
	misses atomic.Uint64
}

// poolMaxClass bounds pooled buffers at 2^25 floats (256 MiB); larger
// requests fall through to plain allocation.
const poolMaxClass = 26

// Shared is the process-wide scratch pool used by the autograd graph, the
// training loop and the decode hot path.
var Shared = NewPool()

// NewPool returns an empty arena.
func NewPool() *Pool { return &Pool{} }

// sizeClass returns the smallest class whose capacity (1<<class) holds n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zeroed rows×cols tensor, reusing a pooled buffer when one
// of a sufficient size class is available.
func (p *Pool) Get(rows, cols int) *Tensor {
	p.gets.Add(1)
	n := rows * cols
	class := sizeClass(n)
	if class >= poolMaxClass {
		p.misses.Add(1)
		return New(rows, cols)
	}
	item := p.classes[class].Get()
	if item == nil {
		p.misses.Add(1)
		return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, n, 1<<class)}
	}
	t := item.(*Tensor)
	t.Rows, t.Cols = rows, cols
	t.Data = t.Data[:cap(t.Data)][:n]
	clear(t.Data)
	return t
}

// Put returns a tensor to the arena. Tensors too large for any class (or
// with no capacity) are dropped for the GC to collect.
func (p *Pool) Put(t *Tensor) {
	if t == nil || cap(t.Data) == 0 {
		return
	}
	// Floor class: the stored buffer must genuinely hold 1<<class floats.
	class := bits.Len(uint(cap(t.Data))) - 1
	if class >= poolMaxClass {
		return
	}
	p.puts.Add(1)
	p.classes[class].Put(t)
}

// PoolStats is a snapshot of arena traffic. Misses count Gets that had to
// allocate; a warm steady state shows Gets ≈ Puts with few misses.
type PoolStats struct {
	Gets, Puts, Misses uint64
}

// Stats snapshots the counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Gets: p.gets.Load(), Puts: p.puts.Load(), Misses: p.misses.Load()}
}
