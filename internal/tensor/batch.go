// Batched-inference kernels: the serving stack's micro-batcher stacks
// several padded token sequences into one matrix and runs them through
// shared GEMM passes. A batch is described by its valid row Spans (one per
// sequence); pad rows between spans are never read or written, so the
// masked kernels cost only the valid work and every valid row gets exactly
// the bits the single-sequence kernel would have produced (the per-element
// accumulation order of matMulRange is row-local, so stacking rows cannot
// change any output bit — the batched-inference determinism contract rests
// on this).
package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Span is a half-open row range [Lo, Hi) of valid rows within a stacked
// batch matrix.
type Span struct{ Lo, Hi int }

// Len returns the number of rows in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// spanRows sums the valid row counts.
func spanRows(spans []Span) int {
	n := 0
	for _, s := range spans {
		n += s.Len()
	}
	return n
}

// MatMulSpansInto computes out[r] = a[r] @ b for every row r inside spans,
// leaving rows outside the spans untouched. It is the masked batched GEMM
// of the serving path: one kernel dispatch covers every sequence in a
// padded batch, banding the valid rows across goroutines with the same
// row fan-out as MatMulInto. Spans must be sorted, non-overlapping and
// within a's rows. Each valid output row is bit-identical to a
// single-sequence MatMulInto over that row.
func MatMulSpansInto(out, a, b *Tensor, spans []Span) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul-spans shape %dx%d @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	valid := spanRows(spans)
	if valid == 0 {
		return
	}
	m, p := a.Cols, b.Cols
	// Band over the *valid* rows so pad-heavy batches don't starve workers,
	// then map each band back to physical sub-ranges. matMulRange computes
	// rows independently, so the banding is invisible in the output bits.
	dispatchRows(valid, valid*m*p, func(lo, hi int) {
		off := 0
		for _, s := range spans {
			n := s.Len()
			if off+n <= lo {
				off += n
				continue
			}
			if off >= hi {
				break
			}
			i0, i1 := s.Lo, s.Hi
			if lo > off {
				i0 += lo - off
			}
			if hi < off+n {
				i1 -= off + n - hi
			}
			matMulRange(out, a, b, false, i0, i1)
			off += n
		}
	})
}

// AddRowSpansInto writes out[r] = a[r] + row for every row r inside spans
// (row is 1×cols). With out == a the add is in place. This is the bias
// broadcast of a batched linear layer; pad rows are untouched.
func AddRowSpansInto(out, a, row *Tensor, spans []Span) {
	if row.Rows != 1 || row.Cols != a.Cols || out.Rows != a.Rows || out.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: add-row-spans %dx%d + %dx%d -> %dx%d",
			a.Rows, a.Cols, row.Rows, row.Cols, out.Rows, out.Cols))
	}
	for _, s := range spans {
		for i := s.Lo; i < s.Hi; i++ {
			src, dst := a.Row(i), out.Row(i)
			for j, bv := range row.Data {
				dst[j] = src[j] + bv
			}
		}
	}
}

// SoftmaxSpansInto applies the row-wise softmax of SoftmaxRowsInto to the
// rows inside spans only (out == a allowed), skipping pad rows. Each valid
// row matches SoftmaxRowsInto on that row bit for bit.
func SoftmaxSpansInto(out, a *Tensor, spans []Span) {
	mustSame("softmax-spans", a, out)
	for _, s := range spans {
		if s.Len() == 0 {
			continue
		}
		sub := FromSlice(s.Len(), a.Cols, a.Data[s.Lo*a.Cols:s.Hi*a.Cols])
		osub := FromSlice(s.Len(), a.Cols, out.Data[s.Lo*a.Cols:s.Hi*a.Cols])
		SoftmaxRowsInto(osub, sub)
	}
}

// TopKRowsInto computes TopKRowInto for every row of t, appending one
// index slice per row to dst (reused when capacities allow). ks gives the
// per-row k. The returned slices alias dst's backing arrays and stay valid
// until the next call with the same dst.
func (t *Tensor) TopKRowsInto(ks []int, dst [][]int) [][]int {
	if len(ks) != t.Rows {
		panic(fmt.Sprintf("tensor: topk-rows %d ks for %d rows", len(ks), t.Rows))
	}
	dst = dst[:0]
	for i := 0; i < t.Rows; i++ {
		dst = append(dst, t.TopKRowInto(i, ks[i], nil))
	}
	return dst
}

// BatchScratch is the workspace ledger of one micro-batch: every tensor it
// hands out comes from the shared size-classed pool and is recorded, so
// the whole batch's scratch goes back in one release when the batch
// completes. Get it from (and return it to) a BatchArena. A BatchScratch
// is single-goroutine state — one forming batch owns it exclusively.
type BatchScratch struct {
	held []*Tensor
}

// Get returns a zeroed rows×cols tensor recorded in the ledger. The
// caller must not Put it individually — release() returns everything.
func (s *BatchScratch) Get(rows, cols int) *Tensor {
	t := Shared.Get(rows, cols)
	s.held = append(s.held, t)
	return t
}

// release returns every recorded tensor to the shared pool.
func (s *BatchScratch) release() {
	for _, t := range s.held {
		Shared.Put(t)
	}
	s.held = s.held[:0]
}

// BatchArena recycles BatchScratch ledgers between micro-batches. Get
// hands out an empty ledger; Put releases the ledger's tensors to the
// shared pool and recycles the ledger struct. The Get/Put lifecycle
// discipline matches tensor.Pool and sqlast.ArenaPool, and qrec-lint's
// poolsafe rule enforces it for all three (a leaked ledger strands every
// tensor it recorded).
type BatchArena struct {
	pool sync.Pool

	gets atomic.Uint64
	puts atomic.Uint64
}

// Batches is the process-wide arena used by the batched inference path.
var Batches = NewBatchArena()

// NewBatchArena returns an empty arena.
func NewBatchArena() *BatchArena { return &BatchArena{} }

// Get returns an empty scratch ledger.
func (a *BatchArena) Get() *BatchScratch {
	a.gets.Add(1)
	if s, ok := a.pool.Get().(*BatchScratch); ok {
		return s
	}
	return &BatchScratch{}
}

// Put releases every tensor the ledger recorded and recycles it. The
// ledger (and every tensor it handed out) must not be used afterward.
func (a *BatchArena) Put(s *BatchScratch) {
	if s == nil {
		return
	}
	a.puts.Add(1)
	s.release()
	a.pool.Put(s)
}

// BatchArenaStats is a snapshot of ledger traffic.
type BatchArenaStats struct {
	Gets, Puts uint64
}

// Stats snapshots the counters.
func (a *BatchArena) Stats() BatchArenaStats {
	return BatchArenaStats{Gets: a.gets.Load(), Puts: a.puts.Load()}
}
