// Package tensor implements the dense 2-D float64 matrices underlying the
// neural-network substrate. Vectors are 1×n or n×1 matrices. The package
// is deliberately minimal and allocation-conscious: every operation the
// autograd layer needs, nothing more.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix.
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zeroed rows×cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// SameShape reports shape equality.
func (t *Tensor) SameShape(o *Tensor) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

// Zero resets all elements.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// MatMul computes a @ b into a new tensor.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b, false)
	return out
}

// Transpose returns aᵀ as a new tensor.
func Transpose(a *Tensor) *Tensor {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	mustSame("add", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	mustSame("add-in-place", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	mustSame("sub", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Mul returns the elementwise product.
func Mul(a, b *Tensor) *Tensor {
	mustSame("mul", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// Scale returns a * s.
func Scale(a *Tensor, s float64) *Tensor {
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ScaleInPlace multiplies every element by s.
func ScaleInPlace(a *Tensor, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AddRowBroadcast returns a + row for every row of a; row is 1×cols.
func AddRowBroadcast(a, row *Tensor) *Tensor {
	if row.Rows != 1 || row.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: broadcast shape %dx%d onto %dx%d", row.Rows, row.Cols, a.Rows, a.Cols))
	}
	out := a.Clone()
	for i := 0; i < a.Rows; i++ {
		r := out.Row(i)
		for j, v := range row.Data {
			r[j] += v
		}
	}
	return out
}

// SoftmaxRows applies a numerically-stable softmax to each row.
func SoftmaxRows(a *Tensor) *Tensor {
	out := New(a.Rows, a.Cols)
	SoftmaxRowsInto(out, a)
	return out
}

// SoftmaxRowsInto writes the row-wise softmax of a into out (which may be
// a itself for an in-place transform). Rows are partitioned across
// goroutines when large; each row is computed by exactly one worker so the
// result is bit-identical regardless of parallelism.
func SoftmaxRowsInto(out, a *Tensor) {
	mustSame("softmax", a, out)
	cols := a.Cols
	if cols == 0 {
		return
	}
	ParallelRange(a.Rows, parallelMinWork/cols+1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src, dst := a.Row(i), out.Row(i)
			max := math.Inf(-1)
			for _, v := range src {
				if v > max {
					max = v
				}
			}
			sum := 0.0
			for j, v := range src {
				e := math.Exp(v - max)
				dst[j] = e
				sum += e
			}
			inv := 1.0 / sum
			for j := range dst {
				dst[j] *= inv
			}
		}
	})
}

// ArgMaxRow returns the index of the maximum element in row i.
func (t *Tensor) ArgMaxRow(i int) int {
	row := t.Row(i)
	best, bestV := 0, math.Inf(-1)
	for j, v := range row {
		if v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

// TopKRow returns the indices of the k largest elements of row i, in
// descending value order.
func (t *Tensor) TopKRow(i, k int) []int {
	return t.TopKRowInto(i, k, nil)
}

// TopKRowInto is TopKRow with caller-provided index scratch, so hot loops
// (beam search expands every beam at every step) avoid a vocabulary-sized
// allocation per call. scratch is grown as needed and the returned slice
// aliases it; pass the previous return value back in to reuse it.
func (t *Tensor) TopKRowInto(i, k int, scratch []int) []int {
	row := t.Row(i)
	if k > len(row) {
		k = len(row)
	}
	if cap(scratch) < len(row) {
		scratch = make([]int, len(row))
	}
	idx := scratch[:len(row)]
	for j := range idx {
		idx[j] = j
	}
	// Partial selection sort: k is small (beam widths, top-N).
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < len(idx); b++ {
			if row[idx[b]] > row[idx[best]] {
				best = b
			}
		}
		idx[a], idx[best] = idx[best], idx[a]
	}
	return idx[:k]
}

// Norm returns the Frobenius norm.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// RandInit fills the tensor with Xavier/Glorot-uniform noise scaled by the
// fan-in/fan-out of the matrix.
func (t *Tensor) RandInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// AllClose reports elementwise closeness within tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func mustSame(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
