package tensor

import (
	"sync"
	"testing"
)

// TestPoolGetIsZeroed: reuse must be numerically invisible — a recycled
// buffer comes back zeroed even when the previous user dirtied it.
func TestPoolGetIsZeroed(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 4)
	a.Fill(3.5)
	p.Put(a)
	b := p.Get(4, 4)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("recycled element %d = %v, want 0", i, v)
		}
	}
}

// TestPoolReshapesAcrossClasses: a buffer serves any shape that fits its
// size class, and undersized buffers are never handed out.
func TestPoolReshapesAcrossClasses(t *testing.T) {
	p := NewPool()
	a := p.Get(8, 8) // 64 floats, class 6
	p.Put(a)
	b := p.Get(2, 32) // 64 floats, same class — should reuse
	if b.Rows != 2 || b.Cols != 32 || len(b.Data) != 64 {
		t.Fatalf("got %dx%d len %d", b.Rows, b.Cols, len(b.Data))
	}
	st := p.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (second Get should reuse)", st.Misses)
	}

	// A larger request must not receive the small buffer.
	p.Put(b)
	c := p.Get(16, 16) // 256 floats, class 8
	if len(c.Data) != 256 {
		t.Fatalf("len %d, want 256", len(c.Data))
	}
	for i := range c.Data {
		if c.Data[i] != 0 {
			t.Fatalf("oversize get not zeroed at %d", i)
		}
	}
}

// TestPoolStats: counters move as documented.
func TestPoolStats(t *testing.T) {
	p := NewPool()
	x := p.Get(3, 3)
	y := p.Get(3, 3)
	p.Put(x)
	p.Put(y)
	p.Get(3, 3)
	st := p.Stats()
	if st.Gets != 3 || st.Puts != 2 {
		t.Fatalf("stats %+v, want 3 gets / 2 puts", st)
	}
	if st.Misses < 2 || st.Misses > 3 {
		t.Fatalf("misses = %d, want 2 (first two) or 3 (sync.Pool may drop)", st.Misses)
	}
}

// TestPoolPutEdgeCases: nil, empty and zero-capacity tensors are dropped
// without panicking.
func TestPoolPutEdgeCases(t *testing.T) {
	p := NewPool()
	p.Put(nil)
	p.Put(New(0, 5))
	p.Put(&Tensor{})
	z := p.Get(0, 7)
	if z.Rows != 0 || z.Cols != 7 || len(z.Data) != 0 {
		t.Fatalf("zero-row get: %dx%d len %d", z.Rows, z.Cols, len(z.Data))
	}
}

// TestPoolConcurrent hammers Get/Put from many goroutines (meaningful
// under -race) and checks every handout is zeroed.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tn := p.Get(1+g%4, 8)
				for j, v := range tn.Data {
					if v != 0 {
						t.Errorf("dirty element %d", j)
						return
					}
				}
				tn.Fill(float64(g + 1))
				p.Put(tn)
			}
		}(g)
	}
	wg.Wait()
}
