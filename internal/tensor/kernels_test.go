package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// naiveMatMul is the trusted reference: plain ikj with the same zero-skip
// and ascending-k accumulation the production kernels promise. The blocked
// and parallel kernels must match it bit-for-bit, not approximately.
func naiveMatMul(a, b *Tensor) *Tensor {
	out := New(a.Rows, b.Cols)
	naiveMatMulAcc(out, a, b)
	return out
}

// naiveMatMulAcc adds a@b into out, accumulating each element's k-products
// in ascending order on top of whatever out already holds — the same
// element-wise order the accumulate variants of the kernels promise.
func naiveMatMulAcc(out, a, b *Tensor) {
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += aik * b.At(k, j)
			}
		}
	}
}

func randTensor(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		// Sprinkle exact zeros so the zero-skip path is exercised.
		if rng.Intn(8) == 0 {
			continue
		}
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func assertExact(t *testing.T, what string, got, want *Tensor) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v", what, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulKernelsMatchNaive drives all three kernels over random shapes
// — including degenerate (0-row, 1×1) and skewed (tall, wide) ones, and
// shapes large enough to cross the k-blocking and parallel thresholds —
// asserting exact equality with the naive reference.
func TestMatMulKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {1, 1, 1},
		{1, 300, 1}, {300, 1, 5}, {2, 5, 200},
		{7, 13, 11}, {64, 64, 64}, {33, 200, 17}, {5, 513, 9},
	}
	for _, s := range shapes {
		n, m, p := s[0], s[1], s[2]
		a := randTensor(rng, n, m)
		b := randTensor(rng, m, p)
		want := naiveMatMul(a, b)

		got := New(n, p)
		MatMulInto(got, a, b, false)
		assertExact(t, "matmul", got, want)

		// Accumulate: out += a@b on top of a random base, k-products added
		// in ascending order on top of the base (not compute-then-add,
		// which would round differently).
		base := randTensor(rng, n, p)
		acc := base.Clone()
		MatMulInto(acc, a, b, true)
		wantAcc := base.Clone()
		naiveMatMulAcc(wantAcc, a, b)
		assertExact(t, "matmul-acc", acc, wantAcc)

		// xᵀ@y without materializing xᵀ must equal naive(transpose(x), y).
		// x is k×m here (k=m of the shape triple), y is k×p.
		xat := randTensor(rng, m, n)
		yat := randTensor(rng, m, p)
		gotAT := New(n, p)
		MatMulATInto(gotAT, xat, yat, false)
		assertExact(t, "matmul-at", gotAT, naiveMatMul(Transpose(xat), yat))

		// x@yᵀ without materializing yᵀ. MatMulBTInto accumulates each
		// element as a row-dot in ascending index order, which is the same
		// order naive uses, so equality is exact here too.
		xbt := randTensor(rng, n, m)
		ybt := randTensor(rng, p, m)
		gotBT := New(n, p)
		MatMulBTInto(gotBT, xbt, ybt, false)
		assertExact(t, "matmul-bt", gotBT, naiveMatMul(xbt, Transpose(ybt)))
	}
}

// TestTransposeInto checks both plain and accumulating transpose.
func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randTensor(rng, 5, 9)
	out := New(9, 5)
	TransposeInto(out, a, false)
	assertExact(t, "transpose", out, Transpose(a))

	base := randTensor(rng, 9, 5)
	acc := base.Clone()
	TransposeInto(acc, a, true)
	want := Add(base, Transpose(a))
	assertExact(t, "transpose-acc", acc, want)
}

// TestParallelGEMMBitIdentical is the determinism contract: the same
// multiplication under GOMAXPROCS=1 and under forced multi-worker
// dispatch must produce bit-identical output.
func TestParallelGEMMBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// 96³ = 884736 flops, far above gemmParallelFlops.
	a := randTensor(rng, 96, 96)
	b := randTensor(rng, 96, 96)

	prev := runtime.GOMAXPROCS(1)
	serial := New(96, 96)
	MatMulInto(serial, a, b, false)
	runtime.GOMAXPROCS(8) // more Ps than cores is fine; forces fan-out
	parallel := New(96, 96)
	before := Kernels()
	MatMulInto(parallel, a, b, false)
	after := Kernels()
	runtime.GOMAXPROCS(prev)

	if after.ParallelGEMM == before.ParallelGEMM {
		t.Fatal("large GEMM did not take the parallel path")
	}
	assertExact(t, "parallel vs serial", parallel, serial)
}

// TestConcurrentGEMM hammers the kernels from many goroutines (meaningful
// under -race): shared read-only inputs, disjoint outputs.
func TestConcurrentGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randTensor(rng, 64, 64)
	b := randTensor(rng, 64, 64)
	want := naiveMatMul(a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := New(64, 64)
			for i := 0; i < 5; i++ {
				MatMulInto(out, a, b, false)
			}
			assertExact(t, "concurrent", out, want)
		}()
	}
	wg.Wait()
}

// TestRowBandPartition checks the partition is exact: every row assigned
// to exactly one band, bands contiguous and balanced within one row.
func TestRowBandPartition(t *testing.T) {
	for n := 0; n < 40; n++ {
		for workers := 1; workers <= 9; workers++ {
			seen := make([]int, n)
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := rowBand(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d band %d starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				if sz := hi - lo; sz < n/workers || sz > n/workers+1 {
					t.Fatalf("n=%d workers=%d band %d size %d unbalanced", n, workers, w, sz)
				}
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d bands cover %d rows", n, workers, prevHi)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d row %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestParallelRangeCoversOnce forces fan-out and verifies each index is
// visited exactly once.
func TestParallelRangeCoversOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 10000
	var mu sync.Mutex
	counts := make([]int, n)
	ParallelRange(n, 16, func(lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			counts[i]++
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestSoftmaxRowsInPlace checks the in-place variant matches the
// allocating one exactly.
func TestSoftmaxRowsInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randTensor(rng, 17, 33)
	want := SoftmaxRows(a)
	SoftmaxRowsInto(a, a)
	assertExact(t, "softmax in-place", a, want)
}

// TestTopKRowInto checks scratch reuse returns the same selection as the
// allocating variant.
func TestTopKRowInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randTensor(rng, 3, 50)
	var scratch []int
	for i := 0; i < 3; i++ {
		want := a.TopKRow(i, 7)
		got := a.TopKRowInto(i, 7, scratch)
		scratch = got[:cap(got)]
		if len(got) != len(want) {
			t.Fatalf("row %d: %d indices, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d rank %d: %d != %d", i, j, got[j], want[j])
			}
		}
	}
}

func BenchmarkMatMul128(b *testing.B) { benchGEMM(b, 128, 128, 128) }

func benchGEMM(b *testing.B, n, m, p int) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, n, m)
	y := randTensor(rng, m, p)
	out := New(n, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y, false)
	}
}

func BenchmarkMatMulAT64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 64, 64)
	y := randTensor(rng, 64, 64)
	out := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulATInto(out, x, y, true)
	}
}

func BenchmarkMatMulBT64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 64, 64)
	y := randTensor(rng, 64, 64)
	out := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBTInto(out, x, y, true)
	}
}
