package sqlast

import (
	"sync"
	"sync/atomic"
)

// Arena is a size-classed bump allocator for AST nodes, the sqlast
// counterpart of internal/tensor's workspace Pool: the parser hot path
// allocates every node and child slice from per-type slabs, and the whole
// tree is released in O(1) by Reset instead of node-by-node GC work.
//
// Ownership is explicit, mirroring tensor.Pool: every node handed out —
// and therefore every AST built from the arena — is valid only until the
// arena is Reset or returned to an ArenaPool with Put. Callers that retain
// a statement (e.g. workload.Query.Enrich keeps Stmt for the baselines)
// must parse through a throwaway arena (sqlparse.Parse does this) rather
// than a pooled one.
//
// A Reset arena keeps its consolidated slabs for reuse but does not zero
// them, so slab memory can pin strings referenced by previously parsed
// statements (token texts are sub-slices of the query string) until the
// slots are overwritten by later allocations. Arenas are cheap; drop one
// instead of pooling it if that retention matters.
//
// An Arena is not safe for concurrent use; ArenaPool is.
type Arena struct {
	selects  slab[SelectStmt]
	tops     slab[TopClause]
	setops   slab[SetOp]
	tables   slab[TableRef]
	subrefs  slab[SubqueryRef]
	joins    slab[JoinExpr]
	cols     slab[ColumnRef]
	stars    slab[Star]
	nums     slab[NumberLit]
	strs     slab[StringLit]
	funcs    slab[FuncCall]
	casts    slab[CastExpr]
	bins     slab[BinaryExpr]
	uns      slab[UnaryExpr]
	parens   slab[ParenExpr]
	ins      slab[InExpr]
	exists   slab[ExistsExpr]
	betweens slab[BetweenExpr]
	likes    slab[LikeExpr]
	isnulls  slab[IsNullExpr]
	cases    slab[CaseExpr]
	subqs    slab[SubqueryExpr]

	items  slab[SelectItem]
	texprs slab[TableExpr]
	exprs  slab[Expr]
	orders slab[OrderItem]
	whens  slab[WhenClause]
}

// Slab sizing: blocks double geometrically from slabBase entries, and
// Reset consolidates the cycle's total into one block, capped so a single
// pathological query cannot pin unbounded memory inside a pool.
const (
	slabBase      = 8
	slabBlockMax  = 4096
	slabRetainMax = 1 << 16
)

// slab is one per-type bump allocator: a primary block reused across
// Reset plus geometric overflow blocks for cycles that outgrow it.
type slab[T any] struct {
	buf  []T   // primary block; len = used, cap = capacity
	more [][]T // overflow blocks, last one active
}

func (s *slab[T]) alloc() *T {
	if n := len(s.buf); n < cap(s.buf) {
		s.buf = s.buf[:n+1]
		p := &s.buf[n]
		var zero T
		*p = zero
		return p
	}
	b := s.grow(1)
	p := &b[len(b)-1]
	var zero T
	*p = zero
	return p
}

// allocN returns n contiguous zero-copied entries as a full (three-index)
// sub-slice, so a later append by the caller reallocates instead of
// stomping a neighbor. The caller overwrites all n entries immediately.
func (s *slab[T]) allocN(n int) []T {
	if used := len(s.buf); used+n <= cap(s.buf) {
		s.buf = s.buf[:used+n]
		return s.buf[used : used+n : used+n]
	}
	b := s.grow(n)
	used := len(b) - n
	return b[used : used+n : used+n]
}

// grow extends the active overflow block by n entries, opening a new block
// when needed, and returns the active block including the new entries.
func (s *slab[T]) grow(n int) []T {
	k := len(s.more)
	if k > 0 {
		if b := s.more[k-1]; len(b)+n <= cap(b) {
			b = b[:len(b)+n]
			s.more[k-1] = b
			return b
		}
	}
	c := slabBase
	if cap(s.buf) > 0 {
		c = cap(s.buf) * 2
	}
	if k > 0 {
		c = cap(s.more[k-1]) * 2
	}
	if c > slabBlockMax {
		c = slabBlockMax
	}
	if c < n {
		c = n
	}
	b := make([]T, n, c)
	s.more = append(s.more, b)
	return b
}

// reset drops the cycle's contents. When overflow blocks were needed, the
// primary block is regrown to the cycle's total footprint (capped) so the
// next cycle fits in one block; otherwise the primary block is reused
// as-is. Entries are not zeroed — see the Arena retention note.
func (s *slab[T]) reset() {
	if len(s.more) == 0 {
		s.buf = s.buf[:0]
		return
	}
	total := cap(s.buf)
	for _, b := range s.more {
		total += cap(b)
	}
	if total > slabRetainMax {
		total = slabRetainMax
	}
	s.buf = make([]T, 0, total)
	s.more = nil
}

func saveSlice[T any](s *slab[T], src []T) []T {
	if len(src) == 0 {
		return nil
	}
	dst := s.allocN(len(src))
	copy(dst, src)
	return dst
}

// NewArena returns an empty arena. The zero value is also ready to use.
func NewArena() *Arena { return &Arena{} }

// Reset releases every node allocated from the arena at once. All ASTs
// previously built from it become invalid.
func (a *Arena) Reset() {
	a.selects.reset()
	a.tops.reset()
	a.setops.reset()
	a.tables.reset()
	a.subrefs.reset()
	a.joins.reset()
	a.cols.reset()
	a.stars.reset()
	a.nums.reset()
	a.strs.reset()
	a.funcs.reset()
	a.casts.reset()
	a.bins.reset()
	a.uns.reset()
	a.parens.reset()
	a.ins.reset()
	a.exists.reset()
	a.betweens.reset()
	a.likes.reset()
	a.isnulls.reset()
	a.cases.reset()
	a.subqs.reset()
	a.items.reset()
	a.texprs.reset()
	a.exprs.reset()
	a.orders.reset()
	a.whens.reset()
}

// Node constructors: one zeroed node per call, bump-allocated.

func (a *Arena) NewSelectStmt() *SelectStmt     { return a.selects.alloc() }
func (a *Arena) NewTopClause() *TopClause       { return a.tops.alloc() }
func (a *Arena) NewSetOp() *SetOp               { return a.setops.alloc() }
func (a *Arena) NewTableRef() *TableRef         { return a.tables.alloc() }
func (a *Arena) NewSubqueryRef() *SubqueryRef   { return a.subrefs.alloc() }
func (a *Arena) NewJoinExpr() *JoinExpr         { return a.joins.alloc() }
func (a *Arena) NewColumnRef() *ColumnRef       { return a.cols.alloc() }
func (a *Arena) NewStar() *Star                 { return a.stars.alloc() }
func (a *Arena) NewNumberLit() *NumberLit       { return a.nums.alloc() }
func (a *Arena) NewStringLit() *StringLit       { return a.strs.alloc() }
func (a *Arena) NewFuncCall() *FuncCall         { return a.funcs.alloc() }
func (a *Arena) NewCastExpr() *CastExpr         { return a.casts.alloc() }
func (a *Arena) NewBinaryExpr() *BinaryExpr     { return a.bins.alloc() }
func (a *Arena) NewUnaryExpr() *UnaryExpr       { return a.uns.alloc() }
func (a *Arena) NewParenExpr() *ParenExpr       { return a.parens.alloc() }
func (a *Arena) NewInExpr() *InExpr             { return a.ins.alloc() }
func (a *Arena) NewExistsExpr() *ExistsExpr     { return a.exists.alloc() }
func (a *Arena) NewBetweenExpr() *BetweenExpr   { return a.betweens.alloc() }
func (a *Arena) NewLikeExpr() *LikeExpr         { return a.likes.alloc() }
func (a *Arena) NewIsNullExpr() *IsNullExpr     { return a.isnulls.alloc() }
func (a *Arena) NewCaseExpr() *CaseExpr         { return a.cases.alloc() }
func (a *Arena) NewSubqueryExpr() *SubqueryExpr { return a.subqs.alloc() }

// sharedNull backs every NewNullLit: the node is immutable (no fields), so
// one instance serves all ASTs and never pins arena memory.
var sharedNull NullLit

// NewNullLit returns the shared NULL literal node.
func (a *Arena) NewNullLit() *NullLit { return &sharedNull }

// Child-slice savers: copy a scratch slice into stable arena storage.

func (a *Arena) SaveSelectItems(src []SelectItem) []SelectItem { return saveSlice(&a.items, src) }
func (a *Arena) SaveTableExprs(src []TableExpr) []TableExpr    { return saveSlice(&a.texprs, src) }
func (a *Arena) SaveExprs(src []Expr) []Expr                   { return saveSlice(&a.exprs, src) }
func (a *Arena) SaveOrderItems(src []OrderItem) []OrderItem    { return saveSlice(&a.orders, src) }
func (a *Arena) SaveWhenClauses(src []WhenClause) []WhenClause { return saveSlice(&a.whens, src) }

// ArenaPool recycles Arenas across parses, the sqlast analog of
// tensor.Shared's Get/Put protocol — and it is checked by the same
// poolsafe lint rule: every Get needs a Put on all paths, and no node of
// an AST may be used after its arena is Put.
//
// Put resets the arena, so the returned value of Get is always empty.
type ArenaPool struct {
	pool sync.Pool

	gets   atomic.Uint64
	puts   atomic.Uint64
	misses atomic.Uint64
}

// SharedArenas is the process-wide arena pool used by the serve path
// (tokenizer, recommender) for transient parses.
var SharedArenas = NewArenaPool()

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

// Get returns an empty arena, reusing a pooled one when available.
func (p *ArenaPool) Get() *Arena {
	p.gets.Add(1)
	if a, ok := p.pool.Get().(*Arena); ok {
		return a
	}
	p.misses.Add(1)
	return NewArena()
}

// Put resets the arena and returns it to the pool. Every AST built from it
// is invalid from this point on.
func (p *ArenaPool) Put(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	p.puts.Add(1)
	p.pool.Put(a)
}

// ArenaPoolStats is a snapshot of pool traffic; misses count Gets that had
// to allocate a fresh arena.
type ArenaPoolStats struct {
	Gets, Puts, Misses uint64
}

// Stats snapshots the counters.
func (p *ArenaPool) Stats() ArenaPoolStats {
	return ArenaPoolStats{Gets: p.gets.Load(), Puts: p.puts.Load(), Misses: p.misses.Load()}
}
