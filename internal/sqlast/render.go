package sqlast

import (
	"sort"
	"strings"

	"repro/internal/sqllex"
)

// RenderMode controls how fragments are spelled during rendering.
type RenderMode int

const (
	// RenderSQL reproduces a normalized SQL statement with original
	// fragment names (aliases resolved to their table names, literals
	// kept).
	RenderSQL RenderMode = iota
	// RenderTemplate replaces tables, columns, function names and
	// literals with the placeholders Table, Column, Function and Literal
	// and removes aliases (paper Definition 5).
	RenderTemplate
)

// renderer carries rendering state. aliases maps alias (upper-cased) to the
// table name it stands for, per enclosing query scope; alias maps nest.
type renderer struct {
	mode    RenderMode
	sb      strings.Builder
	aliases []map[string]string
}

// RenderSQLString renders the statement as normalized SQL with aliases
// resolved to table names (paper Section 5.4.1: aliases are replaced with
// the corresponding table name).
func RenderSQLString(s *SelectStmt) string {
	r := &renderer{mode: RenderSQL}
	r.selectStmt(s)
	return r.sb.String()
}

// TemplateString renders the template statement of the query (paper
// Figure 5): fragments become placeholders and aliases are removed. Two
// queries share a template class iff their TemplateString values are equal.
//
// Following the paper, non-structural differences are canonicalized away:
// spacing and indentation do not matter (rendering is canonical), and the
// order of commutative clauses (select list items, AND/OR chains, GROUP BY
// keys) is normalized by sorting the rendered arms.
func TemplateString(s *SelectStmt) string {
	r := &renderer{mode: RenderTemplate}
	r.selectStmt(s)
	return r.sb.String()
}

func (r *renderer) w(parts ...string) {
	for _, p := range parts {
		r.sb.WriteString(p)
	}
}

func (r *renderer) pushScope(s *SelectStmt) {
	m := map[string]string{}
	var collect func(te TableExpr)
	collect = func(te TableExpr) {
		switch t := te.(type) {
		case *TableRef:
			if t.Alias != "" {
				m[strings.ToUpper(t.Alias)] = t.Name
			}
		case *SubqueryRef:
			// Subquery aliases have no table name; they resolve to
			// themselves so qualified columns keep a stable spelling.
			if t.Alias != "" {
				m[strings.ToUpper(t.Alias)] = t.Alias
			}
		case *JoinExpr:
			collect(t.Left)
			collect(t.Right)
		}
	}
	for _, te := range s.From {
		collect(te)
	}
	r.aliases = append(r.aliases, m)
}

func (r *renderer) popScope() { r.aliases = r.aliases[:len(r.aliases)-1] }

// resolveQualifier maps an alias to its table name, searching innermost
// scope outward. Unknown qualifiers are returned unchanged (they are
// direct table names).
func (r *renderer) resolveQualifier(q string) string {
	up := strings.ToUpper(q)
	for i := len(r.aliases) - 1; i >= 0; i-- {
		if t, ok := r.aliases[i][up]; ok {
			return t
		}
	}
	return q
}

// sortArms renders each part independently and joins them sorted, used to
// canonicalize commutative clause order in template mode. In SQL mode the
// original order is kept.
func (r *renderer) commaList(render func(int), n int, canonical bool) {
	if !canonical || r.mode != RenderTemplate {
		for i := 0; i < n; i++ {
			if i > 0 {
				r.w(", ")
			}
			render(i)
		}
		return
	}
	parts := make([]string, n)
	outer := r.sb
	for i := 0; i < n; i++ {
		r.sb = strings.Builder{}
		render(i)
		parts[i] = r.sb.String()
	}
	r.sb = outer
	sort.Strings(parts)
	r.w(strings.Join(parts, ", "))
}

func (r *renderer) selectStmt(s *SelectStmt) {
	r.pushScope(s)
	defer r.popScope()

	r.w("SELECT ")
	if s.Distinct {
		r.w("DISTINCT ")
	}
	if s.Top != nil {
		r.w("TOP ")
		r.expr(s.Top.Count)
		if s.Top.Percent {
			r.w(" PERCENT")
		}
		r.w(" ")
	}
	// Select-item aliases are dropped in both modes: resolved at use
	// sites in SQL mode, removed in template mode (Definition 5).
	r.commaList(func(i int) { r.expr(s.Columns[i].Expr) }, len(s.Columns), true)

	if s.Into != nil {
		r.w(" INTO ")
		r.tableName(s.Into.Name)
	}
	if len(s.From) > 0 {
		r.w(" FROM ")
		for i, te := range s.From {
			if i > 0 {
				r.w(", ")
			}
			r.tableExpr(te)
		}
	}
	if s.Where != nil {
		r.w(" WHERE ")
		r.boolChain(s.Where)
	}
	if len(s.GroupBy) > 0 {
		r.w(" GROUP BY ")
		r.commaList(func(i int) { r.expr(s.GroupBy[i]) }, len(s.GroupBy), true)
	}
	if s.Having != nil {
		r.w(" HAVING ")
		r.boolChain(s.Having)
	}
	if len(s.OrderBy) > 0 {
		r.w(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				r.w(", ")
			}
			r.expr(o.Expr)
			if o.Desc {
				r.w(" DESC")
			}
		}
	}
	if s.SetOp != nil {
		r.w(" ", s.SetOp.Op)
		if s.SetOp.All {
			r.w(" ALL")
		}
		r.w(" ")
		r.selectStmt(s.SetOp.Right)
	}
}

// boolChain renders a top-level boolean expression. In template mode,
// flat chains of the same connective (AND / OR) are sorted to ignore
// condition order, per the paper's canonicalization of templates.
func (r *renderer) boolChain(e Expr) {
	be, ok := e.(*BinaryExpr)
	if !ok || (be.Op != "AND" && be.Op != "OR") || r.mode != RenderTemplate {
		r.expr(e)
		return
	}
	op := be.Op
	var arms []Expr
	var flatten func(x Expr)
	flatten = func(x Expr) {
		if b, ok := x.(*BinaryExpr); ok && b.Op == op {
			flatten(b.L)
			flatten(b.R)
			return
		}
		arms = append(arms, x)
	}
	flatten(be)
	parts := make([]string, len(arms))
	outer := r.sb
	for i, a := range arms {
		r.sb = strings.Builder{}
		r.expr(a)
		parts[i] = r.sb.String()
	}
	r.sb = outer
	sort.Strings(parts)
	r.w(strings.Join(parts, " "+op+" "))
}

func (r *renderer) tableExpr(te TableExpr) {
	switch t := te.(type) {
	case *TableRef:
		r.tableName(t.Name)
	case *SubqueryRef:
		r.w("(")
		r.selectStmt(t.Select)
		r.w(")")
	case *JoinExpr:
		r.tableExpr(t.Left)
		switch t.Type {
		case "CROSS":
			r.w(" CROSS JOIN ")
		case "INNER":
			r.w(" JOIN ")
		default:
			r.w(" ", t.Type, " JOIN ")
		}
		r.tableExpr(t.Right)
		if t.On != nil {
			r.w(" ON ")
			r.expr(t.On)
		}
	}
}

func (r *renderer) tableName(name string) {
	if r.mode == RenderTemplate {
		r.w("Table")
		return
	}
	r.w(quoteName(name))
}

func (r *renderer) columnName(q, name string) {
	if r.mode == RenderTemplate {
		r.w("Column")
		return
	}
	if q != "" {
		r.w(quoteName(r.resolveQualifier(q)), ".")
	}
	r.w(quoteName(name))
}

// quoteName spells a possibly-qualified name so it re-lexes to the same
// identifier chain: each dot-separated segment is quoted iff it would not
// lex bare. Degenerate names with empty segments (e.g. "a.") are kept as
// one quoted segment so the dots stay inside the delimiters.
func quoteName(name string) string {
	if sqllex.IsBareIdent(name) || name == "" {
		return name
	}
	parts := strings.Split(name, ".")
	for _, p := range parts {
		if p == "" {
			return sqllex.QuoteIdent(name)
		}
	}
	for i, p := range parts {
		parts[i] = sqllex.QuoteIdent(p)
	}
	return strings.Join(parts, ".")
}

func (r *renderer) expr(e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *ColumnRef:
		r.columnName(x.Qualifier, x.Name)
	case *Star:
		if x.Qualifier != "" && r.mode == RenderSQL {
			r.w(quoteName(r.resolveQualifier(x.Qualifier)), ".")
		}
		r.w("*")
	case *NumberLit:
		if r.mode == RenderTemplate {
			r.w("Literal")
		} else {
			r.w(x.Text)
		}
	case *StringLit:
		if r.mode == RenderTemplate {
			r.w("Literal")
		} else {
			r.w(x.Text)
		}
	case *NullLit:
		r.w("NULL")
	case *FuncCall:
		if r.mode == RenderTemplate {
			r.w("Function")
		} else {
			r.w(quoteName(x.Name))
		}
		r.w("(")
		if x.Distinct {
			r.w("DISTINCT ")
		}
		if x.Star {
			r.w("*")
		} else {
			for i, a := range x.Args {
				if i > 0 {
					r.w(", ")
				}
				r.expr(a)
			}
		}
		r.w(")")
	case *CastExpr:
		if r.mode == RenderTemplate {
			r.w("Function")
		} else if x.FromConvert {
			r.w("CONVERT")
		} else {
			r.w("CAST")
		}
		if x.FromConvert && r.mode == RenderSQL {
			r.w("(", x.Type, ", ")
			r.expr(x.Expr)
			r.w(")")
			return
		}
		r.w("(")
		r.expr(x.Expr)
		r.w(" AS ", x.Type, ")")
	case *BinaryExpr:
		r.expr(x.L)
		r.w(" ", x.Op, " ")
		r.expr(x.R)
	case *UnaryExpr:
		if x.Op == "NOT" {
			r.w("NOT ")
		} else {
			r.w(x.Op)
		}
		r.expr(x.X)
	case *ParenExpr:
		r.w("(")
		r.boolChain(x.X)
		r.w(")")
	case *InExpr:
		r.expr(x.X)
		if x.Not {
			r.w(" NOT")
		}
		r.w(" IN (")
		if x.Select != nil {
			r.selectStmt(x.Select)
		} else {
			r.commaList(func(i int) { r.expr(x.List[i]) }, len(x.List), true)
		}
		r.w(")")
	case *ExistsExpr:
		if x.Not {
			r.w("NOT ")
		}
		r.w("EXISTS (")
		r.selectStmt(x.Select)
		r.w(")")
	case *BetweenExpr:
		r.expr(x.X)
		if x.Not {
			r.w(" NOT")
		}
		r.w(" BETWEEN ")
		r.expr(x.Lo)
		r.w(" AND ")
		r.expr(x.Hi)
	case *LikeExpr:
		r.expr(x.X)
		if x.Not {
			r.w(" NOT")
		}
		r.w(" LIKE ")
		r.expr(x.Pattern)
	case *IsNullExpr:
		r.expr(x.X)
		r.w(" IS ")
		if x.Not {
			r.w("NOT ")
		}
		r.w("NULL")
	case *CaseExpr:
		r.w("CASE")
		if x.Operand != nil {
			r.w(" ")
			r.expr(x.Operand)
		}
		for _, wc := range x.Whens {
			r.w(" WHEN ")
			r.expr(wc.Cond)
			r.w(" THEN ")
			r.expr(wc.Then)
		}
		if x.Else != nil {
			r.w(" ELSE ")
			r.expr(x.Else)
		}
		r.w(" END")
	case *SubqueryExpr:
		r.w("(")
		r.selectStmt(x.Select)
		r.w(")")
	}
}
