package sqlast

import (
	"sort"
	"strings"
)

// FragmentKind distinguishes the four fragment types of Definition 4.
type FragmentKind int

// Fragment kinds.
const (
	FragTable FragmentKind = iota
	FragColumn
	FragFunction
	FragLiteral
)

// String names the fragment kind as used in evaluation tables.
func (k FragmentKind) String() string {
	switch k {
	case FragTable:
		return "table"
	case FragColumn:
		return "column"
	case FragFunction:
		return "function"
	case FragLiteral:
		return "literal"
	default:
		return "unknown"
	}
}

// FragmentKinds lists all kinds in the order the paper reports them.
var FragmentKinds = []FragmentKind{FragTable, FragColumn, FragFunction, FragLiteral}

// FragmentSet holds the four fragment sets of a query. Elements are stored
// upper-cased so fragment identity is case-insensitive, matching SQL
// semantics in both workloads.
type FragmentSet struct {
	Tables    map[string]bool
	Columns   map[string]bool
	Functions map[string]bool
	Literals  map[string]bool
}

// NewFragmentSet returns an empty fragment set.
func NewFragmentSet() *FragmentSet {
	return &FragmentSet{
		Tables:    map[string]bool{},
		Columns:   map[string]bool{},
		Functions: map[string]bool{},
		Literals:  map[string]bool{},
	}
}

// ByKind returns the set for one fragment kind.
func (fs *FragmentSet) ByKind(k FragmentKind) map[string]bool {
	switch k {
	case FragTable:
		return fs.Tables
	case FragColumn:
		return fs.Columns
	case FragFunction:
		return fs.Functions
	default:
		return fs.Literals
	}
}

// Add inserts a fragment of the given kind, normalizing case.
func (fs *FragmentSet) Add(k FragmentKind, s string) {
	if s == "" {
		return
	}
	fs.ByKind(k)[strings.ToUpper(s)] = true
}

// All returns every fragment as "kind:name" strings, sorted; useful for
// building feature vectors (QueRIE baseline) and for tests.
func (fs *FragmentSet) All() []string {
	var out []string
	for _, k := range FragmentKinds {
		for s := range fs.ByKind(k) {
			out = append(out, k.String()+":"+s)
		}
	}
	sort.Strings(out)
	return out
}

// Sorted returns the sorted members of one kind.
func (fs *FragmentSet) Sorted(k FragmentKind) []string {
	m := fs.ByKind(k)
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of fragments across kinds.
func (fs *FragmentSet) Size() int {
	n := 0
	for _, k := range FragmentKinds {
		n += len(fs.ByKind(k))
	}
	return n
}

// Fragments extracts tables(Q), columns(Q), functions(Q) and literals(Q)
// from a parsed query (paper Definition 4). Aliases resolve to their table
// name: a qualifier that matches a declared alias contributes the aliased
// table, and alias declarations themselves are not fragments. CAST and
// CONVERT count as functions (paper Example 6 lists CAST in functions(Q)).
// NULL used as a value counts as a literal, matching Example 6 where
// literals(Q) = {null}.
func Fragments(s *SelectStmt) *FragmentSet {
	fs := NewFragmentSet()
	collect(s, fs, map[string]string{})
	return fs
}

// collect walks one query scope. aliasScope maps upper-cased aliases to
// table names visible at this point (outer scopes included, inner wins).
func collect(s *SelectStmt, fs *FragmentSet, outer map[string]string) {
	if s == nil {
		return
	}
	scope := make(map[string]string, len(outer)+4)
	for k, v := range outer {
		scope[k] = v
	}
	var declare func(te TableExpr)
	declare = func(te TableExpr) {
		switch t := te.(type) {
		case *TableRef:
			fs.Add(FragTable, t.Name)
			if t.Alias != "" {
				scope[strings.ToUpper(t.Alias)] = t.Name
			}
		case *SubqueryRef:
			if t.Alias != "" {
				scope[strings.ToUpper(t.Alias)] = "" // derived table: qualifier is not a base table
			}
		case *JoinExpr:
			declare(t.Left)
			declare(t.Right)
		}
	}
	for _, te := range s.From {
		declare(te)
	}
	if s.Into != nil {
		fs.Add(FragTable, s.Into.Name)
	}

	var visitExpr func(e Expr)
	visitSub := func(sub *SelectStmt) { collect(sub, fs, scope) }
	visitExpr = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *ColumnRef:
			fs.Add(FragColumn, x.Name)
			if x.Qualifier != "" {
				if t, ok := scope[strings.ToUpper(x.Qualifier)]; ok {
					fs.Add(FragTable, t)
				} else {
					// Qualifier is a direct table name.
					fs.Add(FragTable, x.Qualifier)
				}
			}
		case *Star:
			if x.Qualifier != "" {
				if t, ok := scope[strings.ToUpper(x.Qualifier)]; ok {
					fs.Add(FragTable, t)
				} else {
					fs.Add(FragTable, x.Qualifier)
				}
			}
		case *NumberLit:
			fs.Add(FragLiteral, x.Text)
		case *StringLit:
			fs.Add(FragLiteral, x.Text)
		case *NullLit:
			fs.Add(FragLiteral, "NULL")
		case *FuncCall:
			fs.Add(FragFunction, x.Name)
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *CastExpr:
			if x.FromConvert {
				fs.Add(FragFunction, "CONVERT")
			} else {
				fs.Add(FragFunction, "CAST")
			}
			visitExpr(x.Expr)
		case *BinaryExpr:
			visitExpr(x.L)
			visitExpr(x.R)
		case *UnaryExpr:
			visitExpr(x.X)
		case *ParenExpr:
			visitExpr(x.X)
		case *InExpr:
			visitExpr(x.X)
			for _, v := range x.List {
				visitExpr(v)
			}
			if x.Select != nil {
				visitSub(x.Select)
			}
		case *ExistsExpr:
			visitSub(x.Select)
		case *BetweenExpr:
			visitExpr(x.X)
			visitExpr(x.Lo)
			visitExpr(x.Hi)
		case *LikeExpr:
			visitExpr(x.X)
			visitExpr(x.Pattern)
		case *IsNullExpr:
			visitExpr(x.X)
		case *CaseExpr:
			visitExpr(x.Operand)
			for _, w := range x.Whens {
				visitExpr(w.Cond)
				visitExpr(w.Then)
			}
			visitExpr(x.Else)
		case *SubqueryExpr:
			visitSub(x.Select)
		}
	}

	if s.Top != nil {
		visitExpr(s.Top.Count)
	}
	for _, it := range s.Columns {
		visitExpr(it.Expr)
	}
	var visitTE func(te TableExpr)
	visitTE = func(te TableExpr) {
		switch t := te.(type) {
		case *SubqueryRef:
			visitSub(t.Select)
		case *JoinExpr:
			visitTE(t.Left)
			visitTE(t.Right)
			visitExpr(t.On)
		}
	}
	for _, te := range s.From {
		visitTE(te)
	}
	visitExpr(s.Where)
	for _, g := range s.GroupBy {
		visitExpr(g)
	}
	visitExpr(s.Having)
	for _, o := range s.OrderBy {
		visitExpr(o.Expr)
	}
	if s.SetOp != nil {
		collect(s.SetOp.Right, fs, scope)
	}
}

// SyntacticProperties are the six pair-level measurements of Section 5.3.3:
// table count, selected columns, predicate count, predicate columns,
// function count and word count.
type SyntacticProperties struct {
	TableCount      int
	SelectedColumns int
	PredicateCount  int
	PredicateCols   int
	FunctionCount   int
	WordCount       int
}

// Properties computes the six syntactic properties over a parsed query.
// WordCount is the number of lexical tokens in the rendered SQL.
func Properties(s *SelectStmt) SyntacticProperties {
	var p SyntacticProperties
	Walk(s, func(n Node) bool {
		switch x := n.(type) {
		case *TableRef:
			p.TableCount++
		case *FuncCall:
			p.FunctionCount++
		case *CastExpr:
			p.FunctionCount++
		case *BinaryExpr:
			switch x.Op {
			case "=", "<>", "!=", "<", ">", "<=", ">=":
				p.PredicateCount++
				if _, ok := x.L.(*ColumnRef); ok {
					p.PredicateCols++
				}
				if _, ok := x.R.(*ColumnRef); ok {
					p.PredicateCols++
				}
			}
		case *LikeExpr, *BetweenExpr, *InExpr, *IsNullExpr, *ExistsExpr:
			p.PredicateCount++
		}
		return true
	})
	for _, it := range s.Columns {
		switch it.Expr.(type) {
		case *ColumnRef, *Star:
			p.SelectedColumns++
		default:
			p.SelectedColumns++ // expressions still produce one output column
		}
	}
	p.WordCount = len(strings.Fields(RenderSQLString(s)))
	return p
}
