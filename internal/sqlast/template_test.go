package sqlast_test

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func parse(t *testing.T, src string) *sqlast.SelectStmt {
	t.Helper()
	s, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestTemplateBasic(t *testing.T) {
	s := parse(t, "SELECT name FROM PhotoTag WHERE ra > 180.0")
	tmpl := sqlast.TemplateString(s)
	want := "SELECT Column FROM Table WHERE Column > Literal"
	if tmpl != want {
		t.Errorf("template:\n got %q\nwant %q", tmpl, want)
	}
}

func TestTemplatePaperFigure5Shape(t *testing.T) {
	// Mirrors the paper's Figure 4 -> Figure 5 example: fragments become
	// placeholders, CAST becomes Function, aliases disappear.
	q := `SELECT j.target, CAST(j.estimate AS VARCHAR) AS estimate
	      FROM Jobs j, Status s
	      WHERE j.queue = 'FULL' AND j.outputtype LIKE '%QUERY%'`
	tmpl := sqlast.TemplateString(parse(t, q))
	for _, want := range []string{"Function(Column AS VARCHAR)", "FROM Table, Table", "Column LIKE Literal", "Column = Literal"} {
		if !strings.Contains(tmpl, want) {
			t.Errorf("template %q missing %q", tmpl, want)
		}
	}
	for _, forbidden := range []string{"Jobs", "Status", "target", "estimate", "j.", "'FULL'"} {
		if strings.Contains(tmpl, forbidden) {
			t.Errorf("template leaked fragment %q: %s", forbidden, tmpl)
		}
	}
}

func TestTemplateIgnoresWhitespaceAndAliases(t *testing.T) {
	a := parse(t, "SELECT   p.ra,p.dec   FROM  PhotoObj   AS p")
	b := parse(t, "SELECT q.ra, q.dec FROM PhotoObj q")
	c := parse(t, "SELECT ra, dec FROM PhotoObj")
	ta, tb, tc := sqlast.TemplateString(a), sqlast.TemplateString(b), sqlast.TemplateString(c)
	if ta != tb || tb != tc {
		t.Errorf("alias/whitespace not canonicalized:\n%q\n%q\n%q", ta, tb, tc)
	}
}

func TestTemplateIgnoresSelectOrder(t *testing.T) {
	// "order of some SQL phrases such as select conditions" is
	// non-structural: a pure placeholder reordering maps to one class.
	a := parse(t, "SELECT ra, AVG(dec) FROM t WHERE x = 1 AND y LIKE 'q'")
	b := parse(t, "SELECT AVG(dec), ra FROM t WHERE y LIKE 'q' AND x = 1")
	if sqlast.TemplateString(a) != sqlast.TemplateString(b) {
		t.Errorf("commutative order changed template:\n%q\n%q",
			sqlast.TemplateString(a), sqlast.TemplateString(b))
	}
}

func TestTemplateDistinguishesStructure(t *testing.T) {
	pairs := [][2]string{
		{"SELECT a FROM t", "SELECT a, b FROM t"},
		{"SELECT a FROM t", "SELECT DISTINCT a FROM t"},
		{"SELECT a FROM t", "SELECT a FROM t WHERE x = 1"},
		{"SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x > 1"},
		{"SELECT a FROM t", "SELECT TOP 5 a FROM t"},
		{"SELECT a FROM t ORDER BY a", "SELECT a FROM t ORDER BY a DESC"},
		{"SELECT a FROM t", "SELECT a FROM t, u"},
		{"SELECT COUNT(*) FROM t", "SELECT COUNT(a) FROM t"},
		{"SELECT a FROM t WHERE x IN (1,2)", "SELECT a FROM t WHERE x IN (SELECT x FROM u)"},
	}
	for _, p := range pairs {
		ta := sqlast.TemplateString(parse(t, p[0]))
		tb := sqlast.TemplateString(parse(t, p[1]))
		if ta == tb {
			t.Errorf("structures collapsed: %q vs %q -> %q", p[0], p[1], ta)
		}
	}
}

func TestTemplateNestedSubquery(t *testing.T) {
	q := "SELECT x FROM (SELECT DISTINCT a, b FROM t WHERE a = 1) sub WHERE x LIKE 'p%'"
	tmpl := sqlast.TemplateString(parse(t, q))
	if !strings.Contains(tmpl, "(SELECT DISTINCT Column, Column FROM Table WHERE Column = Literal)") {
		t.Errorf("nested template wrong: %s", tmpl)
	}
}

func TestTemplateDeterministic(t *testing.T) {
	// The template class label must be a pure function of the AST: two
	// parses of the same statement yield byte-identical templates, and
	// repeated rendering of one AST is stable.
	queries := []string{
		"SELECT name FROM PhotoTag WHERE ra > 180.0",
		"SELECT TOP 10 a, COUNT(*) FROM t GROUP BY a ORDER BY COUNT(*) DESC",
		"SELECT CAST(x AS INT) FROM t WHERE y IS NOT NULL",
		"SELECT x FROM (SELECT a FROM t) s JOIN u ON s.a = u.a WHERE x IN (1, 2, 3)",
	}
	for _, q := range queries {
		s1, s2 := parse(t, q), parse(t, q)
		t1, t2 := sqlast.TemplateString(s1), sqlast.TemplateString(s2)
		if t1 != t2 {
			t.Errorf("template not deterministic for %q:\n%q\n%q", q, t1, t2)
		}
		if t3 := sqlast.TemplateString(s1); t3 != t1 {
			t.Errorf("re-render changed template: %q vs %q", t1, t3)
		}
	}
}

func TestFragmentsAliasResolution(t *testing.T) {
	q := "SELECT p.ra FROM PhotoObj AS p WHERE p.ra > 1"
	fs := sqlast.Fragments(parse(t, q))
	if !fs.Tables["PHOTOOBJ"] {
		t.Errorf("tables: %v", fs.Sorted(sqlast.FragTable))
	}
	if fs.Tables["P"] {
		t.Errorf("alias leaked into tables: %v", fs.Sorted(sqlast.FragTable))
	}
	if !fs.Columns["RA"] {
		t.Errorf("columns: %v", fs.Sorted(sqlast.FragColumn))
	}
}

func TestFragmentsLiteralsAndNull(t *testing.T) {
	q := "SELECT a FROM t WHERE b = 'x' AND c = 3.5 AND d IS NULL AND e = NULL"
	fs := sqlast.Fragments(parse(t, q))
	if !fs.Literals["'X'"] || !fs.Literals["3.5"] {
		t.Errorf("literals: %v", fs.Sorted(sqlast.FragLiteral))
	}
	if !fs.Literals["NULL"] {
		t.Errorf("NULL literal missing: %v", fs.Sorted(sqlast.FragLiteral))
	}
}

func TestFragmentsNested(t *testing.T) {
	q := "SELECT x FROM (SELECT a FROM inner1 WHERE f(a) > 2) s JOIN outer1 o ON s.x = o.x"
	fs := sqlast.Fragments(parse(t, q))
	for _, tb := range []string{"INNER1", "OUTER1"} {
		if !fs.Tables[tb] {
			t.Errorf("missing table %s: %v", tb, fs.Sorted(sqlast.FragTable))
		}
	}
	if !fs.Functions["F"] {
		t.Errorf("functions: %v", fs.Sorted(sqlast.FragFunction))
	}
	// Subquery alias s must not be a table.
	if fs.Tables["S"] {
		t.Errorf("derived-table alias leaked: %v", fs.Sorted(sqlast.FragTable))
	}
}

func TestFragmentSetOperations(t *testing.T) {
	fs := sqlast.NewFragmentSet()
	fs.Add(sqlast.FragTable, "PhotoObj")
	fs.Add(sqlast.FragTable, "photoobj") // dedup case-insensitively
	fs.Add(sqlast.FragColumn, "ra")
	fs.Add(sqlast.FragFunction, "")
	if fs.Size() != 2 {
		t.Errorf("size: %d", fs.Size())
	}
	all := fs.All()
	if len(all) != 2 || all[0] != "column:RA" || all[1] != "table:PHOTOOBJ" {
		t.Errorf("all: %v", all)
	}
}

func TestProperties(t *testing.T) {
	q := "SELECT p.objID, p.ra, AVG(p.dec) FROM PhotoObj p JOIN SpecObj s ON p.objID = s.bestObjID WHERE p.ra > 140 AND s.z > 0.3 GROUP BY p.objID, p.ra"
	props := sqlast.Properties(parse(t, q))
	if props.TableCount != 2 {
		t.Errorf("tables: %d", props.TableCount)
	}
	if props.SelectedColumns != 3 {
		t.Errorf("selected: %d", props.SelectedColumns)
	}
	// Predicates: join condition + two WHERE comparisons.
	if props.PredicateCount != 3 {
		t.Errorf("predicates: %d", props.PredicateCount)
	}
	if props.FunctionCount != 1 {
		t.Errorf("functions: %d", props.FunctionCount)
	}
	if props.WordCount == 0 {
		t.Error("word count zero")
	}
}

func TestRenderSQLResolvesAliases(t *testing.T) {
	q := "SELECT p.ra FROM PhotoObj AS p WHERE p.ra > 1"
	out := sqlast.RenderSQLString(parse(t, q))
	if !strings.Contains(out, "PhotoObj.ra") {
		t.Errorf("alias not resolved: %s", out)
	}
	if strings.Contains(out, " AS p") || strings.Contains(out, "p.ra") {
		t.Errorf("alias survived: %s", out)
	}
}

func TestWalkStopsOnFalse(t *testing.T) {
	s := parse(t, "SELECT a FROM t WHERE b = 1")
	count := 0
	sqlast.Walk(s, func(n sqlast.Node) bool {
		count++
		return false // never descend
	})
	if count != 1 {
		t.Errorf("walk did not stop: %d", count)
	}
}

func TestWalkNilSafe(t *testing.T) {
	sqlast.Walk(nil, func(sqlast.Node) bool { return true })
	var s *sqlast.SelectStmt
	_ = s
	sqlast.Walk(&sqlast.SelectStmt{}, func(sqlast.Node) bool { return true })
}
