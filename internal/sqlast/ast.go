// Package sqlast defines the abstract syntax tree for the SQL subset used
// in the SDSS and SQLShare workloads, plus the two derived artifacts the
// recommendation pipeline needs:
//
//   - Template(Q): the AST with tables, columns, functions and literals
//     replaced by placeholders and aliases removed (paper Definition 5).
//   - Fragments(Q): the sets tables(Q), columns(Q), functions(Q) and
//     literals(Q) (paper Definition 4).
package sqlast

// Node is implemented by every AST node.
type Node interface{ node() }

// Statement is a top-level SQL statement. SelectStmt is the only statement
// produced by the parser today; the interface leaves room for DML.
type Statement interface {
	Node
	stmt()
}

// SelectStmt is a SELECT query, optionally carrying a trailing set
// operation (UNION/EXCEPT/INTERSECT) chained through SetOp.
type SelectStmt struct {
	Distinct bool
	Top      *TopClause
	Columns  []SelectItem
	Into     *TableRef
	From     []TableExpr
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	SetOp    *SetOp
}

func (*SelectStmt) node() {}
func (*SelectStmt) stmt() {}

// TopClause is the T-SQL TOP n [PERCENT] row limiter.
type TopClause struct {
	Count   Expr
	Percent bool
}

// SelectItem is one entry of the select list.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOp chains a set operation onto a SelectStmt.
type SetOp struct {
	Op    string // "UNION", "EXCEPT", "INTERSECT"
	All   bool
	Right *SelectStmt
}

// TableExpr is a FROM-clause production.
type TableExpr interface {
	Node
	tableExpr()
}

// TableRef is a (possibly schema-qualified) table or view name with an
// optional alias.
type TableRef struct {
	Name  string // full dotted name as written, e.g. "dbo.PhotoObj"
	Alias string
}

func (*TableRef) node()      {}
func (*TableRef) tableExpr() {}

// SubqueryRef is a parenthesized subquery in FROM with an optional alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) node()      {}
func (*SubqueryRef) tableExpr() {}

// JoinExpr is an ANSI join between two table expressions.
type JoinExpr struct {
	Type  string // "INNER", "LEFT", "RIGHT", "FULL", "CROSS"
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for CROSS joins
}

func (*JoinExpr) node()      {}
func (*JoinExpr) tableExpr() {}

// Expr is a scalar or boolean expression.
type Expr interface {
	Node
	expr()
}

// ColumnRef is a column reference, optionally qualified by a table name or
// alias.
type ColumnRef struct {
	Qualifier string
	Name      string
}

func (*ColumnRef) node() {}
func (*ColumnRef) expr() {}

// Star is "*" or "alias.*" in a select list or COUNT(*).
type Star struct{ Qualifier string }

func (*Star) node() {}
func (*Star) expr() {}

// NumberLit is a numeric literal, original spelling preserved.
type NumberLit struct{ Text string }

func (*NumberLit) node() {}
func (*NumberLit) expr() {}

// StringLit is a string literal including its quotes.
type StringLit struct{ Text string }

func (*StringLit) node() {}
func (*StringLit) expr() {}

// NullLit is the NULL keyword used as a value.
type NullLit struct{}

func (*NullLit) node() {}
func (*NullLit) expr() {}

// FuncCall is a function invocation. Star marks COUNT(*)-style calls.
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
}

func (*FuncCall) node() {}
func (*FuncCall) expr() {}

// CastExpr is CAST(expr AS type). CONVERT(type, expr) is normalized to the
// same node with FromConvert set so rendering can round-trip.
type CastExpr struct {
	Expr        Expr
	Type        string
	FromConvert bool
}

func (*CastExpr) node() {}
func (*CastExpr) expr() {}

// BinaryExpr is a binary operator application (arithmetic, comparison,
// AND/OR).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) node() {}
func (*BinaryExpr) expr() {}

// UnaryExpr is NOT x or -x / +x / ~x.
type UnaryExpr struct {
	Op string
	X  Expr
}

func (*UnaryExpr) node() {}
func (*UnaryExpr) expr() {}

// ParenExpr preserves explicit grouping parentheses.
type ParenExpr struct{ X Expr }

func (*ParenExpr) node() {}
func (*ParenExpr) expr() {}

// InExpr is "x [NOT] IN (list)" or "x [NOT] IN (subquery)".
type InExpr struct {
	X      Expr
	Not    bool
	List   []Expr
	Select *SelectStmt
}

func (*InExpr) node() {}
func (*InExpr) expr() {}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Not    bool
	Select *SelectStmt
}

func (*ExistsExpr) node() {}
func (*ExistsExpr) expr() {}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

func (*BetweenExpr) node() {}
func (*BetweenExpr) expr() {}

// LikeExpr is "x [NOT] LIKE pattern".
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

func (*LikeExpr) node() {}
func (*LikeExpr) expr() {}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) node() {}
func (*IsNullExpr) expr() {}

// WhenClause is one WHEN ... THEN ... arm of a CASE expression.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched or simple CASE expression.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

func (*CaseExpr) node() {}
func (*CaseExpr) expr() {}

// SubqueryExpr is a scalar subquery used in expression position.
type SubqueryExpr struct{ Select *SelectStmt }

func (*SubqueryExpr) node() {}
func (*SubqueryExpr) expr() {}

// Visitor receives every node during a Walk traversal. Returning false
// stops descent into the node's children.
type Visitor func(Node) bool

// Walk traverses the AST in depth-first pre-order.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch x := n.(type) {
	case *SelectStmt:
		if x.Top != nil {
			Walk(x.Top.Count, v)
		}
		for _, it := range x.Columns {
			Walk(it.Expr, v)
		}
		if x.Into != nil {
			Walk(x.Into, v)
		}
		for _, te := range x.From {
			Walk(te, v)
		}
		Walk(x.Where, v)
		for _, g := range x.GroupBy {
			Walk(g, v)
		}
		Walk(x.Having, v)
		for _, o := range x.OrderBy {
			Walk(o.Expr, v)
		}
		if x.SetOp != nil {
			Walk(x.SetOp.Right, v)
		}
	case *SubqueryRef:
		Walk(x.Select, v)
	case *JoinExpr:
		Walk(x.Left, v)
		Walk(x.Right, v)
		Walk(x.On, v)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *CastExpr:
		Walk(x.Expr, v)
	case *BinaryExpr:
		Walk(x.L, v)
		Walk(x.R, v)
	case *UnaryExpr:
		Walk(x.X, v)
	case *ParenExpr:
		Walk(x.X, v)
	case *InExpr:
		Walk(x.X, v)
		for _, e := range x.List {
			Walk(e, v)
		}
		if x.Select != nil {
			Walk(x.Select, v)
		}
	case *ExistsExpr:
		Walk(x.Select, v)
	case *BetweenExpr:
		Walk(x.X, v)
		Walk(x.Lo, v)
		Walk(x.Hi, v)
	case *LikeExpr:
		Walk(x.X, v)
		Walk(x.Pattern, v)
	case *IsNullExpr:
		Walk(x.X, v)
	case *CaseExpr:
		Walk(x.Operand, v)
		for _, w := range x.Whens {
			Walk(w.Cond, v)
			Walk(w.Then, v)
		}
		Walk(x.Else, v)
	case *SubqueryExpr:
		Walk(x.Select, v)
	case *TableRef, *ColumnRef, *Star, *NumberLit, *StringLit, *NullLit:
		// leaves
	}
}
