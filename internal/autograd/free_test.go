package autograd

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestFreeReturnsToPool: freeing a graph must return its intermediate
// tensors to the shared arena (Puts advance by at least the number of
// non-leaf nodes) while leaving leaf parameters untouched.
func TestFreeReturnsToPool(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewParam(randT(rng, 4, 4))
	x := NewConst(randT(rng, 3, 4))
	wData := append([]float64(nil), w.T.Data...)

	h := Tanh(MatMul(x, w))
	loss := Mean(Mul(h, h))
	Backward(loss)
	grad := append([]float64(nil), w.Grad.Data...)

	before := tensor.Shared.Stats()
	Free(loss)
	after := tensor.Shared.Stats()

	// MatMul, Tanh, Mul, Mean each contribute at least a T tensor; their
	// grads and the leaf x's grad-free tensor stay out of the count only
	// when absent. We just need evidence recycling happened.
	if after.Puts < before.Puts+4 {
		t.Fatalf("Free returned %d tensors, want >= 4", after.Puts-before.Puts)
	}
	for i, v := range w.T.Data {
		if v != wData[i] {
			t.Fatalf("leaf weight mutated at %d", i)
		}
	}
	for i, v := range w.Grad.Data {
		if v != grad[i] {
			t.Fatalf("leaf grad clobbered at %d", i)
		}
	}
}

// TestFreeKeepsSubgraph mirrors the decode loop: the encoder output is
// kept alive across repeated decode-and-free cycles and must stay usable
// (its tensor not recycled out from under later steps).
func TestFreeKeepsSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewParam(randT(rng, 4, 4))
	x := NewConst(randT(rng, 3, 4))

	enc := Tanh(MatMul(x, w)) // shared "encoder" subgraph
	encData := append([]float64(nil), enc.T.Data...)

	for step := 0; step < 5; step++ {
		logits := MatMul(enc, w)
		Free(logits, enc)
		for i, v := range enc.T.Data {
			if v != encData[i] {
				t.Fatalf("step %d: kept subgraph mutated at %d", step, i)
			}
		}
	}
	Free(enc)
}

// TestFreeDiamond: a node reachable along two paths must be recycled
// exactly once (double-Put would poison the arena).
func TestFreeDiamond(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewParam(randT(rng, 4, 4))
	x := NewConst(randT(rng, 4, 4))

	shared := MatMul(x, w)
	loss := Mean(Add(shared, Scale(shared, 2)))
	Backward(loss)
	Free(loss)

	// If the shared node had been double-freed, the arena could hand the
	// same backing slice to two users; build two fresh graphs and check
	// they stay independent.
	a := Tanh(MatMul(x, w))
	b := Sigmoid(MatMul(x, w))
	aData := append([]float64(nil), a.T.Data...)
	_ = b.T.Data[0]
	for i, v := range a.T.Data {
		if v != aData[i] {
			t.Fatalf("arena aliasing after diamond free at %d", i)
		}
	}
	Free(a)
	Free(b)
}

func randT(rng *rand.Rand, r, c int) *tensor.Tensor {
	tt := tensor.New(r, c)
	for i := range tt.Data {
		tt.Data[i] = rng.NormFloat64()
	}
	return tt
}

// BenchmarkMatMulNodeBackward measures the op-level steady state the
// tentpole targets: forward + backward + Free of a MatMul node should
// run allocation-free once the arena is warm (no per-node Transpose
// materialization, no per-node grad allocations).
func BenchmarkMatMulNodeBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	w := NewParam(randT(rng, 32, 32))
	x := NewConst(randT(rng, 16, 32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss := Mean(MatMul(x, w))
		Backward(loss)
		w.Grad.Zero()
		Free(loss)
	}
}
