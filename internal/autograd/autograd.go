// Package autograd implements tape-free reverse-mode automatic
// differentiation over tensor.Tensor values. Each operation builds a node
// recording its opcode and operands; Backward topologically sorts the
// graph from the loss and runs each node's backward rule.
//
// The API is sized exactly for the paper's models: matmul, broadcast adds,
// elementwise nonlinearities, softmax/log-softmax, layer normalization,
// embedding gather, column slicing/concat (multi-head attention), im2col
// (ConvS2S), GLU, dropout and cross-entropy.
//
// The implementation is allocation-conscious: node outputs, gradients and
// op scratch come from the shared tensor pool, node structs from a
// freelist, and Free returns a finished graph to both — so a steady-state
// training step or decode step allocates almost nothing. Backward rules
// for matmul and transpose run on the transpose-free kernels
// (tensor.MatMulATInto / MatMulBTInto), so no backward pass ever
// materializes a transposed copy.
package autograd

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// opcode identifies a node's operation; backward() dispatches on it.
type opcode uint8

const (
	opLeaf opcode = iota // parameter or constant; no backward
	opMatMul
	opAdd
	opAddRow
	opAddConst // + caller-owned constant tensor (masks, positional rows)
	opMul
	opScale
	opReLU
	opGELU
	opTanh
	opSigmoid
	opSoftmaxRows
	opLayerNorm
	opEmbedding
	opSliceCols
	opConcatCols
	opConcatRows
	opTranspose
	opGatherRows
	opReshape
	opDropout
	opMean
	opCrossEntropy
)

// Value is a node in the computation graph.
type Value struct {
	T    *tensor.Tensor
	Grad *tensor.Tensor

	requiresGrad bool
	op           opcode
	nprev        uint8
	naux         uint8
	prev         [3]*Value          // fixed-arity operands
	extra        []*Value           // variadic operands (concat)
	ints         []int              // token ids / gather indices / targets
	k1, k2       int                // op integers (slice bounds, counts)
	f1           float64            // op scalar (scale factor)
	aux          [2]*tensor.Tensor // pool-owned scratch freed with the node
	seen         uint64             // visit generation for Backward/Free
}

// visitGen hands out a fresh generation per Backward/Free walk, so visit
// marks never need resetting and disjoint graphs can be walked from
// different goroutines concurrently.
var visitGen atomic.Uint64

// valuePool recycles node structs between graphs.
var valuePool = sync.Pool{New: func() any { return new(Value) }}

// NewParam wraps a tensor as a trainable parameter (gradient tracked).
// Parameter values are long-lived and never returned to the pools.
func NewParam(t *tensor.Tensor) *Value {
	return &Value{T: t, Grad: tensor.New(t.Rows, t.Cols), requiresGrad: true}
}

// NewConst wraps a tensor as a constant (no gradient).
func NewConst(t *tensor.Tensor) *Value {
	return &Value{T: t}
}

// RequiresGrad reports whether gradients flow into this value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// newNode builds an op output whose gradient requirement is inherited
// from its operands. t must be pool-owned (Free returns it).
func newNode(op opcode, t *tensor.Tensor, a, b, c *Value) *Value {
	v := valuePool.Get().(*Value)
	v.T = t
	v.op = op
	v.prev[0], v.prev[1], v.prev[2] = a, b, c
	switch {
	case c != nil:
		v.nprev = 3
	case b != nil:
		v.nprev = 2
	case a != nil:
		v.nprev = 1
	default:
		v.nprev = 0
	}
	req := false
	for i := 0; i < int(v.nprev); i++ {
		if v.prev[i].requiresGrad {
			req = true
			break
		}
	}
	v.requiresGrad = req
	if req {
		v.Grad = tensor.Shared.Get(t.Rows, t.Cols)
	}
	return v
}

// addAux registers a pool-owned scratch tensor freed with the node.
func (v *Value) addAux(t *tensor.Tensor) {
	v.aux[v.naux] = t
	v.naux++
}

// Backward runs reverse-mode differentiation from v, which must be 1×1
// (a scalar loss). Gradients accumulate into every reachable parameter.
func Backward(v *Value) {
	if v.T.Rows != 1 || v.T.Cols != 1 {
		panic(fmt.Sprintf("autograd: backward from non-scalar %dx%d", v.T.Rows, v.T.Cols))
	}
	if !v.requiresGrad {
		return
	}
	gen := visitGen.Add(1)
	order := make([]*Value, 0, 128)
	var visit func(*Value)
	visit = func(n *Value) {
		if n.seen == gen || !n.requiresGrad {
			return
		}
		n.seen = gen
		for i := 0; i < int(n.nprev); i++ {
			visit(n.prev[i])
		}
		for _, p := range n.extra {
			visit(p)
		}
		order = append(order, n)
	}
	visit(v)
	v.Grad.Data[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].op != opLeaf {
			order[i].backward()
		}
	}
}

// Free returns every op node in the graph rooted at v — output tensors,
// gradient buffers, scratch, and the node structs themselves — to the
// shared pools. Leaves (parameters, constants) are untouched. Nodes listed
// in keep are skipped along with everything only reachable through them
// (e.g. keep a decoder's encoder output while freeing the per-step decode
// graph). The caller must not use v, or anything freed with it, afterward.
func Free(v *Value, keep ...*Value) {
	if v == nil {
		return
	}
	gen := visitGen.Add(1)
	nodes := make([]*Value, 0, 128)
	var visit func(*Value)
	visit = func(n *Value) {
		if n == nil || n.seen == gen || n.op == opLeaf {
			return
		}
		for _, k := range keep {
			if n == k {
				return
			}
		}
		n.seen = gen
		for i := 0; i < int(n.nprev); i++ {
			visit(n.prev[i])
		}
		for _, p := range n.extra {
			visit(p)
		}
		nodes = append(nodes, n)
	}
	visit(v)
	// Recycle only after the walk is complete: the moment a node struct is
	// returned to the pool, another goroutine may claim and rewrite it, so
	// no graph pointer (a diamond's second edge, say) may be followed once
	// its target has been recycled.
	for _, n := range nodes {
		tensor.Shared.Put(n.T)
		if n.Grad != nil {
			tensor.Shared.Put(n.Grad)
		}
		for i := 0; i < int(n.naux); i++ {
			tensor.Shared.Put(n.aux[i])
		}
		n.recycle()
	}
}

// recycle clears pointers and returns the node struct to the freelist.
// extra keeps its capacity for the next variadic op; seen stays (the
// generation counter is monotonic, so stale marks can never collide).
func (n *Value) recycle() {
	n.T, n.Grad = nil, nil
	n.prev = [3]*Value{}
	n.extra = n.extra[:0]
	n.ints = nil
	n.aux = [2]*tensor.Tensor{}
	n.op = opLeaf
	n.nprev, n.naux = 0, 0
	n.k1, n.k2 = 0, 0
	n.f1 = 0
	n.requiresGrad = false
	valuePool.Put(n)
}

// ZeroGrad clears the gradient buffer.
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// backward applies one node's gradient rule. Where a rule is row-separable
// over large outputs (softmax, cross-entropy) it fans out with
// ParallelRange; every row is owned by one worker, so results are
// bit-identical for any GOMAXPROCS.
func (v *Value) backward() {
	g := v.Grad
	switch v.op {
	case opMatMul:
		a, b := v.prev[0], v.prev[1]
		if a.requiresGrad {
			// dA += dOut @ Bᵀ, transpose-free.
			tensor.MatMulBTInto(a.Grad, g, b.T, true)
		}
		if b.requiresGrad {
			// dB += Aᵀ @ dOut, transpose-free.
			tensor.MatMulATInto(b.Grad, a.T, g, true)
		}

	case opAdd:
		a, b := v.prev[0], v.prev[1]
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, g)
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.Grad, g)
		}

	case opAddRow:
		a, b := v.prev[0], v.prev[1]
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, g)
		}
		if b.requiresGrad {
			for i := 0; i < g.Rows; i++ {
				row := g.Row(i)
				for j, gv := range row {
					b.Grad.Data[j] += gv
				}
			}
		}

	case opAddConst, opReshape:
		a := v.prev[0]
		if a.requiresGrad {
			for i, gv := range g.Data {
				a.Grad.Data[i] += gv
			}
		}

	case opMul:
		a, b := v.prev[0], v.prev[1]
		if a.requiresGrad {
			for i, gv := range g.Data {
				a.Grad.Data[i] += gv * b.T.Data[i]
			}
		}
		if b.requiresGrad {
			for i, gv := range g.Data {
				b.Grad.Data[i] += gv * a.T.Data[i]
			}
		}

	case opScale:
		a := v.prev[0]
		if a.requiresGrad {
			s := v.f1
			for i, gv := range g.Data {
				a.Grad.Data[i] += gv * s
			}
		}

	case opReLU:
		a := v.prev[0]
		if a.requiresGrad {
			for i, x := range a.T.Data {
				if x > 0 {
					a.Grad.Data[i] += g.Data[i]
				}
			}
		}

	case opGELU:
		a := v.prev[0]
		if a.requiresGrad {
			const c = 0.7978845608028654 // sqrt(2/pi)
			for i, x := range a.T.Data {
				u := c * (x + 0.044715*x*x*x)
				t := math.Tanh(u)
				du := c * (1 + 3*0.044715*x*x)
				grad := 0.5*(1+t) + 0.5*x*(1-t*t)*du
				a.Grad.Data[i] += g.Data[i] * grad
			}
		}

	case opTanh:
		a := v.prev[0]
		if a.requiresGrad {
			for i, y := range v.T.Data {
				a.Grad.Data[i] += g.Data[i] * (1 - y*y)
			}
		}

	case opSigmoid:
		a := v.prev[0]
		if a.requiresGrad {
			for i, y := range v.T.Data {
				a.Grad.Data[i] += g.Data[i] * y * (1 - y)
			}
		}

	case opSoftmaxRows:
		a := v.prev[0]
		if a.requiresGrad {
			// dx_i = y_i * (g_i - sum_j g_j y_j) per row.
			cols := v.T.Cols
			tensor.ParallelRange(v.T.Rows, 4096/(cols+1)+1, func(lo, hi int) {
				for r := lo; r < hi; r++ {
					y, gr, dst := v.T.Row(r), g.Row(r), a.Grad.Row(r)
					dot := 0.0
					for j := range y {
						dot += gr[j] * y[j]
					}
					for j := range y {
						dst[j] += y[j] * (gr[j] - dot)
					}
				}
			})
		}

	case opLayerNorm:
		a, gain, bias := v.prev[0], v.prev[1], v.prev[2]
		xhat, invStd := v.aux[0], v.aux[1]
		rows, cols := v.T.Rows, v.T.Cols
		for r := 0; r < rows; r++ {
			gr := g.Row(r)
			xh := xhat.Row(r)
			if gain.requiresGrad {
				for j := range gr {
					gain.Grad.Data[j] += gr[j] * xh[j]
					bias.Grad.Data[j] += gr[j]
				}
			}
			if a.requiresGrad {
				// dxhat_j = g_j * gain_j
				// dx = (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)) * invStd
				m1, m2 := 0.0, 0.0
				for j := range gr {
					dxh := gr[j] * gain.T.Data[j]
					m1 += dxh
					m2 += dxh * xh[j]
				}
				m1 /= float64(cols)
				m2 /= float64(cols)
				dst := a.Grad.Row(r)
				inv := invStd.Data[r]
				for j := range gr {
					dxh := gr[j] * gain.T.Data[j]
					dst[j] += (dxh - m1 - xh[j]*m2) * inv
				}
			}
		}

	case opEmbedding:
		w := v.prev[0]
		if w.requiresGrad {
			for i, id := range v.ints {
				dst := w.Grad.Row(id)
				src := g.Row(i)
				for j, gv := range src {
					dst[j] += gv
				}
			}
		}

	case opSliceCols:
		a := v.prev[0]
		if a.requiresGrad {
			from, to := v.k1, v.k2
			for i := 0; i < a.T.Rows; i++ {
				dst := a.Grad.Row(i)[from:to]
				for j, gv := range g.Row(i) {
					dst[j] += gv
				}
			}
		}

	case opConcatCols:
		off := 0
		for _, p := range v.extra {
			if p.requiresGrad {
				for i := 0; i < v.T.Rows; i++ {
					src := g.Row(i)[off : off+p.T.Cols]
					dst := p.Grad.Row(i)
					for j, gv := range src {
						dst[j] += gv
					}
				}
			}
			off += p.T.Cols
		}

	case opConcatRows:
		off := 0
		for _, p := range v.extra {
			if p.requiresGrad {
				for i := 0; i < p.T.Rows; i++ {
					src := g.Row(off + i)
					dst := p.Grad.Row(i)
					for j, gv := range src {
						dst[j] += gv
					}
				}
			}
			off += p.T.Rows
		}

	case opTranspose:
		a := v.prev[0]
		if a.requiresGrad {
			// dA += dOutᵀ without materializing the transpose.
			tensor.TransposeInto(a.Grad, g, true)
		}

	case opGatherRows:
		a := v.prev[0]
		if a.requiresGrad {
			for i, r := range v.ints {
				dst := a.Grad.Row(r)
				for j, gv := range g.Row(i) {
					dst[j] += gv
				}
			}
		}

	case opDropout:
		a := v.prev[0]
		if a.requiresGrad {
			mask := v.aux[0]
			for i, gv := range g.Data {
				a.Grad.Data[i] += gv * mask.Data[i]
			}
		}

	case opMean:
		a := v.prev[0]
		if a.requiresGrad {
			gv := g.Data[0] / float64(len(a.T.Data))
			for i := range a.Grad.Data {
				a.Grad.Data[i] += gv
			}
		}

	case opCrossEntropy:
		logits := v.prev[0]
		if logits.requiresGrad {
			probs := v.aux[0]
			targets := v.ints
			scale := g.Data[0] / float64(v.k2)
			vocab := logits.T.Cols
			ignore := v.k1
			tensor.ParallelRange(len(targets), 4096/(vocab+1)+1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					t := targets[i]
					if t == ignore {
						continue
					}
					dst := logits.Grad.Row(i)
					src := probs.Row(i)
					for j := range dst {
						gv := src[j]
						if j == t {
							gv -= 1
						}
						dst[j] += gv * scale
					}
				}
			})
		}

	default:
		panic(fmt.Sprintf("autograd: backward on op %d", v.op))
	}
}

// MatMul returns a @ b.
func MatMul(a, b *Value) *Value {
	if a.T.Cols != b.T.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d @ %dx%d", a.T.Rows, a.T.Cols, b.T.Rows, b.T.Cols))
	}
	out := tensor.Shared.Get(a.T.Rows, b.T.Cols)
	tensor.MatMulInto(out, a.T, b.T, false)
	return newNode(opMatMul, out, a, b, nil)
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	mustSameShape("add", a, b)
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = x + b.T.Data[i]
	}
	return newNode(opAdd, out, a, b, nil)
}

// AddRow broadcasts the 1×cols row b onto every row of a.
func AddRow(a, b *Value) *Value {
	if b.T.Rows != 1 || b.T.Cols != a.T.Cols {
		panic(fmt.Sprintf("tensor: broadcast shape %dx%d onto %dx%d", b.T.Rows, b.T.Cols, a.T.Rows, a.T.Cols))
	}
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i := 0; i < a.T.Rows; i++ {
		src, dst := a.T.Row(i), out.Row(i)
		for j, bv := range b.T.Data {
			dst[j] = src[j] + bv
		}
	}
	return newNode(opAddRow, out, a, b, nil)
}

// AddConst returns a + t for a caller-owned constant tensor of the same
// shape (attention masks). The gradient passes through to a untouched, so
// t may be reused or returned to a pool as soon as this call returns.
func AddConst(a *Value, t *tensor.Tensor) *Value {
	mustSameTensor("add-const", a.T, t)
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = x + t.Data[i]
	}
	return newNode(opAddConst, out, a, nil, nil)
}

// AddTableRows adds rows [offset, offset+n) of the caller-owned table to
// the n rows of a (sinusoidal positional encodings) without materializing
// the slice as a graph constant. Gradient passes through to a.
func AddTableRows(a *Value, table *tensor.Tensor, offset int) *Value {
	n := a.T.Rows
	if table.Cols != a.T.Cols || offset < 0 || offset+n > table.Rows {
		panic(fmt.Sprintf("autograd: add-table rows [%d,%d) of %dx%d onto %dx%d",
			offset, offset+n, table.Rows, table.Cols, n, a.T.Cols))
	}
	out := tensor.Shared.Get(n, a.T.Cols)
	for i := 0; i < n; i++ {
		src, trow, dst := a.T.Row(i), table.Row(offset+i), out.Row(i)
		for j := range dst {
			dst[j] = src[j] + trow[j]
		}
	}
	return newNode(opAddConst, out, a, nil, nil)
}

// Mul returns the elementwise product.
func Mul(a, b *Value) *Value {
	mustSameShape("mul", a, b)
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = x * b.T.Data[i]
	}
	return newNode(opMul, out, a, b, nil)
}

// Scale returns a * s for scalar s.
func Scale(a *Value, s float64) *Value {
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = x * s
	}
	v := newNode(opScale, out, a, nil, nil)
	v.f1 = s
	return v
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Value) *Value {
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		if x > 0 {
			out.Data[i] = x
		}
	}
	return newNode(opReLU, out, a, nil, nil)
}

// GELU applies the tanh-approximated Gaussian error linear unit.
func GELU(a *Value) *Value {
	const c = 0.7978845608028654 // sqrt(2/pi)
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	return newNode(opGELU, out, a, nil, nil)
}

// Tanh applies tanh elementwise.
func Tanh(a *Value) *Value {
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = math.Tanh(x)
	}
	return newNode(opTanh, out, a, nil, nil)
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Value) *Value {
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = 1 / (1 + math.Exp(-x))
	}
	return newNode(opSigmoid, out, a, nil, nil)
}

// SoftmaxRows applies a row-wise softmax.
func SoftmaxRows(a *Value) *Value {
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	tensor.SoftmaxRowsInto(out, a.T)
	return newNode(opSoftmaxRows, out, a, nil, nil)
}

// LayerNorm normalizes each row to zero mean / unit variance then applies
// the learned 1×cols gain and bias.
func LayerNorm(a, gain, bias *Value, eps float64) *Value {
	rows, cols := a.T.Rows, a.T.Cols
	out := tensor.Shared.Get(rows, cols)
	xhat := tensor.Shared.Get(rows, cols)
	invStd := tensor.Shared.Get(1, rows)
	for r := 0; r < rows; r++ {
		src := a.T.Row(r)
		mean := 0.0
		for _, x := range src {
			mean += x
		}
		mean /= float64(cols)
		variance := 0.0
		for _, x := range src {
			d := x - mean
			variance += d * d
		}
		variance /= float64(cols)
		inv := 1 / math.Sqrt(variance+eps)
		invStd.Data[r] = inv
		xh, dst := xhat.Row(r), out.Row(r)
		for j, x := range src {
			xh[j] = (x - mean) * inv
			dst[j] = xh[j]*gain.T.Data[j] + bias.T.Data[j]
		}
	}
	v := newNode(opLayerNorm, out, a, gain, bias)
	v.addAux(xhat)
	v.addAux(invStd)
	return v
}

// Embedding gathers rows of the v×d table W for the given token ids,
// producing len(ids)×d. The backward pass scatter-adds. ids is retained by
// the node and must not be mutated until the graph is done.
func Embedding(w *Value, ids []int) *Value {
	d := w.T.Cols
	out := tensor.Shared.Get(len(ids), d)
	for i, id := range ids {
		copy(out.Row(i), w.T.Row(id))
	}
	v := newNode(opEmbedding, out, w, nil, nil)
	v.ints = ids
	return v
}

// SliceCols returns columns [from, to) as a new value.
func SliceCols(a *Value, from, to int) *Value {
	cols := to - from
	out := tensor.Shared.Get(a.T.Rows, cols)
	for i := 0; i < a.T.Rows; i++ {
		copy(out.Row(i), a.T.Row(i)[from:to])
	}
	v := newNode(opSliceCols, out, a, nil, nil)
	v.k1, v.k2 = from, to
	return v
}

// newVariadic builds a concat node over parts.
func newVariadic(op opcode, t *tensor.Tensor, parts []*Value) *Value {
	v := valuePool.Get().(*Value)
	v.T = t
	v.op = op
	v.nprev = 0
	v.extra = append(v.extra[:0], parts...)
	req := false
	for _, p := range parts {
		if p.requiresGrad {
			req = true
			break
		}
	}
	v.requiresGrad = req
	if req {
		v.Grad = tensor.Shared.Get(t.Rows, t.Cols)
	}
	return v
}

// ConcatCols concatenates values with equal row counts along columns.
func ConcatCols(parts ...*Value) *Value {
	rows := parts[0].T.Rows
	total := 0
	for _, p := range parts {
		if p.T.Rows != rows {
			panic("autograd: concat rows mismatch")
		}
		total += p.T.Cols
	}
	out := tensor.Shared.Get(rows, total)
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(out.Row(i)[off:off+p.T.Cols], p.T.Row(i))
		}
		off += p.T.Cols
	}
	return newVariadic(opConcatCols, out, parts)
}

// ConcatRows concatenates values with equal column counts along rows.
func ConcatRows(parts ...*Value) *Value {
	cols := parts[0].T.Cols
	total := 0
	for _, p := range parts {
		if p.T.Cols != cols {
			panic("autograd: concat cols mismatch")
		}
		total += p.T.Rows
	}
	out := tensor.Shared.Get(total, cols)
	off := 0
	for _, p := range parts {
		for i := 0; i < p.T.Rows; i++ {
			copy(out.Row(off+i), p.T.Row(i))
		}
		off += p.T.Rows
	}
	return newVariadic(opConcatRows, out, parts)
}

// TransposeV returns aᵀ with gradient support.
func TransposeV(a *Value) *Value {
	out := tensor.Shared.Get(a.T.Cols, a.T.Rows)
	tensor.TransposeInto(out, a.T, false)
	return newNode(opTranspose, out, a, nil, nil)
}

// GatherRows selects rows of a by index (duplicates allowed); backward
// scatter-adds. It powers im2col for the convolutional encoder. idx is
// retained by the node and must not be mutated until the graph is done.
func GatherRows(a *Value, idx []int) *Value {
	out := tensor.Shared.Get(len(idx), a.T.Cols)
	for i, r := range idx {
		copy(out.Row(i), a.T.Row(r))
	}
	v := newNode(opGatherRows, out, a, nil, nil)
	v.ints = idx
	return v
}

// Reshape reinterprets the value with a new shape of equal size.
func Reshape(a *Value, rows, cols int) *Value {
	if rows*cols != a.T.Rows*a.T.Cols {
		panic(fmt.Sprintf("autograd: reshape %dx%d -> %dx%d", a.T.Rows, a.T.Cols, rows, cols))
	}
	out := tensor.Shared.Get(rows, cols)
	copy(out.Data, a.T.Data)
	return newNode(opReshape, out, a, nil, nil)
}

// GLU is the gated linear unit: split columns in half, out = a1 ⊙ σ(a2).
func GLU(a *Value) *Value {
	if a.T.Cols%2 != 0 {
		panic("autograd: GLU needs even columns")
	}
	half := a.T.Cols / 2
	lin := SliceCols(a, 0, half)
	gate := Sigmoid(SliceCols(a, half, a.T.Cols))
	return Mul(lin, gate)
}

// Dropout zeroes elements with probability p during training, scaling the
// survivors by 1/(1-p). With train=false or p=0 it is the identity.
func Dropout(a *Value, p float64, rng *rand.Rand, train bool) *Value {
	if !train || p <= 0 {
		return a
	}
	keep := 1 - p
	mask := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i := range mask.Data {
		if rng.Float64() < keep {
			mask.Data[i] = 1 / keep
		}
	}
	out := tensor.Shared.Get(a.T.Rows, a.T.Cols)
	for i, x := range a.T.Data {
		out.Data[i] = x * mask.Data[i]
	}
	v := newNode(opDropout, out, a, nil, nil)
	v.addAux(mask)
	return v
}

// Mean returns the scalar mean of all elements.
func Mean(a *Value) *Value {
	n := float64(len(a.T.Data))
	out := tensor.Shared.Get(1, 1)
	out.Data[0] = a.T.Sum() / n
	return newNode(opMean, out, a, nil, nil)
}

// CrossEntropy computes the mean token-level cross-entropy between logits
// (n×v) and target class ids (len n). Targets equal to ignore are skipped
// (padding). Returns a scalar. targets is retained by the node and must
// not be mutated until the graph is done.
func CrossEntropy(logits *Value, targets []int, ignore int) *Value {
	n, vocab := logits.T.Rows, logits.T.Cols
	if len(targets) != n {
		panic(fmt.Sprintf("autograd: cross-entropy %d logits vs %d targets", n, len(targets)))
	}
	probs := tensor.Shared.Get(n, vocab)
	tensor.SoftmaxRowsInto(probs, logits.T)
	loss := 0.0
	count := 0
	for i, t := range targets {
		if t == ignore {
			continue
		}
		if t < 0 || t >= vocab {
			panic(fmt.Sprintf("autograd: target %d out of vocab %d", t, vocab))
		}
		p := probs.At(i, t)
		loss -= math.Log(math.Max(p, 1e-12))
		count++
	}
	if count == 0 {
		count = 1
	}
	out := tensor.Shared.Get(1, 1)
	out.Data[0] = loss / float64(count)
	v := newNode(opCrossEntropy, out, logits, nil, nil)
	v.ints = targets
	v.k1, v.k2 = ignore, count
	v.addAux(probs)
	return v
}

// Parameters walks the graph from v and returns all parameter leaves
// (values created by NewParam). Used by tests; models track their own
// parameter lists.
func Parameters(v *Value) []*Value {
	var out []*Value
	seen := map[*Value]bool{}
	var visit func(*Value)
	visit = func(n *Value) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.op == opLeaf && n.nprev == 0 && len(n.extra) == 0 && n.requiresGrad {
			out = append(out, n)
		}
		for i := 0; i < int(n.nprev); i++ {
			visit(n.prev[i])
		}
		for _, p := range n.extra {
			visit(p)
		}
	}
	visit(v)
	return out
}

func mustSameShape(op string, a, b *Value) {
	if a.T.Rows != b.T.Rows || a.T.Cols != b.T.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.T.Rows, a.T.Cols, b.T.Rows, b.T.Cols))
	}
}

func mustSameTensor(op string, a, b *tensor.Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
