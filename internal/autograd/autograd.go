// Package autograd implements tape-free reverse-mode automatic
// differentiation over tensor.Tensor values. Each operation builds a node
// holding its inputs and a backward closure; Backward topologically sorts
// the graph from the loss and accumulates gradients.
//
// The API is sized exactly for the paper's models: matmul, broadcast adds,
// elementwise nonlinearities, softmax/log-softmax, layer normalization,
// embedding gather, column slicing/concat (multi-head attention), im2col
// (ConvS2S), GLU, dropout and cross-entropy.
package autograd

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Value is a node in the computation graph.
type Value struct {
	T    *tensor.Tensor
	Grad *tensor.Tensor

	requiresGrad bool
	back         func()
	prev         []*Value
}

// NewParam wraps a tensor as a trainable parameter (gradient tracked).
func NewParam(t *tensor.Tensor) *Value {
	return &Value{T: t, Grad: tensor.New(t.Rows, t.Cols), requiresGrad: true}
}

// NewConst wraps a tensor as a constant (no gradient).
func NewConst(t *tensor.Tensor) *Value {
	return &Value{T: t}
}

// RequiresGrad reports whether gradients flow into this value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// node builds an op output whose gradient requirement is inherited from
// its inputs.
func node(t *tensor.Tensor, back func(), prev ...*Value) *Value {
	req := false
	for _, p := range prev {
		if p.requiresGrad {
			req = true
			break
		}
	}
	v := &Value{T: t, prev: prev, requiresGrad: req}
	if req {
		v.Grad = tensor.New(t.Rows, t.Cols)
		v.back = back
	}
	return v
}

// Backward runs reverse-mode differentiation from v, which must be 1×1
// (a scalar loss). Gradients accumulate into every reachable parameter.
func Backward(v *Value) {
	if v.T.Rows != 1 || v.T.Cols != 1 {
		panic(fmt.Sprintf("autograd: backward from non-scalar %dx%d", v.T.Rows, v.T.Cols))
	}
	if !v.requiresGrad {
		return
	}
	// Topological order via DFS.
	var order []*Value
	seen := map[*Value]bool{}
	var visit func(*Value)
	visit = func(n *Value) {
		if seen[n] || !n.requiresGrad {
			return
		}
		seen[n] = true
		for _, p := range n.prev {
			visit(p)
		}
		order = append(order, n)
	}
	visit(v)
	v.Grad.Data[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].back != nil {
			order[i].back()
		}
	}
}

// ZeroGrad clears the gradient buffer.
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// MatMul returns a @ b.
func MatMul(a, b *Value) *Value {
	out := tensor.MatMul(a.T, b.T)
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			// dA = dOut @ Bᵀ
			tensor.MatMulInto(a.Grad, v.Grad, tensor.Transpose(b.T), true)
		}
		if b.requiresGrad {
			// dB = Aᵀ @ dOut
			tensor.MatMulInto(b.Grad, tensor.Transpose(a.T), v.Grad, true)
		}
	}, a, b)
	return v
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	out := tensor.Add(a.T, b.T)
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, v.Grad)
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.Grad, v.Grad)
		}
	}, a, b)
	return v
}

// AddRow broadcasts the 1×cols row b onto every row of a.
func AddRow(a, b *Value) *Value {
	out := tensor.AddRowBroadcast(a.T, b.T)
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, v.Grad)
		}
		if b.requiresGrad {
			for i := 0; i < v.Grad.Rows; i++ {
				row := v.Grad.Row(i)
				for j, g := range row {
					b.Grad.Data[j] += g
				}
			}
		}
	}, a, b)
	return v
}

// Mul returns the elementwise product.
func Mul(a, b *Value) *Value {
	out := tensor.Mul(a.T, b.T)
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, tensor.Mul(v.Grad, b.T))
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.Grad, tensor.Mul(v.Grad, a.T))
		}
	}, a, b)
	return v
}

// Scale returns a * s for scalar s.
func Scale(a *Value, s float64) *Value {
	out := tensor.Scale(a.T, s)
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, tensor.Scale(v.Grad, s))
		}
	}, a)
	return v
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Value) *Value {
	out := a.T.Clone()
	for i, x := range out.Data {
		if x < 0 {
			out.Data[i] = 0
		}
	}
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			for i, x := range a.T.Data {
				if x > 0 {
					a.Grad.Data[i] += v.Grad.Data[i]
				}
			}
		}
	}, a)
	return v
}

// GELU applies the tanh-approximated Gaussian error linear unit.
func GELU(a *Value) *Value {
	const c = 0.7978845608028654 // sqrt(2/pi)
	out := a.T.Clone()
	for i, x := range a.T.Data {
		out.Data[i] = 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	var v *Value
	v = node(out, func() {
		if !a.requiresGrad {
			return
		}
		for i, x := range a.T.Data {
			u := c * (x + 0.044715*x*x*x)
			t := math.Tanh(u)
			du := c * (1 + 3*0.044715*x*x)
			grad := 0.5*(1+t) + 0.5*x*(1-t*t)*du
			a.Grad.Data[i] += v.Grad.Data[i] * grad
		}
	}, a)
	return v
}

// Tanh applies tanh elementwise.
func Tanh(a *Value) *Value {
	out := a.T.Clone()
	for i, x := range out.Data {
		out.Data[i] = math.Tanh(x)
	}
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			for i, y := range v.T.Data {
				a.Grad.Data[i] += v.Grad.Data[i] * (1 - y*y)
			}
		}
	}, a)
	return v
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Value) *Value {
	out := a.T.Clone()
	for i, x := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-x))
	}
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			for i, y := range v.T.Data {
				a.Grad.Data[i] += v.Grad.Data[i] * y * (1 - y)
			}
		}
	}, a)
	return v
}

// SoftmaxRows applies a row-wise softmax.
func SoftmaxRows(a *Value) *Value {
	out := tensor.SoftmaxRows(a.T)
	var v *Value
	v = node(out, func() {
		if !a.requiresGrad {
			return
		}
		// dx_i = y_i * (g_i - sum_j g_j y_j) per row.
		for r := 0; r < out.Rows; r++ {
			y, g, dst := v.T.Row(r), v.Grad.Row(r), a.Grad.Row(r)
			dot := 0.0
			for j := range y {
				dot += g[j] * y[j]
			}
			for j := range y {
				dst[j] += y[j] * (g[j] - dot)
			}
		}
	}, a)
	return v
}

// LayerNorm normalizes each row to zero mean / unit variance then applies
// the learned 1×cols gain and bias.
func LayerNorm(a, gain, bias *Value, eps float64) *Value {
	rows, cols := a.T.Rows, a.T.Cols
	out := tensor.New(rows, cols)
	xhat := tensor.New(rows, cols)
	invStd := make([]float64, rows)
	for r := 0; r < rows; r++ {
		src := a.T.Row(r)
		mean := 0.0
		for _, x := range src {
			mean += x
		}
		mean /= float64(cols)
		variance := 0.0
		for _, x := range src {
			d := x - mean
			variance += d * d
		}
		variance /= float64(cols)
		inv := 1 / math.Sqrt(variance+eps)
		invStd[r] = inv
		xh, dst := xhat.Row(r), out.Row(r)
		for j, x := range src {
			xh[j] = (x - mean) * inv
			dst[j] = xh[j]*gain.T.Data[j] + bias.T.Data[j]
		}
	}
	var v *Value
	v = node(out, func() {
		for r := 0; r < rows; r++ {
			g := v.Grad.Row(r)
			xh := xhat.Row(r)
			if gain.requiresGrad {
				for j := range g {
					gain.Grad.Data[j] += g[j] * xh[j]
					bias.Grad.Data[j] += g[j]
				}
			}
			if a.requiresGrad {
				// dxhat_j = g_j * gain_j
				// dx = (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)) * invStd
				m1, m2 := 0.0, 0.0
				for j := range g {
					dxh := g[j] * gain.T.Data[j]
					m1 += dxh
					m2 += dxh * xh[j]
				}
				m1 /= float64(cols)
				m2 /= float64(cols)
				dst := a.Grad.Row(r)
				for j := range g {
					dxh := g[j] * gain.T.Data[j]
					dst[j] += (dxh - m1 - xh[j]*m2) * invStd[r]
				}
			}
		}
	}, a, gain, bias)
	return v
}

// Embedding gathers rows of the v×d table W for the given token ids,
// producing len(ids)×d. The backward pass scatter-adds.
func Embedding(w *Value, ids []int) *Value {
	d := w.T.Cols
	out := tensor.New(len(ids), d)
	for i, id := range ids {
		copy(out.Row(i), w.T.Row(id))
	}
	var v *Value
	v = node(out, func() {
		if !w.requiresGrad {
			return
		}
		for i, id := range ids {
			dst := w.Grad.Row(id)
			src := v.Grad.Row(i)
			for j, g := range src {
				dst[j] += g
			}
		}
	}, w)
	return v
}

// SliceCols returns columns [from, to) as a new value.
func SliceCols(a *Value, from, to int) *Value {
	cols := to - from
	out := tensor.New(a.T.Rows, cols)
	for i := 0; i < a.T.Rows; i++ {
		copy(out.Row(i), a.T.Row(i)[from:to])
	}
	var v *Value
	v = node(out, func() {
		if !a.requiresGrad {
			return
		}
		for i := 0; i < a.T.Rows; i++ {
			dst := a.Grad.Row(i)[from:to]
			for j, g := range v.Grad.Row(i) {
				dst[j] += g
			}
		}
	}, a)
	return v
}

// ConcatCols concatenates values with equal row counts along columns.
func ConcatCols(parts ...*Value) *Value {
	rows := parts[0].T.Rows
	total := 0
	for _, p := range parts {
		if p.T.Rows != rows {
			panic("autograd: concat rows mismatch")
		}
		total += p.T.Cols
	}
	out := tensor.New(rows, total)
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(out.Row(i)[off:off+p.T.Cols], p.T.Row(i))
		}
		off += p.T.Cols
	}
	var v *Value
	v = node(out, func() {
		off := 0
		for _, p := range parts {
			if p.requiresGrad {
				for i := 0; i < rows; i++ {
					src := v.Grad.Row(i)[off : off+p.T.Cols]
					dst := p.Grad.Row(i)
					for j, g := range src {
						dst[j] += g
					}
				}
			}
			off += p.T.Cols
		}
	}, parts...)
	return v
}

// ConcatRows concatenates values with equal column counts along rows.
func ConcatRows(parts ...*Value) *Value {
	cols := parts[0].T.Cols
	total := 0
	for _, p := range parts {
		if p.T.Cols != cols {
			panic("autograd: concat cols mismatch")
		}
		total += p.T.Rows
	}
	out := tensor.New(total, cols)
	off := 0
	for _, p := range parts {
		for i := 0; i < p.T.Rows; i++ {
			copy(out.Row(off+i), p.T.Row(i))
		}
		off += p.T.Rows
	}
	var v *Value
	v = node(out, func() {
		off := 0
		for _, p := range parts {
			if p.requiresGrad {
				for i := 0; i < p.T.Rows; i++ {
					src := v.Grad.Row(off + i)
					dst := p.Grad.Row(i)
					for j, g := range src {
						dst[j] += g
					}
				}
			}
			off += p.T.Rows
		}
	}, parts...)
	return v
}

// TransposeV returns aᵀ with gradient support.
func TransposeV(a *Value) *Value {
	out := tensor.Transpose(a.T)
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.Grad, tensor.Transpose(v.Grad))
		}
	}, a)
	return v
}

// GatherRows selects rows of a by index (duplicates allowed); backward
// scatter-adds. It powers im2col for the convolutional encoder.
func GatherRows(a *Value, idx []int) *Value {
	out := tensor.New(len(idx), a.T.Cols)
	for i, r := range idx {
		copy(out.Row(i), a.T.Row(r))
	}
	var v *Value
	v = node(out, func() {
		if !a.requiresGrad {
			return
		}
		for i, r := range idx {
			dst := a.Grad.Row(r)
			for j, g := range v.Grad.Row(i) {
				dst[j] += g
			}
		}
	}, a)
	return v
}

// Reshape reinterprets the value with a new shape of equal size.
func Reshape(a *Value, rows, cols int) *Value {
	if rows*cols != a.T.Rows*a.T.Cols {
		panic(fmt.Sprintf("autograd: reshape %dx%d -> %dx%d", a.T.Rows, a.T.Cols, rows, cols))
	}
	out := tensor.FromSlice(rows, cols, append([]float64(nil), a.T.Data...))
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			for i, g := range v.Grad.Data {
				a.Grad.Data[i] += g
			}
		}
	}, a)
	return v
}

// GLU is the gated linear unit: split columns in half, out = a1 ⊙ σ(a2).
func GLU(a *Value) *Value {
	if a.T.Cols%2 != 0 {
		panic("autograd: GLU needs even columns")
	}
	half := a.T.Cols / 2
	lin := SliceCols(a, 0, half)
	gate := Sigmoid(SliceCols(a, half, a.T.Cols))
	return Mul(lin, gate)
}

// Dropout zeroes elements with probability p during training, scaling the
// survivors by 1/(1-p). With train=false or p=0 it is the identity.
func Dropout(a *Value, p float64, rng *rand.Rand, train bool) *Value {
	if !train || p <= 0 {
		return a
	}
	keep := 1 - p
	mask := tensor.New(a.T.Rows, a.T.Cols)
	for i := range mask.Data {
		if rng.Float64() < keep {
			mask.Data[i] = 1 / keep
		}
	}
	return Mul(a, NewConst(mask))
}

// Mean returns the scalar mean of all elements.
func Mean(a *Value) *Value {
	n := float64(len(a.T.Data))
	out := tensor.FromSlice(1, 1, []float64{a.T.Sum() / n})
	var v *Value
	v = node(out, func() {
		if a.requiresGrad {
			g := v.Grad.Data[0] / n
			for i := range a.Grad.Data {
				a.Grad.Data[i] += g
			}
		}
	}, a)
	return v
}

// CrossEntropy computes the mean token-level cross-entropy between logits
// (n×v) and target class ids (len n). Targets equal to ignore are skipped
// (padding). Returns a scalar.
func CrossEntropy(logits *Value, targets []int, ignore int) *Value {
	n, vocab := logits.T.Rows, logits.T.Cols
	if len(targets) != n {
		panic(fmt.Sprintf("autograd: cross-entropy %d logits vs %d targets", n, len(targets)))
	}
	probs := tensor.SoftmaxRows(logits.T)
	loss := 0.0
	count := 0
	for i, t := range targets {
		if t == ignore {
			continue
		}
		if t < 0 || t >= vocab {
			panic(fmt.Sprintf("autograd: target %d out of vocab %d", t, vocab))
		}
		p := probs.At(i, t)
		loss -= math.Log(math.Max(p, 1e-12))
		count++
	}
	if count == 0 {
		count = 1
	}
	out := tensor.FromSlice(1, 1, []float64{loss / float64(count)})
	var v *Value
	v = node(out, func() {
		if !logits.requiresGrad {
			return
		}
		scale := v.Grad.Data[0] / float64(count)
		for i, t := range targets {
			if t == ignore {
				continue
			}
			dst := logits.Grad.Row(i)
			src := probs.Row(i)
			for j := range dst {
				g := src[j]
				if j == t {
					g -= 1
				}
				dst[j] += g * scale
			}
		}
	}, logits)
	return v
}

// Parameters walks the graph from v and returns all parameter leaves
// (values created by NewParam). Used by tests; models track their own
// parameter lists.
func Parameters(v *Value) []*Value {
	var out []*Value
	seen := map[*Value]bool{}
	var visit func(*Value)
	visit = func(n *Value) {
		if seen[n] {
			return
		}
		seen[n] = true
		if len(n.prev) == 0 && n.requiresGrad {
			out = append(out, n)
		}
		for _, p := range n.prev {
			visit(p)
		}
	}
	visit(v)
	return out
}
