package autograd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestShapePanics(t *testing.T) {
	a := NewParam(tensor.New(2, 3))
	b := NewParam(tensor.New(3, 3))
	expectPanic(t, "add shape", func() { Add(a, b) })
	expectPanic(t, "mul shape", func() { Mul(a, b) })
	expectPanic(t, "glu odd", func() { GLU(NewParam(tensor.New(2, 5))) })
	expectPanic(t, "reshape size", func() { Reshape(a, 4, 4) })
	expectPanic(t, "concat rows mismatch", func() {
		ConcatCols(NewParam(tensor.New(2, 2)), NewParam(tensor.New(3, 2)))
	})
	expectPanic(t, "concat cols mismatch", func() {
		ConcatRows(NewParam(tensor.New(2, 2)), NewParam(tensor.New(2, 3)))
	})
	expectPanic(t, "xent target range", func() {
		CrossEntropy(NewParam(tensor.New(1, 3)), []int{7}, -1)
	})
	expectPanic(t, "xent length", func() {
		CrossEntropy(NewParam(tensor.New(2, 3)), []int{1}, -1)
	})
}

func TestTransposeVGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randParam(rng, 3, 2)
	w := randParam(rng, 3, 1)
	checkGrad(t, "transposeV", []*Value{a, w}, func() *Value {
		a.ZeroGrad()
		w.ZeroGrad()
		return Mean(MatMul(TransposeV(a), w))
	})
}

func TestBackwardOnConstIsNoop(t *testing.T) {
	c := NewConst(tensor.FromSlice(1, 1, []float64{5}))
	Backward(c) // must not panic: nothing requires grad
}

func TestNoGradFlowWhenDetached(t *testing.T) {
	// A graph made only of constants allocates no gradient buffers.
	a := NewConst(tensor.FromSlice(1, 2, []float64{1, 2}))
	b := NewConst(tensor.FromSlice(2, 1, []float64{3, 4}))
	out := MatMul(a, b)
	if out.RequiresGrad() || out.Grad != nil {
		t.Error("constant graph tracked gradients")
	}
}

func TestGELUAtZeroAndExtremes(t *testing.T) {
	a := NewParam(tensor.FromSlice(1, 3, []float64{0, 50, -50}))
	y := GELU(a)
	if y.T.Data[0] != 0 {
		t.Errorf("gelu(0) = %f", y.T.Data[0])
	}
	if math.Abs(y.T.Data[1]-50) > 1e-6 {
		t.Errorf("gelu(50) = %f", y.T.Data[1])
	}
	if math.Abs(y.T.Data[2]) > 1e-6 {
		t.Errorf("gelu(-50) = %f", y.T.Data[2])
	}
	// Gradient stays finite at extremes.
	Backward(Mean(y))
	for _, g := range a.Grad.Data {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Error("gelu gradient not finite")
		}
	}
}

func TestSoftmaxExtremeLogits(t *testing.T) {
	a := NewParam(tensor.FromSlice(1, 3, []float64{1e9, -1e9, 0}))
	y := SoftmaxRows(a)
	if math.Abs(y.T.Data[0]-1) > 1e-9 {
		t.Errorf("softmax overflow handling: %v", y.T.Data)
	}
	for _, v := range y.T.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in softmax")
		}
	}
}

func TestCrossEntropyAllPaddingIsFinite(t *testing.T) {
	logits := NewParam(tensor.New(2, 3))
	loss := CrossEntropy(logits, []int{0, 0}, 0)
	if math.IsNaN(loss.T.Data[0]) || math.IsInf(loss.T.Data[0], 0) {
		t.Errorf("all-padding loss: %f", loss.T.Data[0])
	}
	Backward(loss)
}

func TestLayerNormConstantRow(t *testing.T) {
	// A constant row has zero variance; eps must keep the output finite.
	a := NewParam(tensor.FromSlice(1, 4, []float64{3, 3, 3, 3}))
	gain := NewParam(tensor.FromSlice(1, 4, []float64{1, 1, 1, 1}))
	bias := NewParam(tensor.New(1, 4))
	y := LayerNorm(a, gain, bias, 1e-5)
	for _, v := range y.T.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("layernorm blew up on constant row")
		}
	}
	Backward(Mean(y))
	for _, g := range a.Grad.Data {
		if math.IsNaN(g) {
			t.Fatal("layernorm gradient NaN on constant row")
		}
	}
}

func TestEmbeddingOutOfRangePanics(t *testing.T) {
	w := NewParam(tensor.New(4, 2))
	expectPanic(t, "embedding range", func() { Embedding(w, []int{5}) })
}

func TestScaleZero(t *testing.T) {
	a := NewParam(tensor.FromSlice(1, 2, []float64{1, 2}))
	y := Scale(a, 0)
	Backward(Mean(Mul(y, y)))
	for _, g := range a.Grad.Data {
		if g != 0 {
			t.Error("zero scale should kill gradient")
		}
	}
}
