package autograd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// checkGrad compares the analytic gradient of loss(params...) w.r.t. each
// parameter against central finite differences.
func checkGrad(t *testing.T, name string, params []*Value, loss func() *Value) {
	t.Helper()
	l := loss()
	Backward(l)
	// Snapshot all analytic gradients first: the loss closure zeroes
	// gradient buffers on every call.
	analytics := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		analytics[i] = p.Grad.Clone()
	}
	const eps = 1e-6
	for pi, p := range params {
		analytic := analytics[pi]
		for i := range p.T.Data {
			orig := p.T.Data[i]
			p.T.Data[i] = orig + eps
			lp := loss().T.Data[0]
			p.T.Data[i] = orig - eps
			lm := loss().T.Data[0]
			p.T.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if diff := math.Abs(numeric - analytic.Data[i]); diff > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("%s: param %d elem %d: analytic %.8f numeric %.8f", name, pi, i, analytic.Data[i], numeric)
				return
			}
		}
	}
}

func randParam(rng *rand.Rand, r, c int) *Value {
	t := tensor.New(r, c)
	t.RandInit(rng)
	return NewParam(t)
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Backward(NewParam(tensor.New(2, 2)))
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randParam(rng, 3, 4), randParam(rng, 4, 2)
	checkGrad(t, "matmul", []*Value{a, b}, func() *Value {
		a.ZeroGrad()
		b.ZeroGrad()
		return Mean(MatMul(a, b))
	})
}

func TestAddMulScaleGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randParam(rng, 2, 3), randParam(rng, 2, 3)
	checkGrad(t, "add-mul-scale", []*Value{a, b}, func() *Value {
		a.ZeroGrad()
		b.ZeroGrad()
		return Mean(Scale(Mul(Add(a, b), a), 1.7))
	})
}

func TestAddRowGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, bias := randParam(rng, 3, 4), randParam(rng, 1, 4)
	checkGrad(t, "addrow", []*Value{a, bias}, func() *Value {
		a.ZeroGrad()
		bias.ZeroGrad()
		return Mean(AddRow(a, bias))
	})
}

func TestNonlinearityGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct {
		name string
		f    func(*Value) *Value
	}{
		{"relu", ReLU}, {"gelu", GELU}, {"tanh", Tanh}, {"sigmoid", Sigmoid},
	}
	for _, c := range cases {
		a := randParam(rng, 2, 5)
		// Shift away from zero so ReLU's kink doesn't break finite
		// differences.
		for i := range a.T.Data {
			if math.Abs(a.T.Data[i]) < 0.05 {
				a.T.Data[i] += 0.1
			}
		}
		checkGrad(t, c.name, []*Value{a}, func() *Value {
			a.ZeroGrad()
			return Mean(c.f(a))
		})
	}
}

func TestSoftmaxGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 3, 4)
	w := randParam(rng, 4, 1)
	checkGrad(t, "softmax", []*Value{a, w}, func() *Value {
		a.ZeroGrad()
		w.ZeroGrad()
		return Mean(MatMul(SoftmaxRows(a), w))
	})
}

func TestLayerNormGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 3, 6)
	gain := NewParam(tensor.FromSlice(1, 6, []float64{1, 1.1, 0.9, 1, 1.2, 0.8}))
	bias := randParam(rng, 1, 6)
	w := randParam(rng, 6, 1)
	checkGrad(t, "layernorm", []*Value{a, gain, bias}, func() *Value {
		a.ZeroGrad()
		gain.ZeroGrad()
		bias.ZeroGrad()
		w.ZeroGrad()
		return Mean(MatMul(LayerNorm(a, gain, bias, 1e-5), w))
	})
}

func TestEmbeddingGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := randParam(rng, 5, 3)
	ids := []int{0, 2, 2, 4}
	checkGrad(t, "embedding", []*Value{w}, func() *Value {
		w.ZeroGrad()
		return Mean(Embedding(w, ids))
	})
	// Duplicated id must receive double gradient.
	w.ZeroGrad()
	Backward(Mean(Embedding(w, ids)))
	g := 1.0 / float64(4*3)
	if math.Abs(w.Grad.At(2, 0)-2*g) > 1e-12 {
		t.Errorf("duplicate id grad: %f want %f", w.Grad.At(2, 0), 2*g)
	}
	if math.Abs(w.Grad.At(1, 0)) > 1e-12 {
		t.Error("unused id got gradient")
	}
}

func TestSliceConcatGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, 2, 6)
	checkGrad(t, "slice-concat", []*Value{a}, func() *Value {
		a.ZeroGrad()
		l := SliceCols(a, 0, 3)
		r := SliceCols(a, 3, 6)
		return Mean(Mul(ConcatCols(r, l), ConcatCols(l, r)))
	})
}

func TestConcatRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := randParam(rng, 2, 3), randParam(rng, 1, 3)
	checkGrad(t, "concat-rows", []*Value{a, b}, func() *Value {
		a.ZeroGrad()
		b.ZeroGrad()
		return Mean(Mul(ConcatRows(a, b), ConcatRows(a, b)))
	})
}

func TestGatherRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 4, 3)
	idx := []int{0, 1, 1, 3, 2}
	checkGrad(t, "gather", []*Value{a}, func() *Value {
		a.ZeroGrad()
		return Mean(GatherRows(a, idx))
	})
}

func TestReshapeGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 2, 6)
	checkGrad(t, "reshape", []*Value{a}, func() *Value {
		a.ZeroGrad()
		r := Reshape(a, 3, 4)
		return Mean(Mul(r, r))
	})
}

func TestGLUGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 3, 8)
	checkGrad(t, "glu", []*Value{a}, func() *Value {
		a.ZeroGrad()
		return Mean(GLU(a))
	})
}

func TestCrossEntropyGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	logits := randParam(rng, 4, 5)
	targets := []int{1, 0, 4, 2}
	checkGrad(t, "xent", []*Value{logits}, func() *Value {
		logits.ZeroGrad()
		return CrossEntropy(logits, targets, -1)
	})
}

func TestCrossEntropyIgnoresPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := randParam(rng, 3, 4)
	loss := CrossEntropy(logits, []int{2, 0, 0}, 0)
	Backward(loss)
	// Rows 1 and 2 are padding; their gradients must be zero.
	for j := 0; j < 4; j++ {
		if logits.Grad.At(1, j) != 0 || logits.Grad.At(2, j) != 0 {
			t.Fatal("padding rows received gradient")
		}
	}
	if logits.Grad.At(0, 2) == 0 {
		t.Error("real row missing gradient")
	}
}

func TestCrossEntropyValue(t *testing.T) {
	// Uniform logits over v classes -> loss = ln(v).
	logits := NewParam(tensor.New(2, 4))
	loss := CrossEntropy(logits, []int{0, 3}, -1)
	if math.Abs(loss.T.Data[0]-math.Log(4)) > 1e-12 {
		t.Errorf("uniform loss: %f want %f", loss.T.Data[0], math.Log(4))
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := NewParam(tensor.FromSlice(1, 1000, make([]float64, 1000)))
	a.T.Fill(1)
	out := Dropout(a, 0.5, rng, true)
	zeros, kept := 0, 0.0
	for _, v := range out.T.Data {
		if v == 0 {
			zeros++
		} else {
			kept += v
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropout rate off: %d/1000 zeroed", zeros)
	}
	// Expected scaled sum stays ~1000 (inverted dropout).
	if kept < 800 || kept > 1200 {
		t.Errorf("inverted scaling off: sum %.0f", kept)
	}
	// Eval mode: identity.
	if Dropout(a, 0.5, rng, false) != a {
		t.Error("eval dropout must be identity")
	}
	if Dropout(a, 0, rng, true) != a {
		t.Error("p=0 dropout must be identity")
	}
}

func TestGradAccumulatesAcrossBackward(t *testing.T) {
	a := NewParam(tensor.FromSlice(1, 1, []float64{2}))
	l1 := Mean(Mul(a, a))
	Backward(l1)
	first := a.Grad.Data[0]
	l2 := Mean(Mul(a, a))
	Backward(l2)
	if math.Abs(a.Grad.Data[0]-2*first) > 1e-12 {
		t.Errorf("gradient should accumulate: %f vs 2*%f", a.Grad.Data[0], first)
	}
	a.ZeroGrad()
	if a.Grad.Data[0] != 0 {
		t.Error("zerograd")
	}
}

func TestConstNoGrad(t *testing.T) {
	c := NewConst(tensor.FromSlice(1, 2, []float64{1, 2}))
	p := NewParam(tensor.FromSlice(2, 1, []float64{3, 4}))
	loss := Mean(MatMul(c, p))
	Backward(loss)
	if c.Grad != nil {
		t.Error("const has gradient buffer")
	}
	if p.Grad.Data[0] == 0 {
		t.Error("param missing gradient")
	}
}

func TestDiamondGraph(t *testing.T) {
	// y = a*a + a*a: gradient must be 4a (shared subexpression reused).
	a := NewParam(tensor.FromSlice(1, 1, []float64{3}))
	sq := Mul(a, a)
	loss := Mean(Add(sq, sq))
	Backward(loss)
	if math.Abs(a.Grad.Data[0]-12) > 1e-12 {
		t.Errorf("diamond grad: %f want 12", a.Grad.Data[0])
	}
}

func TestParametersDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a, b := randParam(rng, 2, 2), randParam(rng, 2, 2)
	c := NewConst(tensor.New(2, 2))
	loss := Mean(Add(MatMul(a, b), c))
	ps := Parameters(loss)
	if len(ps) != 2 {
		t.Errorf("parameters found: %d", len(ps))
	}
}

// TestTwoLayerMLPLearnsXOR is an end-to-end sanity check: a tiny MLP must
// drive the XOR loss toward zero with plain gradient descent.
func TestTwoLayerMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := NewConst(tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1}))
	targets := []int{0, 1, 1, 0}
	w1, b1 := randParam(rng, 2, 8), randParam(rng, 1, 8)
	w2, b2 := randParam(rng, 8, 2), randParam(rng, 1, 2)
	params := []*Value{w1, b1, w2, b2}
	var last float64
	for epoch := 0; epoch < 600; epoch++ {
		for _, p := range params {
			p.ZeroGrad()
		}
		h := Tanh(AddRow(MatMul(x, w1), b1))
		logits := AddRow(MatMul(h, w2), b2)
		loss := CrossEntropy(logits, targets, -1)
		Backward(loss)
		for _, p := range params {
			for i := range p.T.Data {
				p.T.Data[i] -= 0.5 * p.Grad.Data[i]
			}
		}
		last = loss.T.Data[0]
	}
	if last > 0.05 {
		t.Errorf("XOR not learned: loss %f", last)
	}
}
