package seq2seq

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// wireTensor is the serialized form of one parameter tensor.
type wireTensor struct {
	Rows, Cols int
	Data       []float64
}

// wireModel is the serialized form of a model: its configuration plus all
// named parameters.
type wireModel struct {
	Cfg    Config
	Params map[string]wireTensor
}

// ParamMap returns a module's named parameter tensors (the live tensors,
// not copies), erroring on duplicate names. Checkpointing and model
// serialization both build on it.
func ParamMap(m nn.Module) (map[string]*tensor.Tensor, error) {
	byName, err := nn.ByName(m.Params())
	if err != nil {
		return nil, fmt.Errorf("seq2seq: %w", err)
	}
	out := make(map[string]*tensor.Tensor, len(byName))
	for name, v := range byName {
		out[name] = v.T
	}
	return out, nil
}

// RestoreParamMap copies stored tensors into the module's parameters by
// name, rejecting missing names and shape mismatches.
func RestoreParamMap(m nn.Module, stored map[string]*tensor.Tensor) error {
	for _, p := range m.Params() {
		wt, ok := stored[p.Name]
		if !ok {
			return fmt.Errorf("seq2seq: missing parameter %q", p.Name)
		}
		if wt.Rows != p.V.T.Rows || wt.Cols != p.V.T.Cols {
			return fmt.Errorf("seq2seq: parameter %q shape mismatch: stored %dx%d, model %dx%d",
				p.Name, wt.Rows, wt.Cols, p.V.T.Rows, p.V.T.Cols)
		}
		copy(p.V.T.Data, wt.Data)
	}
	return nil
}

// Save writes the model configuration and parameters with gob encoding.
func Save(w io.Writer, m Model) error {
	tensors, err := ParamMap(m)
	if err != nil {
		return err
	}
	wire := wireModel{Cfg: m.Config(), Params: make(map[string]wireTensor, len(tensors))}
	for name, t := range tensors {
		wire.Params[name] = wireTensor{Rows: t.Rows, Cols: t.Cols, Data: t.Data}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load reads a model written by Save, reconstructing the architecture
// from the stored configuration.
func Load(r io.Reader) (Model, error) {
	var wire wireModel
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("seq2seq: load: %w", err)
	}
	m, err := New(wire.Cfg, 0)
	if err != nil {
		return nil, err
	}
	stored := make(map[string]*tensor.Tensor, len(wire.Params))
	for name, wt := range wire.Params {
		stored[name] = tensor.FromSlice(wt.Rows, wt.Cols, wt.Data)
	}
	if err := RestoreParamMap(m, stored); err != nil {
		return nil, err
	}
	return m, nil
}
