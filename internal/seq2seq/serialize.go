package seq2seq

import (
	"encoding/gob"
	"fmt"
	"io"
)

// wireTensor is the serialized form of one parameter tensor.
type wireTensor struct {
	Rows, Cols int
	Data       []float64
}

// wireModel is the serialized form of a model: its configuration plus all
// named parameters.
type wireModel struct {
	Cfg    Config
	Params map[string]wireTensor
}

// Save writes the model configuration and parameters with gob encoding.
func Save(w io.Writer, m Model) error {
	wire := wireModel{Cfg: m.Config(), Params: map[string]wireTensor{}}
	for _, p := range m.Params() {
		if _, dup := wire.Params[p.Name]; dup {
			return fmt.Errorf("seq2seq: duplicate parameter name %q", p.Name)
		}
		wire.Params[p.Name] = wireTensor{Rows: p.V.T.Rows, Cols: p.V.T.Cols, Data: p.V.T.Data}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load reads a model written by Save, reconstructing the architecture
// from the stored configuration.
func Load(r io.Reader) (Model, error) {
	var wire wireModel
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("seq2seq: load: %w", err)
	}
	m, err := New(wire.Cfg, 0)
	if err != nil {
		return nil, err
	}
	if err := restoreParams(m, wire.Params); err != nil {
		return nil, err
	}
	return m, nil
}

// restoreParams copies stored tensors into the model's parameters by name.
func restoreParams(m Model, stored map[string]wireTensor) error {
	for _, p := range m.Params() {
		wt, ok := stored[p.Name]
		if !ok {
			return fmt.Errorf("seq2seq: missing parameter %q", p.Name)
		}
		if wt.Rows != p.V.T.Rows || wt.Cols != p.V.T.Cols {
			return fmt.Errorf("seq2seq: parameter %q shape mismatch: stored %dx%d, model %dx%d",
				p.Name, wt.Rows, wt.Cols, p.V.T.Rows, p.V.T.Cols)
		}
		copy(p.V.T.Data, wt.Data)
	}
	return nil
}
