package seq2seq

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

func TestGRUCellStepShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cell := newGRUCell(8, rng)
	x := autograd.NewConst(randT8(rng, 1, 8))
	h := autograd.NewConst(tensor.New(1, 8))
	h2 := cell.step(x, h)
	if h2.T.Rows != 1 || h2.T.Cols != 8 {
		t.Fatalf("shape: %dx%d", h2.T.Rows, h2.T.Cols)
	}
}

// TestGRUCellInterpolates: the update gate makes h' a convex combination
// of h and the candidate, so with bounded h the state stays bounded.
func TestGRUCellInterpolates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cell := newGRUCell(6, rng)
	h := autograd.NewConst(tensor.New(1, 6))
	for step := 0; step < 50; step++ {
		x := autograd.NewConst(randT8(rng, 1, 6))
		h = cell.step(x, h)
		for _, v := range h.T.Data {
			// tanh candidate is in (-1,1); convex mixing keeps |h| < 1.
			if math.Abs(v) >= 1 || math.IsNaN(v) {
				t.Fatalf("state escaped bounds at step %d: %f", step, v)
			}
		}
	}
}

// TestGRUStatePropagates: changing the first source token must influence
// the final encoder state (recurrence carries information forward).
func TestGRUStatePropagates(t *testing.T) {
	cfg := tinyCfg(GRU)
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Encode([]int{4, 7, 7, 7}, false, nil)
	e2 := m.Encode([]int{5, 7, 7, 7}, false, nil)
	last1 := e1.T.Row(e1.T.Rows - 1)
	last2 := e2.T.Row(e2.T.Rows - 1)
	diff := 0.0
	for i := range last1 {
		diff += math.Abs(last1[i] - last2[i])
	}
	if diff < 1e-9 {
		t.Error("first token did not propagate to final state")
	}
}

func TestGRUCellParamsNamed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cell := newGRUCell(4, rng)
	ps := cell.params("enc_cell")
	if len(ps) != 12 { // 6 linears × (w, b)
		t.Fatalf("params: %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate name %s", p.Name)
		}
		seen[p.Name] = true
	}
	if !seen["enc_cell.xz.w"] || !seen["enc_cell.hh.b"] {
		t.Errorf("names: %v", seen)
	}
}

func randT8(rng *rand.Rand, r, c int) *tensor.Tensor {
	tt := tensor.New(r, c)
	tt.RandInit(rng)
	return tt
}
