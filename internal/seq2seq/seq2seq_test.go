package seq2seq

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
)

func tinyCfg(arch Arch) Config {
	cfg := DefaultConfig(arch, 20)
	cfg.DModel = 16
	cfg.FFHidden = 32
	cfg.MaxLen = 32
	cfg.Dropout = 0
	return cfg
}

func TestNewRejectsUnknownArch(t *testing.T) {
	if _, err := New(Config{Arch: "rnnx"}, 1); err == nil {
		t.Error("expected error")
	}
}

func TestShapes(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		m, err := New(tinyCfg(arch), 1)
		if err != nil {
			t.Fatal(err)
		}
		src := []int{1, 5, 6, 7, 2}
		enc := m.Encode(src, false, nil)
		if enc.T.Rows != 5 || enc.T.Cols != 16 {
			t.Fatalf("%s: enc shape %dx%d", arch, enc.T.Rows, enc.T.Cols)
		}
		logits := m.DecodeLogits(enc, []int{1, 5, 6}, false, nil)
		if logits.T.Rows != 3 || logits.T.Cols != 20 {
			t.Fatalf("%s: logits shape %dx%d", arch, logits.T.Rows, logits.T.Cols)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		m1, _ := New(tinyCfg(arch), 7)
		m2, _ := New(tinyCfg(arch), 7)
		p1, p2 := m1.Params(), m2.Params()
		if len(p1) != len(p2) {
			t.Fatalf("%s: param count", arch)
		}
		for i := range p1 {
			for j := range p1[i].V.T.Data {
				if p1[i].V.T.Data[j] != p2[i].V.T.Data[j] {
					t.Fatalf("%s: param %s differs at %d", arch, p1[i].Name, j)
				}
			}
		}
		m3, _ := New(tinyCfg(arch), 8)
		if p1[0].V.T.Data[0] == m3.Params()[0].V.T.Data[0] {
			t.Errorf("%s: different seeds gave identical init", arch)
		}
	}
}

// TestDecoderCausality: logits at position i must not change when a later
// target token changes (autoregressive consistency for greedy/beam
// decoding).
func TestDecoderCausality(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		m, _ := New(tinyCfg(arch), 3)
		src := []int{1, 4, 9, 2}
		enc := m.Encode(src, false, nil)
		a := m.DecodeLogits(enc, []int{1, 5, 6, 7}, false, nil)
		b := m.DecodeLogits(enc, []int{1, 5, 6, 12}, false, nil)
		for i := 0; i < 3; i++ {
			for j := 0; j < 20; j++ {
				if math.Abs(a.T.At(i, j)-b.T.At(i, j)) > 1e-9 {
					t.Fatalf("%s: position %d depends on future token", arch, i)
				}
			}
		}
	}
}

// TestEncoderInfluencesDecoder: different source sequences must produce
// different logits (cross-attention works).
func TestEncoderInfluencesDecoder(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		m, _ := New(tinyCfg(arch), 4)
		e1 := m.Encode([]int{1, 4, 2}, false, nil)
		e2 := m.Encode([]int{1, 9, 2}, false, nil)
		l1 := m.DecodeLogits(e1, []int{1, 5}, false, nil)
		l2 := m.DecodeLogits(e2, []int{1, 5}, false, nil)
		diff := 0.0
		for i := range l1.T.Data {
			diff += math.Abs(l1.T.Data[i] - l2.T.Data[i])
		}
		if diff < 1e-9 {
			t.Errorf("%s: decoder ignores encoder", arch)
		}
	}
}

// TestGradientsReachAllParams: a single backward pass from the loss must
// touch every parameter tensor.
func TestGradientsReachAllParams(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		m, _ := New(tinyCfg(arch), 5)
		enc := m.Encode([]int{1, 4, 9, 2}, true, rand.New(rand.NewSource(1)))
		logits := m.DecodeLogits(enc, []int{1, 5, 6}, true, rand.New(rand.NewSource(2)))
		loss := autograd.CrossEntropy(logits, []int{5, 6, 2}, 0)
		autograd.Backward(loss)
		for _, p := range m.Params() {
			if p.V.Grad.Norm() == 0 {
				// Embedding rows for unused tokens legitimately have
				// zero gradient; whole-tensor zero is the bug.
				t.Errorf("%s: parameter %s received no gradient", arch, p.Name)
			}
		}
	}
}

func TestParamNamesUnique(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		cfg := tinyCfg(arch)
		cfg.Layers = 2
		m, _ := New(cfg, 6)
		seen := map[string]bool{}
		for _, p := range m.Params() {
			if seen[p.Name] {
				t.Errorf("%s: duplicate param name %s", arch, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

func TestCountParams(t *testing.T) {
	m, _ := New(tinyCfg(Transformer), 1)
	n := CountParams(m)
	if n <= 0 {
		t.Fatal("no params")
	}
	// Transformer must be bigger than ConvS2S at the same width (paper
	// Table 3 shows tfm > convs2s in parameters for seq-less SDSS).
	m2, _ := New(tinyCfg(ConvS2S), 1)
	if CountParams(m2) >= n {
		t.Logf("convs2s params %d vs tfm %d (informational)", CountParams(m2), n)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		m, _ := New(tinyCfg(arch), 9)
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Same forward output after reload.
		src := []int{1, 7, 3, 2}
		e1 := m.Encode(src, false, nil)
		e2 := back.Encode(src, false, nil)
		for i := range e1.T.Data {
			if math.Abs(e1.T.Data[i]-e2.T.Data[i]) > 1e-12 {
				t.Fatalf("%s: reloaded model diverges", arch)
			}
		}
		if back.Config().Arch != arch {
			t.Errorf("config lost: %v", back.Config())
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("expected error")
	}
}

func TestPostLNVariant(t *testing.T) {
	cfg := tinyCfg(Transformer)
	cfg.PostLN = true
	m, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := m.Encode([]int{1, 5, 2}, false, nil)
	logits := m.DecodeLogits(enc, []int{1, 5}, false, nil)
	if logits.T.Rows != 2 {
		t.Fatal("post-LN forward broken")
	}
	for _, v := range logits.T.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in post-LN logits")
		}
	}
}
