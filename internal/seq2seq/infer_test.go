package seq2seq

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// randSeqs builds a random batch of token sequences with mixed lengths in
// [1, maxLen], including occasional length-1 sequences (the empty-prefix
// shape: BOS+EOS around nothing).
func randSeqs(rng *rand.Rand, n, vocab, maxLen int) [][]int {
	out := make([][]int, n)
	for i := range out {
		l := 1 + rng.Intn(maxLen)
		if rng.Intn(5) == 0 {
			l = 1
		}
		s := make([]int, l)
		for j := range s {
			s[j] = rng.Intn(vocab)
		}
		out[i] = s
	}
	return out
}

func inferTestModel(t *testing.T, postLN bool) Model {
	t.Helper()
	cfg := DefaultConfig(Transformer, 37)
	cfg.DModel = 16
	cfg.Heads = 2
	cfg.Layers = 2
	cfg.FFHidden = 24
	cfg.MaxLen = 32
	cfg.PostLN = postLN
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// TestInferBatchEncodeBitIdentical stacks random batch compositions
// (mixed lengths, singleton, larger batches) and asserts every segment of
// the batched encoder output matches the sequential Encode bit for bit,
// across worker counts (run under -race in tier-1).
func TestInferBatchEncodeBitIdentical(t *testing.T) {
	m := inferTestModel(t, false)
	rng := rand.New(rand.NewSource(5))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, workers := range []int{1, 4} {
		runtime.GOMAXPROCS(workers)
		for _, batch := range []int{1, 2, 5, 8} {
			srcs := randSeqs(rng, batch, m.Config().Vocab, m.Config().MaxLen)
			ib := NewInferBatch(m, srcs)
			if ib == nil {
				t.Fatal("NewInferBatch returned nil for pre-LN transformer")
			}
			for i, src := range srcs {
				want := m.Encode(src, false, nil)
				got := ib.EncSegment(i)
				if got.Rows != want.T.Rows || got.Cols != want.T.Cols {
					t.Fatalf("w=%d b=%d seg %d: shape %dx%d, want %dx%d",
						workers, batch, i, got.Rows, got.Cols, want.T.Rows, want.T.Cols)
				}
				for j := range want.T.Data {
					if got.Data[j] != want.T.Data[j] {
						t.Fatalf("w=%d b=%d seg %d: element %d = %v, want %v",
							workers, batch, i, j, got.Data[j], want.T.Data[j])
					}
				}
				autograd.Free(want)
			}
			ib.Close()
		}
	}
}

// TestInferBatchDecodeBitIdentical drives lockstep decode steps over
// random prefixes — several items sharing encoder segments, as beams do —
// and asserts each item's last-position logits match the sequential
// DecodeLogits bit for bit.
func TestInferBatchDecodeBitIdentical(t *testing.T) {
	m := inferTestModel(t, false)
	rng := rand.New(rand.NewSource(6))
	srcs := randSeqs(rng, 3, m.Config().Vocab, 12)
	ib := NewInferBatch(m, srcs)
	if ib == nil {
		t.Fatal("NewInferBatch returned nil")
	}
	defer ib.Close()

	// Sequential encoder states for the reference path.
	encs := make([]*autograd.Value, len(srcs))
	for i, src := range srcs {
		encs[i] = m.Encode(src, false, nil)
	}
	defer func() {
		for _, e := range encs {
			autograd.Free(e)
		}
	}()

	for T := 1; T <= 6; T++ {
		// Mixed composition: item 0 twice (two beams of one request), then
		// the others — exercising shared encoder segments.
		segs := []int{0, 0, 1, 2}
		prefixes := make([][]int, len(segs))
		for i, seg := range segs {
			p := make([]int, T)
			for j := range p {
				p[j] = rng.Intn(m.Config().Vocab)
			}
			prefixes[i] = p
			_ = seg
		}
		logits := ib.DecodeLastLogits(prefixes, segs)
		if logits.Rows != len(segs) || logits.Cols != m.Config().Vocab {
			t.Fatalf("T=%d: logits %dx%d, want %dx%d", T, logits.Rows, logits.Cols, len(segs), m.Config().Vocab)
		}
		for i, seg := range segs {
			want := m.DecodeLogits(encs[seg], prefixes[i], false, nil)
			wrow := want.T.Row(want.T.Rows - 1)
			grow := logits.Row(i)
			for j := range wrow {
				if grow[j] != wrow[j] {
					t.Fatalf("T=%d item %d: logit %d = %v, want %v", T, i, j, grow[j], wrow[j])
				}
			}
			autograd.Free(want, encs[seg])
		}
	}
}

// TestInferBatchUnsupported asserts the fallbacks: post-LN transformers
// and the recurrent/conv architectures return nil (callers then use the
// sequential path), and empty batches return nil.
func TestInferBatchUnsupported(t *testing.T) {
	if ib := NewInferBatch(inferTestModel(t, true), [][]int{{1, 2}}); ib != nil {
		t.Fatal("post-LN transformer should not have a batched path")
	}
	for _, arch := range []Arch{GRU, ConvS2S} {
		cfg := DefaultConfig(arch, 37)
		cfg.MaxLen = 16
		m, err := New(cfg, 1)
		if err != nil {
			t.Fatalf("New(%v): %v", arch, err)
		}
		if ib := NewInferBatch(m, [][]int{{1, 2}}); ib != nil {
			t.Fatalf("%v should not have a batched path", arch)
		}
	}
	if ib := NewInferBatch(inferTestModel(t, false), nil); ib != nil {
		t.Fatal("empty batch should return nil")
	}
}

// TestInferBatchCloseReleases asserts Close returns the ledger (double
// close and post-close Close are safe no-ops).
func TestInferBatchCloseReleases(t *testing.T) {
	m := inferTestModel(t, false)
	before := tensor.Batches.Stats()
	ib := NewInferBatch(m, [][]int{{1, 2, 3}, {4}})
	_ = ib.DecodeLastLogits([][]int{{1}, {2}}, []int{0, 1})
	ib.Close()
	ib.Close()
	after := tensor.Batches.Stats()
	if got, want := after.Puts-before.Puts, after.Gets-before.Gets; got != want {
		t.Fatalf("arena gets/puts unbalanced: %d gets, %d puts", want, got)
	}
}

// BenchmarkBatchedEncode compares one batched encoder forward against B
// sequential Encode calls on the same inputs — the kernel-level half of
// the serving micro-batch win (no graph nodes, no grad buffers, shared
// dispatch).
func BenchmarkBatchedEncode(b *testing.B) {
	cfg := DefaultConfig(Transformer, 37)
	cfg.MaxLen = 32
	m, err := New(cfg, 3)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, batch := range []int{2, 4, 8} {
		srcs := randSeqs(rng, batch, cfg.Vocab, 16)
		b.Run(fmt.Sprintf("batched%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewInferBatch(m, srcs).Close()
			}
		})
		b.Run(fmt.Sprintf("sequential%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, s := range srcs {
					autograd.Free(m.Encode(s, false, nil))
				}
			}
		})
	}
}
