package seq2seq

import (
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// transformerModel is the standard encoder-decoder transformer, pre-LN by
// default for small-data stability (the post-LN original is available for
// the ablation bench).
type transformerModel struct {
	cfg Config

	srcEmb, tgtEmb *nn.Embedding
	pos            *nn.PositionalEncoding

	encBlocks []*encBlock
	decBlocks []*decBlock
	encNorm   *nn.LayerNorm
	decNorm   *nn.LayerNorm
	out       *nn.Linear
}

type encBlock struct {
	attn     *nn.MultiHeadAttention
	ff       *nn.FeedForward
	ln1, ln2 *nn.LayerNorm
}

type decBlock struct {
	self, cross   *nn.MultiHeadAttention
	ff            *nn.FeedForward
	ln1, ln2, ln3 *nn.LayerNorm
}

func newTransformer(cfg Config, rng *rand.Rand) *transformerModel {
	m := &transformerModel{
		cfg:     cfg,
		srcEmb:  nn.NewEmbedding(cfg.Vocab, cfg.DModel, rng),
		tgtEmb:  nn.NewEmbedding(cfg.Vocab, cfg.DModel, rng),
		pos:     nn.NewPositionalEncoding(cfg.MaxLen, cfg.DModel),
		encNorm: nn.NewLayerNorm(cfg.DModel),
		decNorm: nn.NewLayerNorm(cfg.DModel),
		out:     nn.NewLinear(cfg.DModel, cfg.Vocab, rng),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.encBlocks = append(m.encBlocks, &encBlock{
			attn: nn.NewMultiHeadAttention(cfg.DModel, cfg.Heads, rng),
			ff:   nn.NewFeedForward(cfg.DModel, cfg.FFHidden, rng),
			ln1:  nn.NewLayerNorm(cfg.DModel),
			ln2:  nn.NewLayerNorm(cfg.DModel),
		})
		m.decBlocks = append(m.decBlocks, &decBlock{
			self:  nn.NewMultiHeadAttention(cfg.DModel, cfg.Heads, rng),
			cross: nn.NewMultiHeadAttention(cfg.DModel, cfg.Heads, rng),
			ff:    nn.NewFeedForward(cfg.DModel, cfg.FFHidden, rng),
			ln1:   nn.NewLayerNorm(cfg.DModel),
			ln2:   nn.NewLayerNorm(cfg.DModel),
			ln3:   nn.NewLayerNorm(cfg.DModel),
		})
	}
	return m
}

func (m *transformerModel) Config() Config { return m.cfg }

func (m *transformerModel) Encode(src []int, train bool, rng *rand.Rand) *autograd.Value {
	x := m.pos.Add(m.srcEmb.Forward(src), 0)
	x = autograd.Dropout(x, m.cfg.Dropout, rng, train)
	for _, b := range m.encBlocks {
		if m.cfg.PostLN {
			x = b.ln1.Forward(autograd.Add(x, b.attn.Forward(x, x, nil)))
			x = b.ln2.Forward(autograd.Add(x, b.ff.Forward(x)))
		} else {
			n := b.ln1.Forward(x)
			x = autograd.Add(x, autograd.Dropout(b.attn.Forward(n, n, nil), m.cfg.Dropout, rng, train))
			x = autograd.Add(x, autograd.Dropout(b.ff.Forward(b.ln2.Forward(x)), m.cfg.Dropout, rng, train))
		}
	}
	if m.cfg.PostLN {
		return x
	}
	return m.encNorm.Forward(x)
}

func (m *transformerModel) DecodeLogits(enc *autograd.Value, tgtIn []int, train bool, rng *rand.Rand) *autograd.Value {
	x := m.pos.Add(m.tgtEmb.Forward(tgtIn), 0)
	x = autograd.Dropout(x, m.cfg.Dropout, rng, train)
	// Pooled mask: attention consumes it eagerly, so it goes back to the
	// pool when this function returns.
	mask := tensor.Shared.Get(len(tgtIn), len(tgtIn))
	defer tensor.Shared.Put(mask)
	nn.FillCausalMask(mask)
	for _, b := range m.decBlocks {
		if m.cfg.PostLN {
			x = b.ln1.Forward(autograd.Add(x, b.self.Forward(x, x, mask)))
			x = b.ln2.Forward(autograd.Add(x, b.cross.Forward(x, enc, nil)))
			x = b.ln3.Forward(autograd.Add(x, b.ff.Forward(x)))
		} else {
			n := b.ln1.Forward(x)
			x = autograd.Add(x, autograd.Dropout(b.self.Forward(n, n, mask), m.cfg.Dropout, rng, train))
			x = autograd.Add(x, autograd.Dropout(b.cross.Forward(b.ln2.Forward(x), enc, nil), m.cfg.Dropout, rng, train))
			x = autograd.Add(x, autograd.Dropout(b.ff.Forward(b.ln3.Forward(x)), m.cfg.Dropout, rng, train))
		}
	}
	if !m.cfg.PostLN {
		x = m.decNorm.Forward(x)
	}
	return m.out.Forward(x)
}

func (m *transformerModel) Params() []nn.Param {
	var out []nn.Param
	add := func(name string, mod nn.Module) {
		for _, p := range mod.Params() {
			out = append(out, nn.Param{Name: name + "." + p.Name, V: p.V})
		}
	}
	add("src_emb", m.srcEmb)
	add("tgt_emb", m.tgtEmb)
	for i, b := range m.encBlocks {
		pre := prefixN("enc", i)
		add(pre+".attn", b.attn)
		add(pre+".ff", b.ff)
		add(pre+".ln1", b.ln1)
		add(pre+".ln2", b.ln2)
	}
	for i, b := range m.decBlocks {
		pre := prefixN("dec", i)
		add(pre+".self", b.self)
		add(pre+".cross", b.cross)
		add(pre+".ff", b.ff)
		add(pre+".ln1", b.ln1)
		add(pre+".ln2", b.ln2)
		add(pre+".ln3", b.ln3)
	}
	add("enc_norm", m.encNorm)
	add("dec_norm", m.decNorm)
	add("out", m.out)
	return out
}
