// Package seq2seq implements the paper's two sequence-to-sequence
// architectures — the Transformer and the convolutional ConvS2S — behind a
// common Model interface used by training (internal/train), decoding
// (internal/decode) and the fine-tuned template classifier
// (internal/classify).
//
// Both models map the preceding query Q_i (token ids) to the next query
// Q_{i+1}: the encoder produces a next-query representation, the decoder
// generates the target autoregressively with teacher forcing during
// training (paper Section 4.1.1).
package seq2seq

import (
	"fmt"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
)

// Arch names a model architecture.
type Arch string

// Supported architectures. The paper evaluates the transformer ("tfm")
// and ConvS2S; GRU is the RNN baseline the paper defers to its full
// version.
const (
	Transformer Arch = "transformer"
	ConvS2S     Arch = "convs2s"
	GRU         Arch = "gru"
)

// Config holds model hyper-parameters (paper Section 6.2.4 tunes heads,
// hidden size, layers, batch size, dropout and learning rate; we default
// to CPU-sized values).
type Config struct {
	Arch     Arch
	Vocab    int
	DModel   int
	Heads    int     // transformer attention heads
	Layers   int     // encoder and decoder depth
	FFHidden int     // transformer feed-forward hidden size
	Kernel   int     // ConvS2S kernel width
	MaxLen   int     // positional table size
	Dropout  float64 // applied to embeddings and block outputs in training
	// PreLN selects pre-layer-norm transformer blocks (default true; the
	// post-LN variant exists for the ablation bench).
	PostLN bool
}

// DefaultConfig returns the CPU-scale configuration used across the
// experiments.
func DefaultConfig(arch Arch, vocab int) Config {
	return Config{
		Arch:     arch,
		Vocab:    vocab,
		DModel:   32,
		Heads:    2,
		Layers:   1,
		FFHidden: 64,
		Kernel:   3,
		MaxLen:   160,
		Dropout:  0.1,
	}
}

// Model is a trainable encoder-decoder over token-id sequences.
type Model interface {
	nn.Module
	// Config returns the hyper-parameters the model was built with.
	Config() Config
	// Encode maps a source sequence to its n×d representation.
	Encode(src []int, train bool, rng *rand.Rand) *autograd.Value
	// DecodeLogits returns m×vocab logits for each position of the
	// (BOS-prefixed) target input, teacher-forced against the encoder
	// output.
	DecodeLogits(enc *autograd.Value, tgtIn []int, train bool, rng *rand.Rand) *autograd.Value
}

// New builds a model for the configuration. The seed fixes parameter
// initialization so experiments are reproducible.
func New(cfg Config, seed int64) (Model, error) {
	rng := rand.New(rand.NewSource(seed))
	switch cfg.Arch {
	case Transformer:
		return newTransformer(cfg, rng), nil
	case ConvS2S:
		return newConvS2S(cfg, rng), nil
	case GRU:
		return newGRU(cfg, rng), nil
	default:
		return nil, fmt.Errorf("seq2seq: unknown architecture %q", cfg.Arch)
	}
}

// Replicate builds a weight-sharing replica of m for data-parallel
// training: the replica's parameter Values point at the ORIGINAL weight
// tensors (zero copy, always in sync) but own private gradient buffers, so
// concurrent backward passes never race. Only gradients may be read from a
// replica; optimizer steps must run on the original.
func Replicate(m Model) (Model, error) {
	rep, err := New(m.Config(), 0)
	if err != nil {
		return nil, err
	}
	byName, err := nn.ByName(m.Params())
	if err != nil {
		return nil, err
	}
	for _, p := range rep.Params() {
		orig, ok := byName[p.Name]
		if !ok {
			return nil, fmt.Errorf("seq2seq: replica parameter %q missing from original", p.Name)
		}
		if !p.V.T.SameShape(orig.T) {
			return nil, fmt.Errorf("seq2seq: replica parameter %q shape mismatch", p.Name)
		}
		p.V.T = orig.T
	}
	return rep, nil
}

// CountParams sums the element counts of all trainable tensors (Table 3's
// parameter counts).
func CountParams(m nn.Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.V.T.Rows * p.V.T.Cols
	}
	return n
}
