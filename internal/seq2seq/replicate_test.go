package seq2seq

import (
	"testing"

	"repro/internal/autograd"
)

// TestReplicateSharesWeightsNotGrads: a replica must alias the original's
// weight tensors (so optimizer steps are visible to every worker) while
// keeping its own gradient buffers (so concurrent backward passes don't
// race), and must compute identical outputs.
func TestReplicateSharesWeightsNotGrads(t *testing.T) {
	for _, arch := range []Arch{Transformer, ConvS2S, GRU} {
		m, err := New(tinyCfg(arch), 3)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replicate(m)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		mp, rp := m.Params(), rep.Params()
		if len(mp) != len(rp) {
			t.Fatalf("%s: param count %d vs %d", arch, len(mp), len(rp))
		}
		for i := range mp {
			if mp[i].Name != rp[i].Name {
				t.Fatalf("%s: param order differs: %s vs %s", arch, mp[i].Name, rp[i].Name)
			}
			if mp[i].V.T != rp[i].V.T {
				t.Fatalf("%s: %s weight tensor not shared", arch, mp[i].Name)
			}
			if mp[i].V == rp[i].V {
				t.Fatalf("%s: %s Value shared (grads would race)", arch, mp[i].Name)
			}
			if mp[i].V.Grad == rp[i].V.Grad {
				t.Fatalf("%s: %s grad buffer shared", arch, mp[i].Name)
			}
		}

		src := []int{1, 5, 6, 7, 2}
		tgt := []int{1, 5, 6}
		a := m.DecodeLogits(m.Encode(src, false, nil), tgt, false, nil)
		b := rep.DecodeLogits(rep.Encode(src, false, nil), tgt, false, nil)
		for i := range a.T.Data {
			if a.T.Data[i] != b.T.Data[i] {
				t.Fatalf("%s: replica logits differ at %d", arch, i)
			}
		}
		autograd.Free(a)
		autograd.Free(b)

		// A weight update through the original must be visible to the
		// replica (same backing array).
		mp[0].V.T.Data[0] += 1
		if rp[0].V.T.Data[0] != mp[0].V.T.Data[0] {
			t.Fatalf("%s: weight update not visible through replica", arch)
		}
	}
}
