package seq2seq

import (
	"math"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// gruModel is the RNN seq2seq baseline (the paper's Section 3 refers the
// RNN variant to the full version; we implement a GRU encoder-decoder with
// dot-product attention, the standard pre-transformer recipe). It is the
// slowest of the three architectures — recurrence prevents the positions
// from being processed in parallel — which is exactly the contrast the
// paper draws when motivating the transformer and ConvS2S.
type gruModel struct {
	cfg Config

	srcEmb, tgtEmb   *nn.Embedding
	encCell, decCell *gruCell
	// attnOut mixes [h; context] back to d before the vocab projection.
	attnOut *nn.Linear
	out     *nn.Linear

	zeroH *autograd.Value // shared constant 1×d initial hidden state
}

// gruCell holds the three gates' projections: x-side (with bias) and
// h-side (bias folded into the x-side).
type gruCell struct {
	xz, xr, xh *nn.Linear
	hz, hr, hh *nn.Linear
	d          int
}

func newGRUCell(d int, rng *rand.Rand) *gruCell {
	return &gruCell{
		xz: nn.NewLinear(d, d, rng), xr: nn.NewLinear(d, d, rng), xh: nn.NewLinear(d, d, rng),
		hz: nn.NewLinear(d, d, rng), hr: nn.NewLinear(d, d, rng), hh: nn.NewLinear(d, d, rng),
		d: d,
	}
}

// step advances the hidden state by one input row x (1×d).
func (c *gruCell) step(x, h *autograd.Value) *autograd.Value {
	z := autograd.Sigmoid(autograd.Add(c.xz.Forward(x), c.hz.Forward(h)))
	r := autograd.Sigmoid(autograd.Add(c.xr.Forward(x), c.hr.Forward(h)))
	hTilde := autograd.Tanh(autograd.Add(c.xh.Forward(x), c.hh.Forward(autograd.Mul(r, h))))
	// h' = (1-z) ⊙ h + z ⊙ h̃ = h + z ⊙ (h̃ - h)
	delta := autograd.Add(hTilde, autograd.Scale(h, -1))
	return autograd.Add(h, autograd.Mul(z, delta))
}

func (c *gruCell) params(prefixStr string) []nn.Param {
	var out []nn.Param
	add := func(name string, l *nn.Linear) {
		for _, p := range l.Params() {
			out = append(out, nn.Param{Name: prefixStr + "." + name + "." + p.Name, V: p.V})
		}
	}
	add("xz", c.xz)
	add("xr", c.xr)
	add("xh", c.xh)
	add("hz", c.hz)
	add("hr", c.hr)
	add("hh", c.hh)
	return out
}

func newGRU(cfg Config, rng *rand.Rand) *gruModel {
	return &gruModel{
		cfg:     cfg,
		srcEmb:  nn.NewEmbedding(cfg.Vocab, cfg.DModel, rng),
		tgtEmb:  nn.NewEmbedding(cfg.Vocab, cfg.DModel, rng),
		encCell: newGRUCell(cfg.DModel, rng),
		decCell: newGRUCell(cfg.DModel, rng),
		attnOut: nn.NewLinear(2*cfg.DModel, cfg.DModel, rng),
		out:     nn.NewLinear(cfg.DModel, cfg.Vocab, rng),
		zeroH:   autograd.NewConst(tensor.New(1, cfg.DModel)),
	}
}

func (m *gruModel) Config() Config { return m.cfg }

func (m *gruModel) Encode(src []int, train bool, rng *rand.Rand) *autograd.Value {
	emb := m.srcEmb.Forward(src)
	emb = autograd.Dropout(emb, m.cfg.Dropout, rng, train)
	h := m.zeroH
	states := make([]*autograd.Value, len(src))
	for i := range src {
		h = m.encCell.step(rowOf(emb, i), h)
		states[i] = h
	}
	return autograd.ConcatRows(states...)
}

func (m *gruModel) DecodeLogits(enc *autograd.Value, tgtIn []int, train bool, rng *rand.Rand) *autograd.Value {
	emb := m.tgtEmb.Forward(tgtIn)
	emb = autograd.Dropout(emb, m.cfg.Dropout, rng, train)
	// Initial hidden state: the final encoder state.
	h := rowOf(enc, enc.T.Rows-1)
	scale := 1 / math.Sqrt(float64(m.cfg.DModel))
	outs := make([]*autograd.Value, len(tgtIn))
	for i := range tgtIn {
		x := rowOf(emb, i)
		h = m.decCell.step(x, h)
		// Dot-product attention over encoder states.
		scores := autograd.Scale(autograd.MatMul(h, autograd.TransposeV(enc)), scale)
		attn := autograd.SoftmaxRows(scores)
		ctx := autograd.MatMul(attn, enc)
		mixed := autograd.Tanh(m.attnOut.Forward(autograd.ConcatCols(h, ctx)))
		outs[i] = mixed
	}
	return m.out.Forward(autograd.ConcatRows(outs...))
}

// rowOf extracts row i of a value as a 1×cols value with gradient support.
func rowOf(v *autograd.Value, i int) *autograd.Value {
	return autograd.GatherRows(v, []int{i})
}

func (m *gruModel) Params() []nn.Param {
	var out []nn.Param
	add := func(name string, mod nn.Module) {
		for _, p := range mod.Params() {
			out = append(out, nn.Param{Name: name + "." + p.Name, V: p.V})
		}
	}
	add("src_emb", m.srcEmb)
	add("tgt_emb", m.tgtEmb)
	out = append(out, m.encCell.params("enc_cell")...)
	out = append(out, m.decCell.params("dec_cell")...)
	add("attn_out", m.attnOut)
	add("out", m.out)
	return out
}
