package seq2seq

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
)

// convS2SModel is the convolutional seq2seq architecture of Gehring et al.
// (paper Section 3): stacked width-k convolutions with GLU gating and
// residuals in the encoder; causal convolutions plus per-layer dot-product
// attention over the encoder output in the decoder.
type convS2SModel struct {
	cfg Config

	srcEmb, tgtEmb *nn.Embedding
	pos            *nn.PositionalEncoding

	encConvs []*nn.ConvGLU
	decConvs []*nn.ConvGLU
	// attnProj projects decoder states to the encoder space per layer for
	// the attention score (ConvS2S-style single-head attention).
	attnProj []*nn.Linear
	out      *nn.Linear
}

func newConvS2S(cfg Config, rng *rand.Rand) *convS2SModel {
	m := &convS2SModel{
		cfg:    cfg,
		srcEmb: nn.NewEmbedding(cfg.Vocab, cfg.DModel, rng),
		tgtEmb: nn.NewEmbedding(cfg.Vocab, cfg.DModel, rng),
		pos:    nn.NewPositionalEncoding(cfg.MaxLen, cfg.DModel),
		out:    nn.NewLinear(cfg.DModel, cfg.Vocab, rng),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.encConvs = append(m.encConvs, nn.NewConvGLU(cfg.DModel, cfg.Kernel, false, rng))
		m.decConvs = append(m.decConvs, nn.NewConvGLU(cfg.DModel, cfg.Kernel, true, rng))
		m.attnProj = append(m.attnProj, nn.NewLinear(cfg.DModel, cfg.DModel, rng))
	}
	return m
}

func (m *convS2SModel) Config() Config { return m.cfg }

func (m *convS2SModel) Encode(src []int, train bool, rng *rand.Rand) *autograd.Value {
	x := m.pos.Add(m.srcEmb.Forward(src), 0)
	x = autograd.Dropout(x, m.cfg.Dropout, rng, train)
	for _, c := range m.encConvs {
		x = c.Forward(x)
	}
	return x
}

func (m *convS2SModel) DecodeLogits(enc *autograd.Value, tgtIn []int, train bool, rng *rand.Rand) *autograd.Value {
	x := m.pos.Add(m.tgtEmb.Forward(tgtIn), 0)
	x = autograd.Dropout(x, m.cfg.Dropout, rng, train)
	scale := 1 / math.Sqrt(float64(m.cfg.DModel))
	for i, c := range m.decConvs {
		x = c.Forward(x)
		// Single-head attention over the encoder states, residual.
		q := m.attnProj[i].Forward(x)
		scores := autograd.Scale(autograd.MatMul(q, autograd.TransposeV(enc)), scale)
		attn := autograd.SoftmaxRows(scores)
		ctx := autograd.MatMul(attn, enc)
		x = autograd.Scale(autograd.Add(x, ctx), math.Sqrt(0.5))
	}
	return m.out.Forward(x)
}

func (m *convS2SModel) Params() []nn.Param {
	var out []nn.Param
	add := func(name string, mod nn.Module) {
		for _, p := range mod.Params() {
			out = append(out, nn.Param{Name: name + "." + p.Name, V: p.V})
		}
	}
	add("src_emb", m.srcEmb)
	add("tgt_emb", m.tgtEmb)
	for i := range m.encConvs {
		add(prefixN("enc_conv", i), m.encConvs[i])
	}
	for i := range m.decConvs {
		add(prefixN("dec_conv", i), m.decConvs[i])
		add(prefixN("attn_proj", i), m.attnProj[i])
	}
	add("out", m.out)
	return out
}

// prefixN builds "name0", "name1", ... block prefixes.
func prefixN(name string, i int) string { return fmt.Sprintf("%s%d", name, i) }
