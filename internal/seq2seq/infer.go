// Inference-only batched forward pass for the transformer.
//
// The serving micro-batcher stacks several requests' token sequences into
// one padded matrix (stride L = max sequence length, valid rows tracked as
// tensor.Spans) and runs a single encoder forward and a single decode-step
// loop for the whole batch. Every kernel here mirrors the exact
// floating-point operation order of the autograd forward pass in
// transformer.go/nn.go/autograd.go — same per-element accumulation order,
// same separate bias pass after the GEMM, same scale-then-mask-then-softmax
// attention pipeline — so each request's outputs are bit-identical to what
// the per-request path produces (decode_test.go and the servepool property
// tests enforce this). Unlike the autograd path it builds no graph nodes
// and allocates no gradient buffers, which is where most of the batched
// speedup comes from on a single-core box.
//
// Only the pre-LN transformer implements this path; NewInferBatch returns
// nil for other architectures (and for post-LN) and callers fall back to
// the sequential code.
package seq2seq

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// InferBatch holds the encoder state of one padded batch: the stacked
// encoder output, the per-sequence spans, and (lazily) the cross-attention
// key/value projections reused by every decode step. Batch-lifetime
// tensors live in a BatchScratch ledger released by Close. An InferBatch
// is not safe for concurrent use.
type InferBatch struct {
	m     *transformerModel
	sc    *tensor.BatchScratch
	lens  []int
	spans []tensor.Span
	enc   *tensor.Tensor

	// Cross-attention K/V per decoder block, projected from enc once on
	// the first decode step (the sequential path recomputes them every
	// step; the projection is row-local so caching is bit-identical).
	crossK, crossV []*tensor.Tensor

	logits *tensor.Tensor // last-step logits, reused between steps
}

// NewInferBatch encodes srcs as one padded batch and returns the batch
// handle, or nil when m has no batched path (non-transformer architectures
// and the post-LN variant fall back to sequential inference). The caller
// must Close the returned batch.
func NewInferBatch(m Model, srcs [][]int) *InferBatch {
	tm, ok := m.(*transformerModel)
	if !ok || tm.cfg.PostLN || len(srcs) == 0 {
		return nil
	}
	b := len(srcs)
	lens := make([]int, b)
	stride := 0
	for i, s := range srcs {
		lens[i] = len(s)
		if len(s) > stride {
			stride = len(s)
		}
	}
	spans := make([]tensor.Span, b)
	for i := range srcs {
		spans[i] = tensor.Span{Lo: i * stride, Hi: i*stride + lens[i]}
	}
	ib := &InferBatch{m: tm, sc: tensor.Batches.Get(), lens: lens, spans: spans}
	ib.enc = ib.encode(srcs, stride)
	return ib
}

// Size returns the number of sequences in the batch.
func (ib *InferBatch) Size() int { return len(ib.lens) }

// EncSegment returns sequence i's encoder output as a lens[i]×d view into
// the stacked batch. The view is valid until Close.
func (ib *InferBatch) EncSegment(i int) *tensor.Tensor {
	d := ib.enc.Cols
	s := ib.spans[i]
	return tensor.FromSlice(s.Len(), d, ib.enc.Data[s.Lo*d:s.Hi*d])
}

// Close releases every batch-lifetime tensor. The batch (and any views
// obtained from it) must not be used afterward.
func (ib *InferBatch) Close() {
	if ib.sc == nil {
		return
	}
	if ib.logits != nil {
		tensor.Shared.Put(ib.logits)
		ib.logits = nil
	}
	tensor.Batches.Put(ib.sc)
	ib.sc = nil
	ib.enc, ib.crossK, ib.crossV = nil, nil, nil
}

// encode runs the batched encoder forward, mirroring
// transformerModel.Encode with train=false (dropout is the identity).
func (ib *InferBatch) encode(srcs [][]int, stride int) *tensor.Tensor {
	m := ib.m
	d := m.cfg.DModel
	tmp := tensor.Batches.Get()
	defer tensor.Batches.Put(tmp)

	x := tmp.Get(len(srcs)*stride, d)
	embedSegments(x, m.srcEmb, m.pos, srcs, ib.spans)
	for _, blk := range m.encBlocks {
		n := layerNormSpans(tmp, blk.ln1, x, ib.spans)
		addSpans(x, attnSelf(tmp, blk.attn, n, ib.spans, nil), ib.spans)
		n2 := layerNormSpans(tmp, blk.ln2, x, ib.spans)
		addSpans(x, feedForwardSpans(tmp, blk.ff, n2, ib.spans), ib.spans)
	}
	// encNorm output is batch-lifetime: decode steps and classification
	// heads read it for as long as the batch lives.
	enc := ib.sc.Get(x.Rows, d)
	layerNormSpansInto(enc, m.encNorm, x, ib.spans)
	return enc
}

// DecodeLastLogits runs one batched decode step: prefixes (all the same
// length — decoding is lockstep) are stacked, run through the decoder, and
// the logits of each prefix's last position are returned as one
// len(prefixes)×vocab tensor (row i for prefix i). segs[i] names the
// encoder segment prefix i attends over, so several beams of one request
// share its encoder state. The returned tensor is reused by the next call.
func (ib *InferBatch) DecodeLastLogits(prefixes [][]int, segs []int) *tensor.Tensor {
	m := ib.m
	d := m.cfg.DModel
	n := len(prefixes)
	if n == 0 || len(segs) != n {
		panic(fmt.Sprintf("seq2seq: decode batch %d prefixes / %d segs", n, len(segs)))
	}
	T := len(prefixes[0])
	for _, p := range prefixes {
		if len(p) != T {
			panic("seq2seq: decode batch prefixes must share one length")
		}
	}
	ib.ensureCrossKV()

	tmp := tensor.Batches.Get()
	defer tensor.Batches.Put(tmp)

	// Uniform lockstep layout: item i owns rows [i*T, (i+1)*T), no pads.
	spans := make([]tensor.Span, n)
	for i := range spans {
		spans[i] = tensor.Span{Lo: i * T, Hi: (i + 1) * T}
	}
	x := tmp.Get(n*T, d)
	embedSegments(x, m.tgtEmb, m.pos, prefixes, spans)

	// One causal mask serves every item: all segments are T×T.
	mask := tmp.Get(T, T)
	nn.FillCausalMask(mask)

	for bi, blk := range m.decBlocks {
		nrm := layerNormSpans(tmp, blk.ln1, x, spans)
		addSpans(x, attnSelf(tmp, blk.self, nrm, spans, mask), spans)
		n2 := layerNormSpans(tmp, blk.ln2, x, spans)
		addSpans(x, attnCross(tmp, blk.cross, n2, spans, segs, ib.spans, ib.crossK[bi], ib.crossV[bi]), spans)
		n3 := layerNormSpans(tmp, blk.ln3, x, spans)
		addSpans(x, feedForwardSpans(tmp, blk.ff, n3, spans), spans)
	}

	// Only each item's last position feeds the next-token distribution;
	// decNorm and the output projection are row-local, so trimming to the
	// last rows here is bit-identical to the sequential full-sequence
	// pass and saves a vocab-width GEMM over the other T-1 rows.
	last := tmp.Get(n, d)
	for i := range spans {
		copy(last.Row(i), x.Row(spans[i].Hi-1))
	}
	full := []tensor.Span{{Lo: 0, Hi: n}}
	lastN := layerNormSpans(tmp, m.decNorm, last, full)

	if ib.logits != nil {
		tensor.Shared.Put(ib.logits)
	}
	ib.logits = tensor.Shared.Get(n, m.cfg.Vocab)
	tensor.MatMulSpansInto(ib.logits, lastN, m.out.W.T, full)
	tensor.AddRowSpansInto(ib.logits, ib.logits, m.out.B.T, full)
	return ib.logits
}

// ensureCrossKV projects the stacked encoder output through every decoder
// block's cross-attention Wk/Wv once per batch.
func (ib *InferBatch) ensureCrossKV() {
	if ib.crossK != nil {
		return
	}
	m := ib.m
	ib.crossK = make([]*tensor.Tensor, len(m.decBlocks))
	ib.crossV = make([]*tensor.Tensor, len(m.decBlocks))
	for i, blk := range m.decBlocks {
		ib.crossK[i] = linearSpans(ib.sc, blk.cross.Wk, ib.enc, ib.spans)
		ib.crossV[i] = linearSpans(ib.sc, blk.cross.Wv, ib.enc, ib.spans)
	}
}

// embedSegments writes the scaled token embedding plus positional encoding
// for each sequence into its span of x (positions restart at 0 per
// segment). The fused per-element form w[id][j]*sqrt(d) + pos[p][j] is the
// same two operations, in the same order, as the sequential
// Scale(Embedding(...)) followed by AddTableRows.
func embedSegments(x *tensor.Tensor, emb *nn.Embedding, pos *nn.PositionalEncoding, seqs [][]int, spans []tensor.Span) {
	scale := math.Sqrt(float64(emb.D))
	table := pos.Table()
	w := emb.W.T
	for si, seq := range seqs {
		if len(seq) > table.Rows {
			panic(fmt.Sprintf("nn: sequence length %d exceeds positional table %d", len(seq), table.Rows))
		}
		for p, id := range seq {
			wrow := w.Row(id)
			trow := table.Row(p)
			dst := x.Row(spans[si].Lo + p)
			for j := range dst {
				dst[j] = wrow[j]*scale + trow[j]
			}
		}
	}
}

// linearSpans applies y = xW + b to the valid rows, mirroring
// nn.Linear.Forward: the GEMM accumulates into zeroed rows, then the bias
// is a separate broadcast pass.
func linearSpans(sc *tensor.BatchScratch, l *nn.Linear, x *tensor.Tensor, spans []tensor.Span) *tensor.Tensor {
	out := sc.Get(x.Rows, l.W.T.Cols)
	tensor.MatMulSpansInto(out, x, l.W.T, spans)
	tensor.AddRowSpansInto(out, out, l.B.T, spans)
	return out
}

// layerNormSpans normalizes the valid rows into a fresh scratch tensor.
func layerNormSpans(sc *tensor.BatchScratch, ln *nn.LayerNorm, x *tensor.Tensor, spans []tensor.Span) *tensor.Tensor {
	out := sc.Get(x.Rows, x.Cols)
	layerNormSpansInto(out, ln, x, spans)
	return out
}

// layerNormSpansInto mirrors autograd.LayerNorm's per-row arithmetic:
// mean, then variance (both ascending sums divided by cols), inverse
// standard deviation through math.Sqrt, and xhat*gain+bias per element.
func layerNormSpansInto(out *tensor.Tensor, ln *nn.LayerNorm, x *tensor.Tensor, spans []tensor.Span) {
	cols := x.Cols
	gain, bias := ln.Gain.T.Data, ln.Bias.T.Data
	eps := ln.Eps()
	for _, s := range spans {
		for r := s.Lo; r < s.Hi; r++ {
			src, dst := x.Row(r), out.Row(r)
			mean := 0.0
			for _, v := range src {
				mean += v
			}
			mean /= float64(cols)
			variance := 0.0
			for _, v := range src {
				d := v - mean
				variance += d * d
			}
			variance /= float64(cols)
			inv := 1 / math.Sqrt(variance+eps)
			for j, v := range src {
				xh := (v - mean) * inv
				dst[j] = xh*gain[j] + bias[j]
			}
		}
	}
}

// addSpans adds delta into x in place over the valid rows (the residual
// connection; elementwise, so in-place matches autograd.Add's bits).
func addSpans(x, delta *tensor.Tensor, spans []tensor.Span) {
	for _, s := range spans {
		lo, hi := s.Lo*x.Cols, s.Hi*x.Cols
		xd, dd := x.Data[lo:hi], delta.Data[lo:hi]
		for i, v := range dd {
			xd[i] += v
		}
	}
}

// feedForwardSpans mirrors nn.FeedForward.Forward: L1, GELU (in place —
// elementwise, so the bits match the out-of-place sequential op), L2.
func feedForwardSpans(sc *tensor.BatchScratch, ff *nn.FeedForward, x *tensor.Tensor, spans []tensor.Span) *tensor.Tensor {
	h := linearSpans(sc, ff.L1, x, spans)
	const c = 0.7978845608028654 // sqrt(2/pi), as in autograd.GELU
	for _, s := range spans {
		seg := h.Data[s.Lo*h.Cols : s.Hi*h.Cols]
		for i, v := range seg {
			seg[i] = 0.5 * v * (1 + math.Tanh(c*(v+0.044715*v*v*v)))
		}
	}
	return linearSpans(sc, ff.L2, h, spans)
}

// attnSelf runs multi-head self-attention per segment: queries, keys and
// values all come from x's span. mask, when non-nil, is the shared
// additive causal bias (every segment must then be mask.Rows long).
func attnSelf(sc *tensor.BatchScratch, a *nn.MultiHeadAttention, x *tensor.Tensor, spans []tensor.Span, mask *tensor.Tensor) *tensor.Tensor {
	q := linearSpans(sc, a.Wq, x, spans)
	k := linearSpans(sc, a.Wk, x, spans)
	v := linearSpans(sc, a.Wv, x, spans)
	pairs := make([]spanPair, len(spans))
	for i, s := range spans {
		pairs[i] = spanPair{q: s, kv: s}
	}
	return attnCore(sc, a, q, k, v, spans, pairs, mask)
}

// attnCross runs multi-head cross-attention: queries from x's spans, keys
// and values from the cached encoder projections, segment segs[i] for
// query segment i (encSpans indexes K/V's stacked layout).
func attnCross(sc *tensor.BatchScratch, a *nn.MultiHeadAttention, x *tensor.Tensor, spans []tensor.Span, segs []int, encSpans []tensor.Span, k, v *tensor.Tensor) *tensor.Tensor {
	q := linearSpans(sc, a.Wq, x, spans)
	pairs := make([]spanPair, len(spans))
	for i, s := range spans {
		pairs[i] = spanPair{q: s, kv: encSpans[segs[i]]}
	}
	return attnCore(sc, a, q, k, v, spans, pairs, nil)
}

// spanPair names one attention unit: query rows attend over key/value rows.
type spanPair struct{ q, kv tensor.Span }

// attnCore mirrors nn.MultiHeadAttention.Forward per segment: per head,
// slice the head's columns, score q·kᵀ, scale, add the mask, softmax, and
// apply to values; heads concatenate into the output projection. The
// per-head column copies reproduce autograd.SliceCols; scale/mask run in
// place on the scores (elementwise, bit-equal to the sequential
// out-of-place ops); MatMulBTInto matches MatMul(q, Transpose(k)) because
// both accumulate the dot product in ascending index order from 0.
func attnCore(sc *tensor.BatchScratch, a *nn.MultiHeadAttention, q, k, v *tensor.Tensor, outSpans []tensor.Span, pairs []spanPair, mask *tensor.Tensor) *tensor.Tensor {
	d := q.Cols
	dk := a.Dk
	maxQ, maxK := 0, 0
	for _, p := range pairs {
		if p.q.Len() > maxQ {
			maxQ = p.q.Len()
		}
		if p.kv.Len() > maxK {
			maxK = p.kv.Len()
		}
	}
	concat := sc.Get(q.Rows, d)
	qh := sc.Get(maxQ, dk)
	kh := sc.Get(maxK, dk)
	vh := sc.Get(maxK, dk)
	score := sc.Get(maxQ, maxK)
	hseg := sc.Get(maxQ, dk)
	scale := 1 / math.Sqrt(float64(dk))

	for h := 0; h < a.Heads; h++ {
		lo := h * dk
		for _, p := range pairs {
			nq, nk := p.q.Len(), p.kv.Len()
			if nq == 0 || nk == 0 {
				continue
			}
			qs := tensor.FromSlice(nq, dk, qh.Data[:nq*dk])
			ks := tensor.FromSlice(nk, dk, kh.Data[:nk*dk])
			vs := tensor.FromSlice(nk, dk, vh.Data[:nk*dk])
			copyCols(qs, q, p.q, lo)
			copyCols(ks, k, p.kv, lo)
			copyCols(vs, v, p.kv, lo)

			sm := tensor.FromSlice(nq, nk, score.Data[:nq*nk])
			tensor.MatMulBTInto(sm, qs, ks, false)
			for i, x := range sm.Data {
				sm.Data[i] = x * scale
			}
			if mask != nil {
				if mask.Rows != nq || mask.Cols != nk {
					panic(fmt.Sprintf("seq2seq: attention mask %dx%d for %dx%d scores", mask.Rows, mask.Cols, nq, nk))
				}
				for i, mv := range mask.Data {
					sm.Data[i] += mv
				}
			}
			tensor.SoftmaxRowsInto(sm, sm)

			hs := tensor.FromSlice(nq, dk, hseg.Data[:nq*dk])
			tensor.MatMulInto(hs, sm, vs, false)
			for r := 0; r < nq; r++ {
				copy(concat.Row(p.q.Lo+r)[lo:lo+dk], hs.Row(r))
			}
		}
	}
	return linearSpans(sc, a.Wo, concat, outSpans)
}

// copyCols copies src's span rows, columns [lo, lo+dst.Cols), into dst.
func copyCols(dst, src *tensor.Tensor, s tensor.Span, lo int) {
	w := dst.Cols
	for r := 0; r < dst.Rows; r++ {
		copy(dst.Row(r), src.Row(s.Lo+r)[lo:lo+w])
	}
}
