// Package lint is a project-specific static-analysis driver built purely
// on the standard library (go/parser, go/ast, go/types, go/importer — no
// golang.org/x/tools). It enforces the invariants PRs 2–3 established
// dynamically: bit-deterministic training (no wall clocks or globally
// seeded randomness in the numeric core, no map-iteration-order leaks
// into outputs or float accumulators), pool lifecycle discipline for the
// tensor.Shared workspace arena, and durable write paths in the
// checkpoint/modeldir envelope code.
//
// Each analyzer emits diagnostics of the form
//
//	file:line:col: [rule] message
//
// and the cmd/qrec-lint driver exits non-zero when any survive the
// //lint:ignore filter (see ignore.go).
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one named rule. Run inspects a type-checked package via the
// Pass and reports findings. Packages, when non-nil, restricts the
// analyzer to exactly those import paths (used by detrand and durio,
// whose rules only make sense in the deterministic respectively durable
// subsets of the tree).
type Analyzer struct {
	Name     string
	Doc      string
	Packages []string
	// Exclude lists import paths skipped even when Packages is nil. It
	// keeps maporder and detrand disjoint: inside the deterministic core
	// the map-order rule is owned by detrand.
	Exclude []string
	Run     func(*Pass)
}

func (a *Analyzer) appliesTo(path string) bool {
	for _, p := range a.Exclude {
		if p == path {
			return false
		}
	}
	if a.Packages == nil {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// Pass hands one package to one analyzer.
type Pass struct {
	Pkg  *Package
	rule string
	out  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of a driver run.
type Result struct {
	// Diags are the surviving findings, sorted by position.
	Diags []Diagnostic
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
	// SuppressedDiags are those silenced findings themselves, sorted by
	// position — surfaced by the -json output mode so CI can audit the
	// ignore set without grepping for directives.
	SuppressedDiags []Diagnostic
}

// Run applies every applicable analyzer to every package, filters the
// findings through //lint:ignore directives, and returns the survivors
// sorted by file, line and column. Malformed or unused directives are
// themselves reported under the "lint" rule so the escape hatch stays a
// small, auditable set.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	active := make(map[string]bool, len(analyzers))
	for _, az := range analyzers {
		active[az.Name] = true
	}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, az := range analyzers {
			if !az.appliesTo(pkg.Path) {
				continue
			}
			az.Run(&Pass{Pkg: pkg, rule: az.Name, out: &diags})
		}
		kept, suppressed, directiveDiags := filterIgnored(pkg, diags, active)
		res.Diags = append(res.Diags, kept...)
		res.Diags = append(res.Diags, directiveDiags...)
		res.SuppressedDiags = append(res.SuppressedDiags, suppressed...)
		res.Suppressed += len(suppressed)
	}
	sortDiags(res.Diags)
	sortDiags(res.SuppressedDiags)
	return res
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// Module-relative import paths of the packages whose numerics must be a
// pure function of (seed, inputs): the tensor/autograd compute core, the
// model and training stack, the checkpoint envelope their resume proofs
// depend on, the overload controllers, and the gateway routing tier
// (probe timers and backoff jitter are clock/RNG-injected so
// breaker/limiter/retry behavior replays exactly in tests).
func deterministicPackages(module string) []string {
	names := []string{"tensor", "autograd", "nn", "seq2seq", "train", "decode", "classify", "checkpoint", "overload", "gateway"}
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = module + "/internal/" + n
	}
	return paths
}

// durablePackages hold the crash-safe write paths, plus the gateway: its
// proxy loop closes upstream bodies and relays payloads, and a dropped
// error there silently truncates a client response the way a torn write
// silently truncates an artifact.
func durablePackages(module string) []string {
	return []string{
		module + "/internal/checkpoint",
		module + "/internal/modeldir",
		module + "/internal/gateway",
	}
}

// servingPackages hold the live request path — the tier that spawns
// per-request goroutines, juggles mutexes and must respect caller
// cancellation. The concurrency analyzers (goleak, ctxflow) are scoped
// here; lockbal and atomicmix run tree-wide.
func servingPackages(module string) []string {
	return []string{
		module + "/internal/servepool",
		module + "/internal/gateway",
		module + "/internal/overload",
		module + "/internal/server",
	}
}

// DefaultAnalyzers returns the full suite wired for the given module path
// (e.g. "repro").
func DefaultAnalyzers(module string) []*Analyzer {
	det := deterministicPackages(module)
	serving := servingPackages(module)
	return []*Analyzer{
		DetRand(det),
		MapOrder(det),
		PoolSafe(),
		FloatEq(),
		DurIO(durablePackages(module)),
		LockBal(),
		GoLeak(serving),
		CtxFlow(serving),
		AtomicMix(),
	}
}

// SelectAnalyzers filters the default suite down to the named rules,
// preserving suite order. Unknown names are an error listing the valid
// rules, so a typo in -rules fails loudly instead of silently linting
// with nothing.
func SelectAnalyzers(all []*Analyzer, names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	valid := make([]string, 0, len(all))
	for _, az := range all {
		byName[az.Name] = az
		valid = append(valid, az.Name)
	}
	want := map[string]bool{}
	for _, n := range names {
		if byName[n] == nil {
			return nil, fmt.Errorf("unknown rule %q (valid rules: %s)", n, joinNames(valid))
		}
		want[n] = true
	}
	var out []*Analyzer
	for _, az := range all {
		if want[az.Name] {
			out = append(out, az)
		}
	}
	return out, nil
}

func joinNames(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
