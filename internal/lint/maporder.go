package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body leaks the randomized
// iteration order into observable state: appending to an outer slice
// (unless the slice is sorted afterwards in the same function — the
// collect-then-sort idiom), accumulating into an outer float (float
// addition is not associative, so summation order changes the result
// bits), or writing output (fmt printing, io.Writer/strings.Builder
// methods). Reports and BENCH_*.json must be byte-stable run to run; a
// ranged map feeding any of these silently is not.
//
// The deterministic core packages are excluded here: inside them the
// same engine runs under detrand, which owns all determinism rules.
func MapOrder(exclude []string) *Analyzer {
	return &Analyzer{
		Name:    "maporder",
		Doc:     "map iteration order must not leak into outputs, slices, or float accumulators",
		Exclude: exclude,
		Run: func(p *Pass) {
			forEachMapRange(p.Pkg, func(rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
				for _, leak := range mapRangeLeaks(p.Pkg, rs, fnBody) {
					p.Reportf(leak.pos, "%s inside range over map: iteration order is randomized; collect and sort the keys first", leak.what)
				}
			})
		},
	}
}

// mapLeak is one order-sensitive effect inside a range-over-map body.
type mapLeak struct {
	pos  token.Pos
	what string
}

// forEachMapRange calls fn for every range statement over a map-typed
// expression, along with the innermost enclosing function body (used for
// the sorted-afterwards exemption).
func forEachMapRange(pkg *Package, fn func(rs *ast.RangeStmt, fnBody *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			fn(rs, enclosingFuncBody(stack))
			return true
		})
	}
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// mapRangeLeaks returns the order-sensitive effects of a range-over-map
// body. fnBody may be nil (no exemption scan possible).
func mapRangeLeaks(pkg *Package, rs *ast.RangeStmt, fnBody *ast.BlockStmt) []mapLeak {
	info := pkg.Info
	var leaks []mapLeak
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(s.Lhs) == 1 && isFloat(info.TypeOf(s.Lhs[0])) {
					if id := rootIdent(s.Lhs[0]); id != nil && declaredOutside(info, id, rs) {
						leaks = append(leaks, mapLeak{s.Pos(), "accumulating into float " + id.Name})
					}
				}
			case token.ASSIGN:
				for i := range s.Lhs {
					if i >= len(s.Rhs) {
						break
					}
					id, ok := s.Lhs[i].(*ast.Ident)
					if !ok || !declaredOutside(info, id, rs) {
						continue
					}
					obj := info.ObjectOf(id)
					if isAppendTo(info, s.Rhs[i], obj) {
						if !sortedAfter(pkg, fnBody, rs, obj) {
							leaks = append(leaks, mapLeak{s.Pos(), "appending to slice " + id.Name})
						}
					} else if isFloat(info.TypeOf(s.Lhs[i])) && mentionsObject(info, s.Rhs[i], obj) {
						leaks = append(leaks, mapLeak{s.Pos(), "accumulating into float " + id.Name})
					}
				}
			}
		case *ast.CallExpr:
			if what := outputCall(info, rs, s); what != "" {
				leaks = append(leaks, mapLeak{s.Pos(), what})
			}
		}
		return true
	})
	return leaks
}

// isAppendTo reports whether expr is append(x, ...) growing obj itself.
func isAppendTo(info *types.Info, expr ast.Expr, obj types.Object) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := info.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// outputCall classifies a call inside a map-range body as output: fmt
// printing, or a Write*/Flush method on a writer declared outside the
// loop (a per-iteration local buffer is order-safe until it, in turn,
// escapes).
func outputCall(info *types.Info, rs *ast.RangeStmt, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if importedPackage(info, sel.X) == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "writing output via fmt." + name
		}
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Flush":
	default:
		return ""
	}
	if id := rootIdent(sel.X); id != nil && !declaredOutside(info, id, rs) {
		return ""
	}
	return "writing output via " + name
}

// sortedAfter reports whether obj (a slice collecting map keys) is
// passed to a sort.* or slices.Sort* call after the range statement in
// the same function — the blessed collect-then-sort idiom.
func sortedAfter(pkg *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil || obj == nil {
		return false
	}
	info := pkg.Info
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch importedPackage(info, sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
