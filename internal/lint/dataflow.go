package lint

import "go/ast"

// Forward dataflow over a funcCFG.
//
// Facts are powersets of small per-entity states: a flowFacts maps an
// entity key (a pooled variable, a lock expression) to a bitmask of
// states the entity MAY be in at a program point. The join is bitwise
// union, which makes every analysis a may-analysis over states — and a
// must-analysis is read off the same facts by checking that exactly one
// state bit is set ("released on every path" = the Released bit and no
// other). Transfer functions are monotone (they only move or add bits),
// so the worklist iteration reaches a fixpoint.
//
// The engine runs in two phases:
//
//  1. solve: iterate block transfer to fixpoint, yielding the in-fact of
//     every block;
//  2. report: replay each block once from its in-fact, calling the
//     analysis's check hook before applying each node's transfer, so
//     diagnostics see the state that held immediately before the node.

// flowFacts maps entity key -> bitmask of possible states. Absent keys
// are "not yet tracked" (bottom).
type flowFacts map[string]uint8

func (f flowFacts) clone() flowFacts {
	g := make(flowFacts, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

// join unions other into f, reporting whether f changed.
func (f flowFacts) join(other flowFacts) bool {
	changed := false
	for k, v := range other {
		if old, ok := f[k]; !ok || old|v != old {
			f[k] = old | v
			changed = true
		}
	}
	return changed
}

// flowAnalysis is one dataflow client. transfer mutates the fact map for
// a node; check (optional, report phase only) observes the fact that
// holds immediately before the node executes.
type flowAnalysis struct {
	transfer func(n ast.Node, f flowFacts)
	check    func(n ast.Node, f flowFacts)
}

// run solves the analysis over the CFG and replays it for reporting.
// entry seeds the entry block. It returns the in-facts of the exit and
// panic-exit blocks (joined over predecessors), for end-of-function
// checks.
func (a *flowAnalysis) run(c *funcCFG, entry flowFacts) (exitIn, panicIn flowFacts) {
	in := make([]flowFacts, len(c.blocks))
	for i := range in {
		in[i] = flowFacts{}
	}
	in[c.entry.index] = entry.clone()

	apply := func(b *cfgBlock, f flowFacts) flowFacts {
		for _, n := range b.nodes {
			a.transfer(n, f)
		}
		return f
	}

	// Worklist to fixpoint.
	work := []*cfgBlock{c.entry}
	queued := make([]bool, len(c.blocks))
	queued[c.entry.index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.index] = false
		out := apply(b, in[b.index].clone())
		for _, s := range b.succs {
			if in[s.index].join(out) && !queued[s.index] {
				queued[s.index] = true
				work = append(work, s)
			}
		}
	}

	// Report phase: replay each reachable block once.
	if a.check != nil {
		reachable := make([]bool, len(c.blocks))
		reachable[c.entry.index] = true
		var mark func(b *cfgBlock)
		mark = func(b *cfgBlock) {
			for _, s := range b.succs {
				if !reachable[s.index] {
					reachable[s.index] = true
					mark(s)
				}
			}
		}
		mark(c.entry)
		for _, b := range c.blocks {
			if !reachable[b.index] {
				continue
			}
			f := in[b.index].clone()
			for _, n := range b.nodes {
				a.check(n, f)
				a.transfer(n, f)
			}
		}
	}
	return in[c.exit.index], in[c.panicExit.index]
}

// forEachFuncBody applies fn to every function body in the package:
// declared functions and methods, and every function literal (each
// analyzed as its own flow universe).
func forEachFuncBody(pkg *Package, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, nil, d.Body)
				}
			case *ast.FuncLit:
				fn(nil, d, d.Body)
			}
			return true
		})
	}
}
