package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// GoLeak flags goroutine bodies in the serving tier that can block
// forever on a channel: a bare send or receive (or a single-case select
// with no default) on an unbuffered channel made in the surrounding
// function. If every receiver gives up — a request times out, a caller
// returns early — the goroutine parks on the channel for the life of
// the process. The escape hatches the serving code is expected to use:
//
//   - give the channel capacity for every value the goroutine can send
//     (make(chan T, n)), so the send completes even if nobody reads;
//   - select over the operation together with ctx.Done() (or any second
//     case / default), so cancellation unblocks the goroutine.
//
// Channels whose origin is not visible (parameters, struct fields,
// package vars) are not second-guessed — their buffering discipline
// belongs to their owner. Scoped to the packages that spawn per-request
// goroutines.
func GoLeak(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "goleak",
		Doc:      "goroutines must not block forever on unbuffered channels: buffer the channel or select on ctx.Done",
		Packages: packages,
		Run:      runGoLeak,
	}
}

func runGoLeak(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fnBody := enclosingBody(n)
			if fnBody == nil {
				return true
			}
			ast.Inspect(fnBody, func(m ast.Node) bool {
				g, ok := m.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if ok {
					checkGoroutineBody(p, info, fnBody, lit.Body)
				}
				return true
			})
			return false
		})
	}
}

// enclosingBody returns n's body when n declares a top-level function
// universe to scan for go statements.
func enclosingBody(n ast.Node) *ast.BlockStmt {
	if d, ok := n.(*ast.FuncDecl); ok {
		return d.Body
	}
	return nil
}

// checkGoroutineBody walks one `go func(){...}()` body looking for
// channel operations that can block forever.
func checkGoroutineBody(p *Pass, info *types.Info, outer, body *ast.BlockStmt) {
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		var ch ast.Expr
		var pos token.Pos
		var verb string
		switch s := n.(type) {
		case *ast.SendStmt:
			ch, pos, verb = s.Chan, s.Pos(), "send on"
		case *ast.UnaryExpr:
			if s.Op != token.ARROW {
				return true
			}
			ch, pos, verb = s.X, s.Pos(), "receive from"
		case *ast.RangeStmt:
			t := info.TypeOf(s.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			ch, pos, verb = s.X, s.Pos(), "range over"
		default:
			return true
		}
		if selectExempts(stack) {
			return true
		}
		if !madeUnbuffered(info, outer, ch) {
			return true
		}
		p.Reportf(pos, "goroutine can block forever: %s unbuffered channel %s with no ctx.Done select — buffer the channel or add a cancellation case", verb, exprText(ch))
		return true
	})
}

// selectExempts reports whether the innermost enclosing select (within
// the goroutine body) has an escape: two or more cases, or a default.
// A single-case select blocks exactly like the bare operation.
func selectExempts(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit:
			return false // nested literal: its ops are its own problem
		case *ast.SelectStmt:
			cases := 0
			hasDefault := false
			for _, c := range s.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					cases++
				}
			}
			return hasDefault || cases >= 2
		}
	}
	return false
}

// madeUnbuffered reports whether ch resolves to a local variable whose
// make call (anywhere in the enclosing function body) is visibly
// unbuffered: make(chan T) or make(chan T, 0). Buffered makes, non-make
// origins and unknown capacities all return false (lenient).
func madeUnbuffered(info *types.Info, outer *ast.BlockStmt, ch ast.Expr) bool {
	root := rootIdent(ch)
	if root == nil {
		return false
	}
	obj := info.ObjectOf(root)
	if obj == nil {
		return false
	}
	found := false
	unbuffered := false
	consider := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || info.ObjectOf(id) != obj {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "make" {
			return
		}
		t := info.TypeOf(call)
		if t == nil {
			return
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		found = true
		if len(call.Args) < 2 {
			unbuffered = true
			return
		}
		if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
			if cap, exact := constant.Int64Val(tv.Value); exact && cap == 0 {
				unbuffered = true
			}
		}
	}
	ast.Inspect(outer, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i := range s.Lhs {
				if i < len(s.Rhs) {
					consider(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					consider(name, s.Values[i])
				}
			}
		}
		return true
	})
	return found && unbuffered
}

// exprText renders a short source-like form of a channel expression for
// diagnostics (best effort; falls back to "channel").
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	}
	return "channel"
}
