package lint

import "testing"

func TestShadowTmp(t *testing.T) {
	pkg := loadFixture(t, "shadowtmp")
	res := Run([]*Package{pkg}, []*Analyzer{PoolSafe()})
	for _, d := range res.Diags {
		t.Logf("diag: %s:%d [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
	}
	if len(res.Diags) != 0 {
		t.Errorf("expected clean, got %d diags", len(res.Diags))
	}
}
