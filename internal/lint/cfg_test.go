package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// cfgFor parses a single function body and builds its CFG (no type info:
// panic recognition falls back to the syntactic check).
func cfgFor(t *testing.T, body string) (*funcCFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	decl := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(decl.Body, nil), fset
}

// reachableLines walks the CFG from entry and collects the source lines
// of every node in a reachable block.
func reachableLines(c *funcCFG, fset *token.FileSet) map[int]bool {
	seen := make([]bool, len(c.blocks))
	lines := map[int]bool{}
	var mark func(b *cfgBlock)
	mark = func(b *cfgBlock) {
		if seen[b.index] {
			return
		}
		seen[b.index] = true
		for _, n := range b.nodes {
			if em, ok := n.(endMarker); ok {
				lines[fset.Position(em.Rbrace).Line] = true
				continue
			}
			lines[fset.Position(n.Pos()).Line] = true
		}
		for _, s := range b.succs {
			mark(s)
		}
	}
	mark(c.entry)
	return lines
}

// sinkReachable reports whether walking from entry reaches the given
// sink block.
func sinkReachable(c *funcCFG, sink *cfgBlock) bool {
	seen := make([]bool, len(c.blocks))
	var mark func(b *cfgBlock) bool
	mark = func(b *cfgBlock) bool {
		if b == sink {
			return true
		}
		if seen[b.index] {
			return false
		}
		seen[b.index] = true
		for _, s := range b.succs {
			if mark(s) {
				return true
			}
		}
		return false
	}
	return mark(c.entry)
}

// lineOf finds the 1-based line (within the whole synthesized file) of
// the first body line containing marker text.
func lineOf(t *testing.T, body, marker string) int {
	t.Helper()
	for i, l := range strings.Split(body, "\n") {
		if strings.Contains(l, marker) {
			return i + 3 // package line + func line + 1-based
		}
	}
	t.Fatalf("marker %q not in body:\n%s", marker, body)
	return 0
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	body := `x := 1
return
x = 2 // dead`
	c, fset := cfgFor(t, body)
	lines := reachableLines(c, fset)
	if !lines[lineOf(t, body, "x := 1")] {
		t.Error("statement before return not reachable")
	}
	if lines[lineOf(t, body, "dead")] {
		t.Error("statement after return marked reachable")
	}
}

func TestCFGIfJoin(t *testing.T) {
	body := `if cond() {
	a()
} else {
	b()
}
after()`
	c, fset := cfgFor(t, body)
	lines := reachableLines(c, fset)
	for _, m := range []string{"a()", "b()", "after()"} {
		if !lines[lineOf(t, body, m)] {
			t.Errorf("%s not reachable through the if join", m)
		}
	}
}

func TestCFGInfiniteForHasNoFallThrough(t *testing.T) {
	body := `for {
	spin()
}
after() // dead: only break could get here`
	c, fset := cfgFor(t, body)
	lines := reachableLines(c, fset)
	if !lines[lineOf(t, body, "spin()")] {
		t.Error("loop body not reachable")
	}
	if lines[lineOf(t, body, "after()")] {
		t.Error("code after a condition-less for loop marked reachable without a break")
	}
	if sinkReachable(c, c.exit) {
		t.Error("exit reachable from a function that can only spin")
	}
}

func TestCFGBreakEscapesInfiniteFor(t *testing.T) {
	body := `for {
	if done() {
		break
	}
}
after()`
	c, fset := cfgFor(t, body)
	if !reachableLines(c, fset)[lineOf(t, body, "after()")] {
		t.Error("break does not reach the code after the loop")
	}
}

func TestCFGSwitchDefaultAllTerminating(t *testing.T) {
	body := `switch mode() {
case 1:
	return
default:
	return
}
after() // dead: every clause returns and there is no fall-past edge`
	c, fset := cfgFor(t, body)
	if reachableLines(c, fset)[lineOf(t, body, "after()")] {
		t.Error("switch with a default and all-terminating clauses must not fall through")
	}
}

func TestCFGSwitchWithoutDefaultFallsPast(t *testing.T) {
	body := `switch mode() {
case 1:
	return
}
after()`
	c, fset := cfgFor(t, body)
	if !reachableLines(c, fset)[lineOf(t, body, "after()")] {
		t.Error("switch without default must have a fall-past edge to the code after it")
	}
}

func TestCFGFallthroughChainsCases(t *testing.T) {
	body := `switch mode() {
case 1:
	one()
	fallthrough
case 2:
	two()
}
after()`
	c, fset := cfgFor(t, body)
	lines := reachableLines(c, fset)
	for _, m := range []string{"one()", "two()", "after()"} {
		if !lines[lineOf(t, body, m)] {
			t.Errorf("%s not reachable", m)
		}
	}
}

func TestCFGPanicRoutesToPanicExit(t *testing.T) {
	body := `setup()
panic("boom")
after() // dead`
	c, fset := cfgFor(t, body)
	lines := reachableLines(c, fset)
	if lines[lineOf(t, body, "after()")] {
		t.Error("code after panic marked reachable")
	}
	if !sinkReachable(c, c.panicExit) {
		t.Error("panicExit not reachable from a panicking path")
	}
	if sinkReachable(c, c.exit) {
		t.Error("normal exit reachable from a function that always panics")
	}
}

func TestCFGGotoForward(t *testing.T) {
	body := `goto skip
mid() // dead: jumped over
skip:
after()`
	c, fset := cfgFor(t, body)
	lines := reachableLines(c, fset)
	if lines[lineOf(t, body, "mid()")] {
		t.Error("statement jumped over by goto marked reachable")
	}
	if !lines[lineOf(t, body, "after()")] {
		t.Error("goto target not reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	body := `outer:
for {
	for {
		break outer
	}
}
after()`
	c, fset := cfgFor(t, body)
	if !reachableLines(c, fset)[lineOf(t, body, "after()")] {
		t.Error("labeled break out of nested loops does not reach the code after the outer loop")
	}
}

func TestCFGSelectWithoutDefaultBlocks(t *testing.T) {
	body := `select {
case <-a:
	one()
}
after()`
	c, fset := cfgFor(t, body)
	lines := reachableLines(c, fset)
	if !lines[lineOf(t, body, "one()")] || !lines[lineOf(t, body, "after()")] {
		t.Error("select case body or continuation not reachable")
	}
}

// TestCFGImplicitReturnMarker: the endMarker at the closing brace is
// reachable exactly when control can fall off the end.
func TestCFGImplicitReturnMarker(t *testing.T) {
	fallsOff, fset := cfgFor(t, `work()`)
	if !reachableLines(fallsOff, fset)[4] { // closing brace line
		t.Error("endMarker unreachable in a body that falls off the end")
	}
	terminated, fset2 := cfgFor(t, `return`)
	if reachableLines(terminated, fset2)[4] {
		t.Error("endMarker reachable after an unconditional return")
	}
}
