package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in non-test
// code. After rounding, two mathematically equal computations routinely
// differ in the last ulp, so float equality either works by accident or
// encodes a sentinel comparison that deserves an explicit annotation.
// The NaN idiom x != x (and its x == x negation) is exempt — comparing
// an expression to itself is the portable NaN test. Test files are never
// loaded by the driver, so golden assertions are unaffected.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "no ==/!= on floats outside tests; compare with an epsilon or annotate the sentinel",
		Run:  runFloatEq,
	}
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := info.TypeOf(be.X), info.TypeOf(be.Y)
			if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // NaN check: x != x
			}
			p.Reportf(be.Pos(), "float %s comparison is bit-exact: use an epsilon (math.Abs(a-b) <= eps) or annotate the intended sentinel with //lint:ignore", be.Op)
			return true
		})
	}
}
