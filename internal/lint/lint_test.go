package lint

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests so the stdlib is
// type-checked once per test process.
var (
	loaderOnce sync.Once
	shared     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { shared, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return shared
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	ld := fixtureLoader(t)
	pkg, err := ld.Load(ld.ModulePath() + "/internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// want is one golden expectation: a `// want `+"`regex`"+“ comment in a
// fixture demands a diagnostic on its line matching the regex (against
// "[rule] message").
type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var ws []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					ws = append(ws, &want{line: pkg.Fset.Position(c.Pos()).Line, re: re})
				}
			}
		}
	}
	return ws
}

// checkGolden runs the analyzers over the fixture and matches every
// diagnostic against the `// want` annotations, both ways: no unexpected
// findings, no unmatched expectations.
func checkGolden(t *testing.T, pkg *Package, analyzers ...*Analyzer) Result {
	t.Helper()
	res := Run([]*Package{pkg}, analyzers)
	wants := collectWants(t, pkg)
	for _, d := range res.Diags {
		full := "[" + d.Rule + "] " + d.Msg
		matched := false
		for _, w := range wants {
			if !w.matched && w.line == d.Pos.Line && w.re.MatchString(full) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("line %d: want diagnostic matching %q, got none", w.line, w.re)
		}
	}
	return res
}

func TestDetRandFixture(t *testing.T) {
	pkg := loadFixture(t, "detrand")
	res := checkGolden(t, pkg, DetRand([]string{pkg.Path}))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestMapOrderFixture(t *testing.T) {
	pkg := loadFixture(t, "maporder")
	res := checkGolden(t, pkg, MapOrder(nil))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestPoolSafeFixture(t *testing.T) {
	pkg := loadFixture(t, "poolsafe")
	res := checkGolden(t, pkg, PoolSafe())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestPoolSafeArenaFixture(t *testing.T) {
	pkg := loadFixture(t, "poolsafearena")
	res := checkGolden(t, pkg, PoolSafe())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestPoolSafeBatchFixture(t *testing.T) {
	pkg := loadFixture(t, "poolsafebatch")
	res := checkGolden(t, pkg, PoolSafe())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

// TestPoolSafeFlowFixture pins the flow-sensitive upgrades: a
// release-then-use across a branch join and leaks on early-return
// paths, both of which the old flow-insensitive counter missed.
func TestPoolSafeFlowFixture(t *testing.T) {
	pkg := loadFixture(t, "poolsafeflow")
	res := checkGolden(t, pkg, PoolSafe())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestFloatEqFixture(t *testing.T) {
	pkg := loadFixture(t, "floateq")
	res := checkGolden(t, pkg, FloatEq())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestDurIOFixture(t *testing.T) {
	pkg := loadFixture(t, "durio")
	res := checkGolden(t, pkg, DurIO([]string{pkg.Path}))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

// TestGatewayFixture runs the two rule sets that cover the real
// internal/gateway package (detrand: injected clock/RNG; durio: checked
// relay writes and body closes) over a gateway-shaped fixture.
func TestGatewayFixture(t *testing.T) {
	pkg := loadFixture(t, "gateway")
	res := checkGolden(t, pkg, DetRand([]string{pkg.Path}), DurIO([]string{pkg.Path}))
	if len(res.Diags) < 4 {
		t.Fatalf("fixture must demonstrate >= 4 true positives (2 per rule), got %d", len(res.Diags))
	}
}

func TestLockBalFixture(t *testing.T) {
	pkg := loadFixture(t, "lockbal")
	res := checkGolden(t, pkg, LockBal())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (the documented lock hand-off)", res.Suppressed)
	}
}

func TestGoLeakFixture(t *testing.T) {
	pkg := loadFixture(t, "goleak")
	res := checkGolden(t, pkg, GoLeak([]string{pkg.Path}))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (the documented ack handshake)", res.Suppressed)
	}
}

func TestCtxFlowFixture(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	res := checkGolden(t, pkg, CtxFlow([]string{pkg.Path}))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (the documented audit write)", res.Suppressed)
	}
}

func TestAtomicMixFixture(t *testing.T) {
	pkg := loadFixture(t, "atomicmix")
	res := checkGolden(t, pkg, AtomicMix())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (the documented constructor write)", res.Suppressed)
	}
}

// TestIgnoreSuppression proves //lint:ignore suppresses exactly one
// diagnostic: the annotated float comparison is silenced and counted,
// the identical un-annotated one is still reported.
func TestIgnoreSuppression(t *testing.T) {
	pkg := loadFixture(t, "ignores")
	res := checkGolden(t, pkg, FloatEq())
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want exactly 1", res.Suppressed)
	}
	if len(res.SuppressedDiags) != 1 {
		t.Fatalf("SuppressedDiags = %v, want exactly the silenced finding (for -json auditing)", res.SuppressedDiags)
	}
	if d := res.SuppressedDiags[0]; d.Rule != "floateq" || d.Pos.Line == 0 {
		t.Errorf("SuppressedDiags[0] = %v, want the positioned floateq finding", d)
	}
	if len(res.Diags) != 1 {
		t.Errorf("kept diagnostics = %d, want exactly 1 (the un-annotated comparison)", len(res.Diags))
	}
}

// TestDirectiveHygiene: a directive without a reason is malformed (and
// suppresses nothing), a directive that matches nothing is unused; both
// are findings under the "lint" rule.
func TestDirectiveHygiene(t *testing.T) {
	pkg := loadFixture(t, "badignore")
	res := Run([]*Package{pkg}, []*Analyzer{FloatEq()})
	counts := map[string]int{}
	for _, d := range res.Diags {
		counts[d.Rule]++
	}
	if counts["floateq"] != 1 {
		t.Errorf("floateq findings = %d, want 1 (malformed directive must not suppress)", counts["floateq"])
	}
	if counts["lint"] != 2 {
		t.Errorf("lint findings = %d, want 2 (one malformed + one unused directive)", counts["lint"])
	}
	if res.Suppressed != 0 {
		t.Errorf("Suppressed = %d, want 0", res.Suppressed)
	}
}

// TestEveryAnalyzerHasFixtures is the meta-gate for future analyzers:
// every rule registered in DefaultAnalyzers must ship a fixture package
// named after it (testdata/src/<rule>) demonstrating at least two true
// positives. A new analyzer cannot land fixture-less.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	ld := fixtureLoader(t)
	suite := DefaultAnalyzers(ld.ModulePath())
	if len(suite) != 9 {
		t.Fatalf("DefaultAnalyzers = %d rules, want 9 (update this test when adding rules)", len(suite))
	}
	for _, az := range suite {
		az := az
		t.Run(az.Name, func(t *testing.T) {
			pkg := loadFixture(t, az.Name) // fails the test if the fixture package is missing
			res := Run([]*Package{pkg}, []*Analyzer{fixtureScoped(t, az.Name, pkg.Path)})
			if n := len(res.Diags); n < 2 {
				t.Errorf("fixture %s demonstrates %d true positives, want >= 2", az.Name, n)
			}
			if wants := collectWants(t, pkg); len(wants) < 2 {
				t.Errorf("fixture %s carries %d `// want` annotations, want >= 2", az.Name, len(wants))
			}
		})
	}
}

// fixtureScoped rebuilds one analyzer scoped to a fixture package (the
// default suite's package lists name the real tree, not testdata).
func fixtureScoped(t *testing.T, name, path string) *Analyzer {
	t.Helper()
	scope := []string{path}
	switch name {
	case "detrand":
		return DetRand(scope)
	case "maporder":
		return MapOrder(nil)
	case "poolsafe":
		return PoolSafe()
	case "floateq":
		return FloatEq()
	case "durio":
		return DurIO(scope)
	case "lockbal":
		return LockBal()
	case "goleak":
		return GoLeak(scope)
	case "ctxflow":
		return CtxFlow(scope)
	case "atomicmix":
		return AtomicMix()
	}
	t.Fatalf("no fixture constructor for analyzer %q: add one here and a testdata/src/%s package", name, name)
	return nil
}

// TestSelectAnalyzers: unknown rule names fail loudly, listing the
// valid rules; known names filter in suite order.
func TestSelectAnalyzers(t *testing.T) {
	all := DefaultAnalyzers("repro")
	got, err := SelectAnalyzers(all, []string{"ctxflow", "poolsafe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "poolsafe" || got[1].Name != "ctxflow" {
		var names []string
		for _, az := range got {
			names = append(names, az.Name)
		}
		t.Fatalf("SelectAnalyzers = %v, want [poolsafe ctxflow] in suite order", names)
	}
	_, err = SelectAnalyzers(all, []string{"lockbal", "nosuchrule"})
	if err == nil {
		t.Fatal("SelectAnalyzers accepted an unknown rule name")
	}
	for _, want := range []string{"nosuchrule", "lockbal", "poolsafe", "atomicmix"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q (must list valid rules)", err, want)
		}
	}
}

// TestAnalyzerScoping: package-scoped analyzers stay silent outside
// their configured package sets.
func TestAnalyzerScoping(t *testing.T) {
	pkg := loadFixture(t, "maporder")
	if res := Run([]*Package{pkg}, []*Analyzer{DetRand([]string{"repro/internal/tensor"})}); len(res.Diags) != 0 {
		t.Errorf("detrand ran outside its package set: %v", res.Diags)
	}
	if res := Run([]*Package{pkg}, []*Analyzer{MapOrder([]string{pkg.Path})}); len(res.Diags) != 0 {
		t.Errorf("maporder ran inside an excluded package: %v", res.Diags)
	}
}

// TestLoadPatternsSkipsTestdata: pattern expansion must never descend
// into testdata (the fixtures deliberately violate every rule).
func TestLoadPatternsSkipsTestdata(t *testing.T) {
	ld := fixtureLoader(t)
	pkgs, err := ld.LoadPatterns([]string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != ld.ModulePath()+"/internal/lint" {
		var got []string
		for _, p := range pkgs {
			got = append(got, p.Path)
		}
		t.Fatalf("LoadPatterns(./internal/lint/...) = %v, want just internal/lint", got)
	}
}
