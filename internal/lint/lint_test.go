package lint

import (
	"regexp"
	"sync"
	"testing"
)

// The fixture loader is shared across tests so the stdlib is
// type-checked once per test process.
var (
	loaderOnce sync.Once
	shared     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { shared, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return shared
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	ld := fixtureLoader(t)
	pkg, err := ld.Load(ld.ModulePath() + "/internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// want is one golden expectation: a `// want `+"`regex`"+`` comment in a
// fixture demands a diagnostic on its line matching the regex (against
// "[rule] message").
type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var ws []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					ws = append(ws, &want{line: pkg.Fset.Position(c.Pos()).Line, re: re})
				}
			}
		}
	}
	return ws
}

// checkGolden runs the analyzers over the fixture and matches every
// diagnostic against the `// want` annotations, both ways: no unexpected
// findings, no unmatched expectations.
func checkGolden(t *testing.T, pkg *Package, analyzers ...*Analyzer) Result {
	t.Helper()
	res := Run([]*Package{pkg}, analyzers)
	wants := collectWants(t, pkg)
	for _, d := range res.Diags {
		full := "[" + d.Rule + "] " + d.Msg
		matched := false
		for _, w := range wants {
			if !w.matched && w.line == d.Pos.Line && w.re.MatchString(full) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("line %d: want diagnostic matching %q, got none", w.line, w.re)
		}
	}
	return res
}

func TestDetRandFixture(t *testing.T) {
	pkg := loadFixture(t, "detrand")
	res := checkGolden(t, pkg, DetRand([]string{pkg.Path}))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestMapOrderFixture(t *testing.T) {
	pkg := loadFixture(t, "maporder")
	res := checkGolden(t, pkg, MapOrder(nil))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestPoolSafeFixture(t *testing.T) {
	pkg := loadFixture(t, "poolsafe")
	res := checkGolden(t, pkg, PoolSafe())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestPoolSafeArenaFixture(t *testing.T) {
	pkg := loadFixture(t, "poolsafearena")
	res := checkGolden(t, pkg, PoolSafe())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestPoolSafeBatchFixture(t *testing.T) {
	pkg := loadFixture(t, "poolsafebatch")
	res := checkGolden(t, pkg, PoolSafe())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestFloatEqFixture(t *testing.T) {
	pkg := loadFixture(t, "floateq")
	res := checkGolden(t, pkg, FloatEq())
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

func TestDurIOFixture(t *testing.T) {
	pkg := loadFixture(t, "durio")
	res := checkGolden(t, pkg, DurIO([]string{pkg.Path}))
	if len(res.Diags) < 2 {
		t.Fatalf("fixture must demonstrate >= 2 true positives, got %d", len(res.Diags))
	}
}

// TestGatewayFixture runs the two rule sets that cover the real
// internal/gateway package (detrand: injected clock/RNG; durio: checked
// relay writes and body closes) over a gateway-shaped fixture.
func TestGatewayFixture(t *testing.T) {
	pkg := loadFixture(t, "gateway")
	res := checkGolden(t, pkg, DetRand([]string{pkg.Path}), DurIO([]string{pkg.Path}))
	if len(res.Diags) < 4 {
		t.Fatalf("fixture must demonstrate >= 4 true positives (2 per rule), got %d", len(res.Diags))
	}
}

// TestIgnoreSuppression proves //lint:ignore suppresses exactly one
// diagnostic: the annotated float comparison is silenced and counted,
// the identical un-annotated one is still reported.
func TestIgnoreSuppression(t *testing.T) {
	pkg := loadFixture(t, "ignores")
	res := checkGolden(t, pkg, FloatEq())
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want exactly 1", res.Suppressed)
	}
	if len(res.Diags) != 1 {
		t.Errorf("kept diagnostics = %d, want exactly 1 (the un-annotated comparison)", len(res.Diags))
	}
}

// TestDirectiveHygiene: a directive without a reason is malformed (and
// suppresses nothing), a directive that matches nothing is unused; both
// are findings under the "lint" rule.
func TestDirectiveHygiene(t *testing.T) {
	pkg := loadFixture(t, "badignore")
	res := Run([]*Package{pkg}, []*Analyzer{FloatEq()})
	counts := map[string]int{}
	for _, d := range res.Diags {
		counts[d.Rule]++
	}
	if counts["floateq"] != 1 {
		t.Errorf("floateq findings = %d, want 1 (malformed directive must not suppress)", counts["floateq"])
	}
	if counts["lint"] != 2 {
		t.Errorf("lint findings = %d, want 2 (one malformed + one unused directive)", counts["lint"])
	}
	if res.Suppressed != 0 {
		t.Errorf("Suppressed = %d, want 0", res.Suppressed)
	}
}

// TestAnalyzerScoping: package-scoped analyzers stay silent outside
// their configured package sets.
func TestAnalyzerScoping(t *testing.T) {
	pkg := loadFixture(t, "maporder")
	if res := Run([]*Package{pkg}, []*Analyzer{DetRand([]string{"repro/internal/tensor"})}); len(res.Diags) != 0 {
		t.Errorf("detrand ran outside its package set: %v", res.Diags)
	}
	if res := Run([]*Package{pkg}, []*Analyzer{MapOrder([]string{pkg.Path})}); len(res.Diags) != 0 {
		t.Errorf("maporder ran inside an excluded package: %v", res.Diags)
	}
}

// TestLoadPatternsSkipsTestdata: pattern expansion must never descend
// into testdata (the fixtures deliberately violate every rule).
func TestLoadPatternsSkipsTestdata(t *testing.T) {
	ld := fixtureLoader(t)
	pkgs, err := ld.LoadPatterns([]string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != ld.ModulePath()+"/internal/lint" {
		var got []string
		for _, p := range pkgs {
			got = append(got, p.Path)
		}
		t.Fatalf("LoadPatterns(./internal/lint/...) = %v, want just internal/lint", got)
	}
}
