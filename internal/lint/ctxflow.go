package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow bans minting fresh root contexts on the request path:
// context.Background() and context.TODO() inside the serving packages
// sever the caller's deadline and cancellation, so a client that gave
// up keeps consuming inference capacity. Request-path code must thread
// the incoming context.Context; deliberate detachment points (shutdown
// deadlines, fire-and-forget maintenance) carry a //lint:ignore with
// the reason. main, init and test files are outside the request path
// and exempt by construction (the loader skips _test.go; main/init are
// exempted here).
func CtxFlow(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "ctxflow",
		Doc:      "request-path code threads the incoming context.Context; Background()/TODO() are banned",
		Packages: packages,
		Run:      runCtxFlow,
	}
}

func runCtxFlow(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				return true
			}
			if decl.Name.Name == "main" || decl.Name.Name == "init" {
				return false
			}
			hasCtx := funcHasCtxParam(info, decl)
			ast.Inspect(decl.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Background" && name != "TODO" {
					return true
				}
				if importedPackage(info, sel.X) != "context" {
					return true
				}
				if hasCtx {
					p.Reportf(call.Pos(), "context.%s() discards the ctx parameter already in scope: thread it instead of detaching from the caller's deadline", name)
				} else {
					p.Reportf(call.Pos(), "context.%s() on the request path detaches from caller cancellation: accept and thread a context.Context", name)
				}
				return true
			})
			return false
		})
	}
}

// funcHasCtxParam reports whether decl has a parameter of type
// context.Context (by convention the first, but any position counts).
func funcHasCtxParam(info *types.Info, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Name() == "Context" && strings.HasSuffix(named.Obj().Pkg().Path(), "context") {
			return true
		}
	}
	return false
}
