package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds a function-level control-flow graph over go/ast, the
// substrate for the flow-sensitive analyzers (poolsafe, lockbal). The
// graph is deliberately statement-grained: each basic block holds the
// ast.Nodes that execute when the block does — plain statements appear
// whole, control statements contribute only their non-body parts (an
// IfStmt contributes its Init and Cond; the branches become separate
// blocks). Expression-level control flow (&&, ||) is not split; no
// current analysis needs it.
//
// Edges:
//
//   - if/else, for, range, switch, type switch and select produce the
//     expected branch/loop/join edges; a for with no condition has no
//     fall-through exit (only break leaves it).
//   - return edges to Exit; break/continue/goto/fallthrough edges to
//     their targets (labels supported).
//   - panic(...), os.Exit, log.Fatal* and runtime.Goexit end their block
//     with an edge to PanicExit, a distinct sink: analyses that reason
//     about "every normal return" (lock balance, pool leaks) stay quiet
//     on unwinding paths, where deferred cleanup — which they model
//     separately — is the only thing that runs anyway.
//   - defer statements stay in their block as *ast.DeferStmt nodes.
//     Transfer functions interpret them as arming an exit-time action on
//     exactly the paths that execute the defer, which is what makes
//     "defer mu.Unlock() only in one branch" analyzable.
//   - a func literal is an opaque node of the enclosing graph (its body
//     is a different function; analyses recurse explicitly).
//
// Unreachable statements after a terminator land in an unreachable block
// with no predecessors; the dataflow engine simply never visits them.

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit collects normal completions: every return statement and the
	// implicit fall-off-the-end of the body.
	exit *cfgBlock
	// panicExit collects unwinding completions (panic, os.Exit, …).
	panicExit *cfgBlock
}

// buildCFG constructs the graph for a function body. info may be nil;
// it is only used to recognize no-return calls precisely.
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	b := &cfgBuilder{info: info, labels: map[string]*labelTarget{}}
	b.c = &funcCFG{}
	b.c.entry = b.newBlock()
	b.c.exit = b.newBlock()
	b.c.panicExit = b.newBlock()
	b.cur = b.c.entry
	b.stmtList(body.List)
	// Implicit return at the closing brace: the endMarker node lets
	// analyses run their end-of-function checks (lock still held, pooled
	// value never released) on the fall-off-the-end path. If the body
	// ends in a terminator the marker lands in an unreachable block and
	// is never replayed.
	b.add(endMarker{body})
	b.jump(b.c.exit)
	return b.c
}

// endMarker is a synthetic CFG node standing for the implicit return at
// a function body's closing brace. Analyses must type-switch on it
// before handing nodes to ast.Inspect (which only accepts stock nodes).
type endMarker struct{ *ast.BlockStmt }

// loopScope is one enclosing breakable/continuable construct.
type loopScope struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select (not continuable)
}

// labelTarget resolves gotos (possibly forward) and labeled loops.
type labelTarget struct {
	block *cfgBlock
}

type cfgBuilder struct {
	c      *funcCFG
	info   *types.Info
	cur    *cfgBlock // nil while the current point is unreachable
	scopes []loopScope
	labels map[string]*labelTarget
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so "break label" / "continue label" resolve.
	pendingLabel string
	// fallTarget is the next case body while building a switch, the
	// destination of a fallthrough statement.
	fallTarget *cfgBlock
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

// add appends a node to the current block (creating an unreachable block
// if control cannot reach here, so later statements still get analyzed
// syntactically without panicking the builder).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// jump links the current block to target and leaves the current point
// unreachable.
func (b *cfgBuilder) jump(target *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, target)
	}
	b.cur = nil
}

// branchTo links the current block to target and continues in a fresh
// block (conditional edge).
func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		cond := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			b.edge(head, after)
		}
		b.edge(head, body)
		b.pushScope(loopScope{label: b.takeLabel(), breakTo: after, continueTo: post})
		b.cur = body
		b.stmt(s.Body)
		b.jump(post)
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, head)
		}
		b.popScope()
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		head.nodes = append(head.nodes, s.X)
		b.edge(head, body)
		b.edge(head, after)
		b.pushScope(loopScope{label: b.takeLabel(), breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.popScope()
		b.cur = after
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, nil)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.c.exit)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		// Create (or adopt) the label's block so gotos can target it,
		// then continue building inside it.
		lt := b.labels[s.Label.Name]
		if lt == nil {
			lt = &labelTarget{block: b.newBlock()}
			b.labels[s.Label.Name] = lt
		}
		b.jump(lt.block)
		b.cur = lt.block
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.DeferStmt:
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isNoReturn(call) {
			b.jump(b.c.panicExit)
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// AssignStmt, DeclStmt, GoStmt, SendStmt, IncDecStmt, …
		b.add(s)
	}
}

// caseClauses builds switch/type-switch case edges, including
// fallthrough chaining. The head is the current block.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, _ *cfgBlock) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	b.pushScope(loopScope{label: b.takeLabel(), breakTo: after})
	// Pre-create body blocks so fallthrough can target the next clause.
	bodies := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		bodies[i] = b.newBlock()
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		b.edge(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		prevFall := b.fallTarget
		b.fallTarget = nil
		if i+1 < len(clauses) {
			b.fallTarget = bodies[i+1]
		}
		b.stmtList(cc.Body)
		b.fallTarget = prevFall
		b.jump(after)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.popScope()
	b.cur = after
}

// selectStmt builds one block per communication clause. A select without
// a default blocks: control leaves only through a clause.
func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	b.pushScope(loopScope{label: b.takeLabel(), breakTo: after})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	if len(s.Body.List) == 0 {
		b.edge(head, after)
	}
	b.popScope()
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if label == "" || b.scopes[i].label == label {
				b.jump(b.scopes[i].breakTo)
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if b.scopes[i].continueTo != nil && (label == "" || b.scopes[i].label == label) {
				b.jump(b.scopes[i].continueTo)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		lt := b.labels[label]
		if lt == nil {
			lt = &labelTarget{block: b.newBlock()}
			b.labels[label] = lt
		}
		b.jump(lt.block)
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.jump(b.fallTarget)
		} else {
			b.cur = nil
		}
	}
}

func (b *cfgBuilder) pushScope(s loopScope) { b.scopes = append(b.scopes, s) }
func (b *cfgBuilder) popScope()             { b.scopes = b.scopes[:len(b.scopes)-1] }

// takeLabel consumes the pending label (set by an enclosing
// LabeledStmt) for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// noReturnFuncs maps package path -> function names that never return.
var noReturnFuncs = map[string]map[string]bool{
	"os":      {"Exit": true},
	"log":     {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
	"runtime": {"Goexit": true},
}

// isNoReturn reports whether the call terminates the function abnormally:
// the builtin panic, or a known no-return stdlib function.
func (b *cfgBuilder) isNoReturn(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			if _, isBuiltin := b.info.ObjectOf(fun).(*types.Builtin); !isBuiltin {
				return false
			}
		}
		return true
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		pkg := importedPackage(b.info, fun.X)
		for path, names := range noReturnFuncs {
			if pkg == path && names[fun.Sel.Name] {
				return true
			}
		}
	}
	return false
}
