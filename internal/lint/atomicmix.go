package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags variables and struct fields that are accessed through
// sync/atomic in one place and by plain load/store in another. Mixing
// the two silently forfeits every guarantee the atomic side paid for:
// the plain access races with the atomic one, and the race detector
// only catches it when both sides actually collide under test. A word
// is either always atomic or always lock-protected — never both.
//
// Detection is package-wide: pass 1 collects every object whose address
// is taken as the argument of a sync/atomic call (atomic.AddInt64(&s.n,
// 1), atomic.LoadUint32(&flag), ...); pass 2 reports every other
// mention of those objects that is not itself an atomic-call argument.
// Typed atomics (atomic.Int64 and friends) cannot be accessed plainly
// and need no checking.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "a word accessed via sync/atomic anywhere must be accessed via sync/atomic everywhere",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: objects used atomically, with one representative position.
	atomicAt := map[types.Object]token.Position{}
	// Mentions inside atomic call arguments are exempt in pass 2.
	exempt := map[*ast.Ident]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || importedPackage(info, sel.X) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj := addressedObject(info, un.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicAt[obj]; !seen {
					atomicAt[obj] = p.Pkg.Fset.Position(call.Pos())
				}
				ast.Inspect(un.X, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						exempt[id] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: every other mention of an atomically-accessed object.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || exempt[id] {
				return true
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				return true
			}
			at, ok := atomicAt[obj]
			if !ok || obj.Pos() == id.Pos() {
				return true // not tracked, or this is the declaration itself
			}
			p.Reportf(id.Pos(), "%s is accessed atomically at %s:%d but plainly here: mixed access races with the atomic side", id.Name, shortPath(at.Filename), at.Line)
			return true
		})
	}
}

// addressedObject resolves &expr to the variable or field object whose
// address is taken: the field for x.f, the variable for plain idents.
func addressedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.ObjectOf(e.Sel).(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return addressedObject(info, e.X)
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	}
	return nil
}

// shortPath trims a filename to its last two path segments for compact
// diagnostics.
func shortPath(path string) string {
	slashes := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			slashes++
			if slashes == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
