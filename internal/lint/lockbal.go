package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockBal checks mutex discipline flow-sensitively over the function
// CFG, for sync.Mutex and sync.RWMutex receivers:
//
//   - every path from a Lock (or RLock) must reach a matching Unlock
//     (RUnlock) or have a deferred unlock armed before returning;
//   - no path may Unlock a mutex it does not hold (double unlock), or
//     Lock one it may already hold (self-deadlock);
//   - RLock must pair with RUnlock, never Unlock (and vice versa);
//   - structs containing a mutex must not be copied (value parameters,
//     value assignments) — a copied mutex is an independent lock and
//     the copy silently stops excluding anyone.
//
// The analysis only tracks lock paths whose Lock appears in the
// function being checked: lock-helper methods that acquire on behalf of
// a caller are visible as the Lock site, and functions that merely
// Unlock state locked elsewhere are not second-guessed. TryLock'd
// mutexes are untracked (holding depends on the boolean result, which
// the block-level CFG does not refine).
func LockBal() *Analyzer {
	return &Analyzer{
		Name: "lockbal",
		Doc:  "Lock/Unlock balanced on every path incl. defer; RLock pairs with RUnlock; no mutex copies",
		Run:  runLockBal,
	}
}

// Lock flow states per lock path (write and read sides tracked as
// separate keys, "path:W" and "path:R").
const (
	lHeld      uint8 = 1 << iota // the lock may be held on this path
	lDeferDrop                   // a deferred unlock is armed on this path
	lWasHeld                     // the lock has been held at some point on this path
)

// lockOp classifies one mutex method call.
type lockOp struct {
	key     string // canonical path + ":W" or ":R"
	base    string // canonical path without the side suffix
	acquire bool
	read    bool
	pos     token.Pos
}

func runLockBal(p *Pass) {
	forEachFuncBody(p.Pkg, func(decl *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		checkLockFunc(p, body)
	})
	checkMutexCopies(p)
}

func checkLockFunc(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info

	// Pre-pass: find every mutex op directly in this body (nested
	// literals are their own universe) and decide which lock paths to
	// track: those acquired here, minus any touched by TryLock and any
	// that mix RLock with Unlock (reported once, syntactically, since
	// the pairing mistake is independent of flow).
	type sides struct {
		lockW, lockR, unlockW, unlockR bool
		try                            bool
		firstMix                       token.Pos
		mixMsg                         string
	}
	paths := map[string]*sides{}
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); !ok {
			return true
		}
		op := classifyLockOp(info, n)
		if op == nil {
			return true
		}
		s := paths[op.base]
		if s == nil {
			s = &sides{}
			paths[op.base] = s
		}
		switch {
		case op.acquire && op.read:
			s.lockR = true
		case op.acquire:
			s.lockW = true
		case op.read:
			s.unlockR = true
		default:
			s.unlockW = true
		}
		if call, ok := callOf(n); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "TryLock" || sel.Sel.Name == "TryRLock") {
				s.try = true
			}
		}
		return true
	})

	tracked := map[string]bool{}
	for base, s := range paths {
		if s.try {
			continue
		}
		if s.lockR && s.unlockW && !s.lockW {
			// RLock paired with Unlock: releasing a write lock that was
			// never taken. Report at the first unlock.
			reportPairingMix(p, info, body, base, "Unlock", "RLock", "RUnlock")
			continue
		}
		if s.lockW && s.unlockR && !s.lockR {
			reportPairingMix(p, info, body, base, "RUnlock", "Lock", "Unlock")
			continue
		}
		if s.lockW {
			tracked[base+":W"] = true
		}
		if s.lockR {
			tracked[base+":R"] = true
		}
	}
	if len(tracked) == 0 {
		return
	}

	cfg := buildCFG(body, info)
	analysis := &flowAnalysis{
		transfer: func(n ast.Node, f flowFacts) {
			if _, ok := n.(endMarker); ok {
				return
			}
			if d, ok := n.(*ast.DeferStmt); ok {
				for _, op := range deferredLockOps(info, d) {
					if !op.acquire && tracked[op.key] {
						f[op.key] |= lDeferDrop
					}
				}
				return
			}
			inspectNoFuncLit(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.CallExpr); !ok {
					return true
				}
				op := classifyLockOp(info, m)
				if op == nil || !tracked[op.key] {
					return true
				}
				if op.acquire {
					f[op.key] |= lHeld | lWasHeld
				} else {
					f[op.key] &^= lHeld
				}
				return true
			})
		},
		check: func(n ast.Node, f flowFacts) {
			reportHeld := func(pos token.Pos) {
				for key, st := range f {
					if st&lHeld != 0 && st&lDeferDrop == 0 {
						p.Reportf(pos, "%s may still be held on this return path: unlock before returning or defer the unlock", describeLockKey(key))
					}
				}
			}
			switch m := n.(type) {
			case endMarker:
				reportHeld(m.Rbrace)
				return
			case *ast.ReturnStmt:
				reportHeld(m.Pos())
				return
			case *ast.DeferStmt:
				return
			}
			inspectNoFuncLit(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.CallExpr); !ok {
					return true
				}
				op := classifyLockOp(info, m)
				if op == nil || !tracked[op.key] {
					return true
				}
				st := f[op.key]
				if op.acquire && st&lHeld != 0 {
					p.Reportf(op.pos, "%s may already be held here: locking again deadlocks this goroutine", describeLockKey(op.key))
				}
				if !op.acquire && st&lWasHeld != 0 && st&lHeld == 0 && st&lDeferDrop == 0 {
					p.Reportf(op.pos, "%s is not held on some path reaching this unlock: double unlock panics at runtime", describeLockKey(op.key))
				}
				return true
			})
		},
	}
	analysis.run(cfg, flowFacts{})
}

// classifyLockOp recognizes x.Lock/Unlock/RLock/RUnlock calls on
// sync.Mutex / sync.RWMutex (directly or behind a pointer) appearing as
// expression statements or bare call expressions.
func classifyLockOp(info *types.Info, n ast.Node) *lockOp {
	call, ok := callOf(n)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock", "TryLock":
		acquire = true
	case "RLock", "TryRLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return nil
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return nil
	}
	base := canonicalLockPath(info, sel.X)
	if base == "" {
		return nil
	}
	side := ":W"
	if read {
		side = ":R"
	}
	return &lockOp{key: base + side, base: base, acquire: acquire, read: read, pos: call.Pos()}
}

func callOf(n ast.Node) (*ast.CallExpr, bool) {
	switch m := n.(type) {
	case *ast.CallExpr:
		return m, true
	case *ast.ExprStmt:
		call, ok := m.X.(*ast.CallExpr)
		return call, ok
	}
	return nil, false
}

// isSyncMutex reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// canonicalLockPath renders a stable per-function key for the mutex
// expression: the root identifier's object (by declaration position, so
// shadowing cannot conflate two locks) followed by the field path.
// Index expressions and call results yield "" (untrackable).
func canonicalLockPath(info *types.Info, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("%s@%d", e.Name, obj.Pos())
	case *ast.SelectorExpr:
		base := canonicalLockPath(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return canonicalLockPath(info, e.X)
	case *ast.StarExpr:
		return canonicalLockPath(info, e.X)
	}
	return ""
}

// describeLockKey turns "mu@123.statMu:R" back into a human-readable
// "read lock statMu".
func describeLockKey(key string) string {
	side := "lock"
	if n := len(key); n > 2 && key[n-2] == ':' {
		if key[n-1] == 'R' {
			side = "read lock"
		}
		key = key[:n-2]
	}
	// Drop the @pos disambiguator from the root segment.
	name := key
	for i := 0; i < len(key); i++ {
		if key[i] == '@' {
			j := i
			for j < len(key) && key[j] != '.' {
				j++
			}
			name = key[:i] + key[j:]
			break
		}
	}
	return side + " " + name
}

// deferredLockOps lists the lock ops a defer statement performs at
// function exit: a direct deferred call or ops inside a deferred
// literal's body.
func deferredLockOps(info *types.Info, d *ast.DeferStmt) []*lockOp {
	var out []*lockOp
	if op := classifyLockOp(info, d.Call); op != nil {
		out = append(out, op)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if op := classifyLockOp(info, n); op != nil {
				out = append(out, op)
			}
			return true
		})
	}
	return out
}

// reportPairingMix reports the first wrongUnlock call on base.
func reportPairingMix(p *Pass, info *types.Info, body *ast.BlockStmt, base, wrongUnlock, lockName, rightUnlock string) {
	inspectNoFuncLit(body, func(n ast.Node) bool {
		op := classifyLockOp(info, n)
		if op == nil || op.base != base || op.acquire {
			return true
		}
		call, _ := callOf(n)
		sel := call.Fun.(*ast.SelectorExpr)
		if sel.Sel.Name != wrongUnlock {
			return true
		}
		p.Reportf(op.pos, "%s released with %s but acquired with %s: use %s", describeLockKey(base), wrongUnlock, lockName, rightUnlock)
		return false
	})
}

// checkMutexCopies flags copies of mutex-containing values: non-pointer
// parameters and results of mutex-containing struct types, and value
// assignments whose right-hand side is an existing variable, field or
// dereference of such a type. (go vet's copylocks covers most of the
// tree; this keeps fixtures self-contained and catches the same class
// in packages vet is not run over.)
func checkMutexCopies(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				checkFieldListCopies(p, info, s.Type.Params)
				checkFieldListCopies(p, info, s.Type.Results)
			case *ast.FuncLit:
				checkFieldListCopies(p, info, s.Type.Params)
				checkFieldListCopies(p, info, s.Type.Results)
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					if i >= len(s.Lhs) {
						break
					}
					switch rhs.(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
					default:
						continue
					}
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discarding, not copying into a usable value
					}
					t := info.TypeOf(rhs)
					if t != nil && containsMutex(t, nil) {
						p.Reportf(rhs.Pos(), "assignment copies a value containing a sync mutex: the copy is an independent lock that protects nothing")
					}
				}
			}
			return true
		})
	}
}

func checkFieldListCopies(p *Pass, info *types.Info, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsMutex(t, nil) {
			p.Reportf(field.Pos(), "value passes a struct containing a sync mutex by copy: use a pointer")
		}
	}
}

// containsMutex reports whether a value of type t embeds a sync.Mutex
// or sync.RWMutex by value (directly or through struct/array nesting).
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}
