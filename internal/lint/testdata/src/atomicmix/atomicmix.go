// Package atomicmix holds golden fixtures for the atomicmix analyzer:
// words accessed through sync/atomic in one function and plainly in
// another.
package atomicmix

import "sync/atomic"

type hits struct {
	n    int64
	racy int64
}

// bump is the atomic side: every other access of n must match it.
func (h *hits) bump() {
	atomic.AddInt64(&h.n, 1)
}

// read loads the same word plainly: this races with bump and the
// compiler is free to tear, cache or reorder it.
func (h *hits) read() int64 {
	return h.n // want `n is accessed atomically at .* but plainly here`
}

// loadOK is the consistent counterpart.
func (h *hits) loadOK() int64 {
	return atomic.LoadInt64(&h.n)
}

var flag uint32

func raise() {
	atomic.StoreUint32(&flag, 1)
}

// check reads the package-level word plainly while raise stores it
// atomically from other goroutines.
func check() bool {
	return flag == 1 // want `flag is accessed atomically at .* but plainly here`
}

// reset runs before any goroutine can observe h, so the plain write is
// safe by construction; the directive records that reasoning.
func reset(h *hits) *hits {
	if h == nil {
		h = &hits{}
	}
	//lint:ignore atomicmix constructor path: no goroutine can hold h before it is returned
	h.racy = 0
	return h
}

// bumpRacy is the atomic side that makes racy tracked at all.
func bumpRacy(h *hits) {
	atomic.AddInt64(&h.racy, 1)
}
