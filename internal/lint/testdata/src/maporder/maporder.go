// Package maporder holds golden fixtures for the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to slice keys inside range over map`
	}
	return keys
}

func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `accumulating into float total inside range over map`
	}
	return total
}

func printOutput(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `writing output via fmt\.Printf inside range over map`
	}
}

func builderOutput(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `writing output via WriteString inside range over map`
	}
	return b.String()
}

// collectSortOK appends keys and sorts them afterwards: exempt.
func collectSortOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// intAccumOK: integer accumulation is associative, order cannot leak.
func intAccumOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// localBufferOK: the builder lives inside the loop body, so nothing
// ordered escapes an iteration.
func localBufferOK(m map[string]int) map[string]string {
	out := map[string]string{}
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		out[k] = b.String()
	}
	return out
}
