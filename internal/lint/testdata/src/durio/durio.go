// Package durio holds golden fixtures for the durio analyzer.
package durio

import "os"

func torn(path string, data []byte) error {
	f, err := os.Create(path) // want `os\.Create writes a torn file on crash`
	if err != nil {
		return err
	}
	f.Write(data)   // want `Write error is unchecked on a durable write path`
	f.Sync()        // want `Sync error is unchecked on a durable write path`
	defer f.Close() // want `deferred Close error is unchecked on a durable write path`
	return nil
}

func tornWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile writes a torn file on crash`
}

// stagedOK is the envelope shape: staging through CreateTemp with every
// error checked, and explicit discards where ignoring is deliberate.
func stagedOK(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "stage-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
