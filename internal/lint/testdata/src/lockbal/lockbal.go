// Package lockbal holds golden fixtures for the lockbal analyzer:
// unbalanced lock paths, double unlocks, self-deadlocks, RLock/Unlock
// pairing mistakes and mutex copies.
package lockbal

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type counter struct {
	mu sync.Mutex
	n  int
}

// leakOnErrorPath returns holding the lock on the error branch — the
// classic unbalanced early return that serializes every later caller
// forever.
func (c *counter) leakOnErrorPath(fail bool) error {
	c.mu.Lock()
	if fail {
		return errFail // want `lock c.mu may still be held on this return path`
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// doubleUnlock releases twice in sequence: the second Unlock panics at
// runtime.
func (c *counter) doubleUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Unlock() // want `lock c.mu is not held on some path reaching this unlock`
}

// lockTwice re-locks a non-reentrant mutex it already holds: the
// goroutine deadlocks against itself.
func (c *counter) lockTwice() {
	c.mu.Lock()
	c.mu.Lock() // want `lock c.mu may already be held here: locking again deadlocks this goroutine`
	c.n += 2
	c.mu.Unlock()
}

type gauge struct {
	mu sync.RWMutex
	v  float64
}

// mixedPairing acquires the read lock but releases the write side:
// Unlock of an RWMutex not write-locked panics.
func (g *gauge) mixedPairing() float64 {
	g.mu.RLock()
	v := g.v
	g.mu.Unlock() // want `lock g.mu released with Unlock but acquired with RLock: use RUnlock`
	return v
}

// snapshot copies the whole struct — and with it the mutex, which then
// excludes nobody.
func snapshot(c counter) int { // want `value passes a struct containing a sync mutex by copy: use a pointer`
	return c.n
}

// copyAssign dereference-copies a mutex-holding struct into a local.
func copyAssign(c *counter) {
	local := *c // want `assignment copies a value containing a sync mutex`
	_ = local
}

// deferOK is the canonical clean shape: the deferred unlock covers
// every return path, including panics.
func (c *counter) deferOK() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 0 {
		return c.n
	}
	return 0
}

// branchesOK unlocks explicitly on both arms: balanced without defer.
func (c *counter) branchesOK(fast bool) {
	c.mu.Lock()
	if fast {
		c.n++
		c.mu.Unlock()
		return
	}
	c.n += 2
	c.mu.Unlock()
}

// readOK pairs RLock with a deferred RUnlock.
func (g *gauge) readOK() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// lockHandoff intentionally returns holding the lock: ownership
// transfers to the caller, which must call releaseHandoff. The
// directive documents the contract and suppresses the finding.
func (c *counter) lockHandoff() {
	c.mu.Lock()
	c.n++
	//lint:ignore lockbal ownership transfers to the caller, which must call releaseHandoff
}

func (c *counter) releaseHandoff() {
	c.mu.Unlock()
}
