// Package detrand holds golden fixtures for the detrand analyzer. Every
// `// want` comment is a true positive the analyzer must report on that
// line; everything else must stay silent.
package detrand

import (
	"math/rand"
	"sort"
	"time"
)

func clocks() time.Duration {
	start := time.Now()      // want `time\.Now in deterministic package`
	return time.Since(start) // want `time\.Since in deterministic package`
}

func globalRand() float64 {
	n := rand.Intn(10)                 // want `rand\.Intn draws from the global math/rand source`
	return float64(n) + rand.Float64() // want `rand\.Float64 draws from the global math/rand source`
}

// seededOK shows the sanctioned pattern: an explicitly seeded source
// (in production code, checkpoint.NewRNG) wrapped in the math/rand API.
func seededOK() float64 {
	rng := rand.New(rand.NewSource(1))
	return rng.Float64()
}

func mapLeak(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `accumulating into float sum under map iteration`
	}
	return sum
}

// mapSortedOK is the collect-then-sort idiom: the only outer write is
// appending the keys, and the slice is sorted before use.
func mapSortedOK(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapToMapOK writes only into another map: order-independent.
func mapToMapOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
