// Package floateq holds golden fixtures for the floateq analyzer.
package floateq

func eq(a, b float64) bool {
	return a == b // want `float == comparison is bit-exact`
}

func neq(a, b float32) bool {
	if a != b { // want `float != comparison is bit-exact`
		return true
	}
	return false
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `float == comparison is bit-exact`
}

// nanOK is the portable NaN test: comparing an expression to itself is
// exempt.
func nanOK(x float64) bool {
	return x != x
}

func intOK(a, b int) bool {
	return a == b
}

func orderedOK(a, b float64) bool {
	return a < b // ordering comparisons are fine
}
