// Package poolsafeflow holds regression fixtures for the flow-sensitive
// poolsafe analyzer: both findings here require path-sensitivity and
// were provably missed by the old flow-insensitive Get/Put counter
// (which treated any release as covering every path, and only looked
// for uses inside the releasing block's nesting).
package poolsafeflow

import "repro/internal/tensor"

// releaseThenUse puts the tensor back inside one branch arm and then
// uses it after the join: the path through the if-body is poisoned
// (use-after-release), while the path around it reaches the return with
// the value still live (leak). A block-nesting check sees neither.
func releaseThenUse(n int, small bool) float64 {
	t := tensor.Shared.Get(n, n)
	t.Data[0] = 1
	if small {
		tensor.Shared.Put(t)
	}
	return t.Data[0] // want `t is used after being returned to the pool` // want `pooled value t \(Get at line 15\) is not released on this return path`
}

// leakOnEarlyReturn releases on the fallthrough path but leaks on the
// early return: the old counter saw "a Put exists" and stayed quiet.
func leakOnEarlyReturn(n int) float64 {
	t := tensor.Shared.Get(n, n)
	t.Data[0] = 2
	if n > 1024 {
		return 0 // want `pooled value t \(Get at line 26\) is not released on this return path`
	}
	v := t.Data[0]
	tensor.Shared.Put(t)
	return v
}

// leakAtCloseBrace releases only inside the loop body; the implicit
// return at the closing brace is reachable with the value still live
// when the loop runs zero times.
func leakAtCloseBrace(n int) {
	t := tensor.Shared.Get(n, n)
	for i := 0; i < n; i++ {
		tensor.Shared.Put(t)
		return
	}
} // want `pooled value t \(Get at line 40\) is not released on this return path`

// branchUseOK uses the tensor only on the path that has not released
// it: flow-clean even though a Put and a later use both exist.
func branchUseOK(n int, small bool) float64 {
	t := tensor.Shared.Get(n, n)
	if small {
		tensor.Shared.Put(t)
		return 0
	}
	v := t.Data[0]
	tensor.Shared.Put(t)
	return v
}

// deferArmOK arms a deferred release before the early return: every
// path is covered, including the panic edge.
func deferArmOK(n int) float64 {
	t := tensor.Shared.Get(n, n)
	defer tensor.Shared.Put(t)
	if n == 0 {
		return 0
	}
	return t.Data[0]
}

// condDeferLeak arms the deferred release only on one branch: the other
// branch's return leaks. A defer statement is an ordinary CFG node, not
// a function-wide property.
func condDeferLeak(n int) float64 {
	t := tensor.Shared.Get(n, n)
	if n > 0 {
		defer tensor.Shared.Put(t)
		return t.Data[0]
	}
	tensor.Shared.Put(t)
	if n < -10 {
		return -1 // clean: the unconditional Put above released it on this path
	}
	return 0
}

// Note on condDeferLeak: after the unconditional Put on the else path
// the value is released, so the returns below it are clean — but any
// use would be flagged. The function exists to pin down that a defer in
// one arm does not suppress checking in the other.

// loopReuse gets and puts inside the loop body on every iteration:
// flow-clean, and the back edge must re-establish the unreleased state
// at the Get rather than carrying "released" around the loop.
func loopReuse(n int) float64 {
	var acc float64
	for i := 0; i < n; i++ {
		t := tensor.Shared.Get(n, n)
		acc += t.Data[0]
		tensor.Shared.Put(t)
	}
	return acc
}

// switchLeak releases in all but one case: the missing case's path
// leaks at the closing brace.
func switchLeak(mode int, n int) {
	t := tensor.Shared.Get(n, n)
	switch mode {
	case 0:
		tensor.Shared.Put(t)
	case 1:
		tensor.Shared.Put(t)
	default:
		_ = mode
	}
} // want `pooled value t \(Get at line 108\) is not released on this return path`

// panicPathOK exits through panic with the value live: unwinding paths
// are not leak-reported (the panic edge bypasses the exit block).
func panicPathOK(n int) float64 {
	t := tensor.Shared.Get(n, n)
	if n < 0 {
		panic("negative")
	}
	v := t.Data[0]
	tensor.Shared.Put(t)
	return v
}
