// Package goleak holds golden fixtures for the goleak analyzer:
// goroutines parked forever on unbuffered channels, and the two escape
// hatches (buffering, ctx.Done selects) that make them clean.
package goleak

import "context"

// fanoutLeak sends results on an unbuffered channel: if the collector
// bails early (timeout, error on another result), every remaining
// worker parks on the send for the life of the process.
func fanoutLeak(n int) []int {
	results := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			results <- i * i // want `goroutine can block forever: send on unbuffered channel results`
		}(i)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-results)
	}
	return out
}

// waiterLeak blocks a goroutine on a receive nobody is obligated to
// satisfy.
func waiterLeak() {
	done := make(chan struct{})
	go func() {
		<-done // want `goroutine can block forever: receive from unbuffered channel done`
	}()
	_ = done
}

// selectLeak wraps the send in a select, but a single-case select with
// no default blocks exactly like the bare operation.
func selectLeak(v int) {
	ch := make(chan int, 0)
	go func() {
		select {
		case ch <- v: // want `goroutine can block forever: send on unbuffered channel ch`
		}
	}()
	_ = ch
}

// bufferedOK gives the channel capacity for the value: the send
// completes even if the receiver already gave up.
func bufferedOK(n int) <-chan int {
	res := make(chan int, 1)
	go func() { res <- n * n }()
	return res
}

// ctxSelectOK pairs the send with a cancellation case: the goroutine
// unblocks when the caller stops caring.
func ctxSelectOK(ctx context.Context) <-chan int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
	return ch
}

// defaultOK never blocks: the default arm drops the value instead.
func defaultOK() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
	_ = ch
}

// paramOK sends on a channel whose origin is not visible here: its
// buffering discipline belongs to the owner, so it is not flagged.
func paramOK(sink chan<- int, v int) {
	go func() { sink <- v }()
}

// ackHandshake blocks on an unbuffered ack by design: the same
// function receives it unconditionally two lines later, and the
// directive records that reasoning.
func ackHandshake() {
	ack := make(chan struct{})
	go func() {
		//lint:ignore goleak the ack is drained unconditionally by this same function before it returns
		ack <- struct{}{}
	}()
	<-ack
}
