// Package ctxflow holds golden fixtures for the ctxflow analyzer:
// fresh root contexts minted on the request path instead of threading
// the caller's.
package ctxflow

import "context"

type store interface {
	Load(ctx context.Context, key string) (string, error)
}

// fetch has the caller's ctx right there and detaches anyway: the
// client's deadline and cancellation no longer reach the load.
func fetch(ctx context.Context, s store, key string) (string, error) {
	return s.Load(context.Background(), key) // want `context.Background\(\) discards the ctx parameter already in scope`
}

// lookup never accepted a context at all — request-path code must.
func lookup(s store, key string) (string, error) {
	return s.Load(context.TODO(), key) // want `context.TODO\(\) on the request path detaches from caller cancellation`
}

// threaded is the clean shape: the incoming ctx flows through.
func threaded(ctx context.Context, s store, key string) (string, error) {
	return s.Load(ctx, key)
}

// derived contexts are fine: the parent's cancellation still applies.
func bounded(ctx context.Context, s store, key string) (string, error) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return s.Load(c, key)
}

// init runs before any request exists: roots are legitimate here and
// exempt by construction.
func init() {
	_ = context.Background()
}

// main is likewise exempt: process entry points own the root context.
func main() {
	_ = context.Background()
}

// auditWrite deliberately outlives the request: the audit record must
// land even when the client hangs up, and the directive documents it.
func auditWrite(ctx context.Context, s store, key string) (string, error) {
	//lint:ignore ctxflow audit writes must complete even if the request is canceled
	return s.Load(context.Background(), key)
}
