// Package poolsafearena holds golden fixtures for the poolsafe analyzer
// against sqlast.ArenaPool: the same Get/Put lifecycle discipline the
// analyzer enforces for tensor.Pool applies to pooled AST arenas, whose
// recycled slabs make use-after-Put an aliasing bug with the next Get.
package poolsafearena

import "repro/internal/sqlast"

// leak gets an arena and forgets to return it: the slabs never go back
// to the pool and nothing visibly takes ownership.
func leak() int {
	arena := sqlast.SharedArenas.Get() // want `pooled value arena from Get is never released`
	n := arena.NewNumberLit()
	n.Text = "1"
	return len(n.Text)
}

// useAfterPut allocates from an arena after returning it to the pool:
// the slab may already back another parser's tree.
func useAfterPut() string {
	a := sqlast.SharedArenas.Get()
	s := a.NewStringLit()
	s.Text = "'x'"
	sqlast.SharedArenas.Put(a)
	lit := a.NewStringLit() // want `a is used after being returned to the pool`
	return lit.Text
}

// doublePut releases the same arena twice.
func doublePut() {
	a := sqlast.SharedArenas.Get()
	sqlast.SharedArenas.Put(a)
	sqlast.SharedArenas.Put(a) // want `a is used after being returned to the pool`
}

// putOK is the canonical scratch pattern: Get, build, consume, Put.
func putOK() string {
	a := sqlast.SharedArenas.Get()
	n := a.NewNumberLit()
	n.Text = "42"
	out := n.Text
	sqlast.SharedArenas.Put(a)
	return out
}

// deferOK releases at function exit; allocations in between are fine.
func deferOK() string {
	a := sqlast.SharedArenas.Get()
	defer sqlast.SharedArenas.Put(a)
	s := a.NewStringLit()
	s.Text = "'y'"
	return s.Text
}

// returnOK hands the arena to the caller: ownership visibly escapes.
func returnOK() *sqlast.Arena {
	a := sqlast.SharedArenas.Get()
	a.NewNumberLit()
	return a
}

// handoffOK passes the arena to another function, which may release it.
func handoffOK() {
	a := sqlast.SharedArenas.Get()
	release(a)
}

func release(a *sqlast.Arena) {
	sqlast.SharedArenas.Put(a)
}

// branchPutOK puts only on an early-return branch; the use on the other
// branch must not be flagged (the release does not dominate it).
func branchPutOK(early bool) string {
	a := sqlast.SharedArenas.Get()
	if early {
		sqlast.SharedArenas.Put(a)
		return ""
	}
	n := a.NewNumberLit()
	n.Text = "7"
	sqlast.SharedArenas.Put(a)
	return n.Text
}
