// Package gateway holds golden fixtures for the detrand and durio
// analyzers as they apply to the real internal/gateway package (which is
// in both rule sets): probe scheduling must use an injected clock, retry
// jitter must draw from the seeded stream, and the proxy relay path and
// the persisted membership state must check (or explicitly discard)
// Close/Write errors.
package gateway

import (
	"math/rand"
	"net/http"
	"os"
	"time"
)

// probeNext is the anti-pattern the injected clock exists to prevent: a
// probe schedule read from the ambient wall clock cannot be replayed.
func probeNext(interval time.Duration) time.Time {
	return time.Now().Add(interval) // want `time\.Now in deterministic package`
}

// backoffAmbient draws retry jitter from the globally seeded source, so
// two gateways with equal config produce different retry schedules.
func backoffAmbient(d time.Duration) time.Duration {
	wait := d + time.Duration(rand.Int63n(int64(d))) // want `rand\.Int63n draws from the global math/rand source`
	return wait
}

// relayTorn forwards an upstream response while dropping both errors a
// proxy must care about: the body close (leaks the upstream connection)
// and the downstream write (silently truncates the client's response).
func relayTorn(w http.ResponseWriter, resp *http.Response, body []byte) {
	resp.Body.Close() // want `Close error is unchecked on a durable write path`
	w.Write(body)     // want `Write error is unchecked on a durable write path`
}

// relayOK is the sanctioned shape: clock and jitter flow in from the
// composition root, and every dropped error is an explicit `_ =` with
// the call site taking responsibility.
func relayOK(w http.ResponseWriter, resp *http.Response, body []byte,
	now func() time.Time, jitter func(time.Duration) time.Duration) time.Time {
	_ = resp.Body.Close()
	_, _ = w.Write(body)
	return now().Add(jitter(time.Second))
}

// stampMembershipAmbient timestamps the persisted membership view from
// the ambient wall clock: two gateways saving the same view now disagree
// on its SavedAt, and a replayed test cannot reproduce the file.
func stampMembershipAmbient() int64 {
	return time.Now().Unix() // want `time\.Now in deterministic package`
}

// persistMembershipTorn writes the membership state file while ignoring
// both durability errors: a short write leaves a torn fleet view on disk
// (rescued only by the envelope checksum), and an unchecked close can
// swallow the flush failure that made it short.
func persistMembershipTorn(f *os.File, envelope []byte) {
	f.Write(envelope) // want `Write error is unchecked on a durable write path`
	f.Close()         // want `Close error is unchecked on a durable write path`
}

// persistMembershipOK is the sanctioned shape for the state file: the
// save timestamp comes from the injected clock and every write/close
// error is surfaced to the caller, who decides whether a failed persist
// may proceed (membership changes do — routing correctness outranks
// durability — but only after counting the failure).
func persistMembershipOK(f *os.File, envelope []byte, now func() time.Time) (int64, error) {
	if _, err := f.Write(envelope); err != nil {
		_ = f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return now().Unix(), nil
}
