// Package poolsafe holds golden fixtures for the poolsafe analyzer,
// exercising tensor.Shared lifecycle discipline against the real pool.
package poolsafe

import "repro/internal/tensor"

// leak gets a scratch tensor and forgets to release it: the buffer
// never returns to the arena and nothing visibly takes ownership.
func leak(n int) float64 {
	scratch := tensor.Shared.Get(n, n) // want `pooled value scratch from Get is never released`
	scratch.Data[0] = 1
	return scratch.Data[0]
}

// useAfterPut reads a tensor after returning it to the pool: a data
// race with whichever goroutine Gets the recycled buffer next.
func useAfterPut(n int) float64 {
	t := tensor.Shared.Get(n, n)
	t.Data[0] = 2
	tensor.Shared.Put(t)
	return t.Data[0] // want `t is used after being returned to the pool`
}

// doublePut releases the same tensor twice.
func doublePut(n int) {
	t := tensor.Shared.Get(n, n)
	tensor.Shared.Put(t)
	tensor.Shared.Put(t) // want `t is used after being returned to the pool`
}

// putOK is the canonical scratch pattern: Get, use, Put.
func putOK(n int) float64 {
	t := tensor.Shared.Get(n, n)
	t.Data[0] = 3
	v := t.Data[0]
	tensor.Shared.Put(t)
	return v
}

// deferOK releases at function exit; uses in between are fine.
func deferOK(n int) float64 {
	t := tensor.Shared.Get(n, n)
	defer tensor.Shared.Put(t)
	t.Data[0] = 4
	return t.Data[0]
}

// returnOK hands the tensor to the caller: ownership visibly escapes.
func returnOK(n int) *tensor.Tensor {
	t := tensor.Shared.Get(n, n)
	t.Data[0] = 5
	return t
}

type holder struct{ t *tensor.Tensor }

// storeOK stores the tensor into a struct: ownership visibly escapes.
func storeOK(n int) *holder {
	t := tensor.Shared.Get(n, n)
	return &holder{t: t}
}

// handoffOK passes the tensor to another function, which may release it.
func handoffOK(n int) {
	t := tensor.Shared.Get(n, n)
	release(t)
}

func release(t *tensor.Tensor) {
	tensor.Shared.Put(t)
}

// branchPutOK puts only on an early-return branch; the use on the other
// branch must not be flagged (the release does not dominate it).
func branchPutOK(n int, early bool) float64 {
	t := tensor.Shared.Get(n, n)
	if early {
		tensor.Shared.Put(t)
		return 0
	}
	v := t.Data[0]
	tensor.Shared.Put(t)
	return v
}
