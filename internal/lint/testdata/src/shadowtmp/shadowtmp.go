package shadowtmp

import "repro/internal/tensor"

// Outer t and inner shadowed t are distinct objects but share the
// flow-fact key "t".
func shadowed(n int) float64 {
	t := tensor.Shared.Get(n, n)
	{
		t := tensor.Shared.Get(n, n)
		t.Data[0] = 1
		tensor.Shared.Put(t)
	}
	v := t.Data[0]
	tensor.Shared.Put(t)
	return v
}
