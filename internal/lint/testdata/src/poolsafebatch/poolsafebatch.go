// Package poolsafebatch holds golden fixtures for the poolsafe analyzer
// against tensor.BatchArena: a batch scratch checked out of the arena
// (tensor.Batches) must go back via Put — its held tensors recycle
// through the shared size-classed pool, so leaking or reusing one after
// Put aliases buffers with whichever batch Gets them next.
package poolsafebatch

import "repro/internal/tensor"

// leak checks out a batch scratch and never returns it: every tensor it
// allocated stays out of the shared pool for good.
func leak() int {
	sc := tensor.Batches.Get() // want `pooled value sc from Get is never released`
	x := sc.Get(2, 3)
	return x.Rows
}

// useAfterPut keeps allocating from a scratch after the arena reclaimed
// it: the held tensors may already back another batch's activations.
func useAfterPut() int {
	sc := tensor.Batches.Get()
	a := sc.Get(4, 4)
	rows := a.Rows
	tensor.Batches.Put(sc)
	b := sc.Get(4, 4) // want `sc is used after being returned to the pool`
	return rows + b.Rows
}

// doublePut releases the same scratch twice.
func doublePut() {
	sc := tensor.Batches.Get()
	sc.Get(1, 1)
	tensor.Batches.Put(sc)
	tensor.Batches.Put(sc) // want `sc is used after being returned to the pool`
}

// putOK is the canonical batched-inference pattern: Get, run the batch
// out of scratch, copy results out, Put.
func putOK() float64 {
	sc := tensor.Batches.Get()
	x := sc.Get(2, 2)
	x.Data[0] = 1
	out := x.Data[0]
	tensor.Batches.Put(sc)
	return out
}

// deferOK releases at function exit, the shape InferBatch.Close uses.
func deferOK() int {
	sc := tensor.Batches.Get()
	defer tensor.Batches.Put(sc)
	y := sc.Get(3, 5)
	return y.Cols
}

// returnOK hands the scratch to the caller: ownership visibly escapes
// (InferBatch stores its scratch in a struct field the same way).
func returnOK() *tensor.BatchScratch {
	sc := tensor.Batches.Get()
	sc.Get(1, 2)
	return sc
}

// handoffOK passes the scratch to another function, which releases it.
func handoffOK() {
	sc := tensor.Batches.Get()
	finish(sc)
}

func finish(sc *tensor.BatchScratch) {
	tensor.Batches.Put(sc)
}

// branchPutOK puts only on an early-return branch; the use on the other
// branch must not be flagged (the release does not dominate it).
func branchPutOK(early bool) int {
	sc := tensor.Batches.Get()
	if early {
		tensor.Batches.Put(sc)
		return 0
	}
	z := sc.Get(2, 6)
	n := z.Cols
	tensor.Batches.Put(sc)
	return n
}
