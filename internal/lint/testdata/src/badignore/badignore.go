// Package badignore holds fixtures for directive hygiene: a directive
// without a reason and a directive that suppresses nothing are both
// findings themselves.
package badignore

func malformed(a, b float64) bool {
	//lint:ignore floateq
	return a == b // want `float == comparison is bit-exact`
}

func unused(a, b int) bool {
	//lint:ignore floateq ints never trip the rule, so this is dead
	return a == b
}
