// Package ignores proves that a //lint:ignore directive suppresses
// exactly the one diagnostic it covers: the annotated comparison stays
// silent, the identical un-annotated one is still reported.
package ignores

func suppressed(a, b float64) bool {
	//lint:ignore floateq fixture: deliberate exact compare, suppressed
	return a == b
}

func reported(a, b float64) bool {
	return a == b // want `float == comparison is bit-exact`
}
