package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// PoolSafe checks pooled-resource lifecycle discipline, flow-sensitively
// over the function CFG, for tensor.Pool (scratch tensors, e.g.
// tensor.Shared), tensor.BatchArena (batch-inference scratch sets, e.g.
// tensor.Batches) and sqlast.ArenaPool (AST arenas, e.g.
// sqlast.SharedArenas): a value obtained from a pool Get must either be
// released (passed to the pool's Put or to autograd.Free) or visibly
// hand off ownership — returned, stored into a struct/slice/outer
// variable, captured by a closure, or passed to another function.
//
// Three findings:
//
//   - never released: the Get-bound local is neither released nor handed
//     off anywhere in the function (reported at the Get).
//   - leak on early return: the value is released on some paths but a
//     return (or the implicit one at the closing brace) is reachable
//     with the value still unreleased and no deferred release armed
//     (reported at that return). The old flow-insensitive counter
//     treated any release as covering every path and provably missed
//     this.
//   - use after release: a path reaches a use of the variable after a
//     statement that returned it to the pool — a data race with
//     whichever goroutine Gets the recycled buffer next. The flow
//     analysis follows releases across branch joins, so a Put inside one
//     arm poisons exactly the paths through that arm (the old check
//     only looked inside the releasing block's nesting and provably
//     missed the join).
//
// Escape analysis stays deliberately lenient and flow-insensitive: any
// visible hand-off of an aliasing value (the tensor pointer or its Data
// slice — not a scalar element) suppresses leak reports for that
// variable, and reassignment disables tracking entirely. Each function
// literal is its own flow universe; capturing an outer pooled variable
// counts as a hand-off.
func PoolSafe() *Analyzer {
	return &Analyzer{
		Name: "poolsafe",
		Doc:  "every Pool.Get is Put back, freed, or handed off on every path; no use after release",
		Run:  runPoolSafe,
	}
}

// Pooled-variable flow states (bitmask; see dataflow.go).
const (
	stUnreleased uint8 = 1 << iota // holds a live pooled value
	stReleased                     // returned to the pool
	stDeferRel                     // a deferred release is armed on this path
)

func runPoolSafe(p *Pass) {
	forEachFuncBody(p.Pkg, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		checkPoolFunc(p, body)
	})
}

// pooledVar is one Get-bound local within a single function body.
type pooledVar struct {
	obj      types.Object
	name     string
	key      string
	bindPos  token.Pos
	bindLine int
	binds    int
	escaped  bool
	released bool // some Put/Free names the variable (incl. deferred)
}

// checkPoolFunc analyzes one function body as its own flow universe.
// Nested function literals are opaque here (capturing a tracked variable
// is a hand-off); forEachFuncBody analyzes their bodies separately.
func checkPoolFunc(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	vars := map[types.Object]*pooledVar{}

	// Pass 1: Get bindings directly in this function (not in nested
	// literals — those are their own universe).
	inspectNoFuncLit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPoolMethod(info, call, "Get") {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if v, exists := vars[obj]; exists {
			v.binds++
			return true
		}
		// The flow-fact key is rooted at the declaring object (name plus
		// declaration position), not the bare name: a shadowed inner
		// variable is a different object, and its release must not poison
		// — or cover for — the outer one sharing its name.
		vars[obj] = &pooledVar{
			obj: obj, name: id.Name, key: id.Name + "#" + strconv.Itoa(int(obj.Pos())),
			bindPos:  as.Pos(),
			bindLine: p.Pkg.Fset.Position(as.Pos()).Line,
			binds:    1,
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2 (flow-insensitive): classify escapes, releases and rebinds
	// over the whole body, including nested literals (a capture escapes).
	classifyPoolUses(info, body, vars)

	// Never released, never handed off: report at the Get. These are done;
	// the flow analysis below covers the variables that ARE released
	// somewhere, asking whether every path agrees.
	tracked := map[types.Object]*pooledVar{}
	for obj, v := range vars {
		if v.binds != 1 {
			continue
		}
		if !v.released && !v.escaped {
			p.Reportf(v.bindPos, "pooled value %s from Get is never released (Put/autograd.Free) and never handed off: scratch allocations must go back to their pool", v.name)
			continue
		}
		if v.released {
			tracked[obj] = v
		}
	}
	if len(tracked) == 0 {
		return
	}

	cfg := buildCFG(body, info)
	byKey := map[string]*pooledVar{}
	for _, v := range tracked {
		byKey[v.key] = v
	}

	trackedObj := func(id *ast.Ident) *pooledVar { return tracked[info.ObjectOf(id)] }

	// releaseArgs returns the tracked variables a node releases directly
	// (not deferred), plus the deferred releases it arms.
	analysis := &flowAnalysis{
		transfer: func(n ast.Node, f flowFacts) {
			if _, ok := n.(endMarker); ok {
				return
			}
			if d, ok := n.(*ast.DeferStmt); ok {
				// defer pool.Put(t) arms an exit-time release on this
				// path; defer func() { pool.Put(t) }() approximates the
				// same. Anything else deferring over the variable was
				// already classified as an escape.
				for _, v := range deferredReleases(info, d, trackedObj) {
					f[v.key] |= stDeferRel
				}
				return
			}
			// Bindings first: the Get assignment (re)sets the state.
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, v := range tracked {
					if as.Pos() == v.bindPos {
						f[v.key] = stUnreleased | (f[v.key] & stDeferRel)
					}
				}
			}
			// Direct releases.
			inspectNoFuncLit(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || !(isPoolMethod(info, call, "Put") || isAutogradFree(info, call)) {
					return true
				}
				for _, arg := range call.Args {
					if id, ok := arg.(*ast.Ident); ok {
						if v := trackedObj(id); v != nil {
							f[v.key] = stReleased | (f[v.key] & stDeferRel)
						}
					}
				}
				return true
			})
		},
		check: func(n ast.Node, f flowFacts) {
			// End-of-function and explicit returns: anything still (or
			// possibly) unreleased with no deferred release armed leaks
			// on this path.
			reportLeaks := func(pos token.Pos) {
				for key, st := range f {
					v := byKey[key]
					if v == nil || v.escaped {
						continue
					}
					if st&stUnreleased != 0 && st&stDeferRel == 0 {
						p.Reportf(pos, "pooled value %s (Get at line %d) is not released on this return path: early returns must Put/Free it or defer the release", v.name, v.bindLine)
					}
				}
			}
			switch m := n.(type) {
			case endMarker:
				reportLeaks(m.Rbrace)
				return
			case *ast.ReturnStmt:
				reportLeaks(m.Pos())
			case *ast.DeferStmt:
				return // arming a release is not a use
			}
			// Any other mention of a tracked variable while a release may
			// already have happened on this path is a use-after-release.
			inspectNoFuncLit(n, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v := trackedObj(id)
				if v == nil {
					return true
				}
				st := f[v.key]
				if st&stReleased != 0 && st&stDeferRel == 0 {
					p.Reportf(id.Pos(), "%s is used after being returned to the pool: the buffer may already be recycled by another Get", v.name)
				}
				return true
			})
		},
	}
	analysis.run(cfg, flowFacts{})
}

// classifyPoolUses runs the flow-insensitive escape/release/rebind
// classification over the function body (descending into nested function
// literals: capturing a tracked variable is a visible hand-off).
func classifyPoolUses(info *types.Info, body *ast.BlockStmt, vars map[types.Object]*pooledVar) {
	mark := func(v *pooledVar) { v.escaped = true }
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			release := isPoolMethod(info, s, "Put") || isAutogradFree(info, s)
			for _, arg := range s.Args {
				id, ok := arg.(*ast.Ident)
				if !ok {
					// A derived expression passed along hands off
					// ownership only if its type can alias the buffer
					// (x.Data, &x — but not the scalar x.Data[i]).
					markAliasMention(info, vars, arg)
					continue
				}
				v := vars[info.ObjectOf(id)]
				if v == nil {
					continue
				}
				if release {
					v.released = true
				} else if !isSizeBuiltin(info, s) {
					mark(v)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				markAliasMention(info, vars, r)
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				markMention(info, vars, s.X)
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				markAliasMention(info, vars, elt)
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v := vars[info.ObjectOf(id)]; v != nil && s.Pos() != v.bindPos {
						v.binds++
					}
				}
			}
			for _, rhs := range s.Rhs {
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue // call args handled above
				}
				markAliasMention(info, vars, rhs)
			}
		case *ast.FuncLit:
			// Captures escape; the literal's own body is analyzed as a
			// separate flow universe by forEachFuncBody.
			for obj, v := range vars {
				if mentionsObject(info, s.Body, obj) {
					mark(v)
				}
			}
			return false
		}
		return true
	})
}

// deferredReleases lists the tracked variables a defer statement releases
// at function exit: a direct deferred Put/Free, or a deferred literal
// whose body contains one.
func deferredReleases(info *types.Info, d *ast.DeferStmt, trackedObj func(*ast.Ident) *pooledVar) []*pooledVar {
	var out []*pooledVar
	collect := func(call *ast.CallExpr) {
		if !(isPoolMethod(info, call, "Put") || isAutogradFree(info, call)) {
			return
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if v := trackedObj(id); v != nil {
					out = append(out, v)
				}
			}
		}
	}
	collect(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				collect(call)
			}
			return true
		})
	}
	return out
}

// markMention marks every tracked variable mentioned under node as
// escaped (ownership visibly handed off).
func markMention(info *types.Info, vars map[types.Object]*pooledVar, node ast.Node) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := vars[info.ObjectOf(id)]; v != nil {
				v.escaped = true
			}
		}
		return true
	})
}

// markAliasMention marks mentioned variables as escaped only when the
// expression's type can alias the pooled buffer: returning or storing
// the tensor pointer or its Data slice hands off ownership, reading a
// scalar element (x.Data[i], x.Rows) does not.
func markAliasMention(info *types.Info, vars map[types.Object]*pooledVar, expr ast.Expr) {
	if expr == nil {
		return
	}
	if !typeCanAlias(info.TypeOf(expr)) {
		return
	}
	markMention(info, vars, expr)
}

// typeCanAlias reports whether a value of type t can share memory with
// a pooled tensor.
func typeCanAlias(t types.Type) bool {
	if t == nil {
		return true // be lenient when the type is unknown
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return typeCanAlias(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeCanAlias(u.Field(i).Type()) {
				return true
			}
		}
		return false
	default:
		// Pointer, slice, map, chan, func, interface, tuple.
		return true
	}
}

// isPoolMethod reports whether call is a Get/Put on a recognized pool
// type: tensor.Pool, tensor.BatchArena or sqlast.ArenaPool.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	switch named.Obj().Name() {
	case "Pool", "BatchArena":
		return strings.HasSuffix(path, "internal/tensor")
	case "ArenaPool":
		return strings.HasSuffix(path, "internal/sqlast")
	}
	return false
}

func isAutogradFree(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Free" {
		return false
	}
	return strings.HasSuffix(importedPackage(info, sel.X), "internal/autograd")
}

// isSizeBuiltin reports len/cap/clear style builtins, which read a
// pooled tensor without taking ownership.
func isSizeBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	if !ok {
		return false
	}
	switch b.Name() {
	case "len", "cap", "clear", "copy", "print", "println":
		return true
	}
	return false
}
