package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolSafe checks pooled-resource lifecycle discipline per function,
// flow-insensitively, for tensor.Pool (scratch tensors, e.g.
// tensor.Shared), tensor.BatchArena (batch-inference scratch sets, e.g.
// tensor.Batches) and sqlast.ArenaPool (AST arenas, e.g.
// sqlast.SharedArenas): a value obtained from a pool Get must
// either be released (passed to the pool's Put or to autograd.Free) or
// visibly hand off ownership — returned, stored into a struct/slice/
// outer variable, captured by a closure, or passed to another function.
// A Get-bound local that does none of these leaks arena discipline and
// is reported; so is any use of the variable positionally after the
// statement that returned it to the pool (use-after-Put is a data race
// with whichever goroutine Gets the recycled buffer next — exactly the
// cross-goroutine bug PR 3's race suite caught dynamically).
//
// Being flow-insensitive, the check is deliberately lenient: any escape
// suppresses the missing-Put report, and use-after-Put only fires when
// the release dominates the use positionally within the same block
// nesting (a Put inside an early-return branch does not poison the
// other branch).
func PoolSafe() *Analyzer {
	return &Analyzer{
		Name: "poolsafe",
		Doc:  "every Pool.Get is Put back, freed, or handed off; no use after release",
		Run:  runPoolSafe,
	}
}

func runPoolSafe(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkPoolFunc(p, fd.Body)
				return false
			}
			return true
		})
	}
}

// pooledVar tracks one Get-bound local within a function body.
type pooledVar struct {
	name    string
	bindPos token.Pos
	bindFn  *ast.FuncLit // innermost closure holding the binding (nil = the FuncDecl)
	binds   int          // assignments to the variable (reassignment disables use-after checks)
	escaped bool
	// releases are (end position, innermost enclosing block) of each
	// Put/Free call naming the variable.
	relEnds   []token.Pos
	relBlocks []*ast.BlockStmt
}

func checkPoolFunc(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	vars := map[types.Object]*pooledVar{}

	// Pass 1: find Get bindings.
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPoolMethod(info, call, "Get") {
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if v, exists := vars[obj]; exists {
			v.binds++
			return true
		}
		vars[obj] = &pooledVar{name: id.Name, bindPos: as.Pos(), bindFn: innermostFuncLit(stack), binds: 1}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: classify every other appearance of each tracked variable.
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			release := isPoolMethod(info, s, "Put") || isAutogradFree(info, s)
			for _, arg := range s.Args {
				id, ok := arg.(*ast.Ident)
				if !ok {
					// A derived expression passed along hands off
					// ownership only if its type can alias the buffer
					// (x.Data, &x — but not the scalar x.Data[i]).
					markAliasMention(info, vars, arg)
					continue
				}
				v := vars[info.ObjectOf(id)]
				if v == nil {
					continue
				}
				if release {
					end := s.End()
					if len(stack) > 0 {
						switch stack[len(stack)-1].(type) {
						case *ast.DeferStmt, *ast.GoStmt:
							// A deferred Put releases at function exit;
							// uses between here and the end are fine.
							end = body.End()
						}
					}
					v.relEnds = append(v.relEnds, end)
					v.relBlocks = append(v.relBlocks, innermostBlock(stack))
				} else if !isSizeBuiltin(info, s) {
					v.escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				markAliasMention(info, vars, r)
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				markMention(info, vars, s.X)
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				markAliasMention(info, vars, elt)
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v := vars[info.ObjectOf(id)]; v != nil && s.Pos() != v.bindPos {
						v.binds++
					}
				}
			}
			for _, rhs := range s.Rhs {
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue // call args handled above
				}
				markAliasMention(info, vars, rhs)
			}
		case *ast.FuncLit:
			// Uses inside a different closure than the binding escape.
			for obj, v := range vars {
				if v.bindFn != s && mentionsObject(info, s.Body, obj) {
					v.escaped = true
				}
			}
		}
		return true
	})

	for _, v := range vars {
		if v.binds == 1 && !v.escaped && len(v.relEnds) == 0 {
			p.Reportf(v.bindPos, "pooled value %s from Get is never released (Put/autograd.Free) and never handed off: scratch allocations must go back to their pool", v.name)
		}
	}

	// Pass 3: use-after-release.
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := vars[info.ObjectOf(id)]
		if v == nil || v.binds != 1 {
			return true
		}
		for i, end := range v.relEnds {
			blk := v.relBlocks[i]
			if id.Pos() > end && blk != nil && blk.Pos() <= id.Pos() && id.Pos() <= blk.End() {
				p.Reportf(id.Pos(), "%s is used after being returned to the pool: the buffer may already be recycled by another Get", v.name)
				break
			}
		}
		return true
	})
}

// markMention marks every tracked variable mentioned under node as
// escaped (ownership visibly handed off).
func markMention(info *types.Info, vars map[types.Object]*pooledVar, node ast.Node) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := vars[info.ObjectOf(id)]; v != nil {
				v.escaped = true
			}
		}
		return true
	})
}

// markAliasMention marks mentioned variables as escaped only when the
// expression's type can alias the pooled buffer: returning or storing
// the tensor pointer or its Data slice hands off ownership, reading a
// scalar element (x.Data[i], x.Rows) does not.
func markAliasMention(info *types.Info, vars map[types.Object]*pooledVar, expr ast.Expr) {
	if expr == nil {
		return
	}
	if !typeCanAlias(info.TypeOf(expr)) {
		return
	}
	markMention(info, vars, expr)
}

// typeCanAlias reports whether a value of type t can share memory with
// a pooled tensor.
func typeCanAlias(t types.Type) bool {
	if t == nil {
		return true // be lenient when the type is unknown
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return typeCanAlias(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeCanAlias(u.Field(i).Type()) {
				return true
			}
		}
		return false
	default:
		// Pointer, slice, map, chan, func, interface, tuple.
		return true
	}
}

// isPoolMethod reports whether call is a Get/Put on a recognized pool
// type: tensor.Pool, tensor.BatchArena or sqlast.ArenaPool.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	switch named.Obj().Name() {
	case "Pool", "BatchArena":
		return strings.HasSuffix(path, "internal/tensor")
	case "ArenaPool":
		return strings.HasSuffix(path, "internal/sqlast")
	}
	return false
}

func isAutogradFree(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Free" {
		return false
	}
	return strings.HasSuffix(importedPackage(info, sel.X), "internal/autograd")
}

// isSizeBuiltin reports len/cap/clear style builtins, which read a
// pooled tensor without taking ownership.
func isSizeBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	if !ok {
		return false
	}
	switch b.Name() {
	case "len", "cap", "clear", "copy", "print", "println":
		return true
	}
	return false
}

func innermostFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

func innermostBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}
