package lint

import (
	"go/ast"
)

// DetRand enforces determinism in the numeric core (the packages whose
// outputs must be a pure function of seed and inputs, because the
// checkpoint/resume equality proofs depend on it):
//
//   - no wall-clock reads: time.Now / time.Since / time.Until. Elapsed
//     time is telemetry; the caller injects a clock if it wants one.
//   - no globally seeded math/rand: every package-level rand.* function
//     draws from the shared process source. All randomness must flow
//     through an explicit, checkpointable stream — checkpoint.NewRNG's
//     splitmix64 source, optionally wrapped in rand.New. The explicit
//     constructors (rand.New, rand.NewSource, rand.NewZipf) stay legal.
//   - no map-iteration-order leaks, via the same engine as maporder:
//     inside the deterministic core, a ranged map feeding a float
//     accumulator, an unsorted slice, or output reintroduces exactly
//     the nondeterminism PRs 2–3 eliminated.
func DetRand(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "detrand",
		Doc:      "deterministic packages must not read clocks, use global math/rand, or leak map order",
		Packages: packages,
		Run:      runDetRand,
	}
}

// randConstructors are the explicitly seeded math/rand entry points that
// remain legal in deterministic packages.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDetRand(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch importedPackage(info, sel.X) {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					p.Reportf(call.Pos(), "time.%s in deterministic package: wall clocks are nondeterministic; inject a clock from the caller (e.g. an Options field)", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					p.Reportf(call.Pos(), "rand.%s draws from the global math/rand source: use the checkpointable stream (checkpoint.NewRNG, optionally via rand.New)", sel.Sel.Name)
				}
			}
			return true
		})
	}
	forEachMapRange(p.Pkg, func(rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
		for _, leak := range mapRangeLeaks(p.Pkg, rs, fnBody) {
			p.Reportf(leak.pos, "%s under map iteration in deterministic package: order is randomized per run; sort the keys first", leak.what)
		}
	})
}
