package lint

import (
	"go/token"
	"strings"
)

// A //lint:ignore directive suppresses findings of one rule on its own
// line (end-of-line form) or on the line immediately below (standalone
// form):
//
//	//lint:ignore floateq exact zero means "field absent on the wire"
//	if w == 0 { ... }
//
// The reason is mandatory; a directive without one, or one that matched
// nothing, is itself reported under the "lint" rule. That keeps the
// escape hatch an explicit, counted, and auditable set rather than a
// silent bypass.
type directive struct {
	pos  token.Position
	rule string
	used bool
}

const ignorePrefix = "lint:ignore"

// filterIgnored splits diags into kept and suppressed findings, and
// reports malformed or unused directives. A directive is only policed
// for use when its rule is in the active set: running a -rules subset
// must not flag the other rules' annotations as rotten.
func filterIgnored(pkg *Package, diags []Diagnostic, active map[string]bool) (kept, suppressed []Diagnostic, directiveDiags []Diagnostic) {
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					directiveDiags = append(directiveDiags, Diagnostic{
						Pos:  pos,
						Rule: "lint",
						Msg:  "malformed //lint:ignore directive: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				dirs = append(dirs, &directive{pos: pos, rule: fields[0]})
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, dir := range dirs {
			if dir.rule == d.Rule && dir.pos.Filename == d.Pos.Filename &&
				(dir.pos.Line == d.Pos.Line || dir.pos.Line+1 == d.Pos.Line) {
				dir.used = true
				matched = true
				break
			}
		}
		if matched {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used && active[dir.rule] {
			directiveDiags = append(directiveDiags, Diagnostic{
				Pos:  dir.pos,
				Rule: "lint",
				Msg:  "unused //lint:ignore directive for rule " + dir.rule + ": nothing to suppress on this or the next line",
			})
		}
	}
	return kept, suppressed, directiveDiags
}
