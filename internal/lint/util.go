package lint

import (
	"go/ast"
	"go/types"
)

// inspectWithStack is ast.Inspect plus the ancestor stack: fn receives
// each node together with the nodes enclosing it (outermost first,
// excluding n itself). Returning false prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// inspectNoFuncLit is ast.Inspect pruned at function literals: fn sees
// every node under root except the interiors of nested *ast.FuncLit
// bodies (the literals themselves are still visited). Flow analyses use
// it to keep each function body its own universe.
func inspectNoFuncLit(root ast.Node, fn func(n ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if !fn(n) {
			return false
		}
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

// importedPackage resolves expr to the import path of the package it
// names, or "" if expr is not a package qualifier.
func importedPackage(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether id's object is declared outside the
// span of node (i.e. the identifier refers to enclosing-scope state).
func declaredOutside(info *types.Info, id *ast.Ident, node ast.Node) bool {
	obj := info.ObjectOf(id)
	if obj == nil || obj.Pos() == 0 {
		// No position: package-level dot-imported or universe object;
		// treat as outside.
		return true
	}
	return obj.Pos() < node.Pos() || obj.Pos() > node.End()
}

// rootIdent returns the base identifier of expr (x in x, x.f, x[i],
// x.f[i].g), or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// mentionsObject reports whether any identifier inside node refers to obj.
func mentionsObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
