package lint

import (
	"go/ast"
	"go/types"
)

// DurIO guards the durable write paths (internal/checkpoint and
// internal/modeldir): crash safety is only as strong as the least
// checked syscall in the write-temp-fsync-rename sequence.
//
// It flags (a) statement-position calls — plain, deferred, or go'd —
// to Close/Sync/Write/WriteString/Flush methods whose error result is
// dropped on the floor, and (b) calls to os.Create / os.WriteFile,
// which produce torn files on crash and must go through the atomic
// envelope (checkpoint.WriteAtomic) instead. os.CreateTemp is exempt:
// it is how the envelope itself stages data. An intentionally ignored
// error (a best-effort close on an already-failing path) takes an
// explicit `_ =` assignment or a //lint:ignore with a reason.
func DurIO(packages []string) *Analyzer {
	return &Analyzer{
		Name:     "durio",
		Doc:      "durable packages must check Close/Sync/Write errors and write through the atomic envelope",
		Packages: packages,
		Run:      runDurIO,
	}
}

var durMethods = map[string]bool{
	"Close": true, "Sync": true, "Write": true, "WriteString": true, "Flush": true,
}

func runDurIO(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkDropped(p, s.X, "")
			case *ast.DeferStmt:
				checkDropped(p, s.Call, "deferred ")
			case *ast.GoStmt:
				checkDropped(p, s.Call, "go ")
			case *ast.CallExpr:
				sel, ok := s.Fun.(*ast.SelectorExpr)
				if ok && importedPackage(info, sel.X) == "os" {
					switch sel.Sel.Name {
					case "Create", "WriteFile":
						p.Reportf(s.Pos(), "os.%s writes a torn file on crash: route artifacts through the atomic envelope (checkpoint.WriteAtomic)", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
}

// checkDropped reports a statement-position method call whose error
// result is discarded.
func checkDropped(p *Pass, expr ast.Expr, how string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !durMethods[sel.Sel.Name] {
		return
	}
	if importedPackage(p.Pkg.Info, sel.X) != "" {
		return // package function, not a method on a handle
	}
	if !returnsError(p.Pkg.Info.TypeOf(call)) {
		return
	}
	p.Reportf(call.Pos(), "%s%s error is unchecked on a durable write path: handle it (or discard explicitly with `_ =` and a reason)", how, sel.Sel.Name)
}

func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
