package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
// Only non-test files are loaded: the rules guard production invariants,
// and several (floateq in particular) explicitly exempt tests.
type Package struct {
	Path  string // import path, e.g. repro/internal/tensor
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module with
// the standard library alone. Module-internal imports are resolved
// recursively from source by mapping the module path prefix onto the
// module directory; everything else (the stdlib) goes through
// go/importer's source importer. Results are cached per import path, so
// shared dependencies type-check once per process.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modDir  string
	std     types.Importer
	cache   map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader walks up from dir to the enclosing go.mod and returns a
// loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modDir:  root,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*loadEntry{},
	}, nil
}

// ModulePath returns the module path from go.mod (e.g. "repro").
func (l *Loader) ModulePath() string { return l.modPath }

// Import implements types.Importer so the type checker can resolve both
// module-internal and stdlib imports through the loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the package with the given module-internal import
// path (cached).
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.cache[path]; ok {
		return e.pkg, e.err
	}
	// The placeholder entry turns an import cycle into an error instead
	// of infinite recursion.
	l.cache[path] = &loadEntry{err: fmt.Errorf("lint: import cycle through %s", path)}
	pkg, err := l.check(path)
	l.cache[path] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) check(path string) (*Package, error) {
	rel := strings.TrimPrefix(path, l.modPath)
	dir := filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	names, err := goFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no non-test Go files in %s", path, dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFiles lists the non-test Go files of dir in sorted order.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns expands go-style package patterns ("./...", "./internal/foo",
// "./cmd/...") relative to the module root into loaded packages. Directories
// named testdata, vendor, or starting with "." or "_" are skipped, matching
// the go tool's convention.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	seen := map[string]bool{}
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
		}
		base := filepath.Join(l.modDir, filepath.FromSlash(pat))
		if !recursive {
			add(l.importPath(base))
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goFiles(p); err == nil && len(names) > 0 {
				add(l.importPath(p))
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}
