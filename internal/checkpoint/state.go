package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/seq2seq"
	"repro/internal/tensor"
)

// TrainStateVersion is the envelope format version for serialized
// training state.
const TrainStateVersion = 1

// Tensor is the serialized form of one parameter or moment buffer.
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// FromTensor deep-copies a live tensor into its serialized form.
func FromTensor(t *tensor.Tensor) Tensor {
	return Tensor{Rows: t.Rows, Cols: t.Cols, Data: append([]float64(nil), t.Data...)}
}

// ToTensor materializes the serialized tensor.
func (t Tensor) ToTensor() *tensor.Tensor {
	return tensor.FromSlice(t.Rows, t.Cols, append([]float64(nil), t.Data...))
}

// FromTensorMap deep-copies a name→tensor map into serialized form.
func FromTensorMap(m map[string]*tensor.Tensor) map[string]Tensor {
	out := make(map[string]Tensor, len(m))
	for name, t := range m {
		out[name] = FromTensor(t)
	}
	return out
}

// ToTensorMap materializes a serialized tensor map.
func ToTensorMap(m map[string]Tensor) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor, len(m))
	for name, t := range m {
		out[name] = t.ToTensor()
	}
	return out
}

// OptimState is the serialized Adam optimizer: the shared step counter
// and the per-parameter first/second moment buffers, keyed by parameter
// name. Parameters that never received a gradient are absent, matching
// the optimizer's lazy allocation.
type OptimState struct {
	Step int
	M, V map[string]Tensor
}

// TrainState is a complete snapshot of a seq2seq training run at a batch
// or epoch boundary. Restoring it and continuing produces the exact loss
// trajectory of the uninterrupted run: the shuffle order, RNG stream,
// optimizer moments and partial-epoch loss accumulators are all included.
type TrainState struct {
	// Seed is the Options.Seed the run started with; resuming under a
	// different seed is rejected.
	Seed int64
	// RNG is the serialized state of the training RNG stream (shuffling
	// and dropout) at the snapshot point.
	RNG uint64

	// Epoch counts fully completed epochs; Batch is the index into Order
	// where the next batch starts (0 at an epoch boundary).
	Epoch int
	Batch int
	// Order is the current epoch's shuffled example order; nil at an
	// epoch boundary (the next epoch reshuffles from RNG).
	Order []int
	// SumLoss and Count are the partial-epoch training-loss accumulators.
	SumLoss float64
	Count   int

	// Params are the model parameters by name; ModelCfg is the
	// architecture they belong to, so a resuming process can rebuild (or
	// validate) the model before restoring.
	Params   map[string]Tensor
	ModelCfg seq2seq.Config
	Optim    OptimState

	// Loss history and early-stopping state.
	TrainLosses []float64
	ValLosses   []float64
	BestVal     float64
	BestEpoch   int
	Bad         int

	// NumTrain guards against resuming on a different dataset.
	NumTrain int
	// Done marks a run that finished (epoch budget exhausted or early
	// stop); resuming a done state restores parameters without training.
	Done bool
}

// EncodeState gob-encodes the state (the envelope payload).
func (s *TrainState) EncodeState(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// DecodeState reads a gob-encoded TrainState.
func DecodeState(r io.Reader) (*TrainState, error) {
	var s TrainState
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode state: %w", err)
	}
	return &s, nil
}

// RNG is a splitmix64 random source whose entire state is one uint64,
// making it trivially serializable into checkpoints — unlike math/rand's
// default source, whose state is unexportable. It implements
// rand.Source64, so rand.New(rng) layers the full math/rand API on top
// deterministically.
type RNG struct {
	state uint64
}

// NewRNG seeds a source. Equal seeds yield equal streams.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// Uint64 advances the splitmix64 stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed implements rand.Source.
func (r *RNG) Seed(seed int64) { r.state = uint64(seed) }

// State exports the stream position for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState resumes the stream at a checkpointed position.
func (r *RNG) SetState(s uint64) { r.state = s }
