package checkpoint

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/seq2seq"
)

// testState builds a minimal-but-realistic TrainState for manager tests.
func testState(epoch int, val []float64, bestEpoch int) *TrainState {
	best := math.Inf(1)
	for _, v := range val {
		if v < best {
			best = v
		}
	}
	return &TrainState{
		Seed:      42,
		RNG:       uint64(epoch) * 977,
		Epoch:     epoch,
		Params:    map[string]Tensor{"enc.w": {Rows: 1, Cols: 2, Data: []float64{float64(epoch), 1}}},
		ModelCfg:  seq2seq.Config{Arch: seq2seq.Transformer, Vocab: 8, DModel: 4},
		Optim:     OptimState{Step: epoch, M: map[string]Tensor{}, V: map[string]Tensor{}},
		ValLosses: val,
		BestVal:   best,
		BestEpoch: bestEpoch,
		NumTrain:  10,
	}
}

func TestManagerSaveLoadRoundTrip(t *testing.T) {
	m, err := NewManager(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	st := testState(2, []float64{3, 2.5}, 1)
	st.Batch = 4
	st.Order = []int{3, 1, 2, 0, 4, 5, 6, 7, 8, 9}
	st.SumLoss = 1.25
	st.Count = 4
	if _, err := m.Save(st); err != nil {
		t.Fatal(err)
	}
	got, path, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(path, numberedPrefix) {
		t.Errorf("unexpected path %s", path)
	}
	if got.Epoch != 2 || got.Batch != 4 || got.SumLoss != 1.25 || got.Count != 4 {
		t.Errorf("cursors lost: %+v", got)
	}
	if len(got.Order) != 10 || got.Order[0] != 3 {
		t.Errorf("order lost: %v", got.Order)
	}
	if got.ModelCfg.Arch != seq2seq.Transformer || got.ModelCfg.DModel != 4 {
		t.Errorf("model config lost: %+v", got.ModelCfg)
	}
	if got.Params["enc.w"].Data[0] != 2 {
		t.Errorf("params lost: %+v", got.Params)
	}
}

func TestManagerRetentionKeepsLastKPlusBest(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 is the best (val 1.0); later epochs are worse, so pruning
	// the numbered files must not lose the best state.
	vals := [][]float64{{2}, {2, 1}, {2, 1, 3}, {2, 1, 3, 4}, {2, 1, 3, 4, 5}}
	for i, v := range vals {
		if _, err := m.Save(testState(i+1, v, 1)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var numbered, best int
	for _, e := range entries {
		switch {
		case e.Name() == BestFile:
			best++
		case strings.HasPrefix(e.Name(), numberedPrefix):
			numbered++
		default:
			t.Errorf("unexpected file %s", e.Name())
		}
	}
	if numbered != 2 {
		t.Errorf("retention kept %d numbered checkpoints, want 2", numbered)
	}
	if best != 1 {
		t.Errorf("best checkpoint missing (%d)", best)
	}
	// The best file holds epoch 2's state (the epoch after the best val
	// was measured), not the latest.
	bst, err := m.LoadBest()
	if err != nil {
		t.Fatal(err)
	}
	if bst.Epoch != 2 {
		t.Errorf("best checkpoint is epoch %d, want 2", bst.Epoch)
	}
	// Latest is the newest numbered one.
	latest, _, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Epoch != 5 {
		t.Errorf("latest is epoch %d, want 5", latest.Epoch)
	}
}

func TestManagerMidEpochSaveNeverUpdatesBest(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(testState(1, []float64{1.5}, 0)); err != nil {
		t.Fatal(err)
	}
	mid := testState(1, []float64{1.5}, 0)
	mid.Batch = 8
	mid.Order = []int{0}
	if _, err := m.Save(mid); err != nil {
		t.Fatal(err)
	}
	bst, err := m.LoadBest()
	if err != nil {
		t.Fatal(err)
	}
	if bst.Batch != 0 {
		t.Errorf("best checkpoint captured mid-epoch state (batch %d)", bst.Batch)
	}
}

func TestManagerSkipsCorruptAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 1; i <= 3; i++ {
		p, err := m.Save(testState(i, []float64{float64(4 - i)}, i-1))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Corrupt the two newest: one truncated mid-payload, one bit-flipped.
	truncateFile(t, paths[2], 30)
	flipByte(t, paths[1], 40)

	var logged []string
	m.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	st, path, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if path != paths[0] || st.Epoch != 1 {
		t.Errorf("recovered %s (epoch %d), want %s", path, st.Epoch, paths[0])
	}
	if len(logged) != 2 {
		t.Errorf("expected 2 skip log lines, got %v", logged)
	}
	for _, line := range logged {
		if !strings.Contains(line, "skipping") {
			t.Errorf("log line does not explain the skip: %q", line)
		}
	}
}

func TestManagerAllCorruptFallsBackToBestThenErrors(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Save(testState(1, []float64{1}, 0)) // also writes best.ckpt
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, p, 35)
	m.Logf = func(string, ...any) {}
	st, path, err := m.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != BestFile || st.Epoch != 1 {
		t.Errorf("expected fallback to best, got %s", path)
	}
	// Corrupt best too: nothing left.
	flipByte(t, filepath.Join(dir, BestFile), 35)
	if _, _, err := m.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestManagerEmptyDir(t *testing.T) {
	m, err := NewManager(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestManagerSweepsStaleTempsAndResumesSequence(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Save(testState(1, nil, 0)); err != nil {
		t.Fatal(err)
	}
	// Crash artifacts: a stale temp from a dying writer.
	stale := filepath.Join(dir, "ckpt-00000001.ckpt"+tempPattern+"999")
	if err := os.WriteFile(stale, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh manager (the restarted process) sweeps temps and continues
	// the numbering after the survivor.
	m2, err := NewManager(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale temp not swept")
	}
	p, err := m2.Save(testState(2, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "00000001") {
		t.Errorf("sequence did not resume: %s", p)
	}
}

func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
