package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("payload"), 1000)} {
		data := Encode(7, payload)
		got, err := Decode(data, 7)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

func TestDecodeTruncation(t *testing.T) {
	data := Encode(1, []byte("the quick brown fox"))
	// Every proper prefix must be rejected — and with ErrTruncated unless
	// the cut destroys the magic/header first.
	for n := 0; n < len(data); n++ {
		_, err := Decode(data[:n], 1)
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncation to %d bytes: unexpected error %v", n, err)
		}
	}
	// Truncation below the full header is specifically ErrTruncated.
	if _, err := Decode(data[:headerSize-1], 1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header truncation: %v", err)
	}
	// Truncation inside the payload is also ErrTruncated.
	if _, err := Decode(data[:len(data)-3], 1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("payload truncation: %v", err)
	}
}

func TestDecodeBitFlips(t *testing.T) {
	data := Encode(1, []byte("some payload that matters"))
	// Flip one bit at every byte position: the decoder must reject every
	// variant — never return a wrong payload with a nil error.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		got, err := Decode(mut, 1)
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted (payload %q)", i, got)
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode([]byte("GARBAGE!but long enough to hold a header..."), 1); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	data := Encode(2, []byte("payload"))
	_, err := Decode(data, 1)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want VersionError, got %v", err)
	}
	if ve.Got != 2 || ve.Want != 1 {
		t.Fatalf("version error fields: %+v", ve)
	}
}

func TestDecodeTrailingData(t *testing.T) {
	data := append(Encode(1, []byte("payload")), 0xAA)
	if _, err := Decode(data, 1); !errors.Is(err, ErrChecksum) {
		t.Fatalf("trailing byte: want ErrChecksum, got %v", err)
	}
}

func TestWriteReadAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if err := WriteAtomic(path, 3, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := ReadAtomic(path, 3, func(r io.Reader) error {
		var err error
		got, err = io.ReadAll(r)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("payload: %q", got)
	}
	// No temp droppings after a clean write.
	left, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("directory not clean: %v", left)
	}
}

func TestReadAtomicMissingFile(t *testing.T) {
	err := ReadAtomic(filepath.Join(t.TempDir(), "absent.bin"), 1, func(io.Reader) error { return nil })
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist, got %v", err)
	}
}

// TestWriteAtomicFailingWriterKeepsOldFile injects a writer that fails
// partway through encoding — the kill-mid-write analogue at the payload
// layer. The previous file version must survive untouched and no temp
// file may linger.
func TestWriteAtomicFailingWriterKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteAtomic(path, 1, payloadWriter("version-one")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := WriteAtomic(path, 1, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	assertPayload(t, path, "version-one")
	assertNoTemps(t, dir)
}

// TestCrashMidWriteLeavesOldFileAndStaleTemp simulates a process killed
// between writing the temp file and renaming it: the target keeps the
// old content, the stale temp is ignored by readers and swept by
// RemoveStaleTemps.
func TestCrashMidWriteLeavesOldFileAndStaleTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteAtomic(path, 1, payloadWriter("good")); err != nil {
		t.Fatal(err)
	}
	// A half-written temp file, as a crashed writer would leave behind.
	stale := filepath.Join(dir, "state.bin"+tempPattern+"12345")
	if err := os.WriteFile(stale, []byte("QRECCKP1 half writt"), 0o644); err != nil {
		t.Fatal(err)
	}
	assertPayload(t, path, "good")
	removed, err := RemoveStaleTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != stale {
		t.Fatalf("removed: %v", removed)
	}
	assertNoTemps(t, dir)
	assertPayload(t, path, "good")
}

// TestReadAtomicRejectsOnDiskCorruption covers kill-mid-write (file
// truncated at arbitrary points) and bit rot on the final file: every
// corruption is rejected with the precise sentinel, never decoded.
func TestReadAtomicRejectsOnDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteAtomic(path, 1, payloadWriter("precious bytes that must not decode wrong")); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, headerSize - 1, headerSize, len(pristine) - 1} {
			if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
				t.Fatal(err)
			}
			err := ReadAtomic(path, 1, failIfCalled(t))
			if err == nil {
				t.Fatalf("truncation to %d accepted", n)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("truncation to %d: %v", n, err)
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		for _, i := range []int{9, 22, 26, headerSize, len(pristine) - 1} {
			mut := append([]byte(nil), pristine...)
			mut[i] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := ReadAtomic(path, 1, failIfCalled(t)); err == nil {
				t.Fatalf("bit flip at %d accepted", i)
			}
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		if err := os.WriteFile(path, Encode(9, []byte("future format")), 0o644); err != nil {
			t.Fatal(err)
		}
		var ve *VersionError
		if err := ReadAtomic(path, 1, failIfCalled(t)); !errors.As(err, &ve) {
			t.Fatalf("want VersionError, got %v", err)
		}
	})
}

func TestIsTemp(t *testing.T) {
	if !IsTemp("state.bin.tmp-8234") {
		t.Error("temp name not recognized")
	}
	if IsTemp("state.bin") || IsTemp("ckpt-00000001.ckpt") {
		t.Error("regular name misclassified")
	}
}

// payloadWriter returns a save func writing a fixed payload.
func payloadWriter(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func assertPayload(t *testing.T, path, want string) {
	t.Helper()
	var got []byte
	if err := ReadAtomic(path, 1, func(r io.Reader) error {
		var err error
		got, err = io.ReadAll(r)
		return err
	}); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if string(got) != want {
		t.Fatalf("payload %q, want %q", got, want)
	}
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if IsTemp(e.Name()) {
			t.Fatalf("stale temp file left behind: %s", e.Name())
		}
	}
}

// failIfCalled is a load func that must never run: corruption has to be
// detected before any decoder sees the payload.
func failIfCalled(t *testing.T) func(io.Reader) error {
	return func(io.Reader) error {
		t.Fatal("load called on corrupt data")
		return fmt.Errorf("unreachable")
	}
}
