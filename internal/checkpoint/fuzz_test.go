package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode hammers the envelope decoder with arbitrary bytes.
// Invariants: never panic; on success the payload re-encodes to exactly
// the input (the envelope is canonical); on failure the error is one of
// the package's typed causes (guaranteed by construction — this target
// mainly guards against panics and acceptance of corrupt input).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(Encode(1, nil))
	f.Add(Encode(1, []byte("hello checkpoint")))
	f.Add(Encode(TrainStateVersion, bytes.Repeat([]byte{0xAB}, 100)))
	// Near-miss seeds: truncated, bit-flipped, trailing garbage.
	full := Encode(1, []byte("seed payload"))
	f.Add(full[:len(full)-4])
	f.Add(append(append([]byte(nil), full...), 0x00))
	flipped := append([]byte(nil), full...)
	flipped[10] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data, 1)
		if err != nil {
			return
		}
		if got := Encode(1, payload); !bytes.Equal(got, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, got)
		}
		// A decoded payload must round-trip through a second decode.
		again, err := Decode(Encode(1, payload), 1)
		if err != nil || !bytes.Equal(again, payload) {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
