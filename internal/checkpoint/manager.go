package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint filenames. Numbered checkpoints rotate; BestFile always
// holds the state whose validation loss was lowest so far.
const (
	numberedPrefix = "ckpt-"
	numberedSuffix = ".ckpt"
	// BestFile is the best-validation checkpoint within a directory.
	BestFile = "best.ckpt"
)

// DefaultKeep is how many numbered checkpoints a Manager retains.
const DefaultKeep = 3

// ErrNoCheckpoint is returned by LoadLatest when the directory holds no
// loadable checkpoint (empty, or every candidate is corrupt).
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// Manager owns a checkpoint directory: it writes numbered checkpoints
// atomically, maintains the best-validation copy, prunes old files down
// to the retention budget, and recovers the newest valid state on load,
// skipping anything corrupt or truncated.
type Manager struct {
	dir  string
	keep int
	next int
	// Logf reports recovery decisions (corrupt files skipped, temps
	// swept). Nil silences it.
	Logf func(format string, args ...any)
}

// NewManager opens (creating if needed) a checkpoint directory, sweeps
// stale temp files from crashed writers, and positions the sequence
// counter after the newest existing checkpoint.
func NewManager(dir string, keep int) (*Manager, error) {
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	m := &Manager{dir: dir, keep: keep}
	if _, err := RemoveStaleTemps(dir); err != nil {
		return nil, err
	}
	seqs, err := m.sequence()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		m.next = seqs[len(seqs)-1] + 1
	}
	return m, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// sequence lists existing numbered checkpoint sequence numbers,
// ascending.
func (m *Manager) sequence() ([]int, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, numberedPrefix) || !strings.HasSuffix(name, numberedSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, numberedPrefix), numberedSuffix))
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)
	return seqs, nil
}

func (m *Manager) path(seq int) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s%08d%s", numberedPrefix, seq, numberedSuffix))
}

// Save writes st as the next numbered checkpoint, refreshes the
// best-validation copy when st snapshots a new best epoch, and prunes
// numbered checkpoints beyond the retention budget. It returns the path
// written.
func (m *Manager) Save(st *TrainState) (string, error) {
	path := m.path(m.next)
	if err := WriteAtomic(path, TrainStateVersion, st.EncodeState); err != nil {
		return "", err
	}
	m.next++
	// An epoch-boundary snapshot whose just-finished epoch is the best so
	// far becomes the best-validation checkpoint. Mid-epoch snapshots
	// (Batch > 0) carry parameters past the measured validation point, so
	// they never qualify.
	if st.Batch == 0 && len(st.ValLosses) > 0 && st.BestEpoch == len(st.ValLosses)-1 {
		if err := WriteAtomic(filepath.Join(m.dir, BestFile), TrainStateVersion, st.EncodeState); err != nil {
			return "", err
		}
	}
	if err := m.prune(); err != nil {
		return "", err
	}
	return path, nil
}

// Hook adapts Save to the train.Options.Checkpoint signature.
func (m *Manager) Hook() func(*TrainState) error {
	return func(st *TrainState) error {
		_, err := m.Save(st)
		return err
	}
}

// prune deletes numbered checkpoints beyond the newest keep. BestFile is
// never pruned.
func (m *Manager) prune() error {
	seqs, err := m.sequence()
	if err != nil {
		return err
	}
	for len(seqs) > m.keep {
		if err := os.Remove(m.path(seqs[0])); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("checkpoint: prune: %w", err)
		}
		seqs = seqs[1:]
	}
	return nil
}

// LoadLatest returns the newest valid checkpoint state and its path.
// Corrupt or truncated candidates are skipped with a log line, falling
// back to older checkpoints and finally the best-validation copy; if
// nothing loads, ErrNoCheckpoint is returned.
func (m *Manager) LoadLatest() (*TrainState, string, error) {
	seqs, err := m.sequence()
	if err != nil {
		return nil, "", err
	}
	var candidates []string
	for i := len(seqs) - 1; i >= 0; i-- {
		candidates = append(candidates, m.path(seqs[i]))
	}
	candidates = append(candidates, filepath.Join(m.dir, BestFile))
	for _, path := range candidates {
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			continue
		}
		st, err := loadState(path)
		if err != nil {
			m.logf("checkpoint: skipping %s: %v", filepath.Base(path), err)
			continue
		}
		return st, path, nil
	}
	return nil, "", ErrNoCheckpoint
}

// LoadBest returns the best-validation checkpoint.
func (m *Manager) LoadBest() (*TrainState, error) {
	return loadState(filepath.Join(m.dir, BestFile))
}

func loadState(path string) (*TrainState, error) {
	var st *TrainState
	err := ReadAtomic(path, TrainStateVersion, func(r io.Reader) error {
		var err error
		st, err = DecodeState(r)
		return err
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}
