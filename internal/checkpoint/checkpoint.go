// Package checkpoint provides the durability layer under training and
// model persistence: a checksummed, versioned file envelope written with
// the atomic write-temp-fsync-rename protocol, the serialized training
// state (model parameters, optimizer moments, loop cursors, RNG state),
// and a retention/recovery manager that keeps the last K checkpoints plus
// the best-validation one and skips corrupt files on load.
//
// Every artifact the system persists — training checkpoints and the
// model-directory files written by internal/modeldir — goes through the
// same envelope, so a crash mid-write can never leave a half-written file
// that later loads as garbage: readers verify the CRC before any decoder
// sees a byte.
//
// Envelope layout (all integers little-endian):
//
//	offset size
//	0      8    magic "QRECCKP1"
//	8      4    format version (uint32)
//	12     8    payload length (uint64)
//	20     4    CRC-32C (Castagnoli) of the payload
//	24     4    CRC-32C of bytes [0, 24) — guards the header itself
//	28     …    payload
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// Magic identifies envelope files written by this package.
const Magic = "QRECCKP1"

// headerSize is the fixed envelope header length in bytes.
const headerSize = 28

// tempPattern marks in-progress writes; stale matches are swept by
// RemoveStaleTemps after a crash.
const tempPattern = ".tmp-"

// Sentinel corruption errors. Callers distinguish failure modes with
// errors.Is; every path that rejects a file wraps exactly one of these
// (or VersionError) so tests can assert the precise cause.
var (
	// ErrBadMagic means the file does not start with Magic — it is not an
	// envelope file at all (or its first bytes were destroyed).
	ErrBadMagic = errors.New("checkpoint: bad magic (not a checkpoint file)")
	// ErrTruncated means the file ends before the header or payload does.
	ErrTruncated = errors.New("checkpoint: truncated file")
	// ErrChecksum means the header or payload bytes fail CRC verification,
	// or trailing bytes follow the payload.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
)

// VersionError reports an envelope written by an incompatible format
// version. It is distinct from corruption: the file is intact but not
// ours to read.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: unsupported format version %d (want %d)", e.Got, e.Want)
}

// castagnoli is the CRC-32C table (hardware-accelerated on most CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode frames payload in the envelope: header, checksums, payload.
func Encode(version uint32, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out[0:8], Magic)
	binary.LittleEndian.PutUint32(out[8:12], version)
	binary.LittleEndian.PutUint64(out[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[20:24], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(out[24:28], crc32.Checksum(out[:24], castagnoli))
	copy(out[headerSize:], payload)
	return out
}

// Decode validates an envelope and returns its payload. The payload CRC
// is verified before returning, so callers may hand the bytes straight to
// a decoder. Errors wrap ErrBadMagic, ErrTruncated, ErrChecksum or
// *VersionError.
func Decode(data []byte, wantVersion uint32) ([]byte, error) {
	if len(data) >= 8 && string(data[0:8]) != Magic {
		return nil, ErrBadMagic
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerSize)
	}
	if crc32.Checksum(data[:24], castagnoli) != binary.LittleEndian.Uint32(data[24:28]) {
		return nil, fmt.Errorf("%w: header CRC", ErrChecksum)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != wantVersion {
		return nil, &VersionError{Got: v, Want: wantVersion}
	}
	plen := binary.LittleEndian.Uint64(data[12:20])
	body := data[headerSize:]
	if uint64(len(body)) < plen {
		return nil, fmt.Errorf("%w: payload has %d of %d bytes", ErrTruncated, len(body), plen)
	}
	if uint64(len(body)) > plen {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrChecksum, uint64(len(body))-plen)
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[20:24]) {
		return nil, fmt.Errorf("%w: payload CRC", ErrChecksum)
	}
	return body, nil
}

// WriteAtomic writes an envelope to path with crash-safe semantics: the
// payload is produced by save, framed, written to a temp file in the same
// directory, fsynced, renamed over path, and the directory fsynced. A
// crash at any point leaves either the old file or the new one — never a
// mix — plus at worst a stale temp file that readers ignore.
func WriteAtomic(path string, version uint32, save func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", filepath.Base(path), err)
	}
	return writeFileAtomic(path, Encode(version, buf.Bytes()))
}

func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+tempPattern+"*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	// Any failure past this point must not leave the temp file behind.
	// Close/Remove here are best-effort cleanup on a path that is already
	// returning the original error; discarding theirs is deliberate.
	fail := func(err error) error {
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", base, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", base, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename survives power loss.
// Filesystems that cannot sync directories (the fsync returns
// "unsupported"-class errors) make this a no-op rather than a failure;
// a genuine I/O error is reported — a rename that never reaches stable
// storage is exactly the torn-artifact case the envelope exists to
// prevent.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		if syncUnsupported(syncErr) {
			return nil
		}
		return fmt.Errorf("checkpoint: sync %s: %w", dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("checkpoint: close %s: %w", dir, closeErr)
	}
	return nil
}

// syncUnsupported reports fsync errors that mean "this filesystem cannot
// sync directories" rather than "the sync failed".
func syncUnsupported(err error) bool {
	return errors.Is(err, errors.ErrUnsupported) ||
		errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EBADF)
}

// WriteAtomicEnvelope writes an already-framed envelope (bytes that came
// from Encode, typically received over the wire) with the same crash-safe
// temp-fsync-rename protocol as WriteAtomic. Callers must have validated
// the bytes with Decode first — this function persists them verbatim.
func WriteAtomicEnvelope(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

// ReadAtomic reads an envelope written by WriteAtomic, verifies it, and
// hands the payload to load. Corruption errors wrap the package
// sentinels; a missing file wraps fs.ErrNotExist.
func ReadAtomic(path string, version uint32, load func(io.Reader) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Decode errors pass through unwrapped: every caller (Manager,
	// modeldir) adds the file name itself, and the sentinels already carry
	// the package prefix.
	payload, err := Decode(data, version)
	if err != nil {
		return err
	}
	if err := load(bytes.NewReader(payload)); err != nil {
		return fmt.Errorf("checkpoint: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}

// IsTemp reports whether name looks like an in-progress temp file from
// writeFileAtomic.
func IsTemp(name string) bool { return strings.Contains(filepath.Base(name), tempPattern) }

// RemoveStaleTemps deletes leftover temp files in dir (survivors of a
// crash mid-write). It returns the paths removed.
func RemoveStaleTemps(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var removed []string
	for _, e := range entries {
		if e.Type().IsRegular() && IsTemp(e.Name()) {
			p := filepath.Join(dir, e.Name())
			if err := os.Remove(p); err == nil {
				removed = append(removed, p)
			}
		}
	}
	return removed, nil
}
