package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ReplicaState is one rung of the gateway's health ladder, mirroring the
// replica's /v1/healthz contract (see internal/server): healthy and
// degraded replicas are routable (a degraded replica still answers,
// just from its fallback), draining and down replicas are rerouted
// around, and unknown (not yet probed) replicas are routed optimistically
// so a cold-started gateway does not 503 while the first probe is due.
type ReplicaState int

// Health-ladder states.
const (
	StateUnknown ReplicaState = iota
	StateHealthy
	StateDegraded
	StateDraining
	StateDown
)

// String names the state for telemetry.
func (s ReplicaState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// Routable reports whether the routing ladder may send traffic here
// first-pass. Non-routable replicas are still tried as a last resort
// when every candidate is bad (fail open beats fail closed for a
// read-only API).
func (s ReplicaState) Routable() bool {
	return s == StateUnknown || s == StateHealthy || s == StateDegraded
}

// replicaHealth is the prober's per-replica record.
type replicaHealth struct {
	state     ReplicaState
	replicaID string    // from healthz "replica", when the replica sets one
	nextProbe time.Time // probes before this instant are skipped
	lastErr   string    // last probe failure, for telemetry
	probes    uint64    // probes performed
	failures  uint64    // probes that classified the replica down
}

// Prober tracks replica health by polling /v1/healthz and by passive
// signals from the proxy path (transport errors mark a replica down
// immediately; a successful response lifts it back). The tracked set is
// dynamic — membership changes Add and Remove replicas at runtime. It
// never reads the system clock — the composition root injects one — so
// probe schedules are replayable in tests.
type Prober struct {
	client   *http.Client
	interval time.Duration
	clock    func() time.Time

	mu sync.Mutex
	st map[string]*replicaHealth
}

// newProber builds the tracker for an initial replica set.
func newProber(replicas []string, client *http.Client, interval time.Duration, clock func() time.Time) *Prober {
	p := &Prober{
		client:   client,
		interval: interval,
		clock:    clock,
		st:       make(map[string]*replicaHealth, len(replicas)),
	}
	for _, r := range replicas {
		p.st[r] = &replicaHealth{}
	}
	return p
}

// Add starts tracking rep (no-op when already tracked). The fresh entry
// is StateUnknown with an immediately due probe.
func (p *Prober) Add(rep string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.st[rep]; !ok {
		p.st[rep] = &replicaHealth{}
	}
}

// Remove stops tracking rep. A drained member's prober is stopped only
// after its in-flight requests finished — this is that final step.
func (p *Prober) Remove(rep string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.st, rep)
}

// healthzBody is the slice of the replica healthz JSON the prober reads.
type healthzBody struct {
	Status  string `json:"status"`
	Replica string `json:"replica"`
}

// ProbeAll probes every replica whose backoff window has elapsed. A
// draining replica's Retry-After pushes its next probe out, so the
// gateway backs off instead of tight-looping a process that asked to be
// left alone.
func (p *Prober) ProbeAll(ctx context.Context) {
	now := p.clock()
	for _, rep := range p.due(now) {
		p.probeOne(ctx, rep, now)
	}
}

// due snapshots the replicas whose nextProbe has passed, in sorted map
// order (the caller iterates outside the lock).
func (p *Prober) due(now time.Time) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for rep, h := range p.st {
		if !h.nextProbe.After(now) {
			out = append(out, rep)
		}
	}
	// Probe order is observable through replica logs; keep it stable.
	sort.Strings(out)
	return out
}

// probeOne performs one health check against rep's /v1/healthz.
func (p *Prober) probeOne(ctx context.Context, rep string, now time.Time) {
	state, id, retryAfter, errMsg := p.fetch(ctx, rep)
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.st[rep]
	if !ok {
		return
	}
	h.state = state
	h.lastErr = errMsg
	h.probes++
	if state == StateDown {
		h.failures++
	}
	if id != "" {
		h.replicaID = id
	}
	backoff := p.interval
	if retryAfter > backoff {
		backoff = retryAfter
	}
	h.nextProbe = now.Add(backoff)
}

// ProbeNow forces one probe of rep regardless of its schedule and
// returns the resulting ladder state — the warm-up ladder drives this
// directly instead of waiting for the background cadence.
func (p *Prober) ProbeNow(ctx context.Context, rep string, now time.Time) ReplicaState {
	p.probeOne(ctx, rep, now)
	return p.State(rep)
}

// NextProbeIn reports how long until the soonest scheduled probe among
// reps — the earliest instant the gateway could notice a recovery, which
// is what a terminal 503's Retry-After should promise. A replica whose
// probe is already due (or that is untracked) counts as one probe
// interval out, since that is when the running probe loop will next
// visit it. Zero when reps is empty.
func (p *Prober) NextProbeIn(reps []string, now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var min time.Duration
	for _, rep := range reps {
		d := p.interval
		if h, ok := p.st[rep]; ok {
			if until := h.nextProbe.Sub(now); until > 0 {
				d = until
			}
		}
		if min == 0 || d < min {
			min = d
		}
	}
	return min
}

// fetch runs the HTTP probe and classifies the response onto the ladder.
func (p *Prober) fetch(ctx context.Context, rep string) (state ReplicaState, id string, retryAfter time.Duration, errMsg string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep+"/v1/healthz", nil)
	if err != nil {
		return StateDown, "", 0, err.Error()
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return StateDown, "", 0, err.Error()
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	if rerr != nil {
		return StateDown, "", 0, rerr.Error()
	}
	var hb healthzBody
	// A replica that answers non-JSON is still classified by status code.
	_ = json.Unmarshal(body, &hb)
	switch {
	case resp.StatusCode == http.StatusOK && hb.Status == "degraded":
		return StateDegraded, hb.Replica, 0, ""
	case resp.StatusCode == http.StatusOK:
		return StateHealthy, hb.Replica, 0, ""
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Draining (or otherwise refusing traffic): honor its Retry-After.
		return StateDraining, hb.Replica, parseRetryAfter(resp.Header.Get("Retry-After")), ""
	default:
		return StateDown, hb.Replica, 0, "healthz status " + strconv.Itoa(resp.StatusCode)
	}
}

// parseRetryAfter reads the delta-seconds form of the header (the only
// form our replicas emit); anything unparseable means no hint.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// State reports rep's current ladder rung.
func (p *Prober) State(rep string) ReplicaState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.st[rep]; ok {
		return h.state
	}
	return StateUnknown
}

// MarkDown records a passive failure signal (a transport error on the
// proxy path): the replica is down right now, whatever the last probe
// said. The next scheduled probe can revive it.
func (p *Prober) MarkDown(rep string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.st[rep]; ok {
		h.state = StateDown
	}
}

// MarkUp records a passive success signal: the replica answered a
// proxied request. Only Down/Unknown are lifted — a Draining state came
// from the replica's own mouth and outranks a data-path success (it
// keeps answering while draining, by design).
func (p *Prober) MarkUp(rep string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.st[rep]; ok && (h.state == StateDown || h.state == StateUnknown) {
		h.state = StateHealthy
	}
}

// ReplicaStatus is one row of the gateway healthz replica table.
type ReplicaStatus struct {
	State       string `json:"state"`
	ReplicaID   string `json:"replica,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	Probes      uint64 `json:"probes,omitempty"`
	Failures    uint64 `json:"probe_failures,omitempty"`
	NextProbeMs int64  `json:"next_probe_ms,omitempty"`
}

// Snapshot returns the per-replica states keyed by replica URL; now
// anchors the next-probe countdown.
func (p *Prober) Snapshot(now time.Time) map[string]ReplicaStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]ReplicaStatus, len(p.st))
	for rep, h := range p.st {
		st := ReplicaStatus{
			State:     h.state.String(),
			ReplicaID: h.replicaID,
			LastError: h.lastErr,
			Probes:    h.probes,
			Failures:  h.failures,
		}
		if until := h.nextProbe.Sub(now); until > 0 {
			st.NextProbeMs = until.Milliseconds()
		}
		out[rep] = st
	}
	return out
}
