package gateway

import (
	"context"
	"net/http"
	"sync"
)

// flightResult is a materialized upstream response, shareable across the
// collapsed callers of one flight. Body and headers are immutable once
// the flight completes.
type flightResult struct {
	status  int
	header  http.Header // copied subset: Content-Type, Retry-After, X-Replica-ID
	body    []byte
	replica string // replica URL that answered ("" when exhausted)
}

// flightCall is one in-progress upstream request.
type flightCall struct {
	done chan struct{}
	res  *flightResult
}

// flightGroup collapses concurrent identical requests into one upstream
// call — the gateway-side analogue of the replica's inference cache, but
// for in-flight misses: when a hot query storms the gateway, one replica
// computes it and every concurrent duplicate shares the answer. Keys
// include the client identity, so collapsing never lets one client's
// duplicates ride another client's rate-limit budget.
//
// Unlike a cache, nothing is retained: the entry is dropped the moment
// the flight completes, so answers are never stale beyond the lifetime
// of the requests that shared them.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// Do executes fn once per key among concurrent callers. The leader runs
// fn; followers block until the leader finishes (or their ctx dies) and
// share the result. shared reports whether this caller was a follower;
// a nil result means ctx was cancelled while waiting.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() *flightResult) (res *flightResult, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true
		case <-ctx.Done():
			return nil, true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false
}
