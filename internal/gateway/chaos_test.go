package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/modeldir"
	"repro/internal/seq2seq"
	"repro/internal/servepool"
	"repro/internal/server"
	"repro/internal/sqlast"
	"repro/internal/testutil"
	"repro/internal/tokenizer"
)

// ---- chaos fixtures -------------------------------------------------------
//
// The gateway chaos suite runs real qrec-serve replicas on real listeners
// (so kills sever TCP connections the way a crashed process would), with
// an injected predictor so no trained model is needed and the suite runs
// in -short mode.

// chaosRecommender builds an untrained recommender: structurally complete
// for healthz and the push protocol, never used for inference.
func chaosRecommender(t testing.TB) *core.Recommender {
	t.Helper()
	bl := tokenizer.NewBuilder()
	bl.AddQuery([]string{"select", "a", "from", "t"})
	v := bl.Build(1)
	mcfg := seq2seq.DefaultConfig(seq2seq.Transformer, v.Size())
	mcfg.DModel = 8
	mcfg.FFHidden = 8
	m, err := seq2seq.New(mcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Recommender{
		Vocab:      v,
		Model:      m,
		Classifier: classify.New(m, 8, []string{"SELECT a FROM t"}, 1),
		MaxGenLen:  8,
	}
}

// chaosPredictor answers after a short simulated inference delay, so
// saturation actually queues work instead of racing through.
type chaosPredictor struct{ delay time.Duration }

func (p chaosPredictor) wait(ctx context.Context) error {
	if p.delay <= 0 {
		return nil
	}
	t := time.NewTimer(p.delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p chaosPredictor) Templates(ctx context.Context, _, _ []string, n int) ([]string, error) {
	if err := p.wait(ctx); err != nil {
		return nil, err
	}
	return []string{"SELECT model FROM path"}, nil
}

func (p chaosPredictor) Fragments(ctx context.Context, _ []string, n int, _ core.NFragmentsOptions) (map[sqlast.FragmentKind][]string, error) {
	if err := p.wait(ctx); err != nil {
		return nil, err
	}
	return map[sqlast.FragmentKind][]string{sqlast.FragTable: {"path"}}, nil
}

func chaosFallback() *servepool.Fallback {
	return servepool.NewFallback(
		[]string{"SELECT pop FROM ular"},
		map[sqlast.FragmentKind][]string{sqlast.FragTable: {"PhotoObj"}},
	)
}

// replicaProc is one killable, restartable replica on a fixed address —
// the gateway keeps pointing at the same URL across the kill, exactly
// like a crashed process coming back on its port.
type replicaProc struct {
	t     testing.TB
	id    string
	addr  string
	delay time.Duration
	batch int

	mu   sync.Mutex
	app  *server.Server
	hsrv *http.Server
}

// startReplica boots a replica on an OS-assigned port and pins that
// address for all future restarts.
func startReplica(t testing.TB, id string, delay time.Duration) *replicaProc {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &replicaProc{t: t, id: id, addr: ln.Addr().String(), delay: delay}
	p.serveOn(ln)
	return p
}

// startBatchedReplica boots a replica on the REAL model path (the injected
// chaos predictor has no batched form) with micro-batching enabled, the
// qrec-serve shape of -batch-size/-batch-window.
func startBatchedReplica(t testing.TB, id string, batch int) *replicaProc {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &replicaProc{t: t, id: id, addr: ln.Addr().String(), batch: batch}
	p.serveOn(ln)
	return p
}

func (p *replicaProc) url() string { return "http://" + p.addr }

// serveOn builds a fresh server generation (a restarted process has cold
// state) and serves it on ln.
func (p *replicaProc) serveOn(ln net.Listener) {
	pred := servepool.Predictor(chaosPredictor{delay: p.delay})
	if p.batch >= 2 {
		pred = nil // real recommender path, which implements BatchPredictor
	}
	app := server.NewWithConfig(chaosRecommender(p.t), server.Config{
		Workers:     2,
		MaxQueue:    2,
		MaxInFlight: 8,
		SoftTimeout: 250 * time.Millisecond,
		Timeout:     5 * time.Second,
		Fallback:    chaosFallback(),
		Predictor:   pred,
		ReplicaID:   p.id,
		EnablePush:  true,
		BatchSize:   p.batch,
		BatchWindow: 2 * time.Millisecond,
	})
	hsrv := &http.Server{Handler: app}
	p.mu.Lock()
	p.app, p.hsrv = app, hsrv
	p.mu.Unlock()
	go func() { _ = hsrv.Serve(ln) }()
}

// kill severs the listener and every open connection, then drains the
// app. In-flight upstream calls see a connection reset — the transport
// error the gateway must reroute around.
func (p *replicaProc) kill() {
	p.mu.Lock()
	hsrv, app := p.hsrv, p.app
	p.hsrv, p.app = nil, nil
	p.mu.Unlock()
	if hsrv != nil {
		_ = hsrv.Close()
	}
	if app != nil {
		app.Close()
	}
}

// restart brings the replica back on its original address.
func (p *replicaProc) restart() error {
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	p.serveOn(ln)
	return nil
}

func (p *replicaProc) swaps() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.app == nil {
		return 0
	}
	return p.app.Swaps()
}

// ---- chaos test -----------------------------------------------------------

// TestChaosGatewayKillRestart drives the gateway at 4x the fleet's
// admission capacity while one replica is repeatedly killed and restarted
// and a model push hot-swaps every live replica mid-run. The routing
// contract: every request terminates with 200 (full-quality or degraded),
// 429, or 503-with-Retry-After — no hangs, no empty bodies, no torn
// responses — and the fleet converges back to healthy afterwards.
func TestChaosGatewayKillRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reps := []*replicaProc{
		startReplica(t, "r0", time.Millisecond),
		startReplica(t, "r1", time.Millisecond),
		startReplica(t, "r2", time.Millisecond),
	}
	urls := make([]string, len(reps))
	for i, p := range reps {
		urls[i] = p.url()
	}
	defer func() {
		for _, p := range reps {
			p.kill()
		}
	}()

	gw, err := New(Config{
		Replicas:       urls,
		MaxAttempts:    3,
		AttemptTimeout: 2 * time.Second,
		BackoffBase:    time.Millisecond,
		ProbeInterval:  20 * time.Millisecond,
		ProbeTimeout:   time.Second,
		Clock:          time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go gw.Run(ctx)

	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := &http.Server{Handler: gw}
	go func() { _ = gwSrv.Serve(gwLn) }()
	defer func() { _ = gwSrv.Close() }()
	gwURL := "http://" + gwLn.Addr().String()

	// Fleet admission capacity is 3 replicas x MaxInFlight 8 = 24; drive
	// 96 concurrent clients (4x) in waves.
	const (
		clients = 96
		perGo   = 8
	)
	type outcome struct {
		code       int
		body       string
		retryAfter string
	}
	results := make([][]outcome, clients)

	var stopChaos atomic.Bool
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		// Kill/restart cycle on a rotating victim while load runs.
		defer chaosWg.Done()
		for i := 0; !stopChaos.Load(); i++ {
			victim := reps[i%len(reps)]
			victim.kill()
			time.Sleep(60 * time.Millisecond)
			for {
				if err := victim.restart(); err == nil {
					break
				}
				// Port briefly in TIME_WAIT after the kill; retry.
				time.Sleep(5 * time.Millisecond)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}()

	// Mid-run model push: every replica that is up validates, persists
	// nothing (no ModelDir), and hot-swaps with zero dropped requests.
	pushDir := t.TempDir()
	if err := modeldir.Save(pushDir, chaosRecommender(t)); err != nil {
		t.Fatal(err)
	}
	var pushWg sync.WaitGroup
	pushOK := atomic.Int64{}
	pushWg.Add(1)
	go func() {
		defer pushWg.Done()
		time.Sleep(150 * time.Millisecond) // mid-saturation
		out, perr := gw.PushModelDir(context.Background(), pushDir)
		if perr != nil {
			t.Errorf("push: %v", perr)
			return
		}
		for _, e := range out {
			if e == nil {
				pushOK.Add(1)
			}
		}
	}()

	httpc := &http.Client{Timeout: 15 * time.Second}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = make([]outcome, perGo)
			for j := 0; j < perGo; j++ {
				body := fmt.Sprintf(`{"sql":"SELECT a FROM t%d","n":1}`, j)
				req, _ := http.NewRequest(http.MethodPost, gwURL+"/v1/recommend", strings.NewReader(body))
				req.Header.Set("X-Client-ID", fmt.Sprintf("client-%d", c))
				resp, err := httpc.Do(req)
				if err != nil {
					// The gateway itself must never reset a connection; record
					// as a hard failure.
					results[c][j] = outcome{code: -1, body: err.Error()}
					continue
				}
				rb, _ := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				results[c][j] = outcome{code: resp.StatusCode, body: string(rb), retryAfter: resp.Header.Get("Retry-After")}
			}
		}(c)
	}
	wg.Wait()
	stopChaos.Store(true)
	chaosWg.Wait()
	pushWg.Wait()

	var n200, n429, n503 int
	for c, outs := range results {
		for j, o := range outs {
			switch o.code {
			case http.StatusOK:
				n200++
				var r struct {
					Templates []string `json:"templates"`
				}
				if err := json.Unmarshal([]byte(o.body), &r); err != nil || len(r.Templates) == 0 {
					t.Errorf("client %d req %d: torn 200 body %q (%v)", c, j, o.body, err)
				}
			case http.StatusTooManyRequests:
				n429++
				if o.retryAfter == "" {
					t.Errorf("client %d req %d: 429 without Retry-After", c, j)
				}
			case http.StatusServiceUnavailable:
				n503++
				if o.retryAfter == "" {
					t.Errorf("client %d req %d: 503 without Retry-After: %q", c, j, o.body)
				}
			default:
				t.Errorf("client %d req %d: terminal status %d (%s)", c, j, o.code, o.body)
			}
		}
	}
	t.Logf("outcomes: %d x 200, %d x 429, %d x 503 (stats %+v)", n200, n429, n503, gw.Stats())
	if n200 == 0 {
		t.Fatal("no request succeeded under chaos")
	}
	if pushOK.Load() == 0 {
		t.Error("model push reached no replica")
	}

	// Convergence: with chaos stopped and every replica restarted, probes
	// must walk the fleet back to routable and requests answer 200 again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := httpc.Post(gwURL+"/v1/recommend", "application/json", strings.NewReader(`{"sql":"SELECT a FROM t"}`))
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never converged back to healthy after chaos stopped")
		}
		time.Sleep(50 * time.Millisecond)
	}
	swapped := uint64(0)
	for _, p := range reps {
		swapped += p.swaps()
	}
	// Replicas killed after their swap restart at zero, so only a lower
	// bound is meaningful — but the push must have landed somewhere.
	if pushOK.Load() > 0 && swapped == 0 && gw.Stats().Pushes == 0 {
		t.Error("push counters never moved")
	}
}

// TestChaosGatewayKillMidBatch kills a micro-batching replica while
// coalesced batches are in flight. Replicas run the real model path with
// BatchSize 4, so concurrent requests (and explicit /v1/recommend/batch
// calls) genuinely share batched model passes when the kill lands. The
// contract is the usual termination ladder — every request ends in 200
// (full or degraded), 429-with-Retry-After, or 503-with-Retry-After; a
// dying batch must never hang or tear its sibling requests.
func TestChaosGatewayKillMidBatch(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	reps := []*replicaProc{
		startBatchedReplica(t, "mb0", 4),
		startBatchedReplica(t, "mb1", 4),
	}
	urls := []string{reps[0].url(), reps[1].url()}
	defer func() {
		for _, p := range reps {
			p.kill()
		}
	}()

	gw, err := New(Config{
		Replicas:       urls,
		MaxAttempts:    3,
		AttemptTimeout: 2 * time.Second,
		BackoffBase:    time.Millisecond,
		ProbeInterval:  20 * time.Millisecond,
		ProbeTimeout:   time.Second,
		Clock:          time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go gw.Run(ctx)

	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := &http.Server{Handler: gw}
	go func() { _ = gwSrv.Serve(gwLn) }()
	defer func() { _ = gwSrv.Close() }()
	gwURL := "http://" + gwLn.Addr().String()

	// Kill/restart cycle on replica 0 only: replica 1 stays up the whole
	// run so its batcher counters survive to the final assertion.
	var stopChaos atomic.Bool
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		for !stopChaos.Load() {
			time.Sleep(40 * time.Millisecond) // let batches form and fly
			reps[0].kill()
			time.Sleep(40 * time.Millisecond)
			for {
				if err := reps[0].restart(); err == nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	const (
		clients = 24
		perGo   = 5
	)
	type outcome struct {
		code       int
		body       string
		retryAfter string
		isBatch    bool
	}
	results := make([][]outcome, clients)
	httpc := &http.Client{Timeout: 15 * time.Second}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = make([]outcome, perGo)
			for j := 0; j < perGo; j++ {
				// Odd clients drive the explicit batch endpoint, even
				// clients single requests — both coalesce server-side.
				path, body, isBatch := "/v1/recommend", fmt.Sprintf(`{"sql":"SELECT a FROM t%d","n":1}`, j), false
				if c%2 == 1 {
					path = "/v1/recommend/batch"
					body = fmt.Sprintf(`{"requests":[{"sql":"SELECT a FROM t%d","n":1},{"sql":"SELECT b FROM t%d","n":1},{"sql":"SELECT a, b FROM t%d","n":1}]}`, j, j, j)
					isBatch = true
				}
				req, _ := http.NewRequest(http.MethodPost, gwURL+path, strings.NewReader(body))
				req.Header.Set("X-Client-ID", fmt.Sprintf("mb-client-%d", c))
				resp, err := httpc.Do(req)
				if err != nil {
					results[c][j] = outcome{code: -1, body: err.Error()}
					continue
				}
				rb, _ := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				results[c][j] = outcome{code: resp.StatusCode, body: string(rb), retryAfter: resp.Header.Get("Retry-After"), isBatch: isBatch}
			}
		}(c)
	}
	wg.Wait()
	stopChaos.Store(true)
	chaosWg.Wait()

	var n200, n429, n503 int
	for c, outs := range results {
		for j, o := range outs {
			switch o.code {
			case http.StatusOK:
				n200++
				if o.isBatch {
					var r struct {
						Results []struct {
							Templates []string `json:"templates"`
							Error     string   `json:"error"`
						} `json:"results"`
					}
					if err := json.Unmarshal([]byte(o.body), &r); err != nil || len(r.Results) != 3 {
						t.Errorf("client %d req %d: torn batch body %q (%v)", c, j, o.body, err)
						continue
					}
					for k, item := range r.Results {
						if len(item.Templates) == 0 && item.Error == "" {
							t.Errorf("client %d req %d item %d: empty slot in %q", c, j, k, o.body)
						}
					}
				} else {
					var r struct {
						Templates []string `json:"templates"`
					}
					if err := json.Unmarshal([]byte(o.body), &r); err != nil || len(r.Templates) == 0 {
						t.Errorf("client %d req %d: torn 200 body %q (%v)", c, j, o.body, err)
					}
				}
			case http.StatusTooManyRequests:
				n429++
				if o.retryAfter == "" {
					t.Errorf("client %d req %d: 429 without Retry-After", c, j)
				}
			case http.StatusServiceUnavailable:
				n503++
				if o.retryAfter == "" {
					t.Errorf("client %d req %d: 503 without Retry-After: %q", c, j, o.body)
				}
			default:
				t.Errorf("client %d req %d: terminal status %d (%s)", c, j, o.code, o.body)
			}
		}
	}
	t.Logf("outcomes: %d x 200, %d x 429, %d x 503", n200, n429, n503)
	if n200 == 0 {
		t.Fatal("no request succeeded under mid-batch chaos")
	}

	// The surviving replica must show real coalescing on its healthz: the
	// batcher was enabled and executed items while its sibling died.
	resp, err := httpc.Get(reps[1].url() + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hb, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	var hz struct {
		Batcher struct {
			Enabled   bool `json:"enabled"`
			Templates struct {
				Items   uint64 `json:"items"`
				Batches uint64 `json:"batches"`
			} `json:"templates"`
		} `json:"batcher"`
	}
	if err := json.Unmarshal(hb, &hz); err != nil {
		t.Fatalf("healthz decode: %v (%s)", err, hb)
	}
	if !hz.Batcher.Enabled {
		t.Fatalf("surviving replica reports batching disabled: %s", hb)
	}
	if hz.Batcher.Templates.Items == 0 {
		t.Errorf("surviving replica executed no batched items: %s", hb)
	}
}

// ---- benchmarks -----------------------------------------------------------

// benchFleet boots n instant-predictor replicas plus a gateway listener
// and returns the gateway base URL.
func benchFleet(b *testing.B, n int) (string, func()) {
	b.Helper()
	var reps []*replicaProc
	var urls []string
	for i := 0; i < n; i++ {
		p := startReplica(b, fmt.Sprintf("bench-%d", i), 0)
		reps = append(reps, p)
		urls = append(urls, p.url())
	}
	gw, err := New(Config{
		Replicas:       urls,
		AttemptTimeout: 5 * time.Second,
		ProbeInterval:  50 * time.Millisecond,
		Clock:          time.Now,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go gw.Run(ctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hsrv := &http.Server{Handler: gw}
	go func() { _ = hsrv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		cancel()
		_ = hsrv.Close()
		for _, p := range reps {
			p.kill()
		}
	}
}

// benchGateway measures saturated end-to-end request cost through
// gateway + replica HTTP stacks at a given fleet width. Distinct client
// ids spread load across the ring and defeat singleflight collapse, so
// every operation is a real upstream call.
func benchGateway(b *testing.B, replicas int) {
	url, stop := benchFleet(b, replicas)
	defer stop()
	var id atomic.Int64
	var non200 atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := &http.Client{Timeout: 10 * time.Second}
		me := id.Add(1)
		i := 0
		for pb.Next() {
			i++
			body := fmt.Sprintf(`{"sql":"SELECT a FROM t%d","n":1}`, i%16)
			req, _ := http.NewRequest(http.MethodPost, url+"/v1/recommend", strings.NewReader(body))
			req.Header.Set("X-Client-ID", fmt.Sprintf("bench-client-%d", me))
			resp, err := c.Do(req)
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				non200.Add(1)
			}
		}
	})
	b.ReportMetric(float64(non200.Load())/float64(b.N), "non200/op")
}

func BenchmarkGatewayReplicas1(b *testing.B) { benchGateway(b, 1) }
func BenchmarkGatewayReplicas2(b *testing.B) { benchGateway(b, 2) }
func BenchmarkGatewayReplicas4(b *testing.B) { benchGateway(b, 4) }
