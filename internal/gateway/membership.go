package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/checkpoint"
)

// MemberState is one rung of the membership lifecycle:
//
//	joining → warming → active → draining → gone
//
// A joining member is registered (and optionally being model-pushed) but
// owns nothing. A warming member is being probed to healthy before it
// may take ring ownership. Only active members own ring keys. A draining
// member has been removed from the ring (no new keys) and is finishing
// its in-flight requests; once those hit zero it is gone — dropped from
// the view entirely and its prober stopped.
type MemberState int

// Membership lifecycle states.
const (
	MemberJoining MemberState = iota
	MemberWarming
	MemberActive
	MemberDraining
)

// String names the state for telemetry and the admin API.
func (s MemberState) String() string {
	switch s {
	case MemberJoining:
		return "joining"
	case MemberWarming:
		return "warming"
	case MemberActive:
		return "active"
	case MemberDraining:
		return "draining"
	default:
		return "unknown"
	}
}

// Member is one replica in the gateway's fleet view.
type Member struct {
	URL   string
	State MemberState
}

// memberView is an immutable snapshot of the fleet: the member list plus
// the consistent-hash ring built over exactly the active members. Views
// are published RCU-style through an atomic pointer (mirroring the
// replica's refcounted engine swap): the routing path loads one pointer
// and sees a complete, internally consistent ring — never a half-updated
// one — while membership mutations build an entirely new view and swap
// it in. Requests that loaded an older view finish against it; that is
// what makes ring changes zero-drop.
type memberView struct {
	seq     uint64
	members []Member // sorted by URL
	ring    *Ring    // over active members only
}

// newMemberView builds a view: members are copied, sorted, and the ring
// is rebuilt over the active subset.
func newMemberView(seq uint64, members []Member, vnodes int) *memberView {
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].URL < ms[j].URL })
	var active []string
	for _, m := range ms {
		if m.State == MemberActive {
			active = append(active, m.URL)
		}
	}
	return &memberView{seq: seq, members: ms, ring: NewRing(active, vnodes)}
}

// find returns the member with the given URL, or nil.
func (v *memberView) find(url string) *Member {
	for i := range v.members {
		if v.members[i].URL == url {
			return &v.members[i]
		}
	}
	return nil
}

// Membership mutation errors, surfaced through the admin API.
var (
	// ErrMemberExists rejects adding a URL that is already a member (in
	// any state — a draining member must finish leaving before rejoining).
	ErrMemberExists = errors.New("gateway: replica is already a member")
	// ErrMemberUnknown rejects operating on a URL that is not a member.
	ErrMemberUnknown = errors.New("gateway: replica is not a member")
	// ErrLastReplica refuses to drain the last active replica: a gateway
	// with an empty ring can serve nothing, which is never what a fleet
	// operator meant.
	ErrLastReplica = errors.New("gateway: cannot remove the last active replica")
	// ErrMemberState rejects a lifecycle transition from the wrong rung
	// (e.g. draining a replica that is still warming).
	ErrMemberState = errors.New("gateway: member is not in the required state")
)

// View returns the current membership snapshot (immutable; safe to read
// without locks).
func (g *Gateway) View() (seq uint64, members []Member) {
	v := g.view.Load()
	return v.seq, append([]Member(nil), v.members...)
}

// publishLocked builds and atomically publishes a new view from members,
// then persists the active set when a state path is configured. The
// caller holds memberMu, which serializes mutations; readers are never
// blocked — they keep loading whichever view pointer is current.
func (g *Gateway) publishLocked(members []Member) *memberView {
	v := newMemberView(g.view.Load().seq+1, members, g.cfg.VNodes)
	g.view.Store(v)
	g.persistLocked(v)
	return v
}

// addJoining registers url as a joining member and starts probing it.
func (g *Gateway) addJoining(url string) error {
	g.memberMu.Lock()
	defer g.memberMu.Unlock()
	v := g.view.Load()
	if v.find(url) != nil {
		return ErrMemberExists
	}
	g.publishLocked(append(append([]Member(nil), v.members...), Member{URL: url, State: MemberJoining}))
	g.prober.Add(url)
	return nil
}

// transition moves url from one of the allowed states to `to` and
// publishes the new view (rebuilding the ring when active membership
// changed).
func (g *Gateway) transition(url string, to MemberState, allowedFrom ...MemberState) error {
	g.memberMu.Lock()
	defer g.memberMu.Unlock()
	v := g.view.Load()
	m := v.find(url)
	if m == nil {
		return ErrMemberUnknown
	}
	allowed := false
	for _, s := range allowedFrom {
		if m.State == s {
			allowed = true
		}
	}
	if !allowed {
		return fmt.Errorf("%w: %s is %s", ErrMemberState, url, m.State)
	}
	members := append([]Member(nil), v.members...)
	for i := range members {
		if members[i].URL == url {
			members[i].State = to
		}
	}
	g.publishLocked(members)
	return nil
}

// startDrain moves an active member to draining: the published ring no
// longer contains it, so no new keys route there, while requests that
// captured the previous view finish against it. The persisted active set
// already excludes it — a gateway that crashes mid-drain restarts
// without the replica the operator was removing.
func (g *Gateway) startDrain(url string) error {
	g.memberMu.Lock()
	defer g.memberMu.Unlock()
	v := g.view.Load()
	m := v.find(url)
	if m == nil {
		return ErrMemberUnknown
	}
	if m.State != MemberActive {
		return fmt.Errorf("%w: %s is %s", ErrMemberState, url, m.State)
	}
	if len(v.ring.Replicas()) <= 1 {
		return ErrLastReplica
	}
	members := append([]Member(nil), v.members...)
	for i := range members {
		if members[i].URL == url {
			members[i].State = MemberDraining
		}
	}
	g.publishLocked(members)
	return nil
}

// removeMember drops url from the view entirely and stops its prober —
// the "gone" transition. Safe to call for any state (warm-up failures
// clean up through here too).
func (g *Gateway) removeMember(url string) error {
	g.memberMu.Lock()
	defer g.memberMu.Unlock()
	v := g.view.Load()
	if v.find(url) == nil {
		return ErrMemberUnknown
	}
	members := make([]Member, 0, len(v.members))
	for _, m := range v.members {
		if m.URL != url {
			members = append(members, m)
		}
	}
	g.publishLocked(members)
	g.prober.Remove(url)
	return nil
}

// ---- per-replica in-flight accounting --------------------------------------

// incInflight counts one upstream attempt against rep; the drain wait
// blocks until a draining replica's count reaches zero.
func (g *Gateway) incInflight(rep string) {
	g.inflightMu.Lock()
	g.inflight[rep]++
	g.inflightMu.Unlock()
}

func (g *Gateway) decInflight(rep string) {
	g.inflightMu.Lock()
	if g.inflight[rep] <= 1 {
		delete(g.inflight, rep)
	} else {
		g.inflight[rep]--
	}
	g.inflightMu.Unlock()
}

// inflightFor reports the live upstream attempts against rep.
func (g *Gateway) inflightFor(rep string) int {
	g.inflightMu.Lock()
	defer g.inflightMu.Unlock()
	return g.inflight[rep]
}

// ---- persistence ------------------------------------------------------------

// MembershipVersion is the checkpoint-envelope format version of the
// persisted membership file.
const MembershipVersion uint32 = 1

// Membership is the persisted fleet view: the active replica set, the
// view sequence it was captured at, and when (injected clock, unix
// seconds; zero when the composition root froze the clock).
type Membership struct {
	Seq      uint64   `json:"seq"`
	SavedAt  int64    `json:"saved_at_unix"`
	Replicas []string `json:"replicas"`
}

// EncodeMembership frames m in the checksummed checkpoint envelope.
func EncodeMembership(m Membership) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("gateway: encode membership: %w", err)
	}
	return checkpoint.Encode(MembershipVersion, payload), nil
}

// DecodeMembership validates an envelope and decodes the membership
// payload. Corruption errors wrap the checkpoint sentinels (ErrBadMagic,
// ErrTruncated, ErrChecksum, *VersionError); a syntactically valid
// envelope holding an empty replica set is rejected too — a gateway
// cannot serve from it, so callers must fall back to flags.
func DecodeMembership(data []byte) (Membership, error) {
	var m Membership
	payload, err := checkpoint.Decode(data, MembershipVersion)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(payload, &m); err != nil {
		return m, fmt.Errorf("gateway: decode membership: %w", err)
	}
	if len(m.Replicas) == 0 {
		return m, errors.New("gateway: membership file has no replicas")
	}
	for _, rep := range m.Replicas {
		if rep == "" {
			return m, errors.New("gateway: membership file has an empty replica URL")
		}
	}
	return m, nil
}

// LoadMembership reads and validates a persisted membership file. A
// missing file wraps fs.ErrNotExist.
func LoadMembership(path string) (Membership, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Membership{}, fmt.Errorf("gateway: %w", err)
	}
	return DecodeMembership(data)
}

// ResolveBootMembership decides the boot-time replica set: the persisted
// view when path holds a valid membership file, the flag-provided set
// otherwise. A corrupt or unreadable state file falls back to flags and
// returns the corruption error alongside, so the composition root can
// log the skip without dying — last-known fleet beats no fleet, and
// boot flags beat a checksum-failed fleet. Stale temp files from a crash
// mid-save are swept first.
func ResolveBootMembership(path string, flags []string) (replicas []string, fromState *Membership, err error) {
	if path == "" {
		return flags, nil, nil
	}
	// Best-effort sweep: the state directory may not exist yet on first
	// boot, which is not an error.
	_, _ = checkpoint.RemoveStaleTemps(filepath.Dir(path))
	m, err := LoadMembership(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return flags, nil, nil
		}
		return flags, nil, err
	}
	return m.Replicas, &m, nil
}

// persistLocked writes the active set of v to the configured state path
// through the atomic checksummed envelope. Persist failures never block
// or roll back a membership change — routing correctness outranks
// durability — but they are counted and surfaced on healthz so an
// operator sees a gateway whose disk view is falling behind.
func (g *Gateway) persistLocked(v *memberView) {
	if g.cfg.StatePath == "" {
		return
	}
	m := Membership{Seq: v.seq, SavedAt: g.cfg.Clock().Unix(), Replicas: v.ring.Replicas()}
	err := checkpoint.WriteAtomic(g.cfg.StatePath, MembershipVersion, func(w io.Writer) error {
		payload, jerr := json.Marshal(m)
		if jerr != nil {
			return jerr
		}
		_, werr := w.Write(payload)
		return werr
	})
	g.persistMu.Lock()
	defer g.persistMu.Unlock()
	if err != nil {
		g.persist.errors++
		g.persist.lastError = err.Error()
		return
	}
	g.persist.seq = m.Seq
	g.persist.savedAt = m.SavedAt
}

// PersistStatus is the healthz persistence section: whether a state path
// is configured, the last successfully saved view seq and its age, and
// the running error count.
type PersistStatus struct {
	Enabled    bool   `json:"enabled"`
	Path       string `json:"path,omitempty"`
	Seq        uint64 `json:"seq,omitempty"`
	AgeSeconds int64  `json:"age_seconds,omitempty"`
	Errors     uint64 `json:"errors,omitempty"`
	LastError  string `json:"last_error,omitempty"`
}

// persistStatus snapshots the persistence telemetry.
func (g *Gateway) persistStatus() PersistStatus {
	g.persistMu.Lock()
	defer g.persistMu.Unlock()
	ps := PersistStatus{
		Enabled:   g.cfg.StatePath != "",
		Path:      g.cfg.StatePath,
		Seq:       g.persist.seq,
		Errors:    g.persist.errors,
		LastError: g.persist.lastError,
	}
	if ps.Enabled && g.persist.savedAt > 0 {
		if age := g.cfg.Clock().Unix() - g.persist.savedAt; age > 0 {
			ps.AgeSeconds = age
		}
	}
	return ps
}

// normalizeReplicaURL validates and canonicalizes a replica base URL for
// membership operations: http(s) scheme, a host, no trailing slash (so
// it joins cleanly with request paths), nothing else.
func normalizeReplicaURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	if raw == "" {
		return "", errors.New("gateway: empty replica URL")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("gateway: replica URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("gateway: replica URL %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("gateway: replica URL %q: missing host", raw)
	}
	return raw, nil
}
