package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/modeldir"
)

// memberDrainPoll is the cadence at which a drain waits for the departing
// replica's in-flight count to reach zero. The wait is iteration-bounded
// (MemberDrainTimeout / memberDrainPoll) rather than clock-bounded so it
// terminates even under a frozen test clock.
const memberDrainPoll = 20 * time.Millisecond

// MemberStatus is one row of the admin/healthz membership table: the
// lifecycle state plus the health ladder's live view of the replica.
type MemberStatus struct {
	URL         string `json:"url"`
	State       string `json:"state"`
	Health      string `json:"health"`
	ReplicaID   string `json:"replica,omitempty"`
	Inflight    int    `json:"inflight"`
	Probes      uint64 `json:"probes,omitempty"`
	Failures    uint64 `json:"probe_failures,omitempty"`
	NextProbeMs int64  `json:"next_probe_ms,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// memberTable joins the membership view with the prober's health snapshot
// in stable (URL-sorted) order.
func (g *Gateway) memberTable() (seq uint64, rows []MemberStatus) {
	v := g.view.Load()
	snap := g.prober.Snapshot(g.cfg.Clock())
	rows = make([]MemberStatus, 0, len(v.members))
	for _, m := range v.members {
		row := MemberStatus{
			URL:      m.URL,
			State:    m.State.String(),
			Health:   StateUnknown.String(),
			Inflight: g.inflightFor(m.URL),
		}
		if st, ok := snap[m.URL]; ok {
			row.Health = st.State
			row.ReplicaID = st.ReplicaID
			row.Probes = st.Probes
			row.Failures = st.Failures
			row.NextProbeMs = st.NextProbeMs
			row.LastError = st.LastError
		}
		rows = append(rows, row)
	}
	return v.seq, rows
}

// membershipBody renders the membership section shared by the admin
// responses and healthz.
func (g *Gateway) membershipBody() map[string]any {
	seq, rows := g.memberTable()
	return map[string]any{"seq": seq, "members": rows}
}

// adminReplicaRequest is the wire shape of POST/DELETE /v1/admin/replicas.
type adminReplicaRequest struct {
	// URL is the replica base URL (e.g. "http://10.0.0.7:8081").
	URL string `json:"url"`
	// PushDir (POST only), when set, pushes this local model directory to
	// the replica before warm-up, so a cold join never serves stale or
	// missing artifacts.
	PushDir string `json:"push_dir,omitempty"`
}

// handleAdminReplicas dispatches the membership mutations.
func (g *Gateway) handleAdminReplicas(w http.ResponseWriter, r *http.Request) {
	if !g.authorize(w, r) {
		return
	}
	switch r.Method {
	case http.MethodPost:
		g.handleAdminAdd(w, r)
	case http.MethodDelete:
		g.handleAdminRemove(w, r)
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST or DELETE required"})
	}
}

// decodeAdminRequest reads the JSON body (falling back to the ?url=
// query parameter, which keeps the DELETE curl one-liner ergonomic) and
// normalizes the replica URL.
func decodeAdminRequest(w http.ResponseWriter, r *http.Request) (adminReplicaRequest, bool) {
	var req adminReplicaRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return req, false
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
			return req, false
		}
	}
	if req.URL == "" {
		req.URL = r.URL.Query().Get("url")
	}
	norm, err := normalizeReplicaURL(req.URL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return req, false
	}
	req.URL = norm
	return req, true
}

// handleAdminAdd runs the join ladder synchronously: register as joining,
// optionally model-push, probe to healthy (warming), then publish the
// view that grants ring ownership (active). The response returns only
// once the replica is serving members of the ring — or with the failure
// that kept it out, the member removed again. A client disconnect mid
// warm-up aborts the join the same way, so no half-joined member is ever
// left behind.
func (g *Gateway) handleAdminAdd(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAdminRequest(w, r)
	if !ok {
		return
	}
	if err := g.addJoining(req.URL); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	ctx := r.Context()
	if req.PushDir != "" {
		files, err := modeldir.ReadRaw(req.PushDir)
		if err != nil {
			g.failJoin(w, req.URL, http.StatusUnprocessableEntity, err)
			return
		}
		payload, err := json.Marshal(modeldir.PushPayload{Artifacts: files})
		if err != nil {
			g.failJoin(w, req.URL, http.StatusInternalServerError, err)
			return
		}
		if err := pushOne(ctx, g.client, req.URL, payload); err != nil {
			g.failJoin(w, req.URL, http.StatusBadGateway, err)
			return
		}
	}
	if err := g.transition(req.URL, MemberWarming, MemberJoining); err != nil {
		g.failJoin(w, req.URL, http.StatusConflict, err)
		return
	}
	if err := g.warmUp(ctx, req.URL); err != nil {
		g.failJoin(w, req.URL, http.StatusGatewayTimeout, err)
		return
	}
	if err := g.transition(req.URL, MemberActive, MemberWarming); err != nil {
		g.failJoin(w, req.URL, http.StatusConflict, err)
		return
	}
	g.adminAdds.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "active",
		"url":        req.URL,
		"membership": g.membershipBody(),
	})
}

// failJoin rolls a failed join back (member removed, prober stopped) and
// reports the cause.
func (g *Gateway) failJoin(w http.ResponseWriter, url string, status int, err error) {
	g.warmupFails.Add(1)
	_ = g.removeMember(url)
	writeJSON(w, status, errorResponse{Error: "join " + url + ": " + err.Error()})
}

// warmUp probes the joining replica until it reports healthy, up to
// WarmupProbes attempts spaced ProbeInterval apart. Degraded is not good
// enough to enter the ring: a replica that is already shedding before it
// owns a single key would only dig the fleet deeper.
func (g *Gateway) warmUp(ctx context.Context, url string) error {
	var last ReplicaState
	for i := 0; i < g.cfg.WarmupProbes; i++ {
		if i > 0 {
			g.cfg.Sleep(ctx, g.cfg.ProbeInterval)
		}
		if ctx.Err() != nil {
			return fmt.Errorf("warm-up aborted: %w", ctx.Err())
		}
		last = g.prober.ProbeNow(ctx, url, g.cfg.Clock())
		if last == StateHealthy {
			return nil
		}
	}
	return fmt.Errorf("warm-up failed after %d probes (last state %s)", g.cfg.WarmupProbes, last)
}

// handleAdminRemove drains and removes a replica: it leaves the ring
// immediately (no new keys), the handler waits for its in-flight
// requests to finish (bounded by MemberDrainTimeout), and only then is
// the member dropped and its prober stopped. The response reports
// whether the drain completed or timed out; either way the replica is
// gone from the view when the response is written.
func (g *Gateway) handleAdminRemove(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAdminRequest(w, r)
	if !ok {
		return
	}
	if err := g.startDrain(req.URL); err != nil {
		status := http.StatusConflict
		if errors.Is(err, ErrMemberUnknown) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	drained := g.awaitDrain(r.Context(), req.URL)
	_ = g.removeMember(req.URL)
	g.adminRemoves.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "removed",
		"url":        req.URL,
		"drained":    drained,
		"membership": g.membershipBody(),
	})
}

// awaitDrain waits for rep's in-flight count to reach zero. The loop is
// iteration-bounded so a frozen clock cannot wedge it; a cancelled ctx
// (admin client gone) stops waiting early — the caller removes the
// member regardless, because a draining member that already left the
// ring has nothing left to hand over.
func (g *Gateway) awaitDrain(ctx context.Context, rep string) bool {
	polls := int(g.cfg.MemberDrainTimeout/memberDrainPoll) + 1
	for i := 0; i < polls; i++ {
		if g.inflightFor(rep) == 0 {
			return true
		}
		g.cfg.Sleep(ctx, memberDrainPoll)
		if ctx.Err() != nil {
			break
		}
	}
	return g.inflightFor(rep) == 0
}

// handleAdminRing reports the full fleet view: the membership table,
// ring parameters, and the persistence status.
func (g *Gateway) handleAdminRing(w http.ResponseWriter, r *http.Request) {
	if !g.authorize(w, r) {
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"membership":  g.membershipBody(),
		"vnodes":      g.cfg.VNodes,
		"persistence": g.persistStatus(),
		"routing":     g.Stats(),
	})
}

// maxPushBytes bounds gateway /v1/model/push bodies, mirroring the
// replica-side cap (three checksummed artifact envelopes, base64 in
// JSON).
const maxPushBytes = 64 << 20

// handleModelPush is the authenticated HTTP form of the push fan-out:
// the payload is validated once at the gateway (a corrupt envelope is
// rejected before it touches any replica), then delivered to every
// active member. Per-replica outcomes are isolated — one unreachable
// replica does not stop the rest of the fleet from swapping.
func (g *Gateway) handleModelPush(w http.ResponseWriter, r *http.Request) {
	if !g.authorize(w, r) {
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("push exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	var payload modeldir.PushPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	for _, name := range modeldir.ArtifactFiles() {
		data, ok := payload.Artifacts[name]
		if !ok {
			writeJSON(w, http.StatusUnprocessableEntity,
				errorResponse{Error: "push missing artifact " + name})
			return
		}
		if _, err := checkpoint.Decode(data, modeldir.ArtifactVersion); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity,
				errorResponse{Error: "push artifact " + name + ": " + err.Error()})
			return
		}
	}
	g.pushes.Add(1)
	out := g.pushPayload(r.Context(), body)
	results := make(map[string]string, len(out))
	failed := 0
	for rep, perr := range out {
		if perr == nil {
			results[rep] = "swapped"
		} else {
			results[rep] = perr.Error()
			failed++
		}
	}
	status := http.StatusOK
	if failed > 0 {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{"replicas": results, "failed": failed})
}
