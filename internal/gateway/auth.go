package gateway

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
	"strings"
)

// authorize guards the admin surface (/v1/admin/* and /v1/model/push).
// It reports whether the request carried the configured bearer token,
// writing the error response itself when it did not.
//
// The comparison is constant-time: both the presented and configured
// tokens are hashed (SHA-256) before subtle.ConstantTimeCompare, so
// neither the compare nor the length check leaks where a guess diverged.
// When no token is configured the admin surface is disabled outright —
// a gateway must opt in to remote administration, never default to it.
func (g *Gateway) authorize(w http.ResponseWriter, r *http.Request) bool {
	if g.cfg.AdminToken == "" {
		g.authRejected.Add(1)
		writeJSON(w, http.StatusForbidden,
			errorResponse{Error: "admin surface disabled: gateway started without -admin-token"})
		return false
	}
	if !tokenMatches(bearerToken(r), g.cfg.AdminToken) {
		g.authRejected.Add(1)
		w.Header().Set("WWW-Authenticate", `Bearer realm="qrec-gw admin"`)
		writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "missing or invalid bearer token"})
		return false
	}
	return true
}

// bearerToken extracts the RFC 6750 bearer credential from the
// Authorization header ("" when absent or malformed). The scheme
// comparison is case-insensitive per RFC 9110.
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return ""
	}
	return h[len(prefix):]
}

// tokenMatches compares a presented token against the configured one in
// constant time. An empty presented token never matches — hashing would
// otherwise make "" a valid guess against a misconfigured empty secret,
// but the caller already rejects that configuration.
func tokenMatches(presented, configured string) bool {
	if presented == "" {
		return false
	}
	ph := sha256.Sum256([]byte(presented))
	ch := sha256.Sum256([]byte(configured))
	return subtle.ConstantTimeCompare(ph[:], ch[:]) == 1
}
