package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/modeldir"
)

// PushModelDir fans a trained model directory out to every replica: the
// three checksummed artifact envelopes are read (and validated) once,
// then POSTed to each replica's /v1/model/push, where they are
// re-validated, persisted atomically, and hot-swapped into the serving
// engine with zero dropped requests. The per-replica outcome map has a
// nil error for each replica that swapped; push failures are isolated —
// one unreachable replica does not stop the rest of the fleet from
// updating (the health prober routes around stale replicas that later
// die, and a re-push converges them).
func (g *Gateway) PushModelDir(ctx context.Context, dir string) (map[string]error, error) {
	files, err := modeldir.ReadRaw(dir)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(modeldir.PushPayload{Artifacts: files})
	if err != nil {
		return nil, fmt.Errorf("gateway: encode push: %w", err)
	}
	g.pushes.Add(1)
	return g.pushPayload(ctx, payload), nil
}

// pushPayload delivers one pre-encoded push payload to every active
// member of the current view. Draining and warming members are skipped:
// a leaving replica's model no longer matters, and a joining one gets
// its push through the warm-up ladder.
func (g *Gateway) pushPayload(ctx context.Context, payload []byte) map[string]error {
	reps := g.view.Load().ring.Replicas()
	out := make(map[string]error, len(reps))
	for _, rep := range reps {
		out[rep] = pushOne(ctx, g.client, rep, payload)
	}
	return out
}

// pushOne delivers one pre-encoded push payload to one replica.
func pushOne(ctx context.Context, client *http.Client, rep string, payload []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep+"/v1/model/push", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("gateway: push %s: %w", rep, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("gateway: push %s: %w", rep, err)
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	if rerr != nil {
		return fmt.Errorf("gateway: push %s: %w", rep, rerr)
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.Unmarshal(body, &e)
		if e.Error == "" {
			e.Error = fmt.Sprintf("status %d", resp.StatusCode)
		}
		return fmt.Errorf("gateway: push %s: %s", rep, e.Error)
	}
	return nil
}

// FormatPushOutcome renders a per-replica push outcome map in stable
// replica order for logs.
func FormatPushOutcome(out map[string]error) string {
	reps := make([]string, 0, len(out))
	for rep := range out {
		reps = append(reps, rep)
	}
	sort.Strings(reps)
	var b bytes.Buffer
	for _, rep := range reps {
		if out[rep] == nil {
			fmt.Fprintf(&b, "%s: swapped\n", rep)
		} else {
			fmt.Fprintf(&b, "%s: %v\n", rep, out[rep])
		}
	}
	return b.String()
}
