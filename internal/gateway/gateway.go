package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
)

// Config tunes the gateway. Replicas is required; everything else has a
// production default. Clock and Seed exist because this package is in
// the qrec-lint deterministic set: the gateway itself never reads the
// system clock or ambient randomness, the composition root injects them.
type Config struct {
	// Replicas lists the replica base URLs (e.g. "http://127.0.0.1:8081").
	Replicas []string
	// VNodes is the virtual-node count per replica on the hash ring
	// (default DefaultVNodes).
	VNodes int
	// MaxAttempts bounds how many replicas one request may try,
	// including the first (default 3, always capped at the replica
	// count).
	MaxAttempts int
	// AttemptTimeout is the per-attempt upstream deadline (default 10s).
	AttemptTimeout time.Duration
	// BackoffBase seeds the exponential inter-attempt backoff: attempt k
	// waits BackoffBase<<(k-1) plus jitter in [0, wait/2) drawn from the
	// seeded stream (default 25ms, capped at 1s).
	BackoffBase time.Duration
	// MaxBodyBytes bounds proxied request bodies (default 1 MiB,
	// matching the replica's own cap).
	MaxBodyBytes int64
	// ProbeInterval is the health-probe cadence per replica; a draining
	// replica's Retry-After extends it (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// RetryAfter is the backoff hint on a 503 when every candidate
	// failed (default 1s).
	RetryAfter time.Duration
	// Seed seeds the backoff-jitter stream (checkpoint.RNG splitmix64);
	// equal seeds replay equal jitter schedules.
	Seed int64
	// Clock supplies the wall clock for probe scheduling. Nil gets a
	// frozen zero clock — probes then fire at most once, which is fine
	// for tests driving ProbeAll by hand and wrong for serving; the
	// composition root injects time.Now.
	Clock func() time.Time
	// Sleep waits between retry attempts and probe rounds, honoring ctx
	// cancellation. Nil uses a timer-based wait; tests inject a no-op to
	// run chaos schedules without wall-clock stalls.
	Sleep func(ctx context.Context, d time.Duration)
	// Transport overrides the upstream transport (tests inject failure
	// modes); nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// Gateway defaults.
const (
	DefaultMaxAttempts    = 3
	DefaultAttemptTimeout = 10 * time.Second
	DefaultBackoffBase    = 25 * time.Millisecond
	DefaultMaxBodyBytes   = 1 << 20
	DefaultProbeInterval  = time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultRetryAfter     = time.Second
	// maxBackoff caps one inter-attempt wait so a deep retry ladder
	// cannot stall a request for seconds.
	maxBackoff = time.Second
)

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.Clock == nil {
		c.Clock = func() time.Time { return time.Time{} }
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	return c
}

// errorResponse mirrors the replica JSON error envelope so clients see
// one wire shape whether the gateway or a replica answered.
type errorResponse struct {
	Error string `json:"error"`
}

// Gateway is the routing reverse proxy. It is an http.Handler serving
// the same /v1/recommend, /v1/recommend/batch and /v1/healthz surface as
// a replica, so clients (and load balancers above it) cannot tell the
// tiers apart.
type Gateway struct {
	cfg     Config
	ring    *Ring
	prober  *Prober
	flights flightGroup
	client  *http.Client
	mux     *http.ServeMux

	rngMu sync.Mutex
	rng   *checkpoint.RNG

	draining atomic.Bool

	proxied   atomic.Uint64 // requests that entered the routing path
	retried   atomic.Uint64 // attempts beyond a request's first
	rerouted  atomic.Uint64 // requests whose home replica was skipped by health
	collapsed atomic.Uint64 // follower requests served by a shared flight
	exhausted atomic.Uint64 // requests that failed every candidate
	pushes    atomic.Uint64 // model pushes fanned out
}

// New builds the gateway. Config.Replicas must be non-empty.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: no replicas configured")
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	g := &Gateway{
		cfg:    cfg,
		ring:   NewRing(cfg.Replicas, cfg.VNodes),
		client: &http.Client{Transport: transport},
		mux:    http.NewServeMux(),
		rng:    checkpoint.NewRNG(cfg.Seed),
	}
	g.prober = newProber(cfg.Replicas, &http.Client{Transport: transport, Timeout: cfg.ProbeTimeout}, cfg.ProbeInterval, cfg.Clock)
	g.mux.HandleFunc("/v1/recommend", g.handleProxy)
	g.mux.HandleFunc("/v1/recommend/batch", g.handleProxy)
	g.mux.HandleFunc("/v1/healthz", g.handleHealth)
	return g, nil
}

// Prober exposes the health tracker (probe loops, tests, telemetry).
func (g *Gateway) Prober() *Prober { return g.prober }

// Ring exposes the routing ring (tests, telemetry).
func (g *Gateway) Ring() *Ring { return g.ring }

// StartDraining flips the gateway healthz to 503 draining so an outer
// balancer stops routing here; proxying continues until shutdown.
func (g *Gateway) StartDraining() { g.draining.Store(true) }

// Run probes replica health on the configured cadence until ctx is
// cancelled. Call it in its own goroutine next to the HTTP listener.
func (g *Gateway) Run(ctx context.Context) {
	for ctx.Err() == nil {
		g.prober.ProbeAll(ctx)
		g.cfg.Sleep(ctx, g.cfg.ProbeInterval)
	}
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// clientKey mirrors the replica's rate-limit identity: X-Client-ID when
// present, else the remote host. It is also the ring key, so one
// client's session consistently lands on one replica — which is what
// makes the replica's inference cache and rate limiter effective in a
// sharded deployment.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleProxy routes one recommend(-batch) request across the ring.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	g.proxied.Add(1)
	key := clientKey(r)
	// Collapse concurrent identical requests: same client, same endpoint,
	// same body share one upstream call. The recommend API is a pure read,
	// so sharing the response is sound; keying on the client keeps rate
	// accounting per client.
	flightKey := key + "\x00" + r.URL.Path + "\x00" + string(body)
	res, shared := g.flights.Do(r.Context(), flightKey, func() *flightResult {
		return g.forward(r.URL.Path, key, r.Header.Get("X-Client-ID"), body)
	})
	if res == nil {
		// Follower cancelled while waiting; nothing useful to write and
		// the client is gone anyway.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request cancelled"})
		return
	}
	if shared {
		g.collapsed.Add(1)
	}
	for k, vs := range res.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if shared {
		w.Header().Set("X-QRec-Collapsed", "1")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// forwardedHeaders are the upstream response headers the gateway relays.
var forwardedHeaders = []string{"Content-Type", "Retry-After", "X-Replica-ID"}

// forward walks the ring candidates for key, trying routable replicas
// first (health ladder) and the rest as a fail-open last resort, with a
// per-attempt timeout and jittered backoff between attempts. It always
// returns a terminal result: the first conclusive upstream response, or
// a 503 with a Retry-After hint once the attempt budget is spent.
//
// The attempt context is detached from the leader's request context on
// purpose: collapsed followers share this flight, so one impatient
// leader must not cancel the answer out from under the rest.
func (g *Gateway) forward(path, key, clientID string, body []byte) *flightResult {
	cands := g.routeOrder(key)
	attempts := g.cfg.MaxAttempts
	if attempts > len(cands) {
		attempts = len(cands)
	}
	budget := time.Duration(attempts)*g.cfg.AttemptTimeout + time.Duration(attempts)*maxBackoff
	//lint:ignore ctxflow collapsed followers share this flight: the leader's request context must not cancel the answer for the rest (see doc comment)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	var last *flightResult
	for i := 0; i < attempts; i++ {
		if i > 0 {
			g.retried.Add(1)
			g.cfg.Sleep(ctx, g.backoff(i))
			if ctx.Err() != nil {
				break
			}
		}
		res, retryable := g.attempt(ctx, cands[i], path, clientID, body)
		if !retryable {
			return res
		}
		last = res
	}
	g.exhausted.Add(1)
	if last != nil && last.status != 0 {
		// Every candidate answered but badly (e.g. unanimous 503 while a
		// new model loads everywhere): relay the last real response rather
		// than masking it.
		return last
	}
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", strconv.FormatInt(int64((g.cfg.RetryAfter+time.Second-1)/time.Second), 10))
	msg, _ := json.Marshal(errorResponse{Error: "no replica reachable"})
	return &flightResult{status: http.StatusServiceUnavailable, header: h, body: append(msg, '\n')}
}

// routeOrder is the health-ladder-filtered candidate walk: ring order
// among routable replicas, with non-routable ones appended as a fail-open
// tail (trying a "down" replica last beats failing a request that still
// had somewhere to go).
func (g *Gateway) routeOrder(key string) []string {
	cands := g.ring.Candidates(key)
	routable := cands[:0:0]
	var rest []string
	for _, rep := range cands {
		if g.prober.State(rep).Routable() {
			routable = append(routable, rep)
		} else {
			rest = append(rest, rep)
		}
	}
	if len(routable) == 0 || (len(cands) > 0 && len(routable) > 0 && routable[0] != cands[0]) {
		g.rerouted.Add(1)
	}
	return append(routable, rest...)
}

// attempt performs one upstream call. retryable reports whether the
// routing loop should move to the next candidate: transport failures and
// replica-side 5xx (panic storms, drains, shutdowns) are retryable —
// the API is a pure read, so re-execution is safe — while everything
// else (200s, 4xxs including 429 rate limits) is the client's answer.
func (g *Gateway) attempt(ctx context.Context, rep, path, clientID string, body []byte) (res *flightResult, retryable bool) {
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rep+path, bytes.NewReader(body))
	if err != nil {
		return &flightResult{}, true
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		// Connection refused / reset / attempt timeout: the replica is
		// unreachable right now. Mark it down so sibling requests reroute
		// immediately instead of each discovering the corpse themselves.
		g.prober.MarkDown(rep)
		return &flightResult{}, true
	}
	rbody, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	_ = resp.Body.Close()
	if rerr != nil {
		g.prober.MarkDown(rep)
		return &flightResult{}, true
	}
	g.prober.MarkUp(rep)
	res = &flightResult{status: resp.StatusCode, body: rbody, replica: rep, header: http.Header{}}
	for _, k := range forwardedHeaders {
		if v := resp.Header.Get(k); v != "" {
			res.header.Set(k, v)
		}
	}
	switch resp.StatusCode {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return res, true
	}
	return res, false
}

// backoff computes the wait before attempt i (1-based beyond the first):
// exponential in the base with jitter in [0, wait/2) from the seeded
// stream, de-synchronizing retry storms across concurrent requests.
func (g *Gateway) backoff(i int) time.Duration {
	d := g.cfg.BackoffBase << (i - 1)
	if d > maxBackoff {
		d = maxBackoff
	}
	if half := int64(d / 2); half > 0 {
		g.rngMu.Lock()
		j := int64(g.rng.Uint64() % uint64(half))
		g.rngMu.Unlock()
		d += time.Duration(j)
	}
	return d
}

// Stats is the gateway's telemetry snapshot.
type Stats struct {
	Proxied   uint64 `json:"proxied"`
	Retried   uint64 `json:"retried"`
	Rerouted  uint64 `json:"rerouted"`
	Collapsed uint64 `json:"collapsed"`
	Exhausted uint64 `json:"exhausted"`
	Pushes    uint64 `json:"pushes"`
}

// Stats snapshots the routing counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Proxied:   g.proxied.Load(),
		Retried:   g.retried.Load(),
		Rerouted:  g.rerouted.Load(),
		Collapsed: g.collapsed.Load(),
		Exhausted: g.exhausted.Load(),
		Pushes:    g.pushes.Load(),
	}
}

// handleHealth reports the gateway's own ladder: draining (503 +
// Retry-After) when shutdown has begun, degraded when any replica is off
// the healthy rung, ok otherwise — plus the per-replica table and
// routing counters.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	snapshot := g.prober.Snapshot()
	status, code := "ok", http.StatusOK
	for _, st := range snapshot {
		if st.State != StateHealthy.String() && st.State != StateUnknown.String() {
			status = "degraded"
		}
	}
	if g.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "2")
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"tier":     "gateway",
		"replicas": snapshot,
		"routing":  g.Stats(),
	})
}

// writeJSON mirrors the replica's encode-before-write helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fallback, _ := json.Marshal(errorResponse{Error: "encode response: " + err.Error()})
		_, _ = w.Write(append(fallback, '\n'))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}
