package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
)

// Config tunes the gateway. Replicas is required; everything else has a
// production default. Clock and Seed exist because this package is in
// the qrec-lint deterministic set: the gateway itself never reads the
// system clock or ambient randomness, the composition root injects them.
type Config struct {
	// Replicas lists the replica base URLs (e.g. "http://127.0.0.1:8081").
	Replicas []string
	// VNodes is the virtual-node count per replica on the hash ring
	// (default DefaultVNodes).
	VNodes int
	// MaxAttempts bounds how many replicas one request may try,
	// including the first (default 3, always capped at the replica
	// count).
	MaxAttempts int
	// AttemptTimeout is the per-attempt upstream deadline (default 10s).
	AttemptTimeout time.Duration
	// BackoffBase seeds the exponential inter-attempt backoff: attempt k
	// waits BackoffBase<<(k-1) plus jitter in [0, wait/2) drawn from the
	// seeded stream (default 25ms, capped at 1s).
	BackoffBase time.Duration
	// MaxBodyBytes bounds proxied request bodies (default 1 MiB,
	// matching the replica's own cap).
	MaxBodyBytes int64
	// ProbeInterval is the health-probe cadence per replica; a draining
	// replica's Retry-After extends it (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// RetryAfter is the backoff hint on a 503 when every candidate
	// failed (default 1s).
	RetryAfter time.Duration
	// Seed seeds the backoff-jitter stream (checkpoint.RNG splitmix64);
	// equal seeds replay equal jitter schedules.
	Seed int64
	// AdminToken guards the admin surface (/v1/admin/* and
	// /v1/model/push) with constant-time bearer-token auth. Empty
	// disables the admin surface entirely (requests get 403).
	AdminToken string
	// StatePath, when set, persists the active membership view through
	// the checksummed atomic envelope after every change, so a restarted
	// gateway rejoins with its last-known fleet instead of the boot
	// flags. Empty disables persistence.
	StatePath string
	// InitialSeq seeds the view sequence counter (a restart passes the
	// persisted seq so the sequence stays monotonic across processes).
	InitialSeq uint64
	// WarmupProbes bounds how many health probes a joining replica gets
	// to reach healthy before the join fails (default 30, spaced
	// ProbeInterval apart).
	WarmupProbes int
	// MemberDrainTimeout bounds how long a removal waits for the
	// draining replica's in-flight requests to finish (default 10s).
	MemberDrainTimeout time.Duration
	// Clock supplies the wall clock for probe scheduling. Nil gets a
	// frozen zero clock — probes then fire at most once, which is fine
	// for tests driving ProbeAll by hand and wrong for serving; the
	// composition root injects time.Now.
	Clock func() time.Time
	// Sleep waits between retry attempts and probe rounds, honoring ctx
	// cancellation. Nil uses a timer-based wait; tests inject a no-op to
	// run chaos schedules without wall-clock stalls.
	Sleep func(ctx context.Context, d time.Duration)
	// Transport overrides the upstream transport (tests inject failure
	// modes); nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// Gateway defaults.
const (
	DefaultMaxAttempts        = 3
	DefaultAttemptTimeout     = 10 * time.Second
	DefaultBackoffBase        = 25 * time.Millisecond
	DefaultMaxBodyBytes       = 1 << 20
	DefaultProbeInterval      = time.Second
	DefaultProbeTimeout       = 2 * time.Second
	DefaultRetryAfter         = time.Second
	DefaultWarmupProbes       = 30
	DefaultMemberDrainTimeout = 10 * time.Second
	// maxBackoff caps one inter-attempt wait so a deep retry ladder
	// cannot stall a request for seconds.
	maxBackoff = time.Second
	// maxRetryAfterHint caps the ladder-derived Retry-After on terminal
	// 503s: a draining replica may push its next probe far out, but
	// telling clients to stay away that long serves nobody.
	maxRetryAfterHint = 30 * time.Second
)

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.WarmupProbes <= 0 {
		c.WarmupProbes = DefaultWarmupProbes
	}
	if c.MemberDrainTimeout <= 0 {
		c.MemberDrainTimeout = DefaultMemberDrainTimeout
	}
	if c.Clock == nil {
		c.Clock = func() time.Time { return time.Time{} }
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	return c
}

// errorResponse mirrors the replica JSON error envelope so clients see
// one wire shape whether the gateway or a replica answered.
type errorResponse struct {
	Error string `json:"error"`
}

// Gateway is the routing reverse proxy. It is an http.Handler serving
// the same /v1/recommend, /v1/recommend/batch and /v1/healthz surface as
// a replica, so clients (and load balancers above it) cannot tell the
// tiers apart.
type Gateway struct {
	cfg     Config
	prober  *Prober
	flights flightGroup
	client  *http.Client
	mux     *http.ServeMux

	// view is the RCU-published membership snapshot: the routing path
	// loads it once per request and never observes a half-updated ring.
	// Mutations (serialized by memberMu) build a whole new view and swap
	// the pointer.
	view     atomic.Pointer[memberView]
	memberMu sync.Mutex

	// inflight counts live upstream attempts per replica URL; the drain
	// ladder waits on it before a member goes from draining to gone.
	inflightMu sync.Mutex
	inflight   map[string]int

	// persist tracks the durability of the membership view on disk.
	persistMu sync.Mutex
	persist   struct {
		seq       uint64
		savedAt   int64
		errors    uint64
		lastError string
	}

	rngMu sync.Mutex
	rng   *checkpoint.RNG

	draining atomic.Bool

	proxied      atomic.Uint64 // requests that entered the routing path
	retried      atomic.Uint64 // attempts beyond a request's first
	rerouted     atomic.Uint64 // requests whose home replica was skipped by health
	collapsed    atomic.Uint64 // follower requests served by a shared flight
	exhausted    atomic.Uint64 // requests that failed every candidate
	pushes       atomic.Uint64 // model pushes fanned out
	adminAdds    atomic.Uint64 // replicas added through the admin API
	adminRemoves atomic.Uint64 // replicas drained and removed through the admin API
	authRejected atomic.Uint64 // admin requests rejected by auth (401/403)
	warmupFails  atomic.Uint64 // joins that never reached healthy
}

// New builds the gateway. Config.Replicas must be non-empty; every boot
// replica enters the view as active (a restart passes the persisted set
// here via ResolveBootMembership).
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: no replicas configured")
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	g := &Gateway{
		cfg:      cfg,
		client:   &http.Client{Transport: transport},
		mux:      http.NewServeMux(),
		rng:      checkpoint.NewRNG(cfg.Seed),
		inflight: make(map[string]int),
	}
	members := make([]Member, 0, len(cfg.Replicas))
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, rep := range cfg.Replicas {
		if !seen[rep] {
			seen[rep] = true
			members = append(members, Member{URL: rep, State: MemberActive})
		}
	}
	g.view.Store(newMemberView(cfg.InitialSeq+1, members, cfg.VNodes))
	g.prober = newProber(g.view.Load().ring.Replicas(), &http.Client{Transport: transport, Timeout: cfg.ProbeTimeout}, cfg.ProbeInterval, cfg.Clock)
	// Persist the boot view immediately: a gateway that crashes before
	// its first membership change still rejoins with a known fleet.
	g.memberMu.Lock()
	g.persistLocked(g.view.Load())
	g.memberMu.Unlock()
	g.mux.HandleFunc("/v1/recommend", g.handleProxy)
	g.mux.HandleFunc("/v1/recommend/batch", g.handleProxy)
	g.mux.HandleFunc("/v1/healthz", g.handleHealth)
	g.mux.HandleFunc("/v1/admin/replicas", g.handleAdminReplicas)
	g.mux.HandleFunc("/v1/admin/ring", g.handleAdminRing)
	g.mux.HandleFunc("/v1/model/push", g.handleModelPush)
	return g, nil
}

// Prober exposes the health tracker (probe loops, tests, telemetry).
func (g *Gateway) Prober() *Prober { return g.prober }

// Ring exposes the current routing ring (tests, telemetry). The returned
// ring is an immutable snapshot; a concurrent membership change replaces
// it rather than mutating it.
func (g *Gateway) Ring() *Ring { return g.view.Load().ring }

// StartDraining flips the gateway healthz to 503 draining so an outer
// balancer stops routing here; proxying continues until shutdown.
func (g *Gateway) StartDraining() { g.draining.Store(true) }

// Run probes replica health on the configured cadence until ctx is
// cancelled. Call it in its own goroutine next to the HTTP listener.
func (g *Gateway) Run(ctx context.Context) {
	for ctx.Err() == nil {
		g.prober.ProbeAll(ctx)
		g.cfg.Sleep(ctx, g.cfg.ProbeInterval)
	}
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// clientKey mirrors the replica's rate-limit identity: X-Client-ID when
// present, else the remote host. It is also the ring key, so one
// client's session consistently lands on one replica — which is what
// makes the replica's inference cache and rate limiter effective in a
// sharded deployment.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleProxy routes one recommend(-batch) request across the ring.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	g.proxied.Add(1)
	key := clientKey(r)
	// Collapse concurrent identical requests: same client, same endpoint,
	// same body share one upstream call. The recommend API is a pure read,
	// so sharing the response is sound; keying on the client keeps rate
	// accounting per client.
	flightKey := key + "\x00" + r.URL.Path + "\x00" + string(body)
	res, shared := g.flights.Do(r.Context(), flightKey, func() *flightResult {
		return g.forward(r.URL.Path, key, r.Header.Get("X-Client-ID"), body)
	})
	if res == nil {
		// Follower cancelled while waiting; nothing useful to write and
		// the client is gone anyway.
		w.Header().Set("Retry-After", retryAfterSeconds(g.retryAfterHint(nil)))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request cancelled"})
		return
	}
	if shared {
		g.collapsed.Add(1)
	}
	for k, vs := range res.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if shared {
		w.Header().Set("X-QRec-Collapsed", "1")
	}
	if res.status == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		// Every gateway 503 carries a backoff hint, mirroring the
		// replica-side contract: relayed replica hints pass through above,
		// and anything still missing one gets the health ladder's
		// next-probe time.
		w.Header().Set("Retry-After", retryAfterSeconds(g.retryAfterHint(nil)))
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// forwardedHeaders are the upstream response headers the gateway relays.
var forwardedHeaders = []string{"Content-Type", "Retry-After", "X-Replica-ID"}

// forward walks the ring candidates for key, trying routable replicas
// first (health ladder) and the rest as a fail-open last resort, with a
// per-attempt timeout and jittered backoff between attempts. It always
// returns a terminal result: the first conclusive upstream response, or
// a 503 with a Retry-After hint once the attempt budget is spent.
//
// The attempt context is detached from the leader's request context on
// purpose: collapsed followers share this flight, so one impatient
// leader must not cancel the answer out from under the rest.
func (g *Gateway) forward(path, key, clientID string, body []byte) *flightResult {
	cands := g.routeOrder(key)
	attempts := g.cfg.MaxAttempts
	if attempts > len(cands) {
		attempts = len(cands)
	}
	budget := time.Duration(attempts)*g.cfg.AttemptTimeout + time.Duration(attempts)*maxBackoff
	//lint:ignore ctxflow collapsed followers share this flight: the leader's request context must not cancel the answer for the rest (see doc comment)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	var last *flightResult
	for i := 0; i < attempts; i++ {
		if i > 0 {
			g.retried.Add(1)
			g.cfg.Sleep(ctx, g.backoff(i))
			if ctx.Err() != nil {
				break
			}
		}
		res, retryable := g.attempt(ctx, cands[i], path, clientID, body)
		if !retryable {
			return res
		}
		last = res
	}
	g.exhausted.Add(1)
	if last != nil && last.status != 0 {
		// Every candidate answered but badly (e.g. unanimous 503 while a
		// new model loads everywhere): relay the last real response rather
		// than masking it. A missing Retry-After is filled from the health
		// ladder before the response leaves the gateway (handleProxy).
		return last
	}
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", retryAfterSeconds(g.retryAfterHint(cands)))
	msg, _ := json.Marshal(errorResponse{Error: "no replica reachable"})
	return &flightResult{status: http.StatusServiceUnavailable, header: h, body: append(msg, '\n')}
}

// retryAfterHint derives the terminal-503 backoff hint from the health
// ladder: the soonest scheduled probe among the request's candidates is
// the earliest the gateway could notice a recovery, so telling the
// client to come back sooner than that only buys it another 503. The
// configured RetryAfter is the floor, maxRetryAfterHint the ceiling.
func (g *Gateway) retryAfterHint(cands []string) time.Duration {
	ra := g.cfg.RetryAfter
	if len(cands) == 0 {
		cands = g.view.Load().ring.Replicas()
	}
	if d := g.prober.NextProbeIn(cands, g.cfg.Clock()); d > ra {
		ra = d
	}
	if ra > maxRetryAfterHint {
		ra = maxRetryAfterHint
	}
	return ra
}

// retryAfterSeconds renders a duration as the delta-seconds Retry-After
// form, ceiled so the hint never undershoots.
func retryAfterSeconds(d time.Duration) string {
	return strconv.FormatInt(int64((d+time.Second-1)/time.Second), 10)
}

// routeOrder is the health-ladder-filtered candidate walk: ring order
// among routable replicas, with non-routable ones appended as a fail-open
// tail (trying a "down" replica last beats failing a request that still
// had somewhere to go). The ring is read from the current view snapshot,
// so a concurrent membership change never hands this request a
// half-updated candidate list.
func (g *Gateway) routeOrder(key string) []string {
	cands := g.view.Load().ring.Candidates(key)
	routable := cands[:0:0]
	var rest []string
	for _, rep := range cands {
		if g.prober.State(rep).Routable() {
			routable = append(routable, rep)
		} else {
			rest = append(rest, rep)
		}
	}
	if len(routable) == 0 || (len(cands) > 0 && len(routable) > 0 && routable[0] != cands[0]) {
		g.rerouted.Add(1)
	}
	return append(routable, rest...)
}

// attempt performs one upstream call. retryable reports whether the
// routing loop should move to the next candidate: transport failures and
// replica-side 5xx (panic storms, drains, shutdowns) are retryable —
// the API is a pure read, so re-execution is safe — while everything
// else (200s, 4xxs including 429 rate limits) is the client's answer.
func (g *Gateway) attempt(ctx context.Context, rep, path, clientID string, body []byte) (res *flightResult, retryable bool) {
	// Count the attempt against the replica for the drain ladder: a
	// draining member goes gone only once this reaches zero.
	g.incInflight(rep)
	defer g.decInflight(rep)
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rep+path, bytes.NewReader(body))
	if err != nil {
		return &flightResult{}, true
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		// Connection refused / reset / attempt timeout: the replica is
		// unreachable right now. Mark it down so sibling requests reroute
		// immediately instead of each discovering the corpse themselves.
		g.prober.MarkDown(rep)
		return &flightResult{}, true
	}
	rbody, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	_ = resp.Body.Close()
	if rerr != nil {
		g.prober.MarkDown(rep)
		return &flightResult{}, true
	}
	g.prober.MarkUp(rep)
	res = &flightResult{status: resp.StatusCode, body: rbody, replica: rep, header: http.Header{}}
	for _, k := range forwardedHeaders {
		if v := resp.Header.Get(k); v != "" {
			res.header.Set(k, v)
		}
	}
	switch resp.StatusCode {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return res, true
	}
	return res, false
}

// backoff computes the wait before attempt i (1-based beyond the first):
// exponential in the base with jitter in [0, wait/2) from the seeded
// stream, de-synchronizing retry storms across concurrent requests.
func (g *Gateway) backoff(i int) time.Duration {
	d := g.cfg.BackoffBase << (i - 1)
	if d > maxBackoff {
		d = maxBackoff
	}
	if half := int64(d / 2); half > 0 {
		g.rngMu.Lock()
		j := int64(g.rng.Uint64() % uint64(half))
		g.rngMu.Unlock()
		d += time.Duration(j)
	}
	return d
}

// Stats is the gateway's telemetry snapshot.
type Stats struct {
	Proxied      uint64 `json:"proxied"`
	Retried      uint64 `json:"retried"`
	Rerouted     uint64 `json:"rerouted"`
	Collapsed    uint64 `json:"collapsed"`
	Exhausted    uint64 `json:"exhausted"`
	Pushes       uint64 `json:"pushes"`
	AdminAdds    uint64 `json:"admin_adds"`
	AdminRemoves uint64 `json:"admin_removes"`
	AuthRejected uint64 `json:"auth_rejected"`
	WarmupFails  uint64 `json:"warmup_fails"`
}

// Stats snapshots the routing counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Proxied:      g.proxied.Load(),
		Retried:      g.retried.Load(),
		Rerouted:     g.rerouted.Load(),
		Collapsed:    g.collapsed.Load(),
		Exhausted:    g.exhausted.Load(),
		Pushes:       g.pushes.Load(),
		AdminAdds:    g.adminAdds.Load(),
		AdminRemoves: g.adminRemoves.Load(),
		AuthRejected: g.authRejected.Load(),
		WarmupFails:  g.warmupFails.Load(),
	}
}

// handleHealth reports the gateway's own ladder: draining (503 +
// Retry-After) when shutdown has begun, degraded when any replica is off
// the healthy rung or any member is mid-lifecycle (warming/draining), ok
// otherwise — plus the membership table (lifecycle state, health-ladder
// rung, probe/retry counters per member), the persisted-state age, the
// per-replica probe table and the routing counters, so a fleet operator
// sees the gateway's complete view from one endpoint.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	snapshot := g.prober.Snapshot(g.cfg.Clock())
	seq, members := g.memberTable()
	status, code := "ok", http.StatusOK
	for _, st := range snapshot {
		if st.State != StateHealthy.String() && st.State != StateUnknown.String() {
			status = "degraded"
		}
	}
	for _, m := range members {
		if m.State != MemberActive.String() {
			status = "degraded"
		}
	}
	if g.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "2")
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"tier":        "gateway",
		"membership":  map[string]any{"seq": seq, "members": members},
		"persistence": g.persistStatus(),
		"replicas":    snapshot,
		"routing":     g.Stats(),
	})
}

// writeJSON mirrors the replica's encode-before-write helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fallback, _ := json.Marshal(errorResponse{Error: "encode response: " + err.Error()})
		_, _ = w.Write(append(fallback, '\n'))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}
