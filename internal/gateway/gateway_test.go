package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep removes inter-attempt waits so retry ladders run instantly.
func noSleep(context.Context, time.Duration) {}

// testGateway builds a gateway over the given replica URLs with
// test-friendly timeouts (real clock — lint skips _test.go files).
func testGateway(t *testing.T, replicas []string, mut func(*Config)) *Gateway {
	t.Helper()
	cfg := Config{
		Replicas:       replicas,
		AttemptTimeout: 2 * time.Second,
		ProbeTimeout:   time.Second,
		Clock:          time.Now,
		Sleep:          noSleep,
	}
	if mut != nil {
		mut(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

// keyHomedOn finds a client key whose ring home is the given replica.
func keyHomedOn(t *testing.T, r *Ring, rep string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("client-%d", i)
		if r.Candidates(k)[0] == rep {
			return k
		}
	}
	t.Fatalf("no key homed on %s in 10000 tries", rep)
	return ""
}

func postKey(t *testing.T, gw http.Handler, clientID, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/recommend", strings.NewReader(body))
	req.Header.Set("X-Client-ID", clientID)
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	return w
}

func TestRingCandidatesCompleteAndDeterministic(t *testing.T) {
	reps := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(reps, 64)
	// Order of the input list must not matter for placement.
	r2 := NewRing([]string{reps[2], reps[0], reps[1]}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		c1, c2 := r1.Candidates(key), r2.Candidates(key)
		if len(c1) != len(reps) {
			t.Fatalf("candidates incomplete: %v", c1)
		}
		seen := map[string]bool{}
		for _, rep := range c1 {
			if seen[rep] {
				t.Fatalf("duplicate candidate for %s: %v", key, c1)
			}
			seen[rep] = true
		}
		for j := range c1 {
			if c1[j] != c2[j] {
				t.Fatalf("ring placement depends on input order: %v vs %v", c1, c2)
			}
		}
	}
}

func TestRingDistribution(t *testing.T) {
	reps := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(reps, DefaultVNodes)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Candidates(fmt.Sprintf("key-%d", i))[0]]++
	}
	mean := float64(keys) / float64(len(reps))
	for rep, n := range counts {
		ratio := float64(n) / mean
		if ratio < 0.6 || ratio > 1.5 {
			t.Errorf("%s owns %d keys (%.2fx mean): skew too large", rep, n, ratio)
		}
	}
}

// TestRingMinimalMotion: dropping one replica moves only the keys that
// were homed on it — everyone else keeps their home (the property that
// makes consistent hashing worth the trouble).
func TestRingMinimalMotion(t *testing.T) {
	full := []string{"http://a:1", "http://b:2", "http://c:3"}
	r3 := NewRing(full, 64)
	r2 := NewRing(full[:2], 64)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		home := r3.Candidates(key)[0]
		if home == full[2] {
			continue // homeless keys may move anywhere
		}
		if got := r2.Candidates(key)[0]; got != home {
			t.Fatalf("key %s moved from %s to %s though its home survived", key, home, got)
		}
	}
}

func TestProberLadder(t *testing.T) {
	mkReplica := func(status int, body string, retryAfter string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			_, _ = w.Write([]byte(body))
		}))
	}
	healthy := mkReplica(200, `{"status":"ok","replica":"r-ok"}`, "")
	defer healthy.Close()
	degraded := mkReplica(200, `{"status":"degraded","replica":"r-deg"}`, "")
	defer degraded.Close()
	draining := mkReplica(503, `{"status":"draining"}`, "7")
	defer draining.Close()
	broken := mkReplica(500, `oops`, "")
	defer broken.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	reps := []string{healthy.URL, degraded.URL, draining.URL, broken.URL, dead.URL}
	now := time.Unix(1000, 0)
	gw := testGateway(t, reps, func(c *Config) {
		c.ProbeInterval = time.Second
		c.Clock = func() time.Time { return now }
	})
	p := gw.Prober()
	p.ProbeAll(context.Background())

	want := map[string]ReplicaState{
		healthy.URL:  StateHealthy,
		degraded.URL: StateDegraded,
		draining.URL: StateDraining,
		broken.URL:   StateDown,
		dead.URL:     StateDown,
	}
	for rep, st := range want {
		if got := p.State(rep); got != st {
			t.Errorf("%s: state %v, want %v", rep, got, st)
		}
	}
	if !StateHealthy.Routable() || !StateDegraded.Routable() || !StateUnknown.Routable() {
		t.Error("healthy/degraded/unknown must be routable")
	}
	if StateDraining.Routable() || StateDown.Routable() {
		t.Error("draining/down must not be routable")
	}
	snap := p.Snapshot(now)
	if snap[healthy.URL].ReplicaID != "r-ok" {
		t.Errorf("replica id not captured: %+v", snap[healthy.URL])
	}

	// The draining replica's Retry-After (7s) outlasts the 1s probe
	// interval: flip the backend healthy, advance the clock 2s, re-probe —
	// the draining entry must NOT be re-probed yet while the others are.
	if got := p.State(draining.URL); got != StateDraining {
		t.Fatalf("draining state lost: %v", got)
	}
	now = now.Add(2 * time.Second)
	p.ProbeAll(context.Background())
	if got := p.State(draining.URL); got != StateDraining {
		t.Errorf("probe ignored the draining replica's Retry-After backoff (state %v)", got)
	}
	// Past the hint, the probe runs again and sees whatever the replica
	// now says.
	now = now.Add(6 * time.Second)
	p.ProbeAll(context.Background())
	if got := p.State(draining.URL); got != StateDraining {
		t.Errorf("state after re-probe: %v", got)
	}
}

func TestProberPassiveSignals(t *testing.T) {
	gw := testGateway(t, []string{"http://a:1", "http://b:2"}, nil)
	p := gw.Prober()
	p.MarkDown("http://a:1")
	if got := p.State("http://a:1"); got != StateDown {
		t.Fatalf("MarkDown: %v", got)
	}
	p.MarkUp("http://a:1")
	if got := p.State("http://a:1"); got != StateHealthy {
		t.Fatalf("MarkUp: %v", got)
	}
	// Draining came from the replica's own healthz; a data-path success
	// must not override it.
	p.mu.Lock()
	p.st["http://b:2"].state = StateDraining
	p.mu.Unlock()
	p.MarkUp("http://b:2")
	if got := p.State("http://b:2"); got != StateDraining {
		t.Errorf("MarkUp lifted draining: %v", got)
	}
}

// TestRerouteAroundDeadReplica: the client's home replica is down; the
// request lands on the next ring candidate and still answers 200.
func TestRerouteAroundDeadReplica(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Replica-ID", "alive")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"templates":["ok"]}`))
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	gw := testGateway(t, []string{alive.URL, dead.URL}, nil)
	key := keyHomedOn(t, gw.Ring(), dead.URL)

	w := postKey(t, gw, key, `{"sql":"SELECT 1"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Replica-ID"); got != "alive" {
		t.Errorf("answered by %q, want the alive replica", got)
	}
	st := gw.Stats()
	if st.Retried == 0 {
		t.Errorf("dead home replica should cost a retry: %+v", st)
	}
	// The transport error marked the dead replica down; the next request
	// for the same key goes straight to the healthy one (rerouted, no
	// retry burn).
	before := gw.Stats().Retried
	w2 := postKey(t, gw, key, `{"sql":"SELECT 2"}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("second request: %d", w2.Code)
	}
	if gw.Stats().Retried != before {
		t.Errorf("second request retried despite the down mark")
	}
	if gw.Stats().Rerouted == 0 {
		t.Errorf("reroute counter never moved: %+v", gw.Stats())
	}
}

// TestRetryOn5xxThenSuccess: a replica answering 503 is retried on the
// next candidate; a 429 is final and passes through with its headers.
func TestRetryOn5xxThenSuccess(t *testing.T) {
	var unavailableHits atomic.Int64
	unavailable := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		unavailableHits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"drowning"}`))
	}))
	defer unavailable.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"templates":["ok"]}`))
	}))
	defer ok.Close()

	gw := testGateway(t, []string{unavailable.URL, ok.URL}, nil)
	key := keyHomedOn(t, gw.Ring(), unavailable.URL)
	w := postKey(t, gw, key, `{"sql":"SELECT 1"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if unavailableHits.Load() != 1 {
		t.Errorf("unavailable replica hit %d times", unavailableHits.Load())
	}
}

func Test429PassesThroughWithoutRetry(t *testing.T) {
	var hits atomic.Int64
	limited := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"rate limit exceeded"}`))
	}))
	defer limited.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"templates":["ok"]}`))
	}))
	defer other.Close()

	gw := testGateway(t, []string{limited.URL, other.URL}, nil)
	key := keyHomedOn(t, gw.Ring(), limited.URL)
	w := postKey(t, gw, key, `{"sql":"SELECT 1"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After not relayed: %q", got)
	}
	if hits.Load() != 1 {
		t.Errorf("429 was retried (%d hits)", hits.Load())
	}
	if gw.Stats().Retried != 0 {
		t.Errorf("429 burned a retry: %+v", gw.Stats())
	}
}

// TestAllReplicasDown: every candidate unreachable — the gateway answers
// a terminal 503 with a Retry-After hint.
func TestAllReplicasDown(t *testing.T) {
	d1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	d1.Close()
	d2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	d2.Close()

	gw := testGateway(t, []string{d1.URL, d2.URL}, nil)
	w := postKey(t, gw, "anyone", `{"sql":"SELECT 1"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("exhausted 503 missing Retry-After")
	}
	var e errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("error envelope: %q (%v)", w.Body.String(), err)
	}
	if gw.Stats().Exhausted == 0 {
		t.Errorf("exhausted counter never moved")
	}
}

// TestUnanimous503Relayed: when every replica answers 503 (e.g. all
// draining), the gateway relays the replicas' own response instead of
// masking it with the generic no-replica error.
func TestUnanimous503Relayed(t *testing.T) {
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "5")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"draining"}`))
		}))
	}
	r1, r2 := mk(), mk()
	defer r1.Close()
	defer r2.Close()
	gw := testGateway(t, []string{r1.URL, r2.URL}, nil)
	w := postKey(t, gw, "anyone", `{"sql":"SELECT 1"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "draining") {
		t.Errorf("replica body not relayed: %s", w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got != "5" {
		t.Errorf("replica Retry-After not relayed: %q", got)
	}
}

// TestSingleflightCollapse: concurrent identical requests share one
// upstream call; followers carry the X-QRec-Collapsed marker.
func TestSingleflightCollapse(t *testing.T) {
	var hits atomic.Int64
	gate := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-gate
		_, _ = w.Write([]byte(`{"templates":["ok"]}`))
	}))
	defer slow.Close()

	gw := testGateway(t, []string{slow.URL}, nil)
	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	collapsed := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postKey(t, gw, "same-client", `{"sql":"SELECT 1"}`)
			codes[i] = w.Code
			collapsed[i] = w.Header().Get("X-QRec-Collapsed") == "1"
		}(i)
	}
	// Wait until the leader reaches the replica, then release everyone.
	for hits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let followers enqueue on the flight
	close(gate)
	wg.Wait()

	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: status %d", i, c)
		}
	}
	if hits.Load() != 1 {
		t.Errorf("upstream hit %d times, want 1", hits.Load())
	}
	nCollapsed := 0
	for _, c := range collapsed {
		if c {
			nCollapsed++
		}
	}
	if nCollapsed != n-1 {
		t.Errorf("%d collapsed followers, want %d", nCollapsed, n-1)
	}
	if gw.Stats().Collapsed != uint64(n-1) {
		t.Errorf("collapsed counter: %+v", gw.Stats())
	}
}

// TestNoCollapseAcrossClients: different clients never share a flight,
// so collapsing cannot launder one client's traffic through another's
// rate budget.
func TestNoCollapseAcrossClients(t *testing.T) {
	var hits atomic.Int64
	gate := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-gate
		_, _ = w.Write([]byte(`{"templates":["ok"]}`))
	}))
	defer slow.Close()

	gw := testGateway(t, []string{slow.URL}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postKey(t, gw, fmt.Sprintf("client-%d", i), `{"sql":"SELECT 1"}`)
		}(i)
	}
	for hits.Load() < 2 { // both clients must reach upstream
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if hits.Load() != 2 {
		t.Errorf("cross-client requests collapsed: %d upstream hits", hits.Load())
	}
}

func TestGatewayHealthz(t *testing.T) {
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"status":"ok","replica":"r1"}`))
	}))
	defer ok.Close()
	gw := testGateway(t, []string{ok.URL}, func(c *Config) { c.Clock = time.Now })
	gw.Prober().ProbeAll(context.Background())

	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	var h map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["tier"] != "gateway" {
		t.Errorf("healthz: %v", h)
	}

	gw.StartDraining()
	w2 := httptest.NewRecorder()
	gw.ServeHTTP(w2, req)
	if w2.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d", w2.Code)
	}
	if w2.Header().Get("Retry-After") == "" {
		t.Error("draining healthz missing Retry-After")
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	mk := func() *Gateway {
		return testGateway(t, []string{"http://a:1"}, func(c *Config) {
			c.Seed = 42
			c.BackoffBase = 10 * time.Millisecond
		})
	}
	g1, g2 := mk(), mk()
	for i := 1; i < 8; i++ {
		d1, d2 := g1.backoff(i), g2.backoff(i)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v vs %v under equal seeds", i, d1, d2)
		}
		base := g1.cfg.BackoffBase << (i - 1)
		if base > maxBackoff {
			base = maxBackoff
		}
		if d1 < base || d1 >= base+base/2+time.Nanosecond {
			t.Errorf("attempt %d backoff %v outside [%v, %v)", i, d1, base, base+base/2)
		}
	}
}

func TestMethodAndBodyLimits(t *testing.T) {
	gw := testGateway(t, []string{"http://a:1"}, func(c *Config) { c.MaxBodyBytes = 64 })
	req := httptest.NewRequest(http.MethodGet, "/v1/recommend", nil)
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d", w.Code)
	}
	big := strings.Repeat("x", 200)
	w2 := postKey(t, gw, "c", `{"sql":"`+big+`"}`)
	if w2.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d", w2.Code)
	}
}

func TestNewRejectsEmptyReplicas(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty replica set")
	}
}
