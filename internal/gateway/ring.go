// Package gateway is the horizontal-scale serving tier: a reverse proxy
// that consistent-hash-routes clients across N qrec-serve replicas, with
// health-ladder-aware rerouting (draining / open-breaker / unreachable
// replicas are skipped to the next ring candidate), bounded retries with
// per-attempt timeouts and jittered backoff, singleflight collapse of
// concurrent identical requests, and a checksummed artifact-push fan-out
// for zero-downtime model swaps.
//
// The package is in the qrec-lint deterministic set: it never reads the
// system clock or the global math/rand source. The composition root
// (cmd/qrec-gw) injects time.Now and a seed; backoff jitter draws from
// checkpoint.NewRNG's splitmix64 stream, so a gateway's retry schedule
// replays exactly under a fixed seed and clock.
package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a replica.
type ringPoint struct {
	hash    uint64
	replica int // index into Ring.replicas
}

// Ring is an immutable consistent-hash ring over a fixed replica set.
// Each replica owns vnodes virtual points, smoothing the key space so
// the load skew across replicas stays small; a key's candidate order is
// the clockwise walk from its hash, which moves only the keys owned by a
// failed replica when routing falls through to the next candidate.
type Ring struct {
	replicas []string
	points   []ringPoint
}

// DefaultVNodes is the virtual-node count per replica. 64 keeps the
// max/mean load ratio within a few percent for small replica sets.
const DefaultVNodes = 64

// NewRing builds the ring. The replica list is copied; order does not
// matter (placement depends only on the replica strings and vnodes).
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		replicas: append([]string(nil), replicas...),
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
	}
	for i, rep := range r.replicas {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(rep + "#" + strconv.Itoa(v)), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on replica index so placement is deterministic even in
		// the (astronomically unlikely) event of a vnode hash collision.
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// Replicas returns the replica set (shared slice; treat as immutable).
func (r *Ring) Replicas() []string { return r.replicas }

// Candidates returns every replica ordered by the clockwise ring walk
// from key's hash: the first element is the key's home replica, the rest
// are the failover order. The returned slice is freshly allocated.
func (r *Ring) Candidates(key string) []string {
	out := make([]string, 0, len(r.replicas))
	if len(r.points) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, len(r.replicas))
	for i := 0; i < len(r.points) && len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}

// hash64 is FNV-1a over s, finalized through a splitmix64-style mixer —
// stable across processes and Go versions, so a gateway restart (or a
// second gateway) routes identically. Raw FNV-1a has weak avalanche on
// the short, near-sequential strings this ring hashes ("rep#0", "rep#1",
// client ids): without the finalizer, vnode positions correlate and the
// max/mean key-ownership skew grows with the vnode count instead of
// shrinking.
func hash64(s string) uint64 {
	h := fnv.New64a()
	// fnv's Write cannot fail; the explicit discard keeps the durio
	// checked-write rule (which covers this package) honest.
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 output finalizer (Steele et al.): a fixed
// bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
