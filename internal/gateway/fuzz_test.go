package gateway

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzMembershipDecode hammers the persisted-membership decode path with
// corrupted envelopes: whatever is on disk — truncated writes, flipped
// bits, other files entirely — the gateway must never panic and must
// always boot, falling back to the flag-provided replica set when the
// state is unusable.
func FuzzMembershipDecode(f *testing.F) {
	valid, err := EncodeMembership(Membership{
		Seq:      42,
		SavedAt:  1700000000,
		Replicas: []string{"http://10.0.0.1:8081", "http://10.0.0.2:8081"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	f.Add(valid[:4])            // truncated mid-magic
	f.Add([]byte{})
	f.Add([]byte("QRECCKP1 but not really an envelope"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		flags := []string{"http://fallback:8081"}

		// Direct decode: an error or a validated membership, never a panic
		// and never a half-validated result.
		m, err := DecodeMembership(data)
		if err == nil {
			if len(m.Replicas) == 0 {
				t.Fatal("decode accepted a membership with no replicas")
			}
			for _, rep := range m.Replicas {
				if rep == "" {
					t.Fatal("decode accepted an empty replica URL")
				}
			}
		}

		// Boot resolution over the same bytes on disk: the gateway always
		// comes up with a non-empty replica set — the decoded one when the
		// envelope validated, the flags otherwise.
		path := filepath.Join(t.TempDir(), "membership.qrec")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		reps, fromState, rerr := ResolveBootMembership(path, flags)
		if len(reps) == 0 {
			t.Fatal("boot resolution returned no replicas")
		}
		if err == nil {
			if rerr != nil || fromState == nil || fromState.Seq != m.Seq {
				t.Fatalf("valid envelope not honored: %v %v", fromState, rerr)
			}
		} else {
			if fromState != nil || reps[0] != flags[0] {
				t.Fatalf("corrupt envelope must fall back to flags, got %v (state %v)", reps, fromState)
			}
		}
	})
}
