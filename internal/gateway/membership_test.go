package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

// okReplica is a minimal replica double: healthy healthz plus an echoing
// recommend endpoint that stamps X-Replica-ID so tests can see who served.
func okReplica(t *testing.T, id string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","replica":%q}`, id)
	})
	mux.HandleFunc("/v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Replica-ID", id)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// adminReq performs an admin-surface request with the given bearer token
// ("" sends no Authorization header).
func adminReq(t *testing.T, gw http.Handler, method, path, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	return w
}

func TestAdminDisabledWithoutToken(t *testing.T) {
	gw := testGateway(t, []string{"http://a:1"}, nil)
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/admin/replicas?url=http://b:2"},
		{http.MethodDelete, "/v1/admin/replicas?url=http://a:1"},
		{http.MethodGet, "/v1/admin/ring"},
		{http.MethodPost, "/v1/model/push"},
	} {
		w := adminReq(t, gw, probe.method, probe.path, "whatever", "")
		if w.Code != http.StatusForbidden {
			t.Errorf("%s %s with admin disabled: got %d, want 403", probe.method, probe.path, w.Code)
		}
	}
	if got := gw.Stats().AuthRejected; got != 4 {
		t.Errorf("auth_rejected = %d, want 4", got)
	}
}

func TestAdminAuthRejectsBadToken(t *testing.T) {
	gw := testGateway(t, []string{"http://a:1"}, func(c *Config) { c.AdminToken = "s3cret" })
	cases := []string{"", "wrong", "s3cret-but-longer", "s3cre"}
	for _, tok := range cases {
		w := adminReq(t, gw, http.MethodGet, "/v1/admin/ring", tok, "")
		if w.Code != http.StatusUnauthorized {
			t.Errorf("token %q: got %d, want 401", tok, w.Code)
		}
		if ch := w.Header().Get("WWW-Authenticate"); !strings.Contains(ch, "Bearer") {
			t.Errorf("token %q: WWW-Authenticate = %q, want Bearer challenge", tok, ch)
		}
	}
	if got := gw.Stats().AuthRejected; got != uint64(len(cases)) {
		t.Errorf("auth_rejected = %d, want %d", got, len(cases))
	}
	// The right token passes and sees the fleet view.
	w := adminReq(t, gw, http.MethodGet, "/v1/admin/ring", "s3cret", "")
	if w.Code != http.StatusOK {
		t.Fatalf("authorized ring read: got %d, want 200 (%s)", w.Code, w.Body.String())
	}
	var out struct {
		Membership struct {
			Seq     uint64         `json:"seq"`
			Members []MemberStatus `json:"members"`
		} `json:"membership"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Membership.Members) != 1 || out.Membership.Members[0].State != "active" {
		t.Fatalf("unexpected membership: %+v", out.Membership)
	}
}

func TestAdminAddWarmsUpThenRoutes(t *testing.T) {
	a := okReplica(t, "rep-a")
	b := okReplica(t, "rep-b")
	gw := testGateway(t, []string{a.URL}, func(c *Config) {
		c.AdminToken = "tok"
		c.WarmupProbes = 3
	})
	w := adminReq(t, gw, http.MethodPost, "/v1/admin/replicas", "tok",
		fmt.Sprintf(`{"url":%q}`, b.URL))
	if w.Code != http.StatusOK {
		t.Fatalf("add: got %d: %s", w.Code, w.Body.String())
	}
	reps := gw.Ring().Replicas()
	if len(reps) != 2 {
		t.Fatalf("ring after add: %v, want both replicas", reps)
	}
	// A key homed on the new replica is actually served by it.
	key := keyHomedOn(t, gw.Ring(), b.URL)
	resp := postKey(t, gw, key, `{"sql":"SELECT 1"}`)
	if resp.Code != http.StatusOK || resp.Header().Get("X-Replica-ID") != "rep-b" {
		t.Fatalf("key homed on new replica served by %q status %d, want rep-b/200",
			resp.Header().Get("X-Replica-ID"), resp.Code)
	}
	if gw.Stats().AdminAdds != 1 {
		t.Errorf("admin_adds = %d, want 1", gw.Stats().AdminAdds)
	}
}

func TestAdminAddDeadReplicaRollsBack(t *testing.T) {
	a := okReplica(t, "rep-a")
	// A listener that is already closed: warm-up probes can never succeed.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	gw := testGateway(t, []string{a.URL}, func(c *Config) {
		c.AdminToken = "tok"
		c.WarmupProbes = 2
	})
	w := adminReq(t, gw, http.MethodPost, "/v1/admin/replicas", "tok",
		fmt.Sprintf(`{"url":%q}`, deadURL))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("dead join: got %d, want 504 (%s)", w.Code, w.Body.String())
	}
	if _, members := gw.View(); len(members) != 1 || members[0].URL != a.URL {
		t.Fatalf("membership after failed join: %+v, want only %s", members, a.URL)
	}
	if got := gw.Ring().Replicas(); len(got) != 1 {
		t.Fatalf("ring after failed join: %v", got)
	}
	// The rolled-back member's prober entry is gone too.
	if _, ok := gw.Prober().Snapshot(time.Now())[deadURL]; ok {
		t.Fatal("prober still tracks the rolled-back member")
	}
	if gw.Stats().WarmupFails != 1 {
		t.Errorf("warmup_fails = %d, want 1", gw.Stats().WarmupFails)
	}
}

func TestAdminAddDuplicateConflicts(t *testing.T) {
	a := okReplica(t, "rep-a")
	gw := testGateway(t, []string{a.URL}, func(c *Config) { c.AdminToken = "tok" })
	w := adminReq(t, gw, http.MethodPost, "/v1/admin/replicas", "tok",
		fmt.Sprintf(`{"url":%q}`, a.URL))
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate add: got %d, want 409", w.Code)
	}
}

func TestAdminRemoveDrainsInflight(t *testing.T) {
	a := okReplica(t, "rep-a")
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","replica":"rep-b"}`)
	})
	mux.HandleFunc("/v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Header().Set("X-Replica-ID", "rep-b")
		fmt.Fprint(w, `{"ok":true}`)
	})
	b := httptest.NewServer(mux)
	defer b.Close()

	gw := testGateway(t, []string{a.URL, b.URL}, func(c *Config) {
		c.AdminToken = "tok"
		c.MemberDrainTimeout = 5 * time.Second
		c.Sleep = nil // real sleeps: the drain wait must actually pace its polls
	})
	key := keyHomedOn(t, gw.Ring(), b.URL)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postKey(t, gw, key, `{"sql":"SELECT 1"}`)
		if resp.Code != http.StatusOK {
			t.Errorf("in-flight request finished %d, want 200", resp.Code)
		}
	}()
	// Wait until the request is parked inside replica B.
	for i := 0; i < 500 && gw.inflightFor(b.URL) == 0; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if gw.inflightFor(b.URL) == 0 {
		t.Fatal("request never became in-flight against the victim")
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	w := adminReq(t, gw, http.MethodDelete, "/v1/admin/replicas?url="+b.URL, "tok", "")
	wg.Wait()
	if w.Code != http.StatusOK {
		t.Fatalf("remove: got %d: %s", w.Code, w.Body.String())
	}
	var out struct {
		Drained bool `json:"drained"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Drained {
		t.Fatal("removal reported drained=false though the in-flight request finished")
	}
	if _, members := gw.View(); len(members) != 1 || members[0].URL != a.URL {
		t.Fatalf("membership after remove: %+v", members)
	}
	if _, ok := gw.Prober().Snapshot(time.Now())[b.URL]; ok {
		t.Fatal("prober still tracks the removed member")
	}
	// The victim's old keys now route to the survivor.
	resp := postKey(t, gw, key, `{"sql":"SELECT 1"}`)
	if resp.Header().Get("X-Replica-ID") != "rep-a" {
		t.Fatalf("post-remove request served by %q, want rep-a", resp.Header().Get("X-Replica-ID"))
	}
	if gw.Stats().AdminRemoves != 1 {
		t.Errorf("admin_removes = %d, want 1", gw.Stats().AdminRemoves)
	}
}

func TestRemoveLastReplicaRefused(t *testing.T) {
	gw := testGateway(t, []string{"http://a:1"}, func(c *Config) { c.AdminToken = "tok" })
	w := adminReq(t, gw, http.MethodDelete, "/v1/admin/replicas?url=http://a:1", "tok", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("remove last: got %d, want 409 (%s)", w.Code, w.Body.String())
	}
	if got := gw.Ring().Replicas(); len(got) != 1 {
		t.Fatalf("ring changed on refused removal: %v", got)
	}
}

func TestRemoveUnknownReplica(t *testing.T) {
	gw := testGateway(t, []string{"http://a:1", "http://b:2"}, func(c *Config) { c.AdminToken = "tok" })
	w := adminReq(t, gw, http.MethodDelete, "/v1/admin/replicas?url=http://nope:9", "tok", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("remove unknown: got %d, want 404", w.Code)
	}
}

// TestRingRebalanceBounds is the determinism/minimal-motion property test
// from the issue: adding an (N+1)th replica to an N-replica ring moves
// roughly 1/(N+1) of 10k keys — and only toward the newcomer — while
// removing one moves exactly the departed replica's keys.
func TestRingRebalanceBounds(t *testing.T) {
	const keys = 10000
	reps := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	newcomer := "http://e:5"
	before := NewRing(reps, DefaultVNodes)
	after := NewRing(append(append([]string(nil), reps...), newcomer), DefaultVNodes)

	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("client-%d", i)
		oldHome, newHome := before.Candidates(k)[0], after.Candidates(k)[0]
		if oldHome != newHome {
			moved++
			if newHome != newcomer {
				t.Fatalf("key %s moved %s→%s: rebalance must only move keys to the newcomer",
					k, oldHome, newHome)
			}
		}
	}
	frac := float64(moved) / keys
	ideal := 1.0 / float64(len(reps)+1)
	if frac < ideal/2 || frac > ideal*2 {
		t.Fatalf("add moved %.3f of keys, want ≈%.3f (within 2x)", frac, ideal)
	}

	// Removal: only keys homed on the departed replica move.
	removed := NewRing(reps[:3], DefaultVNodes)
	moved = 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("client-%d", i)
		oldHome := before.Candidates(k)[0]
		if removed.Candidates(k)[0] != oldHome {
			moved++
			if oldHome != reps[3] {
				t.Fatalf("key %s moved though its home %s survived removal", k, oldHome)
			}
		}
	}
	frac = float64(moved) / keys
	ideal = 1.0 / float64(len(reps))
	if frac < ideal/2 || frac > ideal*2 {
		t.Fatalf("remove moved %.3f of keys, want ≈%.3f (within 2x)", frac, ideal)
	}
}

// TestMembershipDeterministicAcrossGateways: two gateways fed the same
// membership sequence route every key identically — the property that
// lets a fleet run multiple gateway instances without coordination.
func TestMembershipDeterministicAcrossGateways(t *testing.T) {
	boot := []string{"http://a:1", "http://b:2", "http://c:3"}
	g1 := testGateway(t, boot, nil)
	g2 := testGateway(t, append([]string(nil), boot...), nil)

	apply := func(g *Gateway) {
		if err := g.addJoining("http://d:4"); err != nil {
			t.Fatal(err)
		}
		if err := g.transition("http://d:4", MemberWarming, MemberJoining); err != nil {
			t.Fatal(err)
		}
		if err := g.transition("http://d:4", MemberActive, MemberWarming); err != nil {
			t.Fatal(err)
		}
		if err := g.startDrain("http://b:2"); err != nil {
			t.Fatal(err)
		}
		if err := g.removeMember("http://b:2"); err != nil {
			t.Fatal(err)
		}
	}
	apply(g1)
	apply(g2)

	s1, m1 := g1.View()
	s2, m2 := g2.View()
	if s1 != s2 || len(m1) != len(m2) {
		t.Fatalf("views diverged: seq %d/%d, %d/%d members", s1, s2, len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("member %d diverged: %+v vs %+v", i, m1[i], m2[i])
		}
	}
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("client-%d", i)
		if g1.Ring().Candidates(k)[0] != g2.Ring().Candidates(k)[0] {
			t.Fatalf("key %s routes to %s on g1 but %s on g2",
				k, g1.Ring().Candidates(k)[0], g2.Ring().Candidates(k)[0])
		}
	}
}

func TestMembershipPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "membership.qrec")
	boot := []string{"http://a:1", "http://b:2"}
	gw := testGateway(t, boot, func(c *Config) {
		c.StatePath = path
		c.Clock = time.Now
	})

	// The boot view is persisted immediately.
	m, err := LoadMembership(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 2 {
		t.Fatalf("boot persist: %+v", m)
	}

	// A membership change rewrites the file with the new active set.
	if err := gw.addJoining("http://c:3"); err != nil {
		t.Fatal(err)
	}
	if err := gw.transition("http://c:3", MemberWarming, MemberJoining); err != nil {
		t.Fatal(err)
	}
	if err := gw.transition("http://c:3", MemberActive, MemberWarming); err != nil {
		t.Fatal(err)
	}
	m, err = LoadMembership(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 3 {
		t.Fatalf("post-join persist: %+v", m)
	}

	// A restart resolves to the persisted view, not the boot flags.
	reps, fromState, err := ResolveBootMembership(path, boot)
	if err != nil || fromState == nil {
		t.Fatalf("resolve: reps=%v fromState=%v err=%v", reps, fromState, err)
	}
	if len(reps) != 3 || fromState.Seq != m.Seq {
		t.Fatalf("resolve returned %v (seq %d), want 3 replicas at seq %d", reps, fromState.Seq, m.Seq)
	}
	// And the restarted gateway's sequence continues past the persisted one.
	g2 := testGateway(t, reps, func(c *Config) { c.InitialSeq = fromState.Seq })
	if seq, _ := g2.View(); seq <= fromState.Seq {
		t.Fatalf("restarted seq %d did not advance past persisted %d", seq, fromState.Seq)
	}
}

func TestResolveBootMembershipFaults(t *testing.T) {
	boot := []string{"http://a:1"}
	dir := t.TempDir()
	path := filepath.Join(dir, "membership.qrec")

	// Empty path: flags, no error.
	if reps, st, err := ResolveBootMembership("", boot); err != nil || st != nil || len(reps) != 1 {
		t.Fatalf("empty path: %v %v %v", reps, st, err)
	}
	// Missing file: flags, no error (first boot).
	if reps, st, err := ResolveBootMembership(path, boot); err != nil || st != nil || len(reps) != 1 {
		t.Fatalf("missing file: %v %v %v", reps, st, err)
	}

	valid, err := EncodeMembership(Membership{Seq: 7, Replicas: []string{"http://x:1", "http://y:2"}})
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func() []byte{
		"truncated": func() []byte { return valid[:len(valid)/2] },
		"bit-flip": func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-3] ^= 0x40
			return b
		},
		"empty":     func() []byte { return nil },
		"bad-magic": func() []byte { return append([]byte("NOTQRECX"), valid[8:]...) },
	}
	for name, gen := range corruptions {
		if err := os.WriteFile(path, gen(), 0o644); err != nil {
			t.Fatal(err)
		}
		reps, st, err := ResolveBootMembership(path, boot)
		if err == nil {
			t.Fatalf("%s: expected a corruption error", name)
		}
		if st != nil || len(reps) != 1 || reps[0] != boot[0] {
			t.Fatalf("%s: corrupt state must fall back to flags, got %v %v", name, reps, st)
		}
	}

	// A valid envelope holding an empty replica set is rejected the same way.
	emptySet := checkpoint.Encode(MembershipVersion, []byte(`{"seq":1,"replicas":[]}`))
	if err := os.WriteFile(path, emptySet, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResolveBootMembership(path, boot); err == nil {
		t.Fatal("empty replica set: expected an error")
	}

	// Stale temps from a crashed save are swept on resolve.
	if err := os.WriteFile(path, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "membership.qrec.tmp-123456")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if reps, st, err := ResolveBootMembership(path, boot); err != nil || st == nil || len(reps) != 2 {
		t.Fatalf("valid file with stale temp: %v %v %v", reps, st, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp not swept: %v", err)
	}
}

// TestTerminal503CarriesLadderRetryAfter: when every candidate is
// unreachable, the synthesized 503's Retry-After reflects the health
// ladder's next-probe time (here: one probe interval for never-probed
// replicas), not just the configured floor.
func TestTerminal503CarriesLadderRetryAfter(t *testing.T) {
	// Port 1 on localhost: connection refused instantly.
	gw := testGateway(t, []string{"http://127.0.0.1:1"}, func(c *Config) {
		c.ProbeInterval = 5 * time.Second
		c.RetryAfter = time.Second
	})
	w := postKey(t, gw, "client-1", `{"sql":"SELECT 1"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "5" {
		t.Fatalf("Retry-After = %q, want \"5\" (the probe interval)", ra)
	}
}

func TestHealthzReportsMembershipAndPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "membership.qrec")
	a := okReplica(t, "rep-a")
	gw := testGateway(t, []string{a.URL}, func(c *Config) {
		c.StatePath = path
		c.Clock = time.Now
	})
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	var out struct {
		Status     string `json:"status"`
		Membership struct {
			Seq     uint64         `json:"seq"`
			Members []MemberStatus `json:"members"`
		} `json:"membership"`
		Persistence PersistStatus `json:"persistence"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" {
		t.Errorf("status = %q, want ok", out.Status)
	}
	if out.Membership.Seq == 0 || len(out.Membership.Members) != 1 {
		t.Fatalf("membership section: %+v", out.Membership)
	}
	if m := out.Membership.Members[0]; m.URL != a.URL || m.State != "active" {
		t.Fatalf("member row: %+v", m)
	}
	if !out.Persistence.Enabled || out.Persistence.Seq == 0 {
		t.Fatalf("persistence section: %+v", out.Persistence)
	}

	// A member stuck mid-lifecycle degrades the gateway's own ladder.
	if err := gw.addJoining("http://z:9"); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	gw.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "degraded" {
		t.Errorf("status with joining member = %q, want degraded", out.Status)
	}
}

func TestNormalizeReplicaURL(t *testing.T) {
	good := map[string]string{
		"http://a:1":            "http://a:1",
		"  http://a:1/  ":       "http://a:1",
		"https://fleet.example": "https://fleet.example",
	}
	for in, want := range good {
		got, err := normalizeReplicaURL(in)
		if err != nil || got != want {
			t.Errorf("normalize(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, in := range []string{"", "   ", "ftp://a:1", "a:1", "http://", "://nope"} {
		if got, err := normalizeReplicaURL(in); err == nil {
			t.Errorf("normalize(%q) = %q, want error", in, got)
		}
	}
}
