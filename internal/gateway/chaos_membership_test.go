package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/servepool"
	"repro/internal/server"
	"repro/internal/testutil"
)

// TestChaosMembershipJoinDrainRestart is the acceptance scenario for the
// dynamic-membership control plane, run at 4x admission saturation:
//
//   - two replicas serve 64 concurrent clients (fleet capacity 16);
//   - unauthenticated admin and push requests get 401 throughout;
//   - a third replica joins through the authed admin API and receives
//     traffic only after its warm-up ladder completed (the replica itself
//     asserts it is an active member on every data request);
//   - one original replica is removed with drain: the DELETE completes
//     with zero non-terminal responses, and no request sent after the
//     removal is ever served by it;
//   - the gateway process is killed and restarted with the ORIGINAL boot
//     flags: it rejoins the persisted two-replica view (survivor + the
//     added replica), not the flags;
//   - every request in the run terminates 200 (full or degraded),
//     429-with-Retry-After, or 503-with-Retry-After.
func TestChaosMembershipJoinDrainRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const token = "chaos-admin-token"

	victim := startReplica(t, "m0", time.Millisecond) // removed mid-run
	keeper := startReplica(t, "m1", time.Millisecond)
	defer victim.kill()
	defer keeper.kill()
	bootFlags := []string{victim.url(), keeper.url()}

	statePath := filepath.Join(t.TempDir(), "membership.qrec")
	newGW := func(reps []string, seq uint64) *Gateway {
		gw, err := New(Config{
			Replicas:           reps,
			MaxAttempts:        3,
			AttemptTimeout:     2 * time.Second,
			BackoffBase:        time.Millisecond,
			ProbeInterval:      20 * time.Millisecond,
			ProbeTimeout:       time.Second,
			AdminToken:         token,
			StatePath:          statePath,
			InitialSeq:         seq,
			WarmupProbes:       50,
			MemberDrainTimeout: 5 * time.Second,
			Clock:              time.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		return gw
	}
	gw := newGW(bootFlags, 0)
	var gwPtr atomic.Pointer[Gateway]
	gwPtr.Store(gw)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go gw.Run(ctx)
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := &http.Server{Handler: gw}
	go func() { _ = gwSrv.Serve(gwLn) }()
	defer func() { _ = gwSrv.Close() }()
	gwURL := "http://" + gwLn.Addr().String()

	// The joining replica wraps its data path with a membership assertion:
	// by the time any /v1/recommend reaches it, the routing gateway must
	// already count it an active (or, later, draining) member — the view
	// publish that grants ring ownership happens-before any routing to it.
	var earlyTraffic atomic.Int64
	joinerApp := server.NewWithConfig(chaosRecommender(t), server.Config{
		Workers:     2,
		MaxQueue:    2,
		MaxInFlight: 8,
		SoftTimeout: 250 * time.Millisecond,
		Timeout:     5 * time.Second,
		Fallback:    chaosFallback(),
		Predictor:   servepool.Predictor(chaosPredictor{delay: time.Millisecond}),
		ReplicaID:   "m2",
		EnablePush:  true,
	})
	defer joinerApp.Close()
	joinerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	joinerURL := "http://" + joinerLn.Addr().String()
	joinerSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/recommend") {
			_, members := gwPtr.Load().View()
			ok := false
			for _, m := range members {
				if m.URL == joinerURL && (m.State == MemberActive || m.State == MemberDraining) {
					ok = true
				}
			}
			if !ok {
				earlyTraffic.Add(1)
			}
		}
		joinerApp.ServeHTTP(w, r)
	})}
	go func() { _ = joinerSrv.Serve(joinerLn) }()
	defer func() { _ = joinerSrv.Close() }()

	// Background auth prober: the admin surface and the push endpoint
	// reject every unauthenticated or wrongly-authenticated request for the
	// whole run, membership churn or not.
	var stopAuth atomic.Bool
	var badAuth atomic.Int64
	var authWg sync.WaitGroup
	authWg.Add(1)
	go func() {
		defer authWg.Done()
		c := &http.Client{Timeout: 5 * time.Second}
		for !stopAuth.Load() {
			for _, probe := range []struct{ method, path, auth string }{
				{http.MethodGet, "/v1/admin/ring", ""},
				{http.MethodPost, "/v1/admin/replicas", "Bearer wrong-token"},
				{http.MethodPost, "/v1/model/push", "Bearer " + token + "x"},
			} {
				req, _ := http.NewRequest(probe.method, gwURL+probe.path, strings.NewReader(`{"url":"http://evil:1"}`))
				if probe.auth != "" {
					req.Header.Set("Authorization", probe.auth)
				}
				resp, err := c.Do(req)
				if err != nil {
					continue // gateway restarting mid-run
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusUnauthorized {
					badAuth.Add(1)
					t.Errorf("%s %s with bad auth: got %d, want 401", probe.method, probe.path, resp.StatusCode)
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	type outcome struct {
		code        int
		body        string
		retryAfter  string
		replica     string
		afterRemove bool
	}
	var removeDone atomic.Bool
	httpc := &http.Client{Timeout: 15 * time.Second}
	fire := func(clientID string, j int) outcome {
		body := fmt.Sprintf(`{"sql":"SELECT a FROM t%d","n":1}`, j)
		after := removeDone.Load()
		req, _ := http.NewRequest(http.MethodPost, gwURL+"/v1/recommend", strings.NewReader(body))
		req.Header.Set("X-Client-ID", clientID)
		resp, err := httpc.Do(req)
		if err != nil {
			return outcome{code: -1, body: err.Error(), afterRemove: after}
		}
		rb, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return outcome{
			code:        resp.StatusCode,
			body:        string(rb),
			retryAfter:  resp.Header.Get("Retry-After"),
			replica:     resp.Header.Get("X-Replica-ID"),
			afterRemove: after,
		}
	}

	// Wave 1: 4x saturation while the membership churn happens.
	const (
		clients = 64
		perGo   = 8
	)
	results := make([][]outcome, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = make([]outcome, perGo)
			for j := 0; j < perGo; j++ {
				results[c][j] = fire(fmt.Sprintf("chaos-client-%d", c), j)
			}
		}(c)
	}

	admin := func(method, path, body string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(method, gwURL+path, strings.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+token)
		req.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		rb, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp, string(rb)
	}

	time.Sleep(100 * time.Millisecond) // mid-saturation
	resp, body := admin(http.MethodPost, "/v1/admin/replicas", fmt.Sprintf(`{"url":%q}`, joinerURL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join under load: got %d: %s", resp.StatusCode, body)
	}
	if got := len(gw.Ring().Replicas()); got != 3 {
		t.Fatalf("ring after join: %d replicas, want 3", got)
	}

	time.Sleep(100 * time.Millisecond) // let the newcomer take traffic
	resp, body = admin(http.MethodDelete, "/v1/admin/replicas?url="+victim.url(), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove under load: got %d: %s", resp.StatusCode, body)
	}
	var rem struct {
		Drained bool `json:"drained"`
	}
	if err := json.Unmarshal([]byte(body), &rem); err != nil || !rem.Drained {
		t.Errorf("removal under load not drained: %s", body)
	}
	removeDone.Store(true)
	wg.Wait()

	// Wave 2: strictly post-removal traffic — none of it may reach the
	// removed replica.
	post := make([]outcome, 32)
	var wg2 sync.WaitGroup
	for c := range post {
		wg2.Add(1)
		go func(c int) {
			defer wg2.Done()
			post[c] = fire(fmt.Sprintf("post-client-%d", c), c)
		}(c)
	}
	wg2.Wait()
	stopAuth.Store(true)
	authWg.Wait()

	audit := func(o outcome, where string) (n200, n429, n503 int) {
		switch o.code {
		case http.StatusOK:
			n200 = 1
			var r struct {
				Templates []string `json:"templates"`
			}
			if err := json.Unmarshal([]byte(o.body), &r); err != nil || len(r.Templates) == 0 {
				t.Errorf("%s: torn 200 body %q (%v)", where, o.body, err)
			}
		case http.StatusTooManyRequests:
			n429 = 1
			if o.retryAfter == "" {
				t.Errorf("%s: 429 without Retry-After", where)
			}
		case http.StatusServiceUnavailable:
			n503 = 1
			if o.retryAfter == "" {
				t.Errorf("%s: 503 without Retry-After: %q", where, o.body)
			}
		default:
			t.Errorf("%s: non-terminal outcome %d (%s)", where, o.code, o.body)
		}
		if o.afterRemove && o.replica == "m0" {
			t.Errorf("%s: request sent after removal was served by the removed replica", where)
		}
		return
	}
	var n200, n429, n503, byJoiner int
	for c, outs := range results {
		for j, o := range outs {
			a, b2, c2 := audit(o, fmt.Sprintf("client %d req %d", c, j))
			n200, n429, n503 = n200+a, n429+b2, n503+c2
			if o.code == http.StatusOK && o.replica == "m2" {
				byJoiner++
			}
		}
	}
	for c, o := range post {
		a, b2, c2 := audit(o, fmt.Sprintf("post-remove req %d", c))
		n200, n429, n503 = n200+a, n429+b2, n503+c2
	}
	t.Logf("outcomes: %d x 200 (%d via joiner), %d x 429, %d x 503 (stats %+v)",
		n200, byJoiner, n429, n503, gw.Stats())
	if n200 == 0 {
		t.Fatal("no request succeeded under membership chaos")
	}
	if got := earlyTraffic.Load(); got != 0 {
		t.Errorf("%d data requests reached the joiner before it was an active member", got)
	}
	if badAuth.Load() != 0 {
		t.Errorf("%d unauthenticated admin/push requests were not rejected", badAuth.Load())
	}
	if byJoiner == 0 {
		t.Error("the joined replica never served a request after warm-up")
	}

	// Kill the gateway and restart it with the ORIGINAL boot flags: the
	// persisted view — survivor + joiner, not the flags — wins.
	_ = gwSrv.Close()
	cancel()
	reps, persisted, rerr := ResolveBootMembership(statePath, bootFlags)
	if rerr != nil || persisted == nil {
		t.Fatalf("restart resolution: reps=%v persisted=%v err=%v", reps, persisted, rerr)
	}
	want := map[string]bool{keeper.url(): true, joinerURL: true}
	if len(reps) != 2 || !want[reps[0]] || !want[reps[1]] {
		t.Fatalf("restarted view %v, want {%s, %s} from persisted state", reps, keeper.url(), joinerURL)
	}
	gw2 := newGW(reps, persisted.Seq)
	gwPtr.Store(gw2)
	if got := gw2.Ring().Replicas(); len(got) != 2 {
		t.Fatalf("restarted ring: %v", got)
	}
	for _, rep := range gw2.Ring().Replicas() {
		if rep == victim.url() {
			t.Fatal("restarted gateway still routes to the removed replica")
		}
	}
	w := postKey(t, gw2, "restart-client", `{"sql":"SELECT a FROM t"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("restarted gateway request: got %d (%s)", w.Code, w.Body.String())
	}
	if seq, _ := gw2.View(); seq <= persisted.Seq {
		t.Fatalf("restarted seq %d did not advance past persisted %d", seq, persisted.Seq)
	}
}
