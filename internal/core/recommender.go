package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/classify"
	"repro/internal/decode"
	"repro/internal/seq2seq"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/tokenizer"
	"repro/internal/train"
	"repro/internal/workload"
)

// TrainConfig selects what to train (Figure 3, steps 1-2).
type TrainConfig struct {
	Arch seq2seq.Arch
	// SeqAware trains on (Q_i, Q_{i+1}) prediction; false trains the
	// seq-less reconstruction ablation on (Q_i, Q_i).
	SeqAware bool
	// FineTune initializes the classifier from the trained seq2seq
	// encoder; false trains the classifier from scratch (the "without
	// pre-trained encoder" comparison).
	FineTune bool
	// FreezeEncoder stops encoder updates during classification
	// fine-tuning (ablation).
	FreezeEncoder bool
	// Model overrides the architecture hyper-parameters when non-nil.
	Model *seq2seq.Config
	// Seq2Seq and Classifier training options.
	SeqOpts train.Options
	ClsOpts train.Options
	// ClsHidden is the classifier MLP hidden width.
	ClsHidden int
	// MaxTrainPairs caps the training pairs used (0 = all); evaluation
	// splits are untouched.
	MaxTrainPairs int
	// UseContext concatenates Q_{i-1} into the encoder input (the paper's
	// Section 2 multi-query extension, two-query variant).
	UseContext bool
	Seed       int64
	// Resume, when non-nil, continues the seq2seq stage from a training
	// checkpoint instead of starting fresh (see internal/checkpoint). The
	// dataset and options must match the checkpointed run.
	Resume *checkpoint.TrainState
}

// ErrInterrupted is returned by Train when the seq2seq stage is stopped
// cooperatively (SeqOpts.Stop) before finishing; the final checkpoint —
// when SeqOpts.Checkpoint is configured — holds the state to resume from.
var ErrInterrupted = errors.New("core: training interrupted")

// DefaultTrainConfig returns the CPU-scale configuration used in the
// experiment harness.
func DefaultTrainConfig(arch seq2seq.Arch) TrainConfig {
	seqOpts := train.DefaultOptions()
	clsOpts := train.DefaultOptions()
	clsOpts.Epochs = 6
	// The training loops are clock-free by design (lint: detrand); the
	// wall clock for TrainTime telemetry is injected here, outside the
	// deterministic core.
	seqOpts.Clock = time.Now
	clsOpts.Clock = time.Now
	return TrainConfig{
		Arch:      arch,
		SeqAware:  true,
		FineTune:  true,
		SeqOpts:   seqOpts,
		ClsOpts:   clsOpts,
		ClsHidden: 128,
		Seed:      1,
	}
}

// Recommender is the trained online recommendation system (Figure 3,
// steps 3-4).
type Recommender struct {
	Vocab      *tokenizer.Vocab
	Model      seq2seq.Model
	Classifier *classify.Classifier
	// MaxGenLen bounds generated sequences during decoding.
	MaxGenLen int

	// Training telemetry (feeds Table 3).
	SeqResult *train.Result
	ClsResult *classify.Result
}

// Train runs the full offline stage on a prepared dataset: step 1 trains
// the seq2seq model on query pairs; step 2 fine-tunes the encoder with a
// classification head for next-template prediction.
func Train(ds *Dataset, cfg TrainConfig) (*Recommender, error) {
	if cfg.MaxTrainPairs > 0 && len(ds.Train) > cfg.MaxTrainPairs {
		capped := *ds
		capped.Train = ds.Train[:cfg.MaxTrainPairs]
		ds = &capped
	}
	mcfg := seq2seq.DefaultConfig(cfg.Arch, ds.Vocab.Size())
	if cfg.Model != nil {
		mcfg = *cfg.Model
		mcfg.Arch = cfg.Arch
		mcfg.Vocab = ds.Vocab.Size()
	}
	model, err := seq2seq.New(mcfg, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Step 1: seq2seq training on (Q_i, Q_{i+1}) — or (Q_i, Q_i) for the
	// seq-less ablation. With UseContext the source concatenates Q_{i-1}.
	mkExamples := SeqExamples
	if cfg.UseContext {
		mkExamples = SeqExamplesContext
	}
	seqTrain := mkExamples(ds.Vocab, ds.Train, cfg.SeqAware)
	seqVal := mkExamples(ds.Vocab, ds.Val, cfg.SeqAware)
	var seqRes *train.Result
	if cfg.Resume != nil {
		seqRes, err = train.Resume(model, seqTrain, seqVal, cfg.SeqOpts, cfg.Resume)
	} else {
		seqRes, err = train.Seq2Seq(model, seqTrain, seqVal, cfg.SeqOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: seq2seq training: %w", err)
	}
	if seqRes.Interrupted {
		return nil, fmt.Errorf("%w during seq2seq stage (epoch %d)", ErrInterrupted, seqRes.Epochs)
	}

	// Step 2: template classification. Fine-tuning reuses the trained
	// encoder; the non-fine-tuned variant gets a fresh model of the same
	// architecture.
	encModel := model
	if !cfg.FineTune {
		encModel, err = seq2seq.New(mcfg, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
	}
	cls := classify.New(encModel, cfg.ClsHidden, ds.Classes, cfg.Seed+2)
	cls.FreezeEncoder = cfg.FreezeEncoder
	mkCls := ClsExamples
	if cfg.UseContext {
		mkCls = ClsExamplesContext
	}
	clsTrain := mkCls(ds.Vocab, cls, ds.Train)
	clsVal := mkCls(ds.Vocab, cls, ds.Val)
	clsRes, err := classify.Fit(cls, clsTrain, clsVal, cfg.ClsOpts)
	if err != nil {
		return nil, fmt.Errorf("core: classifier training: %w", err)
	}

	return &Recommender{
		Vocab:      ds.Vocab,
		Model:      model,
		Classifier: cls,
		MaxGenLen:  cfg.SeqOpts.MaxLen,
		SeqResult:  seqRes,
		ClsResult:  clsRes,
	}, nil
}

// SeqExamples encodes pairs for seq2seq training. The encoder input is the
// BOS/EOS-wrapped current query; the decoder target is the next query
// (seq-aware) or the current query again (seq-less reconstruction).
// Exported so composed experiments (e.g. cross-workload transfer) can
// train stages on different pair sets.
func SeqExamples(v *tokenizer.Vocab, pairs []workload.Pair, seqAware bool) []train.Example {
	out := make([]train.Example, 0, len(pairs))
	for _, p := range pairs {
		tgt := p.Next
		if !seqAware {
			tgt = p.Cur
		}
		out = append(out, train.Example{
			Src: v.Encode(p.Cur.Tokens, true),
			Tgt: v.Encode(tgt.Tokens, false),
		})
	}
	return out
}

// ClsExamples labels each Q_i with the class of template(Q_{i+1}),
// dropping pairs whose template falls outside the class set (rare
// templates, per Section 5.4.1).
func ClsExamples(v *tokenizer.Vocab, c *classify.Classifier, pairs []workload.Pair) []classify.Example {
	var out []classify.Example
	for _, p := range pairs {
		class := c.ClassOf(p.Next.Template)
		if class < 0 {
			continue
		}
		out = append(out, classify.Example{Src: v.Encode(p.Cur.Tokens, true), Class: class})
	}
	return out
}

// encodeSQL tokenizes and encodes a raw SQL statement for model input.
func (r *Recommender) encodeSQL(sql string) ([]int, error) {
	toks, err := tokenizer.Tokenize(sql)
	if err != nil {
		return nil, err
	}
	return r.Vocab.Encode(toks, true), nil
}

// NextTemplates predicts the N most likely templates of the next query
// (step 3).
func (r *Recommender) NextTemplates(sql string, n int) ([]string, error) {
	src, err := r.encodeSQL(sql)
	if err != nil {
		return nil, err
	}
	return r.Classifier.PredictTopN(src, n), nil
}

// NextTemplatesTokens is NextTemplates for pre-tokenized input (used by
// the evaluation harness to avoid re-parsing).
func (r *Recommender) NextTemplatesTokens(tokens []string, n int) []string {
	return r.Classifier.PredictTopN(r.Vocab.Encode(tokens, true), n)
}

// NextFragmentSet predicts the full fragment set of the next query via
// greedy decoding (step 4, fragment-set prediction).
func (r *Recommender) NextFragmentSet(sql string) (*sqlast.FragmentSet, error) {
	src, err := r.encodeSQL(sql)
	if err != nil {
		return nil, err
	}
	return r.FragmentSetFromTokens(src), nil
}

// FragmentSetFromTokens greedy-decodes the next query and extracts its
// fragments: the generated statement is parsed when possible, otherwise
// the vocabulary role map classifies each token.
func (r *Recommender) FragmentSetFromTokens(src []int) *sqlast.FragmentSet {
	res := decode.Greedy(r.Model, src, r.MaxGenLen)
	return r.fragmentsOfIDs(res.IDs)
}

func (r *Recommender) fragmentsOfIDs(ids []int) *sqlast.FragmentSet {
	sql := tokenizer.Detokenize(r.Vocab.Decode(ids))
	// Hot path: one parse per decoded candidate. The fragment set only
	// keeps strings (immutable, independent of node storage), so the AST
	// can go back to the shared arena pool before returning.
	arena := sqlast.SharedArenas.Get()
	if stmt, err := sqlparse.ParseArena(sql, arena); err == nil {
		fs := sqlast.Fragments(stmt)
		sqlast.SharedArenas.Put(arena)
		return fs
	}
	sqlast.SharedArenas.Put(arena)
	fs := sqlast.NewFragmentSet()
	for _, id := range ids {
		for _, f := range TokenFragments(r.Vocab, id) {
			fs.Add(f.Kind, f.Name)
		}
	}
	return fs
}

// PopularTemplates returns up to n template classes in training-frequency
// order. The class list is already ranked by workload frequency (see
// analysis.TemplateClasses), so its prefix is exactly the paper's
// *popular* templates baseline — derivable from the trained artifacts
// alone, which lets a serving process pre-warm a degraded-mode answer
// without shipping the training workload.
func (r *Recommender) PopularTemplates(n int) []string {
	classes := r.Classifier.Classes
	if n > len(classes) {
		n = len(classes)
	}
	out := make([]string, n)
	copy(out, classes[:n])
	return out
}

// PopularFragments returns up to n fragments per kind in vocabulary
// order. Vocabulary ids are assigned by descending training-token
// frequency, so walking ids in order and expanding each token's fragment
// roles yields a frequency-ranked *popular* fragments approximation from
// the trained artifacts alone (dotted columns contribute to both their
// table and column kinds, deduplicated).
func (r *Recommender) PopularFragments(n int) map[sqlast.FragmentKind][]string {
	out := make(map[sqlast.FragmentKind][]string, len(sqlast.FragmentKinds))
	seen := map[sqlast.FragmentKind]map[string]bool{}
	for _, k := range sqlast.FragmentKinds {
		out[k] = []string{}
		seen[k] = map[string]bool{}
	}
	remaining := len(sqlast.FragmentKinds)
	for id := 0; id < r.Vocab.Size() && remaining > 0; id++ {
		for _, f := range TokenFragments(r.Vocab, id) {
			if len(out[f.Kind]) >= n || seen[f.Kind][f.Name] {
				continue
			}
			seen[f.Kind][f.Name] = true
			out[f.Kind] = append(out[f.Kind], f.Name)
			if len(out[f.Kind]) == n {
				remaining--
			}
		}
	}
	return out
}

// Strategy selects the N-fragments search strategy (Section 4.2.2).
type Strategy int

// Search strategies assessed by the paper.
const (
	StrategyBeam Strategy = iota
	StrategyDiverseBeam
	StrategySampling
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyBeam:
		return "beam"
	case StrategyDiverseBeam:
		return "diverse-beam"
	case StrategySampling:
		return "sampling"
	default:
		return "unknown"
	}
}

// NFragmentsOptions parameterizes N-fragments prediction.
type NFragmentsOptions struct {
	Strategy Strategy
	Width    int     // beam width / sample count
	Penalty  float64 // diverse-beam dissimilarity penalty
	MinFrac  float64 // sampling low-score cutoff fraction
	Seed     int64
}

// DefaultNFragmentsOptions mirrors the paper's defaults: width-5 search,
// default dissimilarity, low-score zeroing.
func DefaultNFragmentsOptions() NFragmentsOptions {
	return NFragmentsOptions{Strategy: StrategyBeam, Width: 5, Penalty: 0.5, MinFrac: 0.05, Seed: 11}
}

// NextFragments predicts the top-N fragments of each kind for the next
// query by aggregating fragment probabilities over the search tree
// (Section 4.2.2).
func (r *Recommender) NextFragments(sql string, n int, opts NFragmentsOptions) (map[sqlast.FragmentKind][]string, error) {
	src, err := r.encodeSQL(sql)
	if err != nil {
		return nil, err
	}
	return r.NFragmentsFromTokens(src, n, opts), nil
}

// NFragmentsFromTokens runs the configured search strategy and aggregates.
func (r *Recommender) NFragmentsFromTokens(src []int, n int, opts NFragmentsOptions) map[sqlast.FragmentKind][]string {
	var results []decode.Result
	switch opts.Strategy {
	case StrategyDiverseBeam:
		results = decode.DiverseBeam(r.Model, src, r.MaxGenLen, opts.Width, opts.Penalty)
	case StrategySampling:
		results = decode.Sample(r.Model, src, r.MaxGenLen, opts.Width, opts.MinFrac, opts.Seed)
	default:
		results = decode.Beam(r.Model, src, r.MaxGenLen, opts.Width)
	}
	return AggregateFragments(r.Vocab, results, n)
}

// AggregateFragments implements the paper's search-tree probability
// aggregation: within one path (hypothesis), a fragment's probability is
// the token probability at its first occurrence; across paths,
// probabilities sum. The top-N fragments per kind are returned in
// descending probability order.
func AggregateFragments(v *tokenizer.Vocab, results []decode.Result, n int) map[sqlast.FragmentKind][]string {
	type key struct {
		kind sqlast.FragmentKind
		name string
	}
	scores := map[key]float64{}
	for _, res := range results {
		seen := map[key]bool{}
		for i, id := range res.IDs {
			p := math.Exp(res.StepLogP[i])
			for _, f := range TokenFragments(v, id) {
				k := key{f.Kind, f.Name}
				if seen[k] {
					continue
				}
				seen[k] = true
				scores[k] += p
			}
		}
	}
	out := map[sqlast.FragmentKind][]string{}
	for _, kind := range sqlast.FragmentKinds {
		type scored struct {
			name string
			p    float64
		}
		var list []scored
		for k, p := range scores {
			if k.kind == kind {
				list = append(list, scored{k.name, p})
			}
		}
		sort.Slice(list, func(i, j int) bool {
			//lint:ignore floateq exact tie-break keeps the sort a strict weak order; an epsilon would not
			if list[i].p != list[j].p {
				return list[i].p > list[j].p
			}
			return list[i].name < list[j].name
		})
		if len(list) > n {
			list = list[:n]
		}
		names := make([]string, len(list))
		for i, s := range list {
			names[i] = s.name
		}
		out[kind] = names
	}
	return out
}
