package core

import (
	"testing"
	"time"

	"repro/internal/seq2seq"
	"repro/internal/tokenizer"
	"repro/internal/workload"
)

func TestEncodeContext(t *testing.T) {
	b := tokenizer.NewBuilder()
	b.AddQuery([]string{"SELECT", "ra", "FROM", "PhotoObj"})
	b.AddQuery([]string{"SELECT", "z", "FROM", "SpecObj"})
	v := b.Build(1)

	// No previous query: identical to plain wrapped encoding.
	cur := []string{"SELECT", "ra", "FROM", "PhotoObj"}
	plain := v.Encode(cur, true)
	got := EncodeContext(v, nil, cur)
	if len(got) != len(plain) {
		t.Fatalf("no-prev context shape: %v vs %v", got, plain)
	}
	for i := range got {
		if got[i] != plain[i] {
			t.Fatal("no-prev context differs from plain encoding")
		}
	}

	// With previous query: BOS prev EOS cur EOS.
	prev := []string{"SELECT", "z", "FROM", "SpecObj"}
	ctx := EncodeContext(v, prev, cur)
	if ctx[0] != tokenizer.BOS || ctx[len(ctx)-1] != tokenizer.EOS {
		t.Errorf("context framing: %v", ctx)
	}
	if ctx[len(prev)+1] != tokenizer.EOS {
		t.Errorf("separator EOS missing at %d: %v", len(prev)+1, ctx)
	}
	if len(ctx) != len(prev)+len(cur)+3 {
		t.Errorf("context length: %d", len(ctx))
	}
}

func TestSeqExamplesContext(t *testing.T) {
	mk := func(sql string, min int) *workload.Query {
		q := &workload.Query{SessionID: "s", StartTime: time.Date(2020, 1, 1, 0, min, 0, 0, time.UTC), SQL: sql}
		if err := q.Enrich(); err != nil {
			t.Fatal(err)
		}
		return q
	}
	q1 := mk("SELECT a FROM t", 0)
	q2 := mk("SELECT b FROM t", 1)
	q3 := mk("SELECT c FROM t", 2)
	b := tokenizer.NewBuilder()
	for _, q := range []*workload.Query{q1, q2, q3} {
		b.AddQuery(q.Tokens)
	}
	v := b.Build(1)
	pairs := []workload.Pair{
		{Cur: q1, Next: q2},           // session start: no prev
		{Prev: q1, Cur: q2, Next: q3}, // has context
	}
	exs := SeqExamplesContext(v, pairs, true)
	if len(exs) != 2 {
		t.Fatal("example count")
	}
	if len(exs[0].Src) >= len(exs[1].Src) {
		t.Errorf("context example should be longer: %d vs %d", len(exs[0].Src), len(exs[1].Src))
	}
}

func TestTrainWithContext(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := smallDataset(t)
	cfg := DefaultTrainConfig(seq2seq.Transformer)
	cfg.UseContext = true
	cfg.SeqOpts.Epochs = 1
	cfg.ClsOpts.Epochs = 1
	cfg.MaxTrainPairs = 80
	mcfg := seq2seq.DefaultConfig(seq2seq.Transformer, 0)
	mcfg.DModel = 16
	mcfg.FFHidden = 16
	cfg.Model = &mcfg
	rec, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tmpls, err := rec.NextTemplatesContext(
		"SELECT TOP 10 * FROM PhotoObj",
		"SELECT ra, dec FROM PhotoObj WHERE ra > 180.0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpls) != 3 {
		t.Errorf("templates: %v", tmpls)
	}
	// Session start (no previous query).
	tmpls2, err := rec.NextTemplatesContext("", "SELECT ra FROM PhotoObj", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpls2) != 2 {
		t.Errorf("templates: %v", tmpls2)
	}
	// Bad SQL propagates.
	if _, err := rec.NextTemplatesContext("DROP x", "SELECT a FROM t", 1); err == nil {
		t.Error("expected error for bad previous SQL")
	}
}
