// Package core implements the paper's query recommendation pipeline: the
// offline stage (seq2seq training on query pairs, then classifier
// fine-tuning — Figure 3 steps 1 and 2) and the online stage (next
// template prediction and next fragment prediction — steps 3 and 4).
package core

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/sqlast"
	"repro/internal/tokenizer"
	"repro/internal/workload"
)

// PrepConfig controls dataset preparation.
type PrepConfig struct {
	// TrainFrac/ValFrac give the pair split; the paper uses 80/10/10.
	TrainFrac, ValFrac float64
	// MinTokenCount drops rare tokens from the vocabulary (OOV -> UNK).
	MinTokenCount int
	// MinTemplateCount keeps template classes appearing at least this
	// many times (paper Section 5.4.1 uses 3).
	MinTemplateCount int
	Seed             int64
}

// DefaultPrepConfig matches the paper's setup.
func DefaultPrepConfig() PrepConfig {
	return PrepConfig{TrainFrac: 0.8, ValFrac: 0.1, MinTokenCount: 1, MinTemplateCount: 3, Seed: 13}
}

// Dataset is a prepared workload: enriched queries, split pairs, a frozen
// vocabulary with role tags, and the template class set.
type Dataset struct {
	Workload         *workload.Workload
	Vocab            *tokenizer.Vocab
	Train, Val, Test []workload.Pair
	Classes          []string
}

// Prepare enriches the workload (parsing every query), splits pairs
// 80/10/10, builds the vocabulary with fragment-role votes from the
// training portion only, and extracts the template classes.
func Prepare(wl *workload.Workload, cfg PrepConfig) (*Dataset, error) {
	wl.Enrich()
	pairs := wl.Pairs()
	if len(pairs) < 10 {
		return nil, fmt.Errorf("core: workload too small: %d pairs", len(pairs))
	}
	train, val, test := workload.Split(pairs, cfg.TrainFrac, cfg.ValFrac, cfg.Seed)

	builder := tokenizer.NewBuilder()
	for _, p := range train {
		voteQuery(builder, p.Cur)
		voteQuery(builder, p.Next)
	}
	vocab := builder.Build(cfg.MinTokenCount)

	// Template classes from training-pair targets.
	trainWL := &workload.Workload{Sessions: []*workload.Session{{ID: "train"}}}
	for _, p := range train {
		trainWL.Sessions[0].Queries = append(trainWL.Sessions[0].Queries, p.Next)
	}
	classes := analysis.TemplateClasses(trainWL, cfg.MinTemplateCount)
	if len(classes) == 0 {
		classes = analysis.TemplateClasses(trainWL, 1)
	}

	return &Dataset{Workload: wl, Vocab: vocab, Train: train, Val: val, Test: test, Classes: classes}, nil
}

// voteQuery adds a query's tokens to the vocabulary builder with role
// votes derived from its fragment sets, so generated tokens can later be
// classified as table/column/function/literal without parsing.
func voteQuery(b *tokenizer.Builder, q *workload.Query) {
	fs := q.Fragments
	for _, tok := range q.Tokens {
		b.Add(tok, TokenRole(fs, tok))
	}
}

// TokenRole infers the fragment role a token plays in a query with the
// given fragment sets. Dotted tokens (PhotoObj.ra) are columns when their
// last segment is a known column; whole-token matches take precedence.
func TokenRole(fs *sqlast.FragmentSet, tok string) tokenizer.Role {
	if fs == nil {
		return tokenizer.RoleOther
	}
	up := strings.ToUpper(tok)
	switch {
	case fs.Tables[up]:
		return tokenizer.RoleTable
	case fs.Functions[up]:
		return tokenizer.RoleFunction
	case fs.Columns[up]:
		return tokenizer.RoleColumn
	case fs.Literals[up]:
		return tokenizer.RoleLiteral
	}
	if i := strings.LastIndex(up, "."); i > 0 {
		if fs.Columns[up[i+1:]] {
			return tokenizer.RoleColumn
		}
	}
	return tokenizer.RoleOther
}

// TokenFragments expands one generated token into the (kind, name)
// fragments it denotes: a plain table token is one table fragment; a
// dotted column token contributes both its table prefix and its column
// name; functions and literals map to themselves. Names are upper-cased to
// match FragmentSet storage.
func TokenFragments(v *tokenizer.Vocab, id int) []Fragment {
	tok := v.Token(id)
	up := strings.ToUpper(tok)
	switch v.Role(id) {
	case tokenizer.RoleTable:
		return []Fragment{{Kind: sqlast.FragTable, Name: up}}
	case tokenizer.RoleFunction:
		return []Fragment{{Kind: sqlast.FragFunction, Name: up}}
	case tokenizer.RoleLiteral:
		return []Fragment{{Kind: sqlast.FragLiteral, Name: up}}
	case tokenizer.RoleColumn:
		if i := strings.LastIndex(up, "."); i > 0 {
			return []Fragment{
				{Kind: sqlast.FragTable, Name: up[:i]},
				{Kind: sqlast.FragColumn, Name: up[i+1:]},
			}
		}
		return []Fragment{{Kind: sqlast.FragColumn, Name: up}}
	default:
		return nil
	}
}

// Fragment is a typed fragment name.
type Fragment struct {
	Kind sqlast.FragmentKind
	Name string
}
