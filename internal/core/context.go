package core

import (
	"repro/internal/classify"
	"repro/internal/tokenizer"
	"repro/internal/train"
	"repro/internal/workload"
)

// Session-context extension (paper Section 2): "our solution using
// seq2seq models can be easily extended to work with all the queries
// Q'_1, ..., Q'_i; one can concatenate multiple queries to generate a
// single sequence and provide as input". This file implements the
// two-query variant: the encoder input becomes
//
//	BOS  tokens(Q_{i-1})  EOS  tokens(Q_i)  EOS
//
// falling back to the single-query form at session starts.

// EncodeContext builds the concatenated encoder input for an optional
// previous query plus the current query.
func EncodeContext(v *tokenizer.Vocab, prevTokens, curTokens []string) []int {
	if prevTokens == nil {
		return v.Encode(curTokens, true)
	}
	out := make([]int, 0, len(prevTokens)+len(curTokens)+3)
	out = append(out, tokenizer.BOS)
	for _, t := range prevTokens {
		out = append(out, v.ID(t))
	}
	out = append(out, tokenizer.EOS)
	for _, t := range curTokens {
		out = append(out, v.ID(t))
	}
	out = append(out, tokenizer.EOS)
	return out
}

// SeqExamplesContext is SeqExamples with the two-query concatenated
// source. Targets are unchanged.
func SeqExamplesContext(v *tokenizer.Vocab, pairs []workload.Pair, seqAware bool) []train.Example {
	out := make([]train.Example, 0, len(pairs))
	for _, p := range pairs {
		tgt := p.Next
		if !seqAware {
			tgt = p.Cur
		}
		var prevToks []string
		if p.Prev != nil {
			prevToks = p.Prev.Tokens
		}
		out = append(out, train.Example{
			Src: EncodeContext(v, prevToks, p.Cur.Tokens),
			Tgt: v.Encode(tgt.Tokens, false),
		})
	}
	return out
}

// ClsExamplesContext is ClsExamples with the two-query concatenated
// source.
func ClsExamplesContext(v *tokenizer.Vocab, c *classify.Classifier, pairs []workload.Pair) []classify.Example {
	var out []classify.Example
	for _, p := range pairs {
		class := c.ClassOf(p.Next.Template)
		if class < 0 {
			continue
		}
		var prevToks []string
		if p.Prev != nil {
			prevToks = p.Prev.Tokens
		}
		out = append(out, classify.Example{
			Src:   EncodeContext(v, prevToks, p.Cur.Tokens),
			Class: class,
		})
	}
	return out
}

// NextTemplatesContext predicts templates from a two-query context. Pass
// prevSQL == "" at session start. The recommender must have been trained
// with UseContext for this input shape to be in-distribution.
func (r *Recommender) NextTemplatesContext(prevSQL, curSQL string, n int) ([]string, error) {
	cur, err := tokenizer.Tokenize(curSQL)
	if err != nil {
		return nil, err
	}
	var prev []string
	if prevSQL != "" {
		prev, err = tokenizer.Tokenize(prevSQL)
		if err != nil {
			return nil, err
		}
	}
	return r.Classifier.PredictTopN(EncodeContext(r.Vocab, prev, cur), n), nil
}
