package core

import "math"

// mathLog avoids importing math into every test file helper.
func mathLog(p float64) float64 { return math.Log(p) }
