package core

import (
	"repro/internal/decode"
	"repro/internal/sqlast"
)

// NextTemplatesTokensBatch answers NextTemplatesTokens-style template
// prediction for a micro-batch of already-encoded sources: one batched
// encoder forward plus one stacked head pass. out[i] is bit-identical to
// Classifier.PredictTopN(srcs[i], ns[i]).
func (r *Recommender) NextTemplatesTokensBatch(srcs [][]int, ns []int) [][]string {
	return r.Classifier.PredictTopNBatch(srcs, ns)
}

// NFragmentsFromTokensBatch runs N-fragments prediction for a micro-batch
// in one batched decode loop. Beam and diverse-beam items share the
// batch; sampling items fall back to the sequential path (batching would
// reorder the seeded RNG draws, breaking the strategy's determinism
// contract). out[i] is bit-identical to
// NFragmentsFromTokens(srcs[i], ns[i], opts[i]).
func (r *Recommender) NFragmentsFromTokensBatch(srcs [][]int, ns []int, opts []NFragmentsOptions) []map[sqlast.FragmentKind][]string {
	out := make([]map[sqlast.FragmentKind][]string, len(srcs))
	var (
		idx       []int
		bsrcs     [][]int
		widths    []int
		penalties []float64
	)
	for i, o := range opts {
		if o.Strategy == StrategySampling {
			out[i] = r.NFragmentsFromTokens(srcs[i], ns[i], o)
			continue
		}
		idx = append(idx, i)
		bsrcs = append(bsrcs, srcs[i])
		widths = append(widths, o.Width)
		if o.Strategy == StrategyDiverseBeam {
			penalties = append(penalties, o.Penalty)
		} else {
			penalties = append(penalties, 0)
		}
	}
	if len(idx) > 0 {
		results := decode.SearchBatch(r.Model, bsrcs, r.MaxGenLen, widths, penalties)
		for k, i := range idx {
			out[i] = AggregateFragments(r.Vocab, results[k], ns[i])
		}
	}
	return out
}
