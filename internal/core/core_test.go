package core

import (
	"testing"

	"repro/internal/decode"
	"repro/internal/seq2seq"
	"repro/internal/sqlast"
	"repro/internal/synth"
	"repro/internal/tokenizer"
)

// smallDataset prepares a reduced SDSS-sim dataset shared across tests.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	prof := synth.SDSSProfile()
	prof.Sessions = 60
	wl := synth.Generate(prof, 5)
	ds, err := Prepare(wl, DefaultPrepConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPrepareSplitsAndVocab(t *testing.T) {
	ds := smallDataset(t)
	total := len(ds.Train) + len(ds.Val) + len(ds.Test)
	if total == 0 {
		t.Fatal("no pairs")
	}
	trainFrac := float64(len(ds.Train)) / float64(total)
	if trainFrac < 0.75 || trainFrac > 0.85 {
		t.Errorf("train fraction %.2f", trainFrac)
	}
	if ds.Vocab.Size() < 50 {
		t.Errorf("vocab too small: %d", ds.Vocab.Size())
	}
	if len(ds.Classes) == 0 {
		t.Error("no template classes")
	}
	// Vocabulary must know roles for schema tokens.
	if !ds.Vocab.Has("PhotoObj") {
		t.Skip("PhotoObj not in this sample")
	}
	if ds.Vocab.Role(ds.Vocab.ID("PhotoObj")) != tokenizer.RoleTable {
		t.Errorf("PhotoObj role: %v", ds.Vocab.Role(ds.Vocab.ID("PhotoObj")))
	}
}

func TestPrepareRejectsTinyWorkload(t *testing.T) {
	prof := synth.SDSSProfile()
	prof.Sessions = 1
	prof.MaxLen = 3
	wl := synth.Generate(prof, 1)
	if _, err := Prepare(wl, DefaultPrepConfig()); err == nil {
		t.Error("expected error for tiny workload")
	}
}

func TestTokenRole(t *testing.T) {
	fs := sqlast.NewFragmentSet()
	fs.Add(sqlast.FragTable, "PhotoObj")
	fs.Add(sqlast.FragColumn, "ra")
	fs.Add(sqlast.FragFunction, "COUNT")
	fs.Add(sqlast.FragLiteral, "'GALAXY'")
	cases := map[string]tokenizer.Role{
		"PhotoObj":    tokenizer.RoleTable,
		"ra":          tokenizer.RoleColumn,
		"COUNT":       tokenizer.RoleFunction,
		"'GALAXY'":    tokenizer.RoleLiteral,
		"PhotoObj.ra": tokenizer.RoleColumn, // dotted resolves by suffix
		"SELECT":      tokenizer.RoleOther,
	}
	for tok, want := range cases {
		if got := TokenRole(fs, tok); got != want {
			t.Errorf("role(%q) = %v, want %v", tok, got, want)
		}
	}
	if TokenRole(nil, "x") != tokenizer.RoleOther {
		t.Error("nil fragment set")
	}
}

func TestTokenFragmentsDottedColumn(t *testing.T) {
	b := tokenizer.NewBuilder()
	b.Add("PhotoObj.ra", tokenizer.RoleColumn)
	b.Add("SpecObj", tokenizer.RoleTable)
	v := b.Build(1)
	fr := TokenFragments(v, v.ID("PhotoObj.ra"))
	if len(fr) != 2 {
		t.Fatalf("dotted column fragments: %v", fr)
	}
	if fr[0].Kind != sqlast.FragTable || fr[0].Name != "PHOTOOBJ" {
		t.Errorf("table part: %+v", fr[0])
	}
	if fr[1].Kind != sqlast.FragColumn || fr[1].Name != "RA" {
		t.Errorf("column part: %+v", fr[1])
	}
	if fr2 := TokenFragments(v, v.ID("SpecObj")); len(fr2) != 1 || fr2[0].Kind != sqlast.FragTable {
		t.Errorf("table token: %v", fr2)
	}
	if fr3 := TokenFragments(v, tokenizer.EOS); fr3 != nil {
		t.Errorf("special token fragments: %v", fr3)
	}
}

func TestAggregateFragmentsSumsAcrossPaths(t *testing.T) {
	b := tokenizer.NewBuilder()
	b.Add("PhotoObj", tokenizer.RoleTable)
	b.Add("SpecObj", tokenizer.RoleTable)
	b.Add("ra", tokenizer.RoleColumn)
	v := b.Build(1)
	po, so, ra := v.ID("PhotoObj"), v.ID("SpecObj"), v.ID("ra")
	// Path 1: PhotoObj (p=0.5) ra (p=0.5) PhotoObj (p=0.9, dup ignored)
	// Path 2: SpecObj (p=0.4)  PhotoObj (p=0.2)
	results := []decode.Result{
		{IDs: []int{po, ra, po}, StepLogP: []float64{lg(0.5), lg(0.5), lg(0.9)}},
		{IDs: []int{so, po}, StepLogP: []float64{lg(0.4), lg(0.2)}},
	}
	top := AggregateFragments(v, results, 5)
	tables := top[sqlast.FragTable]
	// PhotoObj: 0.5 + 0.2 = 0.7 > SpecObj: 0.4.
	if len(tables) != 2 || tables[0] != "PHOTOOBJ" || tables[1] != "SPECOBJ" {
		t.Errorf("tables: %v", tables)
	}
	if cols := top[sqlast.FragColumn]; len(cols) != 1 || cols[0] != "RA" {
		t.Errorf("columns: %v", cols)
	}
	// Truncation.
	if got := AggregateFragments(v, results, 1); len(got[sqlast.FragTable]) != 1 {
		t.Errorf("truncate: %v", got[sqlast.FragTable])
	}
}

func lg(p float64) float64 {
	// natural log helper for test probabilities
	return mathLog(p)
}

// TestEndToEndPipeline trains a tiny recommender on SDSS-sim and checks
// the full online surface: template prediction, fragment-set prediction
// and N-fragments prediction under all three strategies.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := smallDataset(t)
	cfg := DefaultTrainConfig(seq2seq.Transformer)
	cfg.SeqOpts.Epochs = 2
	cfg.ClsOpts.Epochs = 2
	mcfg := seq2seq.DefaultConfig(seq2seq.Transformer, 0)
	mcfg.DModel = 16
	mcfg.FFHidden = 32
	cfg.Model = &mcfg
	rec, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SeqResult == nil || rec.ClsResult == nil {
		t.Fatal("missing training telemetry")
	}

	sql := "SELECT ra, dec FROM PhotoObj WHERE ra > 180.0"
	tmpls, err := rec.NextTemplates(sql, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpls) != 3 {
		t.Errorf("templates: %v", tmpls)
	}
	fs, err := rec.NextFragmentSet(sql)
	if err != nil {
		t.Fatal(err)
	}
	if fs == nil {
		t.Fatal("nil fragment set")
	}
	for _, strat := range []Strategy{StrategyBeam, StrategyDiverseBeam, StrategySampling} {
		opts := DefaultNFragmentsOptions()
		opts.Strategy = strat
		opts.Width = 3
		frags, err := rec.NextFragments(sql, 3, opts)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for kind, names := range frags {
			if len(names) > 3 {
				t.Errorf("%v/%v: too many fragments %v", strat, kind, names)
			}
		}
	}
	// Unparseable input propagates an error.
	if _, err := rec.NextTemplates("DROP TABLE x", 3); err == nil {
		t.Error("expected error for unparseable input")
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyBeam.String() != "beam" || StrategyDiverseBeam.String() != "diverse-beam" ||
		StrategySampling.String() != "sampling" || Strategy(99).String() != "unknown" {
		t.Error("strategy names")
	}
}
