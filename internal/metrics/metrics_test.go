package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func set(items ...string) map[string]bool {
	m := map[string]bool{}
	for _, i := range items {
		m[i] = true
	}
	return m
}

func TestSetPRBasic(t *testing.T) {
	p, r := SetPR(set("a", "b", "c"), set("b", "c", "d", "e"))
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-0.5) > 1e-12 {
		t.Errorf("p=%f r=%f", p, r)
	}
}

func TestSetPREdgeCases(t *testing.T) {
	if p, r := SetPR(nil, nil); p != 1 || r != 1 {
		t.Errorf("empty/empty: %f %f", p, r)
	}
	if p, r := SetPR(nil, set("a")); p != 0 || r != 0 {
		t.Errorf("empty pred: %f %f", p, r)
	}
	if p, r := SetPR(set("a"), nil); p != 0 || r != 1 {
		t.Errorf("empty truth: %f %f", p, r)
	}
	if p, r := SetPR(set("a"), set("a")); p != 1 || r != 1 {
		t.Errorf("perfect: %f %f", p, r)
	}
}

// Property: precision and recall always lie in [0, 1], and swapping the
// arguments swaps precision and recall (for non-empty sets).
func TestSetPRProperties(t *testing.T) {
	f := func(aBits, bBits uint8) bool {
		universe := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"}
		a, b := map[string]bool{}, map[string]bool{}
		for i, u := range universe {
			if aBits&(1<<i) != 0 {
				a[u] = true
			}
			if bBits&(1<<i) != 0 {
				b[u] = true
			}
		}
		p, r := SetPR(a, b)
		if p < 0 || p > 1 || r < 0 || r > 1 {
			return false
		}
		if len(a) > 0 && len(b) > 0 {
			p2, r2 := SetPR(b, a)
			return math.Abs(p-r2) < 1e-12 && math.Abs(r-p2) < 1e-12
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Error("f1(0,0)")
	}
	if math.Abs(F1(1, 1)-1) > 1e-12 {
		t.Error("f1(1,1)")
	}
	if math.Abs(F1(0.5, 1)-2.0/3) > 1e-12 {
		t.Errorf("f1(0.5,1)=%f", F1(0.5, 1))
	}
}

func TestPRAccumulator(t *testing.T) {
	var a PRAccumulator
	a.Add(set("x"), set("x"))      // p=1 r=1
	a.Add(set("x", "y"), set("x")) // p=0.5 r=1
	if a.Count() != 2 {
		t.Error("count")
	}
	if math.Abs(a.Precision()-0.75) > 1e-12 || math.Abs(a.Recall()-1) > 1e-12 {
		t.Errorf("p=%f r=%f", a.Precision(), a.Recall())
	}
	want := F1(0.75, 1)
	if math.Abs(a.F1()-want) > 1e-12 {
		t.Errorf("f1=%f", a.F1())
	}
	var empty PRAccumulator
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestRankAccumulator(t *testing.T) {
	var a RankAccumulator
	a.Add([]string{"t1", "t2", "t3"}, "t1") // rank 1
	a.Add([]string{"t1", "t2", "t3"}, "t3") // rank 3
	a.Add([]string{"t1", "t2", "t3"}, "t9") // miss
	if a.Count() != 3 {
		t.Error("count")
	}
	if math.Abs(a.Accuracy()-2.0/3) > 1e-12 {
		t.Errorf("acc=%f", a.Accuracy())
	}
	wantMRR := (1.0 + 1.0/3) / 3
	if math.Abs(a.MRR()-wantMRR) > 1e-12 {
		t.Errorf("mrr=%f want %f", a.MRR(), wantMRR)
	}
	wantNDCG := (1.0 + 1.0/math.Log2(4)) / 3
	if math.Abs(a.NDCG()-wantNDCG) > 1e-12 {
		t.Errorf("ndcg=%f want %f", a.NDCG(), wantNDCG)
	}
}

// Property: MRR <= NDCG <= accuracy (1/rank <= 1/log2(rank+1) <= 1 for
// rank >= 1).
func TestRankMetricOrdering(t *testing.T) {
	f := func(positions []uint8) bool {
		var a RankAccumulator
		ranked := []string{"a", "b", "c", "d", "e"}
		for _, p := range positions {
			truth := "miss"
			if int(p)%6 < 5 {
				truth = ranked[int(p)%6]
			}
			a.Add(ranked, truth)
		}
		if a.Count() == 0 {
			return true
		}
		return a.MRR() <= a.NDCG()+1e-12 && a.NDCG() <= a.Accuracy()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRankAccumulatorEmpty(t *testing.T) {
	var a RankAccumulator
	if a.Accuracy() != 0 || a.MRR() != 0 || a.NDCG() != 0 {
		t.Error("empty should be zeros")
	}
}
