// Package metrics implements the evaluation measures of paper Table 4:
// set precision/recall/F1 for fragment prediction, and accuracy@N, mean
// reciprocal rank (MRR) and normalized discounted cumulative gain (NDCG)
// for N-templates prediction.
package metrics

import "math"

// SetPR computes precision and recall of a predicted set against the
// ground-truth set. Empty prediction with empty truth counts as perfect
// (both 1); empty prediction against non-empty truth is zero recall.
func SetPR(pred, truth map[string]bool) (precision, recall float64) {
	inter := 0
	for p := range pred {
		if truth[p] {
			inter++
		}
	}
	switch {
	case len(pred) == 0 && len(truth) == 0:
		return 1, 1
	case len(pred) == 0:
		return 0, 0
	case len(truth) == 0:
		return 0, 1
	}
	return float64(inter) / float64(len(pred)), float64(inter) / float64(len(truth))
}

// F1 combines precision and recall.
func F1(precision, recall float64) float64 {
	//lint:ignore floateq both terms are non-negative, so exact zero is the only 0/0 case to guard
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// PRAccumulator averages precision/recall over test pairs (the
// sum-over-|R| form of Table 4).
type PRAccumulator struct {
	psum, rsum float64
	n          int
}

// Add records one test pair's prediction.
func (a *PRAccumulator) Add(pred, truth map[string]bool) {
	p, r := SetPR(pred, truth)
	a.psum += p
	a.rsum += r
	a.n++
}

// Count returns the number of accumulated pairs.
func (a *PRAccumulator) Count() int { return a.n }

// Precision returns the mean precision.
func (a *PRAccumulator) Precision() float64 {
	if a.n == 0 {
		return 0
	}
	return a.psum / float64(a.n)
}

// Recall returns the mean recall.
func (a *PRAccumulator) Recall() float64 {
	if a.n == 0 {
		return 0
	}
	return a.rsum / float64(a.n)
}

// F1 returns the F-measure of the mean precision and recall (the paper
// reports test F-measure per fragment type).
func (a *PRAccumulator) F1() float64 { return F1(a.Precision(), a.Recall()) }

// RankAccumulator scores ranked template predictions: accuracy@N (the
// indicator that the true template appears in the top-N list), MRR
// (reciprocal rank, 0 when absent) and NDCG (single-relevant-item DCG,
// 1/log2(rank+1)).
type RankAccumulator struct {
	hits, rr, ndcg float64
	n              int
}

// Add records one prediction: ranked is the top-N template list, truth the
// template of the actual next query.
func (a *RankAccumulator) Add(ranked []string, truth string) {
	a.n++
	for i, t := range ranked {
		if t == truth {
			a.hits++
			rank := float64(i + 1)
			a.rr += 1 / rank
			a.ndcg += 1 / math.Log2(rank+1)
			return
		}
	}
}

// Count returns the number of accumulated predictions.
func (a *RankAccumulator) Count() int { return a.n }

// Accuracy returns accuracy@N.
func (a *RankAccumulator) Accuracy() float64 {
	if a.n == 0 {
		return 0
	}
	return a.hits / float64(a.n)
}

// MRR returns the mean reciprocal rank.
func (a *RankAccumulator) MRR() float64 {
	if a.n == 0 {
		return 0
	}
	return a.rr / float64(a.n)
}

// NDCG returns the mean normalized DCG (with one relevant item the ideal
// DCG is 1, so no further normalization is needed).
func (a *RankAccumulator) NDCG() float64 {
	if a.n == 0 {
		return 0
	}
	return a.ndcg / float64(a.n)
}
