// Package nn provides the neural-network layers composing the paper's two
// seq2seq architectures (Transformer and ConvS2S) and the classification
// head: linear projections, embeddings, sinusoidal positional encodings,
// multi-head attention, position-wise feed-forward blocks, layer
// normalization and convolutional GLU blocks.
//
// Every layer registers its trainable tensors in a Params list with
// hierarchical names, which drives both the optimizer and model
// serialization.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// Param is a named trainable value.
type Param struct {
	Name string
	V    *autograd.Value
}

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []Param
}

// ByName indexes parameters by their hierarchical name, erroring on
// duplicates. Name uniqueness is what makes serialized state (model
// files, training checkpoints) unambiguous, so every exporter goes
// through this check.
func ByName(params []Param) (map[string]*autograd.Value, error) {
	out := make(map[string]*autograd.Value, len(params))
	for _, p := range params {
		if _, dup := out[p.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		out[p.Name] = p.V
	}
	return out, nil
}

// prefix namespaces parameter names of a submodule.
func prefix(p string, params []Param) []Param {
	out := make([]Param, len(params))
	for i, pr := range params {
		out[i] = Param{Name: p + "." + pr.Name, V: pr.V}
	}
	return out
}

// Linear is a fully-connected layer y = xW + b.
type Linear struct {
	W, B *autograd.Value
}

// NewLinear allocates a Xavier-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	w := tensor.New(in, out)
	w.RandInit(rng)
	return &Linear{W: autograd.NewParam(w), B: autograd.NewParam(tensor.New(1, out))}
}

// Forward applies the affine map to x (n×in).
func (l *Linear) Forward(x *autograd.Value) *autograd.Value {
	return autograd.AddRow(autograd.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []Param {
	return []Param{{Name: "w", V: l.W}, {Name: "b", V: l.B}}
}

// Embedding maps token ids to learned d-dimensional vectors.
type Embedding struct {
	W *autograd.Value
	D int
}

// NewEmbedding allocates a vocab×d embedding table.
func NewEmbedding(vocab, d int, rng *rand.Rand) *Embedding {
	w := tensor.New(vocab, d)
	w.RandInit(rng)
	return &Embedding{W: autograd.NewParam(w), D: d}
}

// Forward gathers embeddings for ids, scaled by sqrt(d) as in the
// transformer paper.
func (e *Embedding) Forward(ids []int) *autograd.Value {
	return autograd.Scale(autograd.Embedding(e.W, ids), math.Sqrt(float64(e.D)))
}

// Params implements Module.
func (e *Embedding) Params() []Param { return []Param{{Name: "w", V: e.W}} }

// PositionalEncoding is the fixed sinusoidal position table.
type PositionalEncoding struct {
	table *tensor.Tensor
}

// NewPositionalEncoding precomputes maxLen positions of dimension d.
func NewPositionalEncoding(maxLen, d int) *PositionalEncoding {
	t := tensor.New(maxLen, d)
	for pos := 0; pos < maxLen; pos++ {
		for i := 0; i < d; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(d))
			if i%2 == 0 {
				t.Set(pos, i, math.Sin(angle))
			} else {
				t.Set(pos, i, math.Cos(angle))
			}
		}
	}
	return &PositionalEncoding{table: t}
}

// Table exposes the precomputed position table for inference paths that
// fuse the position add into an embedding gather (seq2seq's batched
// forward). The table is a constant: callers must not write to it.
func (p *PositionalEncoding) Table() *tensor.Tensor { return p.table }

// Add sums position rows [offset, offset+n) onto x (n×d).
func (p *PositionalEncoding) Add(x *autograd.Value, offset int) *autograd.Value {
	n := x.T.Rows
	if offset+n > p.table.Rows {
		panic(fmt.Sprintf("nn: sequence length %d exceeds positional table %d", offset+n, p.table.Rows))
	}
	return autograd.AddTableRows(x, p.table, offset)
}

// LayerNorm is a learned row normalization.
type LayerNorm struct {
	Gain, Bias *autograd.Value
	eps        float64
}

// NewLayerNorm allocates gain=1, bias=0 of width d.
func NewLayerNorm(d int) *LayerNorm {
	g := tensor.New(1, d)
	g.Fill(1)
	return &LayerNorm{Gain: autograd.NewParam(g), Bias: autograd.NewParam(tensor.New(1, d)), eps: 1e-5}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(x *autograd.Value) *autograd.Value {
	return autograd.LayerNorm(x, l.Gain, l.Bias, l.eps)
}

// Eps exposes the numerical-stability epsilon so inference mirrors of the
// forward pass (seq2seq's batched path) normalize with the exact same
// constant.
func (l *LayerNorm) Eps() float64 { return l.eps }

// Params implements Module.
func (l *LayerNorm) Params() []Param {
	return []Param{{Name: "gain", V: l.Gain}, {Name: "bias", V: l.Bias}}
}

// MultiHeadAttention implements scaled dot-product attention with h heads
// over d model dimensions (d divisible by h).
type MultiHeadAttention struct {
	Heads          int
	Dk             int
	Wq, Wk, Wv, Wo *Linear
}

// NewMultiHeadAttention allocates the four projections.
func NewMultiHeadAttention(d, heads int, rng *rand.Rand) *MultiHeadAttention {
	if d%heads != 0 {
		panic(fmt.Sprintf("nn: model dim %d not divisible by heads %d", d, heads))
	}
	return &MultiHeadAttention{
		Heads: heads,
		Dk:    d / heads,
		Wq:    NewLinear(d, d, rng),
		Wk:    NewLinear(d, d, rng),
		Wv:    NewLinear(d, d, rng),
		Wo:    NewLinear(d, d, rng),
	}
}

// Forward attends queries q (n×d) over keys/values kv (m×d). mask, when
// non-nil, is an n×m additive bias (use -1e9 for disallowed positions —
// e.g. the causal mask in the decoder).
func (a *MultiHeadAttention) Forward(q, kv *autograd.Value, mask *tensor.Tensor) *autograd.Value {
	Q := a.Wq.Forward(q)
	K := a.Wk.Forward(kv)
	V := a.Wv.Forward(kv)
	scale := 1 / math.Sqrt(float64(a.Dk))
	heads := make([]*autograd.Value, a.Heads)
	for h := 0; h < a.Heads; h++ {
		lo, hi := h*a.Dk, (h+1)*a.Dk
		qh := autograd.SliceCols(Q, lo, hi)
		kh := autograd.SliceCols(K, lo, hi)
		vh := autograd.SliceCols(V, lo, hi)
		scores := autograd.Scale(autograd.MatMul(qh, TransposeValue(kh)), scale)
		if mask != nil {
			scores = autograd.AddConst(scores, mask)
		}
		attn := autograd.SoftmaxRows(scores)
		heads[h] = autograd.MatMul(attn, vh)
	}
	return a.Wo.Forward(autograd.ConcatCols(heads...))
}

// Params implements Module.
func (a *MultiHeadAttention) Params() []Param {
	var out []Param
	out = append(out, prefix("wq", a.Wq.Params())...)
	out = append(out, prefix("wk", a.Wk.Params())...)
	out = append(out, prefix("wv", a.Wv.Params())...)
	out = append(out, prefix("wo", a.Wo.Params())...)
	return out
}

// TransposeValue transposes a value with gradient support. Used for the
// QKᵀ attention scores.
func TransposeValue(a *autograd.Value) *autograd.Value {
	return autograd.TransposeV(a)
}

// FeedForward is the position-wise two-layer MLP of the transformer block.
type FeedForward struct {
	L1, L2 *Linear
}

// NewFeedForward allocates d→hidden→d with GELU in between.
func NewFeedForward(d, hidden int, rng *rand.Rand) *FeedForward {
	return &FeedForward{L1: NewLinear(d, hidden, rng), L2: NewLinear(hidden, d, rng)}
}

// Forward applies the MLP.
func (f *FeedForward) Forward(x *autograd.Value) *autograd.Value {
	return f.L2.Forward(autograd.GELU(f.L1.Forward(x)))
}

// Params implements Module.
func (f *FeedForward) Params() []Param {
	var out []Param
	out = append(out, prefix("l1", f.L1.Params())...)
	out = append(out, prefix("l2", f.L2.Params())...)
	return out
}

// ConvGLU is one convolutional block of ConvS2S: a width-k causal or
// centered 1-D convolution producing 2d channels, gated by GLU, with a
// residual connection.
type ConvGLU struct {
	K      int  // kernel width
	Causal bool // decoder blocks look only left
	Proj   *Linear
	D      int

	zeroRow *autograd.Value // shared 1×d zero-pad row (constant, read-only)
}

// NewConvGLU allocates a conv block for model width d and kernel width k.
func NewConvGLU(d, k int, causal bool, rng *rand.Rand) *ConvGLU {
	return &ConvGLU{
		K: k, Causal: causal, Proj: NewLinear(k*d, 2*d, rng), D: d,
		zeroRow: autograd.NewConst(tensor.New(1, d)),
	}
}

// Forward convolves x (n×d) to (n×d) with GLU gating and residual. The
// convolution is realized as im2col (GatherRows into n×(k·d)) followed by
// a linear map, with zero padding outside the sequence.
func (c *ConvGLU) Forward(x *autograd.Value) *autograd.Value {
	n, d := x.T.Rows, x.T.Cols
	// Pad with a zero row appended at index n (gathered for out-of-range
	// positions).
	padded := autograd.ConcatRows(x, c.zeroRow)
	idx := make([]int, 0, n*c.K)
	for i := 0; i < n; i++ {
		for o := 0; o < c.K; o++ {
			var j int
			if c.Causal {
				j = i - (c.K - 1) + o
			} else {
				j = i - c.K/2 + o
			}
			if j < 0 || j >= n {
				j = n // zero pad row
			}
			idx = append(idx, j)
		}
	}
	windows := autograd.GatherRows(padded, idx) // (n*k) × d
	flat := autograd.Reshape(windows, n, c.K*d) // n × (k·d)
	gated := autograd.GLU(c.Proj.Forward(flat)) // n × d
	return autograd.Scale(autograd.Add(gated, x), math.Sqrt(0.5))
}

// Params implements Module.
func (c *ConvGLU) Params() []Param { return prefix("proj", c.Proj.Params()) }

// CausalMask builds the n×n additive mask that blocks attention to future
// positions.
func CausalMask(n int) *tensor.Tensor {
	m := tensor.New(n, n)
	FillCausalMask(m)
	return m
}

// FillCausalMask writes the causal pattern into an existing (zeroed) n×n
// tensor, so decode hot loops can build the mask in a pooled buffer: masks
// are consumed eagerly by attention (autograd.AddConst), making it safe to
// return the buffer to the pool as soon as the layer graph is built.
func FillCausalMask(m *tensor.Tensor) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := i + 1; j < m.Rows; j++ {
			row[j] = -1e9
		}
	}
}
