package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

func TestLinearShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(3, 5, rng)
	x := autograd.NewConst(tensor.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	y := l.Forward(x)
	if y.T.Rows != 2 || y.T.Cols != 5 {
		t.Fatalf("shape: %dx%d", y.T.Rows, y.T.Cols)
	}
	autograd.Backward(autograd.Mean(y))
	if l.W.Grad.Norm() == 0 || l.B.Grad.Norm() == 0 {
		t.Error("no gradient flowed to linear params")
	}
	if len(l.Params()) != 2 {
		t.Error("params")
	}
}

func TestEmbeddingScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(10, 4, rng)
	out := e.Forward([]int{3, 3, 7})
	if out.T.Rows != 3 || out.T.Cols != 4 {
		t.Fatalf("shape: %dx%d", out.T.Rows, out.T.Cols)
	}
	want := e.W.T.At(3, 0) * 2 // sqrt(4)
	if math.Abs(out.T.At(0, 0)-want) > 1e-12 {
		t.Errorf("sqrt(d) scaling: %f want %f", out.T.At(0, 0), want)
	}
	// Same id, same row.
	for j := 0; j < 4; j++ {
		if out.T.At(0, j) != out.T.At(1, j) {
			t.Error("same id produced different embeddings")
		}
	}
}

func TestPositionalEncodingProperties(t *testing.T) {
	pe := NewPositionalEncoding(50, 8)
	x := autograd.NewConst(tensor.New(5, 8))
	y := pe.Add(x, 0)
	// Position 0, even dims: sin(0)=0; odd dims: cos(0)=1.
	if y.T.At(0, 0) != 0 || y.T.At(0, 1) != 1 {
		t.Errorf("pos 0 encoding: %v", y.T.Row(0))
	}
	// Offsets shift the table.
	y2 := pe.Add(autograd.NewConst(tensor.New(5, 8)), 3)
	if y2.T.At(0, 0) != pe.table.At(3, 0) {
		t.Error("offset ignored")
	}
	// Different positions get different encodings.
	same := true
	for j := 0; j < 8; j++ {
		if y.T.At(1, j) != y.T.At(2, j) {
			same = false
		}
	}
	if same {
		t.Error("positions 1 and 2 encode identically")
	}
}

func TestPositionalEncodingOverflowPanics(t *testing.T) {
	pe := NewPositionalEncoding(4, 8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	pe.Add(autograd.NewConst(tensor.New(5, 8)), 0)
}

func TestLayerNormNormalizes(t *testing.T) {
	ln := NewLayerNorm(6)
	x := autograd.NewConst(tensor.FromSlice(2, 6, []float64{
		10, 20, 30, 40, 50, 60,
		-3, -2, -1, 1, 2, 3,
	}))
	y := ln.Forward(x)
	for r := 0; r < 2; r++ {
		mean, sq := 0.0, 0.0
		for _, v := range y.T.Row(r) {
			mean += v
		}
		mean /= 6
		for _, v := range y.T.Row(r) {
			sq += (v - mean) * (v - mean)
		}
		if math.Abs(mean) > 1e-9 || math.Abs(sq/6-1) > 1e-3 {
			t.Errorf("row %d not normalized: mean %f var %f", r, mean, sq/6)
		}
	}
}

func TestMultiHeadAttentionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mha := NewMultiHeadAttention(8, 2, rng)
	q := autograd.NewConst(randT(rng, 4, 8))
	kv := autograd.NewConst(randT(rng, 6, 8))
	out := mha.Forward(q, kv, nil)
	if out.T.Rows != 4 || out.T.Cols != 8 {
		t.Fatalf("shape: %dx%d", out.T.Rows, out.T.Cols)
	}
	if len(mha.Params()) != 8 {
		t.Errorf("params: %d", len(mha.Params()))
	}
}

func TestMultiHeadAttentionDimCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 7 % 2")
		}
	}()
	NewMultiHeadAttention(7, 2, rand.New(rand.NewSource(1)))
}

// TestCausalMaskBlocksFuture: with a causal mask, output at position i must
// not depend on inputs at positions > i.
func TestCausalMaskBlocksFuture(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mha := NewMultiHeadAttention(8, 2, rng)
	x1 := randT(rng, 5, 8)
	x2 := x1.Clone()
	// Perturb the last position only.
	for j := 0; j < 8; j++ {
		x2.Set(4, j, x2.At(4, j)+10)
	}
	mask := CausalMask(5)
	o1 := mha.Forward(autograd.NewConst(x1), autograd.NewConst(x1), mask)
	o2 := mha.Forward(autograd.NewConst(x2), autograd.NewConst(x2), mask)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(o1.T.At(i, j)-o2.T.At(i, j)) > 1e-9 {
				t.Fatalf("position %d leaked future information", i)
			}
		}
	}
	// The perturbed position itself must change.
	changed := false
	for j := 0; j < 8; j++ {
		if math.Abs(o1.T.At(4, j)-o2.T.At(4, j)) > 1e-9 {
			changed = true
		}
	}
	if !changed {
		t.Error("last position unaffected by its own input")
	}
}

func TestFeedForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ff := NewFeedForward(6, 12, rng)
	x := autograd.NewConst(randT(rng, 3, 6))
	y := ff.Forward(x)
	if y.T.Rows != 3 || y.T.Cols != 6 {
		t.Fatalf("shape: %dx%d", y.T.Rows, y.T.Cols)
	}
	if len(ff.Params()) != 4 {
		t.Errorf("params: %d", len(ff.Params()))
	}
}

func TestConvGLUShapesAndResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewConvGLU(6, 3, false, rng)
	x := autograd.NewConst(randT(rng, 5, 6))
	y := c.Forward(x)
	if y.T.Rows != 5 || y.T.Cols != 6 {
		t.Fatalf("shape: %dx%d", y.T.Rows, y.T.Cols)
	}
}

// TestConvGLUCausal: causal conv output at position i must ignore inputs
// at positions > i.
func TestConvGLUCausal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConvGLU(4, 3, true, rng)
	x1 := randT(rng, 6, 4)
	x2 := x1.Clone()
	for j := 0; j < 4; j++ {
		x2.Set(5, j, x2.At(5, j)+5)
	}
	o1 := c.Forward(autograd.NewConst(x1))
	o2 := c.Forward(autograd.NewConst(x2))
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(o1.T.At(i, j)-o2.T.At(i, j)) > 1e-9 {
				t.Fatalf("causal conv leaked future at position %d", i)
			}
		}
	}
}

// TestNonCausalConvSeesBothSides: the encoder conv must be affected by a
// right-neighbour change.
func TestNonCausalConvSeesBothSides(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := NewConvGLU(4, 3, false, rng)
	x1 := randT(rng, 6, 4)
	x2 := x1.Clone()
	for j := 0; j < 4; j++ {
		x2.Set(3, j, x2.At(3, j)+5)
	}
	o1 := c.Forward(autograd.NewConst(x1))
	o2 := c.Forward(autograd.NewConst(x2))
	changed := false
	for j := 0; j < 4; j++ {
		if math.Abs(o1.T.At(2, j)-o2.T.At(2, j)) > 1e-9 {
			changed = true
		}
	}
	if !changed {
		t.Error("centered conv ignored right neighbour")
	}
}

func TestCausalMaskValues(t *testing.T) {
	m := CausalMask(3)
	if m.At(0, 1) != -1e9 || m.At(1, 0) != 0 || m.At(2, 2) != 0 {
		t.Errorf("mask: %v", m.Data)
	}
}

func TestParamNamesPrefixed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mha := NewMultiHeadAttention(4, 2, rng)
	names := map[string]bool{}
	for _, p := range mha.Params() {
		names[p.Name] = true
	}
	for _, want := range []string{"wq.w", "wq.b", "wo.w", "wo.b"} {
		if !names[want] {
			t.Errorf("missing param name %s: %v", want, names)
		}
	}
}

func randT(rng *rand.Rand, r, c int) *tensor.Tensor {
	t := tensor.New(r, c)
	t.RandInit(rng)
	return t
}
