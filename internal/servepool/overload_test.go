package servepool

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/reccache"
	"repro/internal/sqlast"
)

// fakePredictor is a canned model path, selectable per request by table
// name in the SQL ("slow" blocks until ctx cancels, "boom" errors,
// "panic" panics; anything else answers instantly). It needs no trained
// model, so overload tests run in -short mode too.
type fakePredictor struct {
	calls atomic.Int64
}

var errFakeModel = errors.New("fake model failure")

func fakeAnswerTemplates(n int) []string {
	out := []string{"tmpl-0", "tmpl-1", "tmpl-2"}
	if n < len(out) {
		out = out[:n]
	}
	return out
}

func fakeAnswerFragments(n int) map[sqlast.FragmentKind][]string {
	out := map[sqlast.FragmentKind][]string{}
	for _, k := range sqlast.FragmentKinds {
		fr := []string{"f0", "f1", "f2"}
		if n < len(fr) {
			fr = fr[:n]
		}
		out[k] = fr
	}
	return out
}

func (p *fakePredictor) dispatch(ctx context.Context, toks []string) error {
	p.calls.Add(1)
	switch {
	case contains(toks, "slow"):
		<-ctx.Done()
		return ctx.Err()
	case contains(toks, "boom"):
		return errFakeModel
	case contains(toks, "panic"):
		panic("predictor exploded")
	}
	return nil
}

func contains(toks []string, want string) bool {
	for _, t := range toks {
		if strings.EqualFold(t, want) {
			return true
		}
	}
	return false
}

func (p *fakePredictor) Templates(ctx context.Context, prevToks, curToks []string, n int) ([]string, error) {
	if err := p.dispatch(ctx, curToks); err != nil {
		return nil, err
	}
	return fakeAnswerTemplates(n), nil
}

func (p *fakePredictor) Fragments(ctx context.Context, curToks []string, n int, opts core.NFragmentsOptions) (map[sqlast.FragmentKind][]string, error) {
	if err := p.dispatch(ctx, curToks); err != nil {
		return nil, err
	}
	return fakeAnswerFragments(n), nil
}

func testFallback() *Fallback {
	return NewFallback(
		[]string{"pop-t0", "pop-t1", "pop-t2", "pop-t3"},
		map[sqlast.FragmentKind][]string{
			sqlast.FragTable:  {"PhotoObj", "SpecObj"},
			sqlast.FragColumn: {"ra", "dec", "z"},
		},
	)
}

func fakeEngine(t *testing.T, opts EngineOptions) *Engine {
	t.Helper()
	if opts.Predictor == nil {
		opts.Predictor = &fakePredictor{}
	}
	eng := NewEngineWithOptions(nil, reccache.New(64), opts)
	t.Cleanup(eng.Close)
	return eng
}

func TestFallbackAnswer(t *testing.T) {
	fb := testFallback()
	res := fb.Answer(2)
	if !res.Degraded {
		t.Error("fallback answer not flagged degraded")
	}
	if want := []string{"pop-t0", "pop-t1"}; !reflect.DeepEqual(res.Templates, want) {
		t.Errorf("templates = %v, want %v", res.Templates, want)
	}
	if want := []string{"ra", "dec"}; !reflect.DeepEqual(res.Fragments[sqlast.FragColumn], want) {
		t.Errorf("columns = %v, want %v", res.Fragments[sqlast.FragColumn], want)
	}
	// Larger than the snapshot: the whole list, no padding.
	if res := fb.Answer(100); len(res.Templates) != 4 {
		t.Errorf("templates = %v, want all 4", res.Templates)
	}
	// Deterministic: identical calls yield identical answers.
	if !reflect.DeepEqual(fb.Answer(3), fb.Answer(3)) {
		t.Error("fallback answers differ between identical calls")
	}
}

func TestFallbackCopiesInputs(t *testing.T) {
	tmpl := []string{"a", "b"}
	frag := map[sqlast.FragmentKind][]string{sqlast.FragTable: {"x"}}
	fb := NewFallback(tmpl, frag)
	tmpl[0] = "mutated"
	frag[sqlast.FragTable][0] = "mutated"
	if got := fb.Answer(2).Templates[0]; got != "a" {
		t.Errorf("template aliased caller slice: %q", got)
	}
	if got := fb.Answer(1).Fragments[sqlast.FragTable][0]; got != "x" {
		t.Errorf("fragment aliased caller slice: %q", got)
	}
}

// TestSoftTimeoutDegrades proves the soft budget converts a stuck model
// call into a fast degraded answer while the caller's own deadline is
// still far away.
func TestSoftTimeoutDegrades(t *testing.T) {
	eng := fakeEngine(t, EngineOptions{
		Workers:     2,
		Fallback:    testFallback(),
		SoftTimeout: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	res, err := eng.Recommend(ctx, testRequest("SELECT a FROM slow"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("soft-timeout answer not degraded")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("degraded answer took %v; soft timeout did not bound it", took)
	}
	ov := eng.OverloadStats()
	if ov.SoftTimeouts != 1 || ov.Degraded != 1 {
		t.Errorf("stats = %+v, want 1 soft timeout and 1 degraded", ov)
	}
}

// TestSoftTimeoutWithoutFallback propagates the deadline error when
// degraded mode is off.
func TestSoftTimeoutWithoutFallback(t *testing.T) {
	eng := fakeEngine(t, EngineOptions{Workers: 2, SoftTimeout: 10 * time.Millisecond})
	_, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM slow"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestCallerCancelNeverDegrades: the client is gone, so a degraded
// answer would be wasted and the breaker must not count it.
func TestCallerCancelNeverDegrades(t *testing.T) {
	brk := overload.NewBreaker(overload.BreakerConfig{FailureRatio: 0.5, Window: 4, MinSamples: 1})
	eng := fakeEngine(t, EngineOptions{
		Workers:  2,
		Fallback: testFallback(),
		Breaker:  brk,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := eng.Recommend(ctx, testRequest("SELECT a FROM slow"))
	if err == nil {
		t.Fatalf("expected error, got %+v", res)
	}
	if res != nil {
		t.Errorf("degraded answer for a cancelled caller: %+v", res)
	}
	if st := brk.Stats(); st.Samples != 0 {
		t.Errorf("breaker sampled a caller cancellation: %+v", st)
	}
}

// TestModelFailureDegrades serves the fallback when the predictor errors.
func TestModelFailureDegrades(t *testing.T) {
	eng := fakeEngine(t, EngineOptions{Workers: 2, Fallback: testFallback()})
	res, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM boom"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("model-failure answer not degraded")
	}
	if ov := eng.OverloadStats(); ov.ModelFailures != 1 {
		t.Errorf("model failures = %d, want 1", ov.ModelFailures)
	}
}

// TestPredictorPanicRecovered: a crashing model path is an error (and a
// degradable one), not a dead worker.
func TestPredictorPanicRecovered(t *testing.T) {
	eng := fakeEngine(t, EngineOptions{Workers: 2})
	_, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM panic"))
	var pp *PredictorPanicError
	if !errors.As(err, &pp) {
		t.Fatalf("err = %v, want PredictorPanicError", err)
	}
	// The pool survived: a healthy request still completes.
	if _, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM good")); err != nil {
		t.Fatalf("pool broken after predictor panic: %v", err)
	}
}

// TestBreakerOpensAndSheds: repeated model failures open the circuit;
// subsequent requests shed to the fallback without touching the model.
func TestBreakerOpensAndSheds(t *testing.T) {
	pred := &fakePredictor{}
	brk := overload.NewBreaker(overload.BreakerConfig{
		FailureRatio: 0.5, Window: 4, MinSamples: 2, Cooldown: time.Hour,
	})
	eng := fakeEngine(t, EngineOptions{
		Workers: 2, Predictor: pred, Breaker: brk, Fallback: testFallback(),
	})
	for i := 0; i < 3; i++ {
		if _, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM boom")); err != nil {
			t.Fatal(err)
		}
	}
	if brk.State() != overload.Open {
		t.Fatalf("breaker state = %v, want open", brk.State())
	}
	before := pred.calls.Load()
	res, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM good"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("open-breaker answer not degraded")
	}
	if pred.calls.Load() != before {
		t.Error("open breaker still called the predictor")
	}
	if ov := eng.OverloadStats(); ov.Breaker.State != "open" || ov.Breaker.Rejected == 0 {
		t.Errorf("overload stats breaker = %+v", ov.Breaker)
	}
}

// stepClock is a hand-advanced clock safe to step from the test while
// the breaker reads it from request goroutines.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerAbandonedProbeDoesNotWedge: a half-open probe whose caller
// disconnects mid-call must release its probe slot (engine cancels the
// breaker ticket), so the next request becomes a fresh probe and can
// close the circuit. Before that fix, one abandoned probe left the
// breaker stuck half-open forever: all traffic degraded until restart.
func TestBreakerAbandonedProbeDoesNotWedge(t *testing.T) {
	pred := &fakePredictor{}
	clk := &stepClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	brk := overload.NewBreaker(overload.BreakerConfig{
		FailureRatio: 0.5, Window: 4, MinSamples: 1,
		Cooldown: time.Second, Clock: clk.Now,
	})
	eng := fakeEngine(t, EngineOptions{
		Workers: 2, Predictor: pred, Breaker: brk, Fallback: testFallback(),
	})
	if _, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM boom")); err != nil {
		t.Fatal(err)
	}
	if brk.State() != overload.Open {
		t.Fatalf("breaker state = %v, want open", brk.State())
	}
	clk.Advance(2 * time.Second) // past cooldown: next request probes

	// The probe blocks in the model path until its caller walks away.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Recommend(ctx, testRequest("SELECT a FROM slow"))
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for pred.calls.Load() == 2 { // 2 calls from the boom request
		if time.Now().After(deadline) {
			t.Fatal("probe never reached the predictor")
		}
		time.Sleep(time.Millisecond)
	}
	// While the lone probe slot is held, other traffic sheds.
	res, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM good"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("request during held probe not degraded")
	}
	cancel() // the probe's caller disconnects
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned probe err = %v, want context.Canceled", err)
	}
	// The slot is free again: the next request is a fresh probe, and its
	// success closes the circuit.
	res, err = eng.Recommend(context.Background(), testRequest("SELECT b FROM good"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("fresh probe after abandonment still degraded: breaker wedged")
	}
	if brk.State() != overload.Closed {
		t.Errorf("breaker state = %v after successful probe, want closed", brk.State())
	}
}

// TestAdmissionShedsToFallback fills the in-flight cap with stuck
// requests and proves the next one is shed to a fast degraded answer.
func TestAdmissionShedsToFallback(t *testing.T) {
	// MaxQueue -1 keeps the queue rung out of the way (it would otherwise
	// default to the queue capacity and shed first): this test is about
	// the in-flight cap specifically.
	adm := overload.NewAdmission(overload.AdmissionConfig{MaxInFlight: 2, MaxQueue: -1})
	eng := fakeEngine(t, EngineOptions{
		Workers: 2, Queue: 2, Admission: adm, Fallback: testFallback(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng.Recommend(ctx, testRequest("SELECT a FROM slow"))
		}()
	}
	// Wait until both are admitted and holding the cap.
	deadline := time.Now().Add(2 * time.Second)
	for adm.Stats().InFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached 2: %+v", adm.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	res, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM good"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("shed answer not degraded")
	}
	if st := adm.Stats(); st.ShedLoad == 0 {
		t.Errorf("no shed recorded: %+v", st)
	}
	cancel()
	wg.Wait()
}

// TestAdmissionShedWithoutFallback returns the typed overload rejection.
func TestAdmissionShedWithoutFallback(t *testing.T) {
	adm := overload.NewAdmission(overload.AdmissionConfig{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	eng := fakeEngine(t, EngineOptions{Workers: 1, Admission: adm})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.Recommend(ctx, testRequest("SELECT a FROM slow"))
	}()
	deadline := time.Now().Add(2 * time.Second)
	for adm.Stats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached 1: %+v", adm.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	_, err := eng.Recommend(context.Background(), testRequest("SELECT a FROM good"))
	if !errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *overload.Error
	if !errors.As(err, &oe) || oe.RetryAfter != 2*time.Second {
		t.Errorf("err = %#v, want RetryAfter 2s", err)
	}
	cancel()
	wg.Wait()
}

// TestShedCacheHit: a shed request whose answer is fully resident in the
// cache gets the full-quality result, not the degraded snapshot.
func TestShedCacheHit(t *testing.T) {
	adm := overload.NewAdmission(overload.AdmissionConfig{MaxInFlight: 1})
	eng := fakeEngine(t, EngineOptions{
		Workers: 2, Queue: 2, Admission: adm, Fallback: testFallback(),
	})
	req := testRequest("SELECT a FROM good")
	warm, err := eng.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng.Recommend(ctx, testRequest("SELECT a FROM slow"))
	}()
	deadline := time.Now().Add(2 * time.Second)
	for adm.Stats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached 1: %+v", adm.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	res, err := eng.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("cache-resident shed request was degraded")
	}
	if !reflect.DeepEqual(res.Templates, warm.Templates) {
		t.Errorf("templates = %v, want cached %v", res.Templates, warm.Templates)
	}
	if ov := eng.OverloadStats(); ov.ShedCacheHits != 1 {
		t.Errorf("shed cache hits = %d, want 1", ov.ShedCacheHits)
	}
	cancel()
	wg.Wait()
}

// TestRecommendBatchMixedOutcomes is the satellite contract: good, bad
// and cancelled items in one batch keep positional order, and a stuck
// item's per-item soft budget never poisons its siblings.
func TestRecommendBatchMixedOutcomes(t *testing.T) {
	// Enough workers that the healthy items never queue behind the stuck
	// one and trip their own soft budgets under -race on one CPU.
	eng := fakeEngine(t, EngineOptions{
		Workers:     6,
		Queue:       8,
		Fallback:    testFallback(),
		SoftTimeout: 200 * time.Millisecond,
	})
	reqs := []Request{
		testRequest("SELECT a FROM good"),
		testRequest("%%%"),                // unparseable: per-item error
		testRequest("SELECT a FROM slow"), // stuck: per-item soft budget degrades it
		testRequest("SELECT b FROM good"),
	}
	start := time.Now()
	items := eng.RecommendBatch(context.Background(), reqs)
	took := time.Since(start)
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	if items[0].Err != nil || items[0].Result == nil || items[0].Result.Degraded {
		t.Errorf("item 0 (good) = %+v", items[0])
	}
	var bad *BadQueryError
	if !errors.As(items[1].Err, &bad) {
		t.Errorf("item 1 err = %v, want BadQueryError", items[1].Err)
	}
	if items[2].Err != nil || items[2].Result == nil || !items[2].Result.Degraded {
		t.Errorf("item 2 (slow) = %+v, want degraded", items[2])
	}
	if items[3].Err != nil || items[3].Result == nil || items[3].Result.Degraded {
		t.Errorf("item 3 (good) = %+v", items[3])
	}
	if want := fakeAnswerTemplates(3); !reflect.DeepEqual(items[0].Result.Templates, want) {
		t.Errorf("item 0 templates = %v, want %v", items[0].Result.Templates, want)
	}
	if took > 5*time.Second {
		t.Errorf("batch took %v; stuck item was not bounded by its soft budget", took)
	}
}

// TestRecommendBatchSiblingCancellation: one item carrying a cancelled
// request context (simulated via a stuck predictor and no fallback)
// fails alone; siblings still answer.
func TestRecommendBatchSiblingCancellation(t *testing.T) {
	// Enough workers that the healthy items never queue behind the stuck
	// one and trip their own soft budgets under -race on one CPU.
	eng := fakeEngine(t, EngineOptions{Workers: 6, Queue: 8, SoftTimeout: 200 * time.Millisecond})
	reqs := []Request{
		testRequest("SELECT a FROM good"),
		testRequest("SELECT a FROM slow"),
		testRequest("SELECT b FROM good"),
	}
	items := eng.RecommendBatch(context.Background(), reqs)
	if items[0].Err != nil || items[2].Err != nil {
		t.Errorf("siblings poisoned: %v / %v", items[0].Err, items[2].Err)
	}
	if !errors.Is(items[1].Err, context.DeadlineExceeded) {
		t.Errorf("item 1 err = %v, want DeadlineExceeded", items[1].Err)
	}
}
