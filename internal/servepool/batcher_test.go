package servepool

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/reccache"
	"repro/internal/testutil"
)

// testBatcher builds a batcher whose exec echoes each item's key into its
// template slot, for driving the coalescing machinery without a model.
func testBatcher(t *testing.T, max int, window time.Duration, after func(time.Duration) <-chan time.Time) (*batcher, *Pool) {
	t.Helper()
	pool := NewPoolQueue(1, max)
	if after == nil {
		after = time.After
	}
	exec := func(items []*batchItem) {
		for _, it := range items {
			it.tmpl = []string{it.key}
			close(it.done)
		}
	}
	return newBatcher(max, window, time.Now, after, pool, exec), pool
}

func testItem(ctx context.Context, key string) *batchItem {
	return &batchItem{ctx: ctx, key: key, done: make(chan struct{})}
}

// TestBatcherSizeHitAndCancellation fills a batch to its size bound with
// one item cancelled mid-formation: the flush must drop exactly the
// cancelled item — its waiter sees its own context error — while the
// siblings execute together and unharmed.
func TestBatcherSizeHitAndCancellation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	b, pool := testBatcher(t, 4, time.Hour, nil)
	defer pool.Close()
	defer b.close()

	ctx2, cancel2 := context.WithCancel(context.Background())
	items := []*batchItem{
		testItem(context.Background(), "a"),
		testItem(ctx2, "b"),
		testItem(context.Background(), "c"),
	}
	for _, it := range items {
		if err := b.enqueue(it); err != nil {
			t.Fatalf("enqueue(%s): %v", it.key, err)
		}
	}
	// Cancel b while the batch is still forming (the window is an hour and
	// only 3 of 4 slots are filled), then trip the size bound.
	cancel2()
	last := testItem(context.Background(), "d")
	if err := b.enqueue(last); err != nil {
		t.Fatalf("enqueue(d): %v", err)
	}

	for _, it := range []*batchItem{items[0], items[2], last} {
		<-it.done
		if it.err != nil {
			t.Fatalf("item %s: unexpected error %v", it.key, it.err)
		}
		if len(it.tmpl) != 1 || it.tmpl[0] != it.key {
			t.Fatalf("item %s: tmpl = %v", it.key, it.tmpl)
		}
	}
	<-items[1].done
	if !errors.Is(items[1].err, context.Canceled) {
		t.Fatalf("cancelled item error = %v, want context.Canceled", items[1].err)
	}

	st := b.stats()
	if st.Batches != 1 || st.Items != 3 || st.SizeHits != 1 || st.WindowHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CancelledItems != 1 {
		t.Fatalf("cancelled = %d, want 1", st.CancelledItems)
	}
	if st.SizeHist[2] != 1 { // executed with 3 live items
		t.Fatalf("size hist = %v, want bucket 3 hit once", st.SizeHist)
	}
	if st.QueueWaitNsTotal == 0 {
		t.Fatalf("queue wait not recorded")
	}
}

// TestBatcherWindowHit drives the window deadline with an injected timer:
// a partial batch must flush when the window channel fires, counted as a
// window hit of the gathered size.
func TestBatcherWindowHit(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	afterCh := make(chan time.Time)
	armed := make(chan struct{}, 1)
	after := func(time.Duration) <-chan time.Time {
		armed <- struct{}{}
		return afterCh
	}
	b, pool := testBatcher(t, 4, time.Hour, after)
	defer pool.Close()
	defer b.close()

	it1 := testItem(context.Background(), "x")
	if err := b.enqueue(it1); err != nil {
		t.Fatal(err)
	}
	<-armed // first item consumed; window timer armed
	it2 := testItem(context.Background(), "y")
	if err := b.enqueue(it2); err != nil {
		t.Fatal(err)
	}
	for len(b.in) > 0 { // collector consumed it2 into the forming batch
		runtime.Gosched()
	}
	afterCh <- time.Time{}

	for _, it := range []*batchItem{it1, it2} {
		<-it.done
		if it.err != nil || len(it.tmpl) != 1 || it.tmpl[0] != it.key {
			t.Fatalf("item %s: tmpl=%v err=%v", it.key, it.tmpl, it.err)
		}
	}
	st := b.stats()
	if st.Batches != 1 || st.WindowHits != 1 || st.SizeHits != 0 || st.Items != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SizeHist[1] != 1 {
		t.Fatalf("size hist = %v, want bucket 2 hit once", st.SizeHist)
	}
}

// TestBatcherCloseFlushesAndRefuses pins shutdown: close flushes the
// forming batch (waiters complete) and later enqueues fail ErrClosed.
func TestBatcherCloseFlushesAndRefuses(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	b, pool := testBatcher(t, 8, time.Hour, nil)
	defer pool.Close()

	it := testItem(context.Background(), "z")
	if err := b.enqueue(it); err != nil {
		t.Fatal(err)
	}
	b.close()
	b.close() // idempotent
	<-it.done
	if it.err != nil || len(it.tmpl) != 1 {
		t.Fatalf("flushed item: tmpl=%v err=%v", it.tmpl, it.err)
	}
	if err := b.enqueue(testItem(context.Background(), "late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
}

// batchedEngineQueries are structurally distinct (literal values alone
// would normalize to one cache key).
var batchedEngineQueries = []string{
	"SELECT ra FROM PhotoObj",
	"SELECT dec FROM PhotoObj",
	"SELECT ra, dec FROM PhotoObj",
	"SELECT ra FROM PhotoObj WHERE ra > 1.0",
	"SELECT TOP 10 ra FROM PhotoObj",
	"SELECT ra, dec FROM PhotoObj WHERE dec < 1.0",
}

// TestRecommendBatchedByteIdentical is the serving half of the
// bit-identity contract: the same requests through a micro-batching
// engine (concurrent, so they genuinely coalesce) and a plain engine must
// produce deeply equal results — batching must be invisible in response
// bytes. Runs under -race in tier-1, which also chases collector and
// flush ordering races.
func TestRecommendBatchedByteIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := engineRecommender(t)
	plain := NewEngine(rec, nil, 2)
	defer plain.Close()
	want := make([]*Result, len(batchedEngineQueries))
	for i, sql := range batchedEngineQueries {
		r, err := plain.Recommend(context.Background(), testRequest(sql))
		if err != nil {
			t.Fatalf("plain %q: %v", sql, err)
		}
		want[i] = r
	}

	// No cache: every request must travel the batched model path.
	eng := NewEngineWithOptions(rec, nil, EngineOptions{
		Workers:     2,
		BatchSize:   4,
		BatchWindow: 2 * time.Millisecond,
	})
	defer eng.Close()
	if !eng.BatcherStats().Enabled {
		t.Fatal("batching not enabled")
	}

	for round := 0; round < 2; round++ {
		got := make([]*Result, len(batchedEngineQueries))
		errs := make([]error, len(batchedEngineQueries))
		var wg sync.WaitGroup
		for i, sql := range batchedEngineQueries {
			wg.Add(1)
			go func(i int, sql string) {
				defer wg.Done()
				got[i], errs[i] = eng.Recommend(context.Background(), testRequest(sql))
			}(i, sql)
		}
		wg.Wait()
		for i := range batchedEngineQueries {
			if errs[i] != nil {
				t.Fatalf("round %d batched %q: %v", round, batchedEngineQueries[i], errs[i])
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d %q: batched result diverges:\n got %+v\nwant %+v",
					round, batchedEngineQueries[i], got[i], want[i])
			}
		}
	}

	st := eng.BatcherStats()
	wantItems := uint64(2 * len(batchedEngineQueries))
	if st.Templates.Items != wantItems || st.Fragments.Items != wantItems {
		t.Fatalf("items = %d/%d, want %d", st.Templates.Items, st.Fragments.Items, wantItems)
	}
	if st.Templates.Batches == 0 || st.Templates.SizeHits+st.Templates.WindowHits != st.Templates.Batches {
		t.Fatalf("template batches inconsistent: %+v", st.Templates)
	}
	var hist uint64
	for i, c := range st.Templates.SizeHist {
		hist += uint64(i+1) * c
	}
	if hist != wantItems {
		t.Fatalf("size hist %v sums to %d items, want %d", st.Templates.SizeHist, hist, wantItems)
	}
}

// TestRecommendBatchThroughMicroBatch routes the explicit batch endpoint
// through the coalescing path and checks it against per-item plain
// results: one code path serves both explicit and coalesced batches.
func TestRecommendBatchThroughMicroBatch(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := engineRecommender(t)
	plain := NewEngine(rec, nil, 2)
	defer plain.Close()
	eng := NewEngineWithOptions(rec, reccache.New(64), EngineOptions{
		Workers:     2,
		BatchSize:   4,
		BatchWindow: 2 * time.Millisecond,
	})
	defer eng.Close()

	reqs := make([]Request, len(batchedEngineQueries))
	for i, sql := range batchedEngineQueries {
		reqs[i] = testRequest(sql)
	}
	items := eng.RecommendBatch(context.Background(), reqs)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d (%q): %v", i, reqs[i].SQL, it.Err)
		}
		want, err := plain.Recommend(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(it.Result, want) {
			t.Fatalf("item %d (%q) diverges:\n got %+v\nwant %+v", i, reqs[i].SQL, it.Result, want)
		}
	}
	if st := eng.BatcherStats(); st.Templates.Items == 0 {
		t.Fatalf("explicit batch did not travel the micro-batch path: %+v", st)
	}
}

// TestBatchedEngineClosed pins shutdown semantics with batching on.
func TestBatchedEngineClosed(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := engineRecommender(t)
	eng := NewEngineWithOptions(rec, nil, EngineOptions{Workers: 1, BatchSize: 2})
	eng.Close()
	_, err := eng.Recommend(context.Background(), testRequest("SELECT ra FROM PhotoObj"))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Recommend after Close = %v, want ErrClosed", err)
	}
}

// TestBatchingDisabledByDefault pins the zero-value contract: without
// BatchSize the engine keeps the per-request path and reports batching
// off.
func TestBatchingDisabledByDefault(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rec := engineRecommender(t)
	eng := NewEngine(rec, nil, 1)
	defer eng.Close()
	if eng.batT != nil || eng.BatcherStats().Enabled {
		t.Fatal("batcher active on zero-value options")
	}
}
