package servepool

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/reccache"
	"repro/internal/sqlast"
	"repro/internal/tokenizer"
)

// Request is one recommendation to compute.
type Request struct {
	// SQL is the user's current query Q_i (required).
	SQL string
	// PrevSQL optionally supplies Q_{i-1} for context-trained models.
	PrevSQL string
	// N bounds templates and fragments per kind.
	N int
	// Opts parameterizes the N-fragments search.
	Opts core.NFragmentsOptions
}

// Result is one computed recommendation.
type Result struct {
	Templates []string
	Fragments map[sqlast.FragmentKind][]string
	// Degraded marks an answer served from the pre-warmed Popular
	// fallback instead of the model path (shed, breaker open, or soft
	// deadline exceeded).
	Degraded bool
}

// BadQueryError wraps a tokenization/parse failure of the input SQL so the
// HTTP layer can map it to 422 instead of 500.
type BadQueryError struct{ Err error }

// Error implements the error interface.
func (e *BadQueryError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying parse error.
func (e *BadQueryError) Unwrap() error { return e.Err }

// PredictorPanicError wraps a panic recovered from a predictor call, so a
// crashing model path becomes an ordinary error (degradable, breaker
// countable) instead of killing a pool worker and the process with it.
type PredictorPanicError struct{ Value any }

// Error implements the error interface.
func (e *PredictorPanicError) Error() string {
	return fmt.Sprintf("servepool: predictor panic: %v", e.Value)
}

// Predictor is the model-path dependency of the Engine: the two
// independent halves of a recommendation. core.Recommender satisfies it
// through the default adapter; chaos tests (and custom backends)
// substitute slow, failing or panicking implementations. Implementations
// must be safe for concurrent use; ctx carries the per-request soft
// budget, which implementations may honor or ignore (the built-in model
// path ignores it — beam search is not interruptible — and relies on the
// pool's context handling for abandonment).
type Predictor interface {
	Templates(ctx context.Context, prevToks, curToks []string, n int) ([]string, error)
	Fragments(ctx context.Context, curToks []string, n int, opts core.NFragmentsOptions) (map[sqlast.FragmentKind][]string, error)
}

// recPredictor is the default Predictor: the trained model path.
type recPredictor struct{ rec *core.Recommender }

func (p recPredictor) Templates(_ context.Context, prevToks, curToks []string, n int) ([]string, error) {
	src := core.EncodeContext(p.rec.Vocab, prevToks, curToks)
	return p.rec.Classifier.PredictTopN(src, n), nil
}

func (p recPredictor) Fragments(_ context.Context, curToks []string, n int, opts core.NFragmentsOptions) (map[sqlast.FragmentKind][]string, error) {
	src := p.rec.Vocab.Encode(curToks, true)
	return p.rec.NFragmentsFromTokens(src, n, opts), nil
}

// EngineOptions tunes the serving engine beyond the basic pool size. The
// zero value reproduces the plain engine: default queue, model-path
// predictor, no admission control, no breaker, no degraded mode.
type EngineOptions struct {
	// Workers sizes the prediction pool (<= 0 defaults to GOMAXPROCS).
	Workers int
	// Queue sizes the pool task queue (<= 0 defaults to Workers).
	Queue int
	// Predictor overrides the model path; nil uses the recommender.
	Predictor Predictor
	// Admission, when non-nil, sheds requests before they queue; the
	// engine binds it to the pool's live queue depth.
	Admission *overload.Admission
	// Breaker, when non-nil, guards the model path: soft timeouts and
	// model failures count toward its trip ratio, and an open circuit
	// sheds straight to the fallback.
	Breaker *overload.Breaker
	// Fallback, when non-nil, enables degraded mode: shed requests and
	// over-budget model calls answer from this snapshot (flagged
	// Result.Degraded) instead of erroring.
	Fallback *Fallback
	// SoftTimeout bounds each request's model work below the caller's
	// hard deadline, leaving room to degrade instead of timing out; 0
	// disables. Batch items inherit it individually (per-item budgets).
	SoftTimeout time.Duration
	// BatchSize enables micro-batched inference when >= 2 and the
	// predictor implements BatchPredictor: concurrent requests coalesce
	// into batched model passes of at most this many items. 0 or 1
	// keeps the per-request path — the zero value changes nothing.
	BatchSize int
	// BatchWindow bounds how long the first request of a forming batch
	// waits for company before the batch flushes anyway; <= 0 defaults
	// to 500µs. Ignored unless batching is enabled.
	BatchWindow time.Duration
	// Now and After inject the batcher's clock and timer for tests; nil
	// uses time.Now and time.After.
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
}

// defaultBatchWindow bounds batch formation when the caller enables
// batching without choosing a window: long enough to coalesce genuinely
// concurrent arrivals, short enough to be noise against a model pass.
const defaultBatchWindow = 500 * time.Microsecond

// Engine executes recommendations for one trained model: the template and
// fragment predictions of a request run as two independent tasks on the
// worker pool (they share no state — see core.Recommender), and results
// are memoized in an optional inference cache keyed on the normalized
// token sequence, context, N and search options.
//
// With EngineOptions the engine also climbs the overload ladder: an
// admission controller sheds requests the pool cannot finish in budget, a
// circuit breaker sheds around a failing model path, and shed requests
// are answered from an exact cache hit when one is resident — full
// quality at zero model cost — or from the degraded Popular fallback.
type Engine struct {
	rec   *core.Recommender
	cache *reccache.Cache // nil disables caching
	pool  *Pool
	pred  Predictor
	adm   *overload.Admission
	brk   *overload.Breaker
	fb    *Fallback
	soft  time.Duration

	// Micro-batching (nil/zero when disabled): one batcher per
	// prediction half, sharing the worker pool for execution.
	batT        *batcher
	batF        *batcher
	batchSize   int
	batchWindow time.Duration

	degraded      atomic.Uint64
	softTimeouts  atomic.Uint64
	modelFailures atomic.Uint64
	shedCacheHits atomic.Uint64
}

// NewEngine builds an engine around a trained recommender. cache may be
// nil (no memoization); workers <= 0 defaults to GOMAXPROCS.
func NewEngine(rec *core.Recommender, cache *reccache.Cache, workers int) *Engine {
	return NewEngineWithOptions(rec, cache, EngineOptions{Workers: workers})
}

// NewEngineWithOptions builds an engine with explicit serving options.
func NewEngineWithOptions(rec *core.Recommender, cache *reccache.Cache, opts EngineOptions) *Engine {
	pool := NewPoolQueue(opts.Workers, opts.Queue)
	pred := opts.Predictor
	if pred == nil {
		pred = recPredictor{rec: rec}
	}
	if opts.Admission != nil {
		opts.Admission.Bind(pool.QueueDepth, pool.QueueCap())
	}
	e := &Engine{
		rec:   rec,
		cache: cache,
		pool:  pool,
		pred:  pred,
		adm:   opts.Admission,
		brk:   opts.Breaker,
		fb:    opts.Fallback,
		soft:  opts.SoftTimeout,
	}
	if bp, ok := pred.(BatchPredictor); ok && opts.BatchSize >= 2 {
		window := opts.BatchWindow
		if window <= 0 {
			window = defaultBatchWindow
		}
		now := opts.Now
		if now == nil {
			now = time.Now
		}
		after := opts.After
		if after == nil {
			after = time.After
		}
		e.batchSize = opts.BatchSize
		e.batchWindow = window
		e.batT = newBatcher(opts.BatchSize, window, now, after, pool, e.execTemplates(bp))
		e.batF = newBatcher(opts.BatchSize, window, now, after, pool, e.execFragments(bp))
	}
	return e
}

// execTemplates builds the template batcher's execution step: one batched
// predictor call, then per-item cache fill and completion. A batch-wide
// error (or recovered panic) fails every item — each waiter's Recommend
// ladder then triages it exactly as a sequential failure.
func (e *Engine) execTemplates(bp BatchPredictor) func([]*batchItem) {
	return func(items []*batchItem) {
		qs := make([]TemplateQuery, len(items))
		for i, it := range items {
			qs[i] = TemplateQuery{PrevToks: it.prevToks, CurToks: it.curToks, N: it.n}
		}
		outs, err := safePredict(func() ([][]string, error) {
			//lint:ignore ctxflow the batch serves many waiters: one submitter's deadline must not cancel its siblings' work
			return bp.TemplatesBatch(context.Background(), qs)
		})
		for i, it := range items {
			if err != nil {
				it.err = err
			} else {
				it.tmpl = outs[i]
				e.cache.Put(it.key, outs[i])
			}
			close(it.done)
		}
	}
}

// execFragments is execTemplates' fragment-half twin.
func (e *Engine) execFragments(bp BatchPredictor) func([]*batchItem) {
	return func(items []*batchItem) {
		qs := make([]FragmentQuery, len(items))
		for i, it := range items {
			qs[i] = FragmentQuery{CurToks: it.curToks, N: it.n, Opts: it.opts}
		}
		outs, err := safePredict(func() ([]map[sqlast.FragmentKind][]string, error) {
			//lint:ignore ctxflow the batch serves many waiters: one submitter's deadline must not cancel its siblings' work
			return bp.FragmentsBatch(context.Background(), qs)
		})
		for i, it := range items {
			if err != nil {
				it.err = err
			} else {
				it.frags = outs[i]
				e.cache.Put(it.key, outs[i])
			}
			close(it.done)
		}
	}
}

// Rec exposes the underlying recommender (read-only use).
func (e *Engine) Rec() *core.Recommender { return e.rec }

// CacheStats snapshots the inference cache counters (zero when disabled).
func (e *Engine) CacheStats() reccache.Stats { return e.cache.Stats() }

// PoolStats snapshots the worker pool counters.
func (e *Engine) PoolStats() PoolStats { return e.pool.Stats() }

// BatcherStats snapshots the micro-batcher counters (Enabled false and
// zero counters when batching is off).
func (e *Engine) BatcherStats() BatcherStats {
	if e.batT == nil {
		return BatcherStats{}
	}
	return BatcherStats{
		Enabled:   true,
		MaxSize:   e.batchSize,
		WindowNs:  e.batchWindow,
		Templates: e.batT.stats(),
		Fragments: e.batF.stats(),
	}
}

// Close drains and stops the worker pool. Batchers close first so their
// final flush can still reach the pool.
func (e *Engine) Close() {
	if e.batT != nil {
		e.batT.close()
		e.batF.close()
	}
	e.pool.Close()
}

// optsKey serializes every field that changes search output, so distinct
// option sets never collide in the cache.
func optsKey(o core.NFragmentsOptions) string {
	return fmt.Sprintf("%s|%d|%g|%g|%d", o.Strategy, o.Width, o.Penalty, o.MinFrac, o.Seed)
}

// prepared is a validated request: tokenized input plus cache keys.
type prepared struct {
	curToks, prevToks []string
	tmplKey, fragKey  string
}

// prepare tokenizes the request up front: the token sequence is both the
// cache key (normalized — whitespace, aliases and literals are already
// folded) and the model input, and it is the only part of the pipeline
// that can reject the request. Running it before admission means junk
// input gets its 422 even under overload.
func prepare(req Request) (prepared, error) {
	curToks, err := tokenizer.Tokenize(req.SQL)
	if err != nil {
		return prepared{}, &BadQueryError{Err: err}
	}
	var prevToks []string
	if req.PrevSQL != "" {
		prevToks, err = tokenizer.Tokenize(req.PrevSQL)
		if err != nil {
			return prepared{}, &BadQueryError{Err: err}
		}
	}
	curKey := strings.Join(curToks, " ")
	prevKey := strings.Join(prevToks, " ")
	n := strconv.Itoa(req.N)
	return prepared{
		curToks:  curToks,
		prevToks: prevToks,
		tmplKey:  "t\x00" + prevKey + "\x00" + curKey + "\x00" + n,
		fragKey:  "f\x00" + curKey + "\x00" + n + "\x00" + optsKey(req.Opts),
	}, nil
}

// Recommend computes templates and fragments for one request, running the
// two predictions in parallel on the pool.
//
// Overload ladder (active parts only): admission may shed the request
// before it queues; an open breaker sheds it around the model path; a
// configured soft timeout bounds the model work. A shed request is
// answered from an exact cache hit when both halves are resident,
// otherwise from the degraded fallback; without a fallback it fails with
// an error unwrapping to overload.ErrOverloaded.
//
// Errors: *BadQueryError when the SQL (or PrevSQL) does not parse,
// overload rejections (errors.Is(err, overload.ErrOverloaded)) when shed
// without a fallback, ctx.Err() on caller timeout/cancellation, ErrClosed
// after Close, and predictor failures (including *PredictorPanicError)
// when degraded mode is off.
func (e *Engine) Recommend(ctx context.Context, req Request) (*Result, error) {
	pr, err := prepare(req)
	if err != nil {
		return nil, err
	}

	if e.adm != nil {
		release, aerr := e.adm.Acquire()
		if aerr != nil {
			return e.shedAnswer(pr, req.N, aerr)
		}
		defer release()
	}
	tkt, berr := e.brk.Allow()
	if berr != nil {
		return e.shedAnswer(pr, req.N, berr)
	}
	// The ticket must be settled on every path below — Record with an
	// outcome, or Cancel on abandonment. Leaking a half-open probe ticket
	// would wedge the breaker in HalfOpen (the probe slot is the only
	// exit), so the two are folded into one sync.Once.
	var brkOnce sync.Once
	recordBreaker := func(failed bool) { brkOnce.Do(func() { e.brk.Record(tkt, failed) }) }
	cancelBreaker := func() { brkOnce.Do(func() { e.brk.Cancel(tkt) }) }

	mctx := ctx
	if e.soft > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(ctx, e.soft)
		defer cancel()
	}
	res, err := e.modelPath(mctx, pr, req)
	if err == nil {
		recordBreaker(false)
		return res, nil
	}
	if errors.Is(err, ErrClosed) {
		// Shutting down: not a model failure, and nothing to degrade to
		// that the caller could still use. Release the breaker ticket
		// without sampling — this outcome proves nothing about the model.
		cancelBreaker()
		return nil, err
	}
	if ctx.Err() != nil {
		// The caller's own deadline or cancellation fired: the model is
		// not at fault and the caller is gone — propagate, and release
		// the ticket unsampled so an abandoned probe frees its slot.
		cancelBreaker()
		return nil, err
	}
	// The soft budget expired or the model path itself failed.
	if errors.Is(err, context.DeadlineExceeded) {
		e.softTimeouts.Add(1)
	} else {
		e.modelFailures.Add(1)
	}
	recordBreaker(true)
	if e.fb != nil {
		e.degraded.Add(1)
		return e.fb.Answer(req.N), nil
	}
	return nil, err
}

// shedAnswer terminates a shed request without model work: an exact
// cache hit (both halves resident) yields the full-quality answer — the
// probe leaves hit/miss telemetry and recency untouched — otherwise the
// degraded snapshot; with neither, the typed rejection propagates.
func (e *Engine) shedAnswer(pr prepared, n int, rej error) (*Result, error) {
	if t, ok := e.cache.Probe(pr.tmplKey); ok {
		if f, ok := e.cache.Probe(pr.fragKey); ok {
			e.shedCacheHits.Add(1)
			return &Result{
				Templates: t.([]string),
				Fragments: f.(map[sqlast.FragmentKind][]string),
			}, nil
		}
	}
	if e.fb != nil {
		e.degraded.Add(1)
		return e.fb.Answer(n), nil
	}
	return nil, rej
}

// modelPath runs the two prediction halves in parallel on the pool,
// coalescing them into micro-batches when batching is enabled.
func (e *Engine) modelPath(ctx context.Context, pr prepared, req Request) (*Result, error) {
	if e.batT != nil {
		return e.modelPathBatched(ctx, pr, req)
	}
	res := &Result{}
	var tmplErr, fragErr error
	errc := make(chan error, 2)
	go func() {
		errc <- e.pool.Do(ctx, func() {
			res.Templates, tmplErr = e.templates(ctx, pr.tmplKey, pr.prevToks, pr.curToks, req.N)
		})
	}()
	go func() {
		errc <- e.pool.Do(ctx, func() {
			res.Fragments, fragErr = e.fragments(ctx, pr.fragKey, pr.curToks, req.N, req.Opts)
		})
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			// The sibling task may still be writing into res; return
			// without touching it further. res escapes only on success.
			return nil, err
		}
	}
	// Both pool tasks completed (happens-before via their done channels),
	// so the error slots are settled.
	if tmplErr != nil {
		return nil, tmplErr
	}
	if fragErr != nil {
		return nil, fragErr
	}
	return res, nil
}

// modelPathBatched is the coalescing model path: each half probes the
// cache, then a miss joins the matching batcher's forming batch. Both
// halves enqueue before either is waited on, so one request's two halves
// can ride the same pair of batches. Waiting mirrors Pool.Do's contract —
// ctx expiry returns ctx.Err() while the batch may still run (and still
// fills the cache), so the Recommend ladder's soft-budget degrade and
// abandonment semantics are unchanged from the sequential path.
func (e *Engine) modelPathBatched(ctx context.Context, pr prepared, req Request) (*Result, error) {
	res := &Result{}
	var itT, itF *batchItem
	if v, ok := e.cache.Get(pr.tmplKey); ok {
		res.Templates = v.([]string)
	} else {
		itT = &batchItem{
			ctx:      ctx,
			key:      pr.tmplKey,
			prevToks: pr.prevToks,
			curToks:  pr.curToks,
			n:        req.N,
			done:     make(chan struct{}),
		}
		if err := e.batT.enqueue(itT); err != nil {
			return nil, err
		}
	}
	if v, ok := e.cache.Get(pr.fragKey); ok {
		res.Fragments = v.(map[sqlast.FragmentKind][]string)
	} else {
		itF = &batchItem{
			ctx:     ctx,
			key:     pr.fragKey,
			curToks: pr.curToks,
			n:       req.N,
			opts:    req.Opts,
			done:    make(chan struct{}),
		}
		if err := e.batF.enqueue(itF); err != nil {
			// The template item (if any) stays in its batch and completes
			// without us; its result still lands in the cache.
			return nil, err
		}
	}
	if itT != nil {
		select {
		case <-itT.done:
			if itT.err != nil {
				return nil, itT.err
			}
			res.Templates = itT.tmpl
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if itF != nil {
		select {
		case <-itF.done:
			if itF.err != nil {
				return nil, itF.err
			}
			res.Fragments = itF.frags
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return res, nil
}

// safePredict converts a predictor panic into an error so a crashing
// model path cannot take down the worker's process.
func safePredict[T any](f func() (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PredictorPanicError{Value: p}
		}
	}()
	return f()
}

// templates predicts (or recalls) the top-N next-query templates.
// Failures are not cached.
func (e *Engine) templates(ctx context.Context, key string, prevToks, curToks []string, n int) ([]string, error) {
	if v, ok := e.cache.Get(key); ok {
		return v.([]string), nil
	}
	v, err := safePredict(func() ([]string, error) {
		return e.pred.Templates(ctx, prevToks, curToks, n)
	})
	if err != nil {
		return nil, err
	}
	e.cache.Put(key, v)
	return v, nil
}

// fragments predicts (or recalls) the top-N fragments per kind. Failures
// are not cached.
func (e *Engine) fragments(ctx context.Context, key string, curToks []string, n int, opts core.NFragmentsOptions) (map[sqlast.FragmentKind][]string, error) {
	if v, ok := e.cache.Get(key); ok {
		return v.(map[sqlast.FragmentKind][]string), nil
	}
	v, err := safePredict(func() (map[sqlast.FragmentKind][]string, error) {
		return e.pred.Fragments(ctx, curToks, n, opts)
	})
	if err != nil {
		return nil, err
	}
	e.cache.Put(key, v)
	return v, nil
}

// OverloadStats is a snapshot of the engine's overload-ladder counters.
type OverloadStats struct {
	// Degraded counts answers served from the fallback snapshot.
	Degraded uint64 `json:"degraded"`
	// SoftTimeouts counts model calls that exceeded the soft budget.
	SoftTimeouts uint64 `json:"soft_timeouts"`
	// ModelFailures counts predictor errors and recovered panics.
	ModelFailures uint64 `json:"model_failures"`
	// ShedCacheHits counts shed requests salvaged by an exact cache hit.
	ShedCacheHits uint64 `json:"shed_cache_hits"`
	// Admission and Breaker carry the component counters (zero-valued
	// when the component is disabled).
	Admission overload.AdmissionStats `json:"admission"`
	Breaker   overload.BreakerStats   `json:"breaker"`
}

// OverloadStats snapshots the overload counters.
func (e *Engine) OverloadStats() OverloadStats {
	return OverloadStats{
		Degraded:      e.degraded.Load(),
		SoftTimeouts:  e.softTimeouts.Load(),
		ModelFailures: e.modelFailures.Load(),
		ShedCacheHits: e.shedCacheHits.Load(),
		Admission:     e.adm.Stats(),
		Breaker:       e.brk.Stats(),
	}
}

// BreakerState reports the circuit state (Closed when no breaker is
// configured).
func (e *Engine) BreakerState() overload.BreakerState { return e.brk.State() }

// BatchItem is one outcome of RecommendBatch: exactly one of Result or Err
// is set.
type BatchItem struct {
	Result *Result
	Err    error
}

// RecommendBatch fans the requests across the worker pool and returns one
// item per request, in order. Per-request failures (unparseable SQL,
// shed without fallback, per-item soft timeout) land in the
// corresponding item and never poison their batch siblings; a cancelled
// context fails the remainder. Each item passes the overload ladder
// independently and gets its own soft budget, so one slow item degrades
// (or errors) alone. With micro-batching enabled the concurrent items
// coalesce through the same batchers as independent Recommend callers —
// explicit batches and coalesced traffic share one model path, and an
// item whose context dies while its batch is forming is dropped at flush
// without touching its siblings.
func (e *Engine) RecommendBatch(ctx context.Context, reqs []Request) []BatchItem {
	out := make([]BatchItem, len(reqs))
	done := make(chan int, len(reqs))
	for i := range reqs {
		// One lightweight coordinator per request; the heavy inference
		// inside Recommend is what the pool bounds. Coordinators never
		// run on pool workers, so a full pool cannot deadlock itself.
		go func(i int) {
			r, err := e.Recommend(ctx, reqs[i])
			out[i] = BatchItem{Result: r, Err: err}
			done <- i
		}(i)
	}
	for range reqs {
		<-done
	}
	return out
}
