package servepool

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/reccache"
	"repro/internal/sqlast"
	"repro/internal/tokenizer"
)

// Request is one recommendation to compute.
type Request struct {
	// SQL is the user's current query Q_i (required).
	SQL string
	// PrevSQL optionally supplies Q_{i-1} for context-trained models.
	PrevSQL string
	// N bounds templates and fragments per kind.
	N int
	// Opts parameterizes the N-fragments search.
	Opts core.NFragmentsOptions
}

// Result is one computed recommendation.
type Result struct {
	Templates []string
	Fragments map[sqlast.FragmentKind][]string
}

// BadQueryError wraps a tokenization/parse failure of the input SQL so the
// HTTP layer can map it to 422 instead of 500.
type BadQueryError struct{ Err error }

// Error implements the error interface.
func (e *BadQueryError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying parse error.
func (e *BadQueryError) Unwrap() error { return e.Err }

// Engine executes recommendations for one trained model: the template and
// fragment predictions of a request run as two independent tasks on the
// worker pool (they share no state — see core.Recommender), and results
// are memoized in an optional inference cache keyed on the normalized
// token sequence, context, N and search options.
type Engine struct {
	rec   *core.Recommender
	cache *reccache.Cache // nil disables caching
	pool  *Pool
}

// NewEngine builds an engine around a trained recommender. cache may be
// nil (no memoization); workers <= 0 defaults to GOMAXPROCS.
func NewEngine(rec *core.Recommender, cache *reccache.Cache, workers int) *Engine {
	return &Engine{rec: rec, cache: cache, pool: NewPool(workers)}
}

// Rec exposes the underlying recommender (read-only use).
func (e *Engine) Rec() *core.Recommender { return e.rec }

// CacheStats snapshots the inference cache counters (zero when disabled).
func (e *Engine) CacheStats() reccache.Stats { return e.cache.Stats() }

// PoolStats snapshots the worker pool counters.
func (e *Engine) PoolStats() PoolStats { return e.pool.Stats() }

// Close drains and stops the worker pool.
func (e *Engine) Close() { e.pool.Close() }

// optsKey serializes every field that changes search output, so distinct
// option sets never collide in the cache.
func optsKey(o core.NFragmentsOptions) string {
	return fmt.Sprintf("%s|%d|%g|%g|%d", o.Strategy, o.Width, o.Penalty, o.MinFrac, o.Seed)
}

// Recommend computes templates and fragments for one request, running the
// two predictions in parallel on the pool. Errors: *BadQueryError when the
// SQL (or PrevSQL) does not parse, ctx.Err() on timeout/cancellation,
// ErrClosed after Close.
func (e *Engine) Recommend(ctx context.Context, req Request) (*Result, error) {
	// Tokenize once up front: the token sequence is both the cache key
	// (normalized — whitespace, aliases and literals are already folded)
	// and the model input, and it is the only part of the pipeline that
	// can reject the request.
	curToks, err := tokenizer.Tokenize(req.SQL)
	if err != nil {
		return nil, &BadQueryError{Err: err}
	}
	var prevToks []string
	if req.PrevSQL != "" {
		prevToks, err = tokenizer.Tokenize(req.PrevSQL)
		if err != nil {
			return nil, &BadQueryError{Err: err}
		}
	}

	curKey := strings.Join(curToks, " ")
	prevKey := strings.Join(prevToks, " ")
	n := strconv.Itoa(req.N)
	tmplKey := "t\x00" + prevKey + "\x00" + curKey + "\x00" + n
	fragKey := "f\x00" + curKey + "\x00" + n + "\x00" + optsKey(req.Opts)

	res := &Result{}
	errc := make(chan error, 2)
	go func() {
		errc <- e.pool.Do(ctx, func() {
			res.Templates = e.templates(tmplKey, prevToks, curToks, req.N)
		})
	}()
	go func() {
		errc <- e.pool.Do(ctx, func() {
			res.Fragments = e.fragments(fragKey, curToks, req.N, req.Opts)
		})
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			// The sibling task may still be writing into res; return
			// without touching it further. res escapes only on success.
			return nil, err
		}
	}
	return res, nil
}

// templates predicts (or recalls) the top-N next-query templates.
func (e *Engine) templates(key string, prevToks, curToks []string, n int) []string {
	return e.cache.GetOrCompute(key, func() any {
		src := core.EncodeContext(e.rec.Vocab, prevToks, curToks)
		return e.rec.Classifier.PredictTopN(src, n)
	}).([]string)
}

// fragments predicts (or recalls) the top-N fragments per kind.
func (e *Engine) fragments(key string, curToks []string, n int, opts core.NFragmentsOptions) map[sqlast.FragmentKind][]string {
	return e.cache.GetOrCompute(key, func() any {
		src := e.rec.Vocab.Encode(curToks, true)
		return e.rec.NFragmentsFromTokens(src, n, opts)
	}).(map[sqlast.FragmentKind][]string)
}

// BatchItem is one outcome of RecommendBatch: exactly one of Result or Err
// is set.
type BatchItem struct {
	Result *Result
	Err    error
}

// RecommendBatch fans the requests across the worker pool and returns one
// item per request, in order. Per-request failures (unparseable SQL) land
// in the corresponding item; a cancelled context fails the remainder.
func (e *Engine) RecommendBatch(ctx context.Context, reqs []Request) []BatchItem {
	out := make([]BatchItem, len(reqs))
	done := make(chan int, len(reqs))
	for i := range reqs {
		// One lightweight coordinator per request; the heavy inference
		// inside Recommend is what the pool bounds. Coordinators never
		// run on pool workers, so a full pool cannot deadlock itself.
		go func(i int) {
			r, err := e.Recommend(ctx, reqs[i])
			out[i] = BatchItem{Result: r, Err: err}
			done <- i
		}(i)
	}
	for range reqs {
		<-done
	}
	return out
}
