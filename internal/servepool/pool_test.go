package servepool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsTask(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ran := false
	if err := p.Do(context.Background(), func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
	if st := p.Stats(); st.Executed != 1 || st.Workers != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestDoAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if err := p.Do(context.Background(), func() {}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotentAndDrains(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() { n.Add(1) })
		}()
	}
	wg.Wait()
	p.Close()
	p.Close()
	if n.Load() != 20 {
		t.Errorf("executed %d tasks, want 20", n.Load())
	}
}

func TestDoCancelledContext(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context must not execute the task.
	err := p.Do(ctx, func() { t.Error("task ran despite cancelled context") })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Give a worker a chance to (incorrectly) pick it up.
	time.Sleep(10 * time.Millisecond)
}

func TestDoTimeoutWhileQueued(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func() { <-block })
	}()
	// Wait until the worker is occupied.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// Saturate the queue so later submissions sit behind the blocker.
	for i := 0; i < cap(p.tasks); i++ {
		go p.Do(context.Background(), func() {})
	}
	err := p.Do(ctx, func() {})
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	close(block)
	wg.Wait()
}

// TestConcurrentDoClose hammers Do concurrently with Close under -race to
// verify the channel-lifetime locking.
func TestConcurrentDoClose(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := p.Do(context.Background(), func() {}); err == ErrClosed {
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	p.Close()
	wg.Wait()
}
