package servepool

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/sqlast"
)

// Fallback is a pre-warmed degraded-mode answer source: a frozen
// popularity ranking of templates and fragments (the paper's *popular*
// baseline, Section 6.2.3) served when the model path is shed, broken or
// over budget. Answering from it is strictly better than a timeout — the
// endpoint keeps returning schema-valid recommendations under stress.
//
// A Fallback is immutable after construction and safe for unlimited
// concurrent use; Answer is a couple of slice headers, so a degraded
// response costs no model work at all. For a fixed snapshot the answers
// are byte-deterministic.
type Fallback struct {
	templates []string
	fragments map[sqlast.FragmentKind][]string
}

// NewFallback freezes explicit popularity rankings (most popular first).
// The inputs are copied.
func NewFallback(templates []string, fragments map[sqlast.FragmentKind][]string) *Fallback {
	f := &Fallback{
		templates: append([]string(nil), templates...),
		fragments: make(map[sqlast.FragmentKind][]string, len(sqlast.FragmentKinds)),
	}
	for _, k := range sqlast.FragmentKinds {
		f.fragments[k] = append([]string(nil), fragments[k]...)
	}
	return f
}

// FallbackFromPopular snapshots the true Popular baseline (computed from
// training pairs), keeping up to maxN entries per list — use when the
// workload is at hand.
func FallbackFromPopular(pop *baselines.Popular, maxN int) *Fallback {
	return NewFallback(pop.TopTemplates(maxN), pop.TopAllFragments(maxN))
}

// FallbackFromRecommender derives a popularity snapshot from the trained
// artifacts alone — class order and vocabulary order are both
// frequency-ranked — so a serving process can pre-warm degraded mode
// from a model directory without the training workload.
func FallbackFromRecommender(rec *core.Recommender, maxN int) *Fallback {
	return NewFallback(rec.PopularTemplates(maxN), rec.PopularFragments(maxN))
}

// Answer builds the degraded result for a request wanting n entries per
// list. The returned slices alias the frozen snapshot and must be
// treated as immutable (the same contract cached results carry).
func (f *Fallback) Answer(n int) *Result {
	res := &Result{
		Templates: f.templates,
		Fragments: make(map[sqlast.FragmentKind][]string, len(f.fragments)),
		Degraded:  true,
	}
	if n < len(res.Templates) {
		res.Templates = res.Templates[:n]
	}
	for _, k := range sqlast.FragmentKinds {
		fr := f.fragments[k]
		if n < len(fr) {
			fr = fr[:n]
		}
		res.Fragments[k] = fr
	}
	return res
}
